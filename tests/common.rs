//! Shared helpers for the Maxoid integration tests.

use maxoid::manifest::{InvocationFilter, MaxoidManifest};
use maxoid::{AppIntentFilter, MaxoidSystem, Pid};
use maxoid_vfs::{vpath, Mode, VPath};

/// The VIEW action used across the tests.
pub const VIEW: &str = "android.intent.action.VIEW";

/// Boots a system with a standard cast: `initiator` (VIEW intents are
/// private), `viewer` (accepts VIEW), and `bystander` (no relation).
pub fn standard_cast() -> MaxoidSystem {
    let sys = MaxoidSystem::boot().expect("boot");
    sys.install("initiator", vec![], MaxoidManifest::new().filter(InvocationFilter::action(VIEW)))
        .expect("install initiator");
    sys.install("viewer", vec![AppIntentFilter::new(VIEW, None)], MaxoidManifest::new())
        .expect("install viewer");
    sys.install("bystander", vec![], MaxoidManifest::new()).expect("install bystander");
    sys
}

/// Writes a private file for a launched app and returns its path.
pub fn write_private(sys: &MaxoidSystem, pid: Pid, pkg: &str, name: &str, data: &[u8]) -> VPath {
    let path = vpath("/data/data").join(pkg).unwrap().join(name).unwrap();
    sys.kernel.write(pid, &path, data, Mode::PRIVATE).expect("private write");
    path
}

/// Writes a public external-storage file and returns its path.
pub fn write_public(sys: &MaxoidSystem, pid: Pid, name: &str, data: &[u8]) -> VPath {
    let path = vpath("/storage/sdcard").join(name).unwrap();
    sys.kernel.write(pid, &path, data, Mode::PUBLIC).expect("public write");
    path
}
