//! Block-backend equivalence and cold boot through the block layer.
//!
//! PR 7 moved two consumers onto `maxoid-block`: large VFS file payloads
//! spill to page-cache-backed sectors, and the WAL can write frames
//! through a block device instead of a `Vec<u8>`. Nothing about *what*
//! the system stores may change — only *where* the bytes live. This file
//! pins that contract:
//!
//! - **Backend equivalence** (proptest): the same randomized workload
//!   applied to a resident-only store, a mem-device-backed store and a
//!   file-device-backed store produces byte-identical `dump_tree()` and
//!   `snapshot_image()` results, including under a page budget far
//!   smaller than the working set (eviction pressure).
//! - **Cold boot**: a journaled system whose WAL sits on a file-backed
//!   [`BlockStorage`] is dropped and re-booted from the device alone;
//!   files and provider rows come back exactly, and the rebooted system
//!   keeps journaling (LSN continuity) so a *second* cold boot sees the
//!   post-reboot writes too.
//! - **Corruption stays loud**: the PR-3/PR-6 byte-flip discipline holds
//!   when the log's bytes round-trip through a block device — a flipped
//!   byte is `Corrupted`, never a silently shortened history — and a
//!   power-lossy device (torn sector, dead writes) never acknowledges a
//!   record the surviving image can't replay.

use maxoid::durability::{recover, RecoveryError};
use maxoid::manifest::MaxoidManifest;
use maxoid::{Caller, ContentValues, MaxoidSystem, QueryArgs, Uri};
use maxoid_block::{FaultDevice, FileDevice, MemDevice};
use maxoid_journal::{flip_byte, read_records, BlockStorage, JournalHandle, TailState};
use maxoid_sqldb::Value;
use maxoid_vfs::{vpath, Mode, Store, Uid, VPath, Vfs};
use proptest::prelude::*;
use std::collections::BTreeMap;

const PAGES: usize = 4;
const THRESHOLD: usize = 64;

fn fpath(i: u8) -> VPath {
    vpath("/").join(&format!("f{}", i % 8)).unwrap()
}

/// Deterministic payload: contents depend on (seed, len) only, so the
/// same op produces the same bytes on every backend.
fn pattern(seed: u8, len: u16) -> Vec<u8> {
    (0..len as usize).map(|k| seed.wrapping_mul(31).wrapping_add(k as u8)).collect()
}

/// A step of the randomized store workload. Lengths deliberately straddle
/// the spill threshold (64) and the 4096-byte page size.
#[derive(Debug, Clone)]
enum Op {
    Write(u8, u16),
    Append(u8, u16),
    Unlink(u8),
    Read(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0..9000u16).prop_map(|(i, n)| Op::Write(i, n)),
        (any::<u8>(), 0..5000u16).prop_map(|(i, n)| Op::Append(i, n)),
        any::<u8>().prop_map(Op::Unlink),
        any::<u8>().prop_map(Op::Read),
    ]
}

/// Applies one op; errors (e.g. unlinking a missing file) are returned so
/// callers can assert all backends fail identically.
fn apply(s: &mut Store, op: &Op) -> Result<Option<Vec<u8>>, maxoid_vfs::VfsError> {
    match op {
        Op::Write(i, n) => {
            s.write(&fpath(*i), &pattern(*i, *n), Uid::ROOT, Mode::PUBLIC).map(|_| None)
        }
        Op::Append(i, n) => s.append(&fpath(*i), &pattern(i.wrapping_add(1), *n)).map(|_| None),
        Op::Unlink(i) => s.unlink(&fpath(*i)).map(|_| None),
        Op::Read(i) => s.read(&fpath(*i)).map(Some),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The structural guarantee behind every other test here: residency is
    /// invisible. Same ops, three backends, identical observable state.
    #[test]
    fn prop_backends_are_equivalent(ops in proptest::collection::vec(op(), 1..60)) {
        let mut resident = Store::new();
        let mut mem = Store::with_block_device(Box::new(MemDevice::new()), PAGES, THRESHOLD);
        let file_dev = FileDevice::temp("equiv").expect("temp device");
        let mut file = Store::with_block_device(Box::new(file_dev), PAGES, THRESHOLD);

        for op in &ops {
            let a = apply(&mut resident, op);
            let b = apply(&mut mem, op);
            let c = apply(&mut file, op);
            prop_assert_eq!(&a, &b, "mem backend diverged on {:?}", op);
            prop_assert_eq!(&a, &c, "file backend diverged on {:?}", op);
        }

        prop_assert_eq!(resident.dump_tree(), mem.dump_tree());
        prop_assert_eq!(resident.dump_tree(), file.dump_tree());
        // Snapshot images are the serialization boundary: paged content
        // must materialize to the exact resident bytes.
        prop_assert_eq!(resident.snapshot_image(), mem.snapshot_image());
        prop_assert_eq!(resident.snapshot_image(), file.snapshot_image());

        // The page budget is structural: it never grows with the
        // working set.
        let st = mem.stats();
        prop_assert_eq!(st.cache_budget_bytes, (PAGES * 4096) as u64);
    }
}

/// Deterministic eviction-pressure case: a working set 8x the page budget
/// stays exact and the counters show the cache actually thrashed.
#[test]
fn eviction_pressure_keeps_backends_equivalent() {
    let mut resident = Store::new();
    let mut mem = Store::with_block_device(Box::new(MemDevice::new()), PAGES, THRESHOLD);
    for i in 0..8u8 {
        let data = pattern(i, 8000);
        resident.write(&fpath(i), &data, Uid::ROOT, Mode::PUBLIC).unwrap();
        mem.write(&fpath(i), &data, Uid::ROOT, Mode::PUBLIC).unwrap();
    }
    for i in 0..8u8 {
        assert_eq!(resident.read(&fpath(i)).unwrap(), mem.read(&fpath(i)).unwrap());
    }
    assert_eq!(resident.snapshot_image(), mem.snapshot_image());
    let st = mem.stats();
    let cache = st.cache.expect("paged store exposes cache stats");
    assert!(cache.evictions > 0, "8x working set must evict: {cache:?}");
    assert_eq!(st.spilled_files, 8);
    assert_eq!(st.cache_budget_bytes, (PAGES * 4096) as u64);
}

const INITIATOR: &str = "initiator";
const AUTHORITY: &str = "user_dictionary";

fn words_uri() -> Uri {
    Uri::parse(&format!("content://{AUTHORITY}/words")).unwrap()
}

fn query_words(sys: &MaxoidSystem) -> Vec<Vec<Value>> {
    let args = QueryArgs {
        projection: vec!["word".into(), "frequency".into()],
        sort_order: Some("_id".into()),
        ..QueryArgs::default()
    };
    sys.resolver.query(&Caller::normal(INITIATOR), &words_uri(), &args).expect("query").rows
}

fn files_of(sys: &MaxoidSystem) -> BTreeMap<String, (bool, Vec<u8>, u32, u8)> {
    sys.kernel.vfs().with_store(|s| s.dump_tree())
}

fn seed_system(sys: &MaxoidSystem) {
    sys.install(INITIATOR, vec![], MaxoidManifest::new()).expect("install");
    let caller = Caller::normal(INITIATOR);
    for (w, f) in [("hello", 10), ("world", 20)] {
        sys.resolver
            .insert(&caller, &words_uri(), &ContentValues::new().put("word", w).put("frequency", f))
            .expect("insert");
    }
    // A payload big enough to spill on a block-backed store.
    sys.kernel
        .vfs()
        .with_store_mut(|s| {
            s.mkdir_all(&vpath("/storage/sdcard"), Uid::ROOT, Mode::PUBLIC)?;
            s.write(&vpath("/storage/sdcard/blob"), &pattern(7, 9000), Uid::ROOT, Mode::PUBLIC)
        })
        .expect("write blob");
}

/// Opens (or reopens) a journal over the file device at `path`.
fn file_journal(path: &std::path::Path, fresh: bool) -> JournalHandle {
    let mut dev =
        if fresh { FileDevice::create(path).unwrap() } else { FileDevice::open(path).unwrap() };
    dev.set_delete_on_drop(false);
    JournalHandle::with_storage(Box::new(BlockStorage::open(Box::new(dev), 8).unwrap()), 1)
}

#[test]
fn cold_boot_from_file_backed_journal_restores_state() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("maxoid-coldboot-{}.blk", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // First life: journaled boot over a file-backed block device.
    let sys = MaxoidSystem::boot_journaled(file_journal(&path, true)).expect("boot");
    seed_system(&sys);
    sys.journal().unwrap().flush().unwrap();
    let files = files_of(&sys);
    let words = query_words(&sys);
    drop(sys);

    // Second life: nothing survives but the device. Boot cold into a
    // block-backed VFS so recovered payloads spill to pages, not RAM.
    let vfs = Vfs::with_block_device(Box::new(MemDevice::new()), 8, THRESHOLD);
    let sys2 =
        MaxoidSystem::boot_journaled_with_vfs(file_journal(&path, false), vfs).expect("cold boot");
    // App installs are not journaled; re-install before using the cast.
    sys2.install(INITIATOR, vec![], MaxoidManifest::new()).expect("re-install");
    assert_eq!(files_of(&sys2), files, "file tree must survive the reboot");
    assert_eq!(query_words(&sys2), words, "provider rows must survive the reboot");
    let st = sys2.store_stats();
    assert!(st.spilled_files > 0, "the 9000-byte blob must spill after recovery: {st:?}");

    // Third life: writes made after the cold boot are journaled with
    // continuing LSNs, so another reboot sees them too.
    sys2.resolver
        .insert(
            &Caller::normal(INITIATOR),
            &words_uri(),
            &ContentValues::new().put("word", "reborn").put("frequency", 3),
        )
        .expect("post-reboot insert");
    sys2.journal().unwrap().flush().unwrap();
    let words2 = query_words(&sys2);
    assert_eq!(words2.len(), words.len() + 1);
    drop(sys2);

    let sys3 = MaxoidSystem::boot_journaled(file_journal(&path, false)).expect("second cold boot");
    sys3.install(INITIATOR, vec![], MaxoidManifest::new()).expect("re-install");
    assert_eq!(query_words(&sys3), words2, "post-reboot write must survive the next reboot");
    drop(sys3);
    let _ = std::fs::remove_file(&path);
}

/// Builds a journaled system over an in-memory `BlockStorage`, runs the
/// seed workload and returns the flushed log bytes.
fn block_backed_log() -> Vec<u8> {
    let j = JournalHandle::with_storage(Box::new(BlockStorage::in_memory(8)), 1);
    let sys = MaxoidSystem::boot_journaled(j).expect("boot");
    seed_system(&sys);
    let j = sys.journal().unwrap().clone();
    j.flush().unwrap();
    j.bytes()
}

#[test]
fn byte_flip_sweep_survives_the_block_device() {
    let log = block_backed_log();
    let clean = read_records(&log);
    assert_eq!(clean.tail, TailState::Clean);
    assert!(clean.records.len() > 10, "seed workload must produce a real log");

    // Same discipline as the PR-3/PR-6 sweeps, now on bytes that lived in
    // sectors behind a page cache: any flip is Corrupted at or before the
    // damaged frame, never a quietly shorter history.
    for offset in (0..log.len()).step_by(7) {
        for mask in [0x01u8, 0x80] {
            let flipped = flip_byte(&log, offset, mask);
            let parsed = read_records(&flipped);
            match parsed.tail {
                TailState::Corrupted { offset: at } => {
                    assert!(at <= offset, "corruption at {offset} reported downstream at {at}");
                    assert!(parsed.records.len() <= clean.records.len());
                }
                other => panic!(
                    "flip at byte {offset} (mask {mask:#04x}) parsed as {other:?} — silently shortened"
                ),
            }
        }
    }
    for offset in (0..log.len()).step_by(97) {
        match recover(&flip_byte(&log, offset, 0xFF)) {
            Err(RecoveryError::Corrupted { .. }) => {}
            Err(other) => panic!("flip at {offset}: wrong error {other}"),
            Ok(_) => panic!("flip at {offset}: recovery succeeded on a corrupted log"),
        }
    }
}

/// A mem device whose platter is shared out-of-band, so a test can crash
/// the journal stack and then inspect what "the disk" actually holds —
/// the same split a real power cut makes between RAM and media.
#[derive(Clone)]
struct SharedDev(std::sync::Arc<std::sync::Mutex<MemDevice>>);

impl maxoid_block::BlockDevice for SharedDev {
    fn sector_size(&self) -> usize {
        self.0.lock().unwrap().sector_size()
    }
    fn len_sectors(&self) -> u64 {
        self.0.lock().unwrap().len_sectors()
    }
    fn read_sector(&mut self, sector: u64, buf: &mut [u8]) -> maxoid_block::BlockResult<()> {
        self.0.lock().unwrap().read_sector(sector, buf)
    }
    fn write_sector(&mut self, sector: u64, buf: &[u8]) -> maxoid_block::BlockResult<()> {
        self.0.lock().unwrap().write_sector(sector, buf)
    }
    fn flush(&mut self) -> maxoid_block::BlockResult<()> {
        self.0.lock().unwrap().flush()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Power loss through the device, not the storage mock: a
    /// write-budgeted [`FaultDevice`] dies mid-append (with a torn-sector
    /// prefix landing on the platter), and whatever image survives must
    /// replay every record the journal acknowledged — `append` returning
    /// `Ok` is a durability promise the block layer has to keep, even
    /// when the tear hits a superblock slot.
    #[test]
    fn prop_power_loss_never_loses_acked_records(budget in 1u64..40, torn in 0usize..4096) {
        let platter = std::sync::Arc::new(std::sync::Mutex::new(MemDevice::new()));
        let dev = FaultDevice::with_write_budget(
            Box::new(SharedDev(platter.clone())),
            budget,
            torn,
        );
        let mut j = maxoid_journal::Journal::new(
            Box::new(BlockStorage::open(Box::new(dev), 4).unwrap()),
            1,
        );
        let mut acked = 0usize;
        for i in 0..64 {
            let rec = maxoid_journal::Record::Vfs(maxoid_journal::VfsRecord::Unlink {
                path: format!("/d{i}").into(),
            });
            match j.append(&rec) {
                Ok(_) => acked += 1,
                Err(_) => break,
            }
        }
        drop(j); // RAM is gone; only the platter survives.

        let survivor = SharedDev(platter);
        match BlockStorage::open(Box::new(survivor), 4) {
            Ok(mut s) => {
                use maxoid_journal::wal::Storage;
                let parsed = read_records(&s.bytes());
                prop_assert!(parsed.records.len() >= acked,
                    "{} acked but only {} replayable", acked, parsed.records.len());
            }
            Err(e) => {
                // A loud failure is acceptable only if nothing was ever
                // acknowledged (the very first commit tore).
                prop_assert_eq!(acked, 0, "acked records but reopen failed: {}", e);
            }
        }
    }
}
