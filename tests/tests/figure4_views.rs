//! Figure 4 integration test: the three views of files (A, B^A, X)
//! through the full system — initiator private external dirs, unilateral
//! copy-on-write, the tmp naming pattern, commit and discard.

use maxoid::manifest::MaxoidManifest;
use maxoid::MaxoidSystem;
use maxoid_vfs::{vpath, Mode};

fn boot() -> MaxoidSystem {
    let mut sys = MaxoidSystem::boot().expect("boot");
    sys.install("A", vec![], MaxoidManifest::new().private_ext_dir("data/A")).unwrap();
    sys.install("B", vec![], MaxoidManifest::new().private_ext_dir("data/B")).unwrap();
    sys.install("X", vec![], MaxoidManifest::new()).unwrap();
    sys
}

#[test]
fn figure4_three_views() {
    let mut sys = boot();
    let a = sys.launch("A").unwrap();
    let x = sys.launch("X").unwrap();
    let file_b = vpath("/storage/sdcard/data/A/b");
    let file_c = vpath("/storage/sdcard/c");
    sys.kernel.write(a, &file_b, b"b0", Mode::PUBLIC).unwrap();
    sys.kernel.write(x, &file_c, b"c0", Mode::PUBLIC).unwrap();

    let d = sys.launch_as_delegate("B", "A").unwrap();
    // U1: both files visible to B^A initially, same content.
    assert_eq!(sys.kernel.read(d, &file_b).unwrap(), b"b0");
    assert_eq!(sys.kernel.read(d, &file_c).unwrap(), b"c0");

    // B^A edits b and c.
    sys.kernel.write(d, &file_b, b"b1", Mode::PUBLIC).unwrap();
    sys.kernel.write(d, &file_c, b"c1", Mode::PUBLIC).unwrap();

    // B^A reads its writes at the original names.
    assert_eq!(sys.kernel.read(d, &file_b).unwrap(), b"b1");
    assert_eq!(sys.kernel.read(d, &file_c).unwrap(), b"c1");
    // A sees originals at original names, updates under tmp.
    assert_eq!(sys.kernel.read(a, &file_b).unwrap(), b"b0");
    // `c` is a public file; A sees the public version.
    assert_eq!(sys.kernel.read(a, &file_c).unwrap(), b"c0");
    assert_eq!(sys.kernel.read(a, &vpath("/storage/sdcard/tmp/data/A/b")).unwrap(), b"b1");
    assert_eq!(sys.kernel.read(a, &vpath("/storage/sdcard/tmp/c")).unwrap(), b"c1");
    // X sees only public state, unchanged. X has its *own* (empty) tmp
    // window — different initiators have different views of EXTDIR/tmp —
    // so A's volatile copies are invisible in it.
    assert!(sys.kernel.read(x, &file_b).is_err());
    assert_eq!(sys.kernel.read(x, &file_c).unwrap(), b"c0");
    assert!(!sys.kernel.exists(x, &vpath("/storage/sdcard/tmp/c")));
    assert!(!sys.kernel.exists(x, &vpath("/storage/sdcard/tmp/data/A/b")));
}

#[test]
fn commit_makes_edit_durable_then_discard_cleans() {
    let mut sys = boot();
    let a = sys.launch("A").unwrap();
    let file_b = vpath("/storage/sdcard/data/A/b");
    sys.kernel.write(a, &file_b, b"b0", Mode::PUBLIC).unwrap();
    let d = sys.launch_as_delegate("B", "A").unwrap();
    sys.kernel.write(d, &file_b, b"b1", Mode::PUBLIC).unwrap();
    sys.kernel.write(d, &vpath("/storage/sdcard/junk.log"), b"side effect", Mode::PUBLIC).unwrap();

    // A commits the edit it wants: b moves into its private branch.
    sys.commit_volatile_file("A", "data/A/b").unwrap();
    assert_eq!(sys.kernel.read(a, &file_b).unwrap(), b"b1");

    // Then discards the rest of Vol(A).
    sys.clear_vol("A").unwrap();
    assert!(sys.volatile_files("A").unwrap().is_empty());
    // The committed edit survives; the junk is gone for future delegates.
    assert_eq!(sys.kernel.read(a, &file_b).unwrap(), b"b1");
    let d2 = sys.launch_as_delegate("B", "A").unwrap();
    assert!(!sys.kernel.exists(d2, &vpath("/storage/sdcard/junk.log")));
    assert_eq!(sys.kernel.read(d2, &file_b).unwrap(), b"b1");
}

#[test]
fn delegate_deletion_is_confined_too() {
    let mut sys = boot();
    let x = sys.launch("X").unwrap();
    let f = vpath("/storage/sdcard/shared.txt");
    sys.kernel.write(x, &f, b"keep me", Mode::PUBLIC).unwrap();
    let d = sys.launch_as_delegate("B", "A").unwrap();
    // The delegate deletes a public file: whiteout in Vol(A).
    sys.kernel.unlink(d, &f).unwrap();
    assert!(!sys.kernel.exists(d, &f));
    // The public copy survives for everyone else.
    assert_eq!(sys.kernel.read(x, &f).unwrap(), b"keep me");
    // Clear-Vol restores the delegate's view as well.
    sys.clear_vol("A").unwrap();
    let d2 = sys.launch_as_delegate("B", "A").unwrap();
    assert_eq!(sys.kernel.read(d2, &f).unwrap(), b"keep me");
}

#[test]
fn append_semantics_match_aufs() {
    // The worst-case microbenchmark path: append to a lower-branch file
    // copies the whole file up, then appends.
    let mut sys = boot();
    let x = sys.launch("X").unwrap();
    let f = vpath("/storage/sdcard/log.txt");
    sys.kernel.write(x, &f, b"base|", Mode::PUBLIC).unwrap();
    let d = sys.launch_as_delegate("B", "A").unwrap();
    sys.kernel.append(d, &f, b"delegate line").unwrap();
    assert_eq!(sys.kernel.read(d, &f).unwrap(), b"base|delegate line");
    assert_eq!(sys.kernel.read(x, &f).unwrap(), b"base|");
    // A second append stays in the volatile copy.
    sys.kernel.append(d, &f, b"|more").unwrap();
    assert_eq!(sys.kernel.read(d, &f).unwrap(), b"base|delegate line|more");
}

#[test]
fn readdir_views_are_consistent() {
    let mut sys = boot();
    let a = sys.launch("A").unwrap();
    let x = sys.launch("X").unwrap();
    sys.kernel.write(x, &vpath("/storage/sdcard/pub1.txt"), b"1", Mode::PUBLIC).unwrap();
    let d = sys.launch_as_delegate("B", "A").unwrap();
    sys.kernel.write(d, &vpath("/storage/sdcard/vol1.txt"), b"2", Mode::PUBLIC).unwrap();

    let names = |pid| -> Vec<String> {
        sys.kernel
            .read_dir(pid, &vpath("/storage/sdcard"))
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect()
    };
    // The delegate sees both files merged.
    let dn = names(d);
    assert!(dn.contains(&"pub1.txt".to_string()) && dn.contains(&"vol1.txt".to_string()));
    // X sees only the public file.
    let xn = names(x);
    assert!(xn.contains(&"pub1.txt".to_string()) && !xn.contains(&"vol1.txt".to_string()));
    // A sees the public file plus the tmp window.
    let an = names(a);
    assert!(an.contains(&"pub1.txt".to_string()) && an.contains(&"tmp".to_string()));
}
