//! Concurrency tests: the shared backing store behind `parking_lot`
//! locks serves parallel apps without losing Maxoid's isolation, and the
//! kernel's syscall surface is safe to drive from multiple threads.

use crossbeam::thread;
use maxoid::manifest::MaxoidManifest;
use maxoid::{ContentValues, MaxoidSystem, QueryArgs, Uri, VolCommitPlan};
use maxoid_vfs::{vpath, Cred, Mode, Mount, MountNamespace, Uid, Vfs};
use std::time::Duration;

/// Parallel writers in disjoint namespaces never observe each other's
/// data; every thread reads back exactly what it wrote.
#[test]
fn parallel_writers_in_disjoint_namespaces() {
    let vfs = Vfs::new();
    const THREADS: usize = 8;
    const FILES: usize = 40;
    // Give each "app" its own backing dir + namespace.
    let setups: Vec<(Cred, MountNamespace)> = (0..THREADS)
        .map(|i| {
            let host = vpath("/backing").join(&format!("app{i}")).unwrap();
            vfs.with_store_mut(|s| s.mkdir_all(&host, Uid::ROOT, Mode::PUBLIC)).unwrap();
            let mut ns = MountNamespace::new();
            ns.add(Mount::bind(vpath("/data"), host));
            (Cred::new(Uid(10_000 + i as u32)), ns)
        })
        .collect();

    thread::scope(|scope| {
        for (i, (cred, ns)) in setups.iter().enumerate() {
            let vfs = vfs.clone();
            scope.spawn(move |_| {
                for f in 0..FILES {
                    let p = vpath("/data").join(&format!("f{f}.dat")).unwrap();
                    let payload = format!("thread{i}-file{f}");
                    vfs.write(*cred, ns, &p, payload.as_bytes(), Mode::PRIVATE).unwrap();
                    assert_eq!(vfs.read(*cred, ns, &p).unwrap(), payload.as_bytes());
                }
            });
        }
    })
    .expect("threads join");

    // Cross-check after the fact: every thread's files are intact and
    // contain only that thread's data.
    for (i, (cred, ns)) in setups.iter().enumerate() {
        for f in 0..FILES {
            let p = vpath("/data").join(&format!("f{f}.dat")).unwrap();
            let got = vfs.read(*cred, ns, &p).unwrap();
            assert_eq!(got, format!("thread{i}-file{f}").as_bytes());
        }
    }
}

/// Concurrent readers over one namespace see a consistent snapshot while
/// a writer mutates other files (RwLock semantics, no torn reads).
#[test]
fn readers_are_consistent_under_writes() {
    let vfs = Vfs::new();
    vfs.with_store_mut(|s| s.mkdir_all(&vpath("/pub"), Uid::ROOT, Mode::PUBLIC)).unwrap();
    let mut ns = MountNamespace::new();
    ns.add(Mount::bind(vpath("/shared"), vpath("/pub")).with_forced_mode(Mode::PUBLIC));
    let cred = Cred::new(Uid(10_001));
    let stable = vpath("/shared/stable.dat");
    vfs.write(cred, &ns, &stable, b"immutable content", Mode::PUBLIC).unwrap();

    thread::scope(|scope| {
        // One writer hammers a different file.
        {
            let vfs = vfs.clone();
            let ns = ns.clone();
            scope.spawn(move |_| {
                for i in 0..500 {
                    let p = vpath("/shared/hot.dat");
                    vfs.write(cred, &ns, &p, format!("v{i}").as_bytes(), Mode::PUBLIC).unwrap();
                }
            });
        }
        // Readers must always see the stable file whole.
        for _ in 0..4 {
            let vfs = vfs.clone();
            let ns = ns.clone();
            let stable = stable.clone();
            scope.spawn(move |_| {
                for _ in 0..500 {
                    assert_eq!(vfs.read(cred, &ns, &stable).unwrap(), b"immutable content");
                }
            });
        }
    })
    .expect("threads join");
}

/// The πBox-style trusted-cloud extension end to end: a delegate reaches
/// only the whitelisted backend.
#[test]
fn trusted_cloud_extension_end_to_end() {
    let sys = MaxoidSystem::boot().unwrap();
    sys.kernel.net.publish("converter.cloud", "convert", b"converted".to_vec());
    sys.kernel.net.publish("attacker.example", "drop", vec![]);
    sys.install("docs", vec![], MaxoidManifest::new()).unwrap();
    sys.install("converter", vec![], MaxoidManifest::new()).unwrap();

    let d = sys.launch_as_delegate("converter", "docs").unwrap();
    // Paper default: no network at all.
    assert!(sys.kernel.connect(d, "converter.cloud").is_err());

    // Opt in to the §2.4 extension for the converter's own backend.
    sys.kernel.enable_trusted_cloud(["converter.cloud".to_string()]);
    assert_eq!(sys.kernel.http_get(d, "converter.cloud/convert").unwrap(), b"converted");
    // Arbitrary exfiltration targets stay blocked.
    assert!(sys.kernel.connect(d, "attacker.example").is_err());
    // Initiators are unaffected either way.
    let a = sys.launch("docs").unwrap();
    assert!(sys.kernel.connect(a, "attacker.example").is_ok());
}

/// S1–S4 hold with N initiator/delegate pairs hammering one shared
/// system from concurrent threads: every delegate stays inside its own
/// initiator's view (files *and* provider rows), `Priv` of the delegate
/// apps is never modified, and no cross-initiator leakage occurs.
#[test]
fn concurrent_delegates_preserve_s1_s4() {
    const N: usize = 4;
    const ROUNDS: usize = 30;
    let sys = MaxoidSystem::boot().unwrap();
    let words = Uri::parse("content://user_dictionary/words").unwrap();

    // A public dictionary seeded by a bystander: one row per initiator.
    sys.install("bystander", vec![], MaxoidManifest::new()).unwrap();
    let x = sys.launch("bystander").unwrap();
    for i in 0..N {
        sys.cp_insert(x, &words, &ContentValues::new().put("word", format!("pub{i}").as_str()))
            .unwrap();
    }
    // Per-thread cast: initiator `init{i}` delegating viewer `view{i}`
    // (distinct delegate apps, so no §6.2 conflicting-launch kills).
    for i in 0..N {
        sys.install(&format!("init{i}"), vec![], MaxoidManifest::new()).unwrap();
        sys.install(&format!("view{i}"), vec![], MaxoidManifest::new()).unwrap();
    }

    let results = thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let sys = &sys;
                let words = words.clone();
                scope.spawn(move |_| {
                    let init = format!("init{i}");
                    let view = format!("view{i}");
                    let a = sys.launch(&init).unwrap();
                    let secret = vpath(&format!("/data/data/{init}/secret.txt"));
                    sys.kernel
                        .write(a, &secret, format!("priv({init})").as_bytes(), Mode::PRIVATE)
                        .unwrap();
                    let d = sys.launch_as_delegate(&view, &init).unwrap();
                    let fork = vpath(&format!("/data/data/{view}/fork.db"));
                    let public = vpath(&format!("/storage/sdcard/out{i}.txt"));
                    for r in 0..ROUNDS {
                        // Priv(A) -> B^A: the permitted read edge.
                        assert_eq!(
                            sys.kernel.read(d, &secret).unwrap(),
                            format!("priv({init})").as_bytes()
                        );
                        // B^A -> Priv(B^A): private write lands in the fork.
                        sys.kernel
                            .write(d, &fork, format!("fork{i}r{r}").as_bytes(), Mode::PRIVATE)
                            .unwrap();
                        // B^A -> Vol(A): public write is redirected; A sees
                        // it under the volatile tmp name.
                        sys.kernel
                            .write(d, &public, format!("vol{i}r{r}").as_bytes(), Mode::PUBLIC)
                            .unwrap();
                        assert_eq!(
                            sys.kernel
                                .read(a, &vpath(&format!("/storage/sdcard/tmp/out{i}.txt")))
                                .unwrap(),
                            format!("vol{i}r{r}").as_bytes()
                        );
                        // Provider COW: update own row, read it back.
                        let id = i as i64 + 1;
                        sys.cp_update(
                            d,
                            &words.with_id(id),
                            &ContentValues::new().put("word", format!("cow{i}r{r}").as_str()),
                            &QueryArgs::default(),
                        )
                        .unwrap();
                        let rs =
                            sys.cp_query(d, &words.with_id(id), &QueryArgs::default()).unwrap();
                        let col = rs.column_index("word").unwrap();
                        assert_eq!(rs.rows[0][col].to_string(), format!("cow{i}r{r}"));
                        // Exercise the gesture lock against the COW paths.
                        if r % 10 == 9 {
                            sys.commit_vol(&init, &VolCommitPlan::default()).unwrap();
                        }
                    }
                    (a, d, secret, fork)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    })
    .expect("threads join");

    // Post-hoc isolation sweep across every pair.
    for (i, (a_i, d_i, secret_i, fork_i)) in results.iter().enumerate() {
        // S3: the initiator cannot read its delegate's fork.
        assert!(sys.kernel.read(*a_i, fork_i).is_err(), "S3 violated for init{i}");
        // S1: other initiators' delegates and the bystander cannot read
        // this initiator's secret.
        assert!(sys.kernel.read(x, secret_i).is_err(), "S1 violated: bystander read init{i}");
        for (j, (a_j, d_j, ..)) in results.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(sys.kernel.read(*d_j, secret_i).is_err(), "S1 violated: view{j} read init{i}");
            assert!(sys.kernel.read(*a_j, secret_i).is_err(), "S1 violated: init{j} read init{i}");
            // S2/Vol isolation: init j never sees init i's volatile file.
            assert!(
                !sys.kernel.exists(*a_j, &vpath(&format!("/storage/sdcard/tmp/out{i}.txt"))),
                "Vol leaked: init{j} sees out{i}"
            );
            // Provider: delegate j still reads the public value of row i.
            let rs =
                sys.cp_query(*d_j, &words.with_id(i as i64 + 1), &QueryArgs::default()).unwrap();
            let col = rs.column_index("word").unwrap();
            assert_eq!(
                rs.rows[0][col].to_string(),
                format!("pub{i}"),
                "COW leaked across initiators"
            );
        }
        // S2: the public world never saw the redirected write.
        assert!(!sys.kernel.exists(x, &vpath(&format!("/storage/sdcard/out{i}.txt"))));
        // Delegate reads stayed fully isolated; the bystander's view of
        // every row is the seeded value.
        let rs = sys.cp_query(x, &words.with_id(i as i64 + 1), &QueryArgs::default()).unwrap();
        let col = rs.column_index("word").unwrap();
        assert_eq!(rs.rows[0][col].to_string(), format!("pub{i}"));
        let _ = d_i;
    }
    // S4: a normal run of each viewer sees pristine Priv(view{i}) — the
    // concurrent forks never wrote through.
    for (i, (.., fork_i)) in results.iter().enumerate() {
        let b = sys.launch(&format!("view{i}")).unwrap();
        assert!(!sys.kernel.exists(b, fork_i), "S4 violated: fork{i} reached Priv(view{i})");
    }
}

/// Intra-authority reader storm: N reader threads point-query the *same*
/// User Dictionary authority while one delegate writer mutates it. Every
/// result must match the serialized oracle (readers see exactly the
/// seeded public rows — the delegate's COW writes are invisible to
/// them), a nonzero share of reads must have been served lock-free from
/// the published MVCC snapshot, and once the system is quiescent *all*
/// reads bypass the provider write lock.
#[test]
fn intra_authority_reader_storm_matches_serialized_oracle() {
    const READERS: usize = 4;
    const ITERS: usize = 200;
    const ROWS: i64 = 32;
    let sys = MaxoidSystem::boot().unwrap();
    let words = Uri::parse("content://user_dictionary/words").unwrap();

    sys.install("seeder", vec![], MaxoidManifest::new()).unwrap();
    let seeder = sys.launch("seeder").unwrap();
    for i in 0..ROWS {
        sys.cp_insert(seeder, &words, &ContentValues::new().put("word", format!("w{i}").as_str()))
            .unwrap();
    }
    let readers: Vec<_> = (0..READERS)
        .map(|i| {
            sys.install(&format!("reader{i}"), vec![], MaxoidManifest::new()).unwrap();
            sys.launch(&format!("reader{i}")).unwrap()
        })
        .collect();
    sys.install("writerapp", vec![], MaxoidManifest::new()).unwrap();
    sys.install("writerinit", vec![], MaxoidManifest::new()).unwrap();
    let writer = sys.launch_as_delegate("writerapp", "writerinit").unwrap();

    let (snap0, _) = sys.resolver.read_path_stats();
    let sys_ref = &sys;
    let words_ref = &words;
    thread::scope(|scope| {
        // Writer: COW updates into its initiator's delta, retracting and
        // republishing the authority's snapshot on every round.
        scope.spawn(move |_| {
            let (sys, words) = (sys_ref, words_ref);
            for r in 0..ITERS {
                let id = (r as i64 % ROWS) + 1;
                sys.cp_update(
                    writer,
                    &words.with_id(id),
                    &ContentValues::new().put("word", format!("cow{r}").as_str()),
                    &QueryArgs::default(),
                )
                .unwrap();
            }
        });
        // Readers: every query must return the seeded public value — the
        // serialized oracle — no matter how reads interleave with the
        // writer's retract/republish cycle.
        for pid in &readers {
            let pid = *pid;
            scope.spawn(move |_| {
                let (sys, words) = (sys_ref, words_ref);
                for i in 0..ITERS {
                    let id = (i as i64 % ROWS) + 1;
                    let rs = sys.cp_query(pid, &words.with_id(id), &QueryArgs::default()).unwrap();
                    let col = rs.column_index("word").unwrap();
                    assert_eq!(rs.rows.len(), 1);
                    assert_eq!(rs.rows[0][col].to_string(), format!("w{}", id - 1));
                }
            });
        }
    })
    .expect("threads join");

    // The storm must have used the lock-free read path (reads landing in
    // a retraction window may legitimately fall back to the lock).
    let (snap1, _) = sys.resolver.read_path_stats();
    assert!(snap1 > snap0, "reader storm never took the snapshot path");

    // Quiescent tail: with no writer, the snapshot stays published and
    // not a single read may touch the provider write lock.
    let (qsnap0, qlocked0) = sys.resolver.read_path_stats();
    for pid in &readers {
        for id in 1..=ROWS {
            sys.cp_query(*pid, &words.with_id(id), &QueryArgs::default()).unwrap();
        }
    }
    let (qsnap1, qlocked1) = sys.resolver.read_path_stats();
    assert_eq!(qlocked1, qlocked0, "quiescent reads must not take the write lock");
    assert_eq!(qsnap1 - qsnap0, READERS as u64 * ROWS as u64);

    // The writer's COW rows stayed confined to its initiator's view.
    let rs = sys.cp_query(writer, &words.with_id(1), &QueryArgs::default()).unwrap();
    let col = rs.column_index("word").unwrap();
    assert!(rs.rows[0][col].to_string().starts_with("cow"), "writer lost its own COW row");
}

/// Lock-order smoke test: two threads drive API paths whose documented
/// lock footprints overlap, approaching the shared locks from opposite
/// ends of the hierarchy (gesture-first gestures vs leaf-first reads,
/// provider-then-store vs store-then-provider call sequences). With the
/// documented order (system.rs "Threading model") every path acquires
/// nested locks in one global direction, so this must terminate; an
/// inversion deadlocks and the watchdog flags it instead of hanging CI.
#[test]
fn lock_order_smoke() {
    const ITERS: usize = 150;
    let (tx, rx) = std::sync::mpsc::channel();
    let driver = std::thread::spawn(move || {
        let sys = MaxoidSystem::boot().unwrap();
        let words = Uri::parse("content://user_dictionary/words").unwrap();
        for pkg in ["alpha", "beta", "gamma"] {
            sys.install(pkg, vec![], MaxoidManifest::new()).unwrap();
        }
        let seed = sys.launch("gamma").unwrap();
        sys.cp_insert(seed, &words, &ContentValues::new().put("word", "seed")).unwrap();
        let da = sys.launch_as_delegate("gamma", "alpha").unwrap();
        let db = sys.launch_as_delegate("beta", "alpha").unwrap();
        let f = vpath("/data/data/gamma/hot.dat");

        thread::scope(|scope| {
            // Thread 1: gesture-heavy — gesture lock -> priv_mgr ->
            // kernel table -> store -> provider mutex -> journal, plus
            // ams writes (install) and reads (manifest_of).
            scope.spawn(|_| {
                for i in 0..ITERS {
                    sys.commit_vol("alpha", &VolCommitPlan::default()).unwrap();
                    if i % 10 == 0 {
                        sys.clear_vol("alpha").unwrap();
                        sys.install(&format!("extra{i}"), vec![], MaxoidManifest::new()).unwrap();
                    }
                    let _ = sys.manifest_of(&maxoid::AppId::new("alpha"));
                    sys.checkpoint().unwrap();
                }
            });
            // Thread 2: leaf-first — provider and store paths entered
            // without the gesture lock, interleaved with clipboard and
            // process-table reads, racing thread 1's gestures.
            scope.spawn(|_| {
                for i in 0..ITERS {
                    sys.kernel.write(da, &f, format!("v{i}").as_bytes(), Mode::PRIVATE).unwrap();
                    let _ = sys.kernel.read(da, &f);
                    sys.cp_update(
                        db,
                        &words.with_id(1),
                        &ContentValues::new().put("word", format!("w{i}").as_str()),
                        &QueryArgs::default(),
                    )
                    .unwrap();
                    let _ = sys.cp_query(da, &words.with_id(1), &QueryArgs::default());
                    let dctx = sys.kernel.process(da).unwrap().ctx.clone();
                    sys.clipboard.set(&dctx, "confined");
                    let _ = sys.clipboard.get(&dctx);
                    let _ = sys.broadcast_targets(None, &maxoid::Intent::new("EDIT"));
                }
            });
        })
        .expect("threads join");
        tx.send(()).ok();
    });
    // Watchdog: a lock-order inversion shows up as a hang, not a panic.
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(()) => driver.join().unwrap(),
        Err(_) => panic!("lock-order smoke test timed out: suspected lock-order inversion"),
    }
}

/// Cross-shard pairwise leak sweep: 16 initiator/delegate pairs — enough
/// that their pids cover every process-table shard and their backing
/// paths scatter over the VFS store shards — hammer one shared system
/// with mixed traffic (private writes, redirected public writes,
/// provider COW updates, interleaved commit gestures), then the full
/// S1–S4 invariant matrix is checked across every pair. Any sharding bug
/// that lets an op land in the wrong shard or skip a lock shows up here
/// as cross-tenant leakage.
#[test]
fn cross_shard_pairwise_leak_sweep() {
    const N: usize = 16;
    const ROUNDS: usize = 8;
    let sys = MaxoidSystem::boot().unwrap();
    let words = Uri::parse("content://user_dictionary/words").unwrap();

    sys.install("bystander", vec![], MaxoidManifest::new()).unwrap();
    let x = sys.launch("bystander").unwrap();
    for i in 0..N {
        sys.cp_insert(x, &words, &ContentValues::new().put("word", format!("pub{i}").as_str()))
            .unwrap();
        sys.install(&format!("ini{i}"), vec![], MaxoidManifest::new()).unwrap();
        sys.install(&format!("del{i}"), vec![], MaxoidManifest::new()).unwrap();
    }

    let results = thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let sys = &sys;
                let words = words.clone();
                scope.spawn(move |_| {
                    let init = format!("ini{i}");
                    let del = format!("del{i}");
                    let a = sys.launch(&init).unwrap();
                    let secret = vpath(&format!("/data/data/{init}/secret.txt"));
                    sys.kernel
                        .write(a, &secret, format!("priv({init})").as_bytes(), Mode::PRIVATE)
                        .unwrap();
                    let d = sys.launch_as_delegate(&del, &init).unwrap();
                    let fork = vpath(&format!("/data/data/{del}/fork.db"));
                    let public = vpath(&format!("/storage/sdcard/out{i}.txt"));
                    for r in 0..ROUNDS {
                        assert_eq!(
                            sys.kernel.read(d, &secret).unwrap(),
                            format!("priv({init})").as_bytes()
                        );
                        sys.kernel
                            .write(d, &fork, format!("fork{i}r{r}").as_bytes(), Mode::PRIVATE)
                            .unwrap();
                        sys.kernel
                            .write(d, &public, format!("vol{i}r{r}").as_bytes(), Mode::PUBLIC)
                            .unwrap();
                        let id = i as i64 + 1;
                        sys.cp_update(
                            d,
                            &words.with_id(id),
                            &ContentValues::new().put("word", format!("cow{i}r{r}").as_str()),
                            &QueryArgs::default(),
                        )
                        .unwrap();
                        if r % 4 == 3 {
                            sys.commit_vol(&init, &VolCommitPlan::default()).unwrap();
                        }
                    }
                    (a, d, secret, fork)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    })
    .expect("threads join");

    // Distinct pids must actually cover several process-table shards —
    // otherwise this sweep isn't testing cross-shard behaviour at all.
    let shards: std::collections::BTreeSet<usize> =
        results.iter().flat_map(|(a, d, ..)| [*a, *d]).map(maxoid_kernel::proc_shard_of).collect();
    assert!(shards.len() >= 8, "tenant pids only covered {} proc shards", shards.len());

    for (i, (a_i, _d_i, secret_i, fork_i)) in results.iter().enumerate() {
        assert!(sys.kernel.read(*a_i, fork_i).is_err(), "S3 violated for ini{i}");
        assert!(sys.kernel.read(x, secret_i).is_err(), "S1 violated: bystander read ini{i}");
        assert!(!sys.kernel.exists(x, &vpath(&format!("/storage/sdcard/out{i}.txt"))));
        for (j, (a_j, d_j, ..)) in results.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(sys.kernel.read(*d_j, secret_i).is_err(), "S1 violated: del{j} read ini{i}");
            assert!(sys.kernel.read(*a_j, secret_i).is_err(), "S1 violated: ini{j} read ini{i}");
            assert!(
                !sys.kernel.exists(*a_j, &vpath(&format!("/storage/sdcard/tmp/out{i}.txt"))),
                "Vol leaked: ini{j} sees out{i}"
            );
            let rs =
                sys.cp_query(*d_j, &words.with_id(i as i64 + 1), &QueryArgs::default()).unwrap();
            let col = rs.column_index("word").unwrap();
            assert_eq!(rs.rows[0][col].to_string(), format!("pub{i}"), "COW leaked across pairs");
        }
    }
    for (i, (.., fork_i)) in results.iter().enumerate() {
        let b = sys.launch(&format!("del{i}")).unwrap();
        assert!(!sys.kernel.exists(b, fork_i), "S4 violated: fork{i} reached Priv(del{i})");
    }
}

/// Rename and copy-up that deliberately span two VFS store shards: the
/// union's compound ops must take both shards through the ordered
/// multi-shard lock path and end with exact contents on both sides.
#[test]
fn rename_and_copy_up_span_two_vfs_shards() {
    use maxoid_vfs::{shard_of_path, Branch, Store, Union};
    let store = Store::new();
    store.mkdir_all(&vpath("/up"), Uid::ROOT, Mode::PUBLIC).unwrap();
    store.mkdir_all(&vpath("/low"), Uid::ROOT, Mode::PUBLIC).unwrap();
    let u = Union::new(vec![Branch::rw(vpath("/up")), Branch::ro(vpath("/low"))], false);

    // Pick two file names whose *upper-branch host paths* hash to
    // different store shards, so the rename's write+unlink touches two
    // shards, and one whose lower host path differs in shard from its
    // upper host path, so copy-up crosses shards too.
    let shard_up = |n: &str| shard_of_path(&vpath("/up").join(n).unwrap());
    let names: Vec<String> = (0..256).map(|i| format!("f{i}.dat")).collect();
    let from = names[0].clone();
    let to = names
        .iter()
        .skip(1)
        .find(|n| shard_up(n) != shard_up(&from))
        .expect("256 names must cover more than one shard")
        .clone();
    let crosser = names
        .iter()
        .filter(|n| **n != from && **n != to)
        .find(|n| shard_of_path(&vpath("/low").join(n).unwrap()) != shard_up(n))
        .expect("some lower/upper host pair must differ in shard")
        .clone();

    // Cross-shard rename through the union (copy + whiteout of a
    // lower-branch original).
    store.write(&vpath("/low").join(&from).unwrap(), b"payload", Uid::ROOT, Mode::PUBLIC).unwrap();
    u.rename(&store, &from, &to, Uid::ROOT, Mode::PUBLIC).unwrap();
    assert_eq!(u.read(&store, &to).unwrap(), b"payload");
    assert!(u.read(&store, &from).is_err(), "source must be whited out");
    // The lower original is untouched (COW semantics).
    assert_eq!(store.read(&vpath("/low").join(&from).unwrap()).unwrap(), b"payload");

    // Cross-shard copy-up: lower host and upper host live in different
    // shards; the copied-up file must be byte-exact in the upper branch.
    store
        .write(&vpath("/low").join(&crosser).unwrap(), b"lower bytes", Uid::ROOT, Mode::PUBLIC)
        .unwrap();
    let host = u.copy_up(&store, &crosser).unwrap();
    assert_eq!(host, vpath("/up").join(&crosser).unwrap());
    assert_eq!(store.read(&host).unwrap(), b"lower bytes");
    assert_eq!(store.read(&vpath("/low").join(&crosser).unwrap()).unwrap(), b"lower bytes");
}

/// 10k one-shot tenants must not pin 10k gesture-lock entries: the
/// soft-cap sweep keeps the map bounded, and idle-tenant eviction
/// reclaims volatile state (while committed private state survives).
#[test]
fn one_shot_tenants_do_not_accrete_lock_entries() {
    let sys = MaxoidSystem::boot().unwrap();
    for i in 0..10_000 {
        // Each "tenant" performs one gesture and never returns.
        sys.commit_vol(&format!("oneshot{i}"), &VolCommitPlan::default()).unwrap();
    }
    let retained = sys.init_lock_count();
    assert!(
        retained <= maxoid::INIT_LOCK_SOFT_CAP + 1,
        "10k one-shot tenants retained {retained} gesture-lock entries"
    );
}

/// Tenant accounting sees a delegate's COW state, and the idle evictor
/// reclaims the volatile portion without touching committed state.
#[test]
fn tenant_stats_and_idle_eviction() {
    let sys = MaxoidSystem::boot().unwrap();
    let words = Uri::parse("content://user_dictionary/words").unwrap();
    sys.install("owner", vec![], MaxoidManifest::new()).unwrap();
    sys.install("tool", vec![], MaxoidManifest::new()).unwrap();
    let a = sys.launch("owner").unwrap();
    sys.cp_insert(a, &words, &ContentValues::new().put("word", "base")).unwrap();
    let secret = vpath("/data/data/owner/keep.txt");
    sys.kernel.write(a, &secret, b"committed", Mode::PRIVATE).unwrap();

    let d = sys.launch_as_delegate("tool", "owner").unwrap();
    sys.kernel.write(d, &vpath("/storage/sdcard/draft.txt"), b"volatile!", Mode::PUBLIC).unwrap();
    sys.kernel.write(d, &vpath("/data/data/tool/scratch.db"), b"forked", Mode::PRIVATE).unwrap();
    sys.cp_update(
        d,
        &words.with_id(1),
        &ContentValues::new().put("word", "cow"),
        &QueryArgs::default(),
    )
    .unwrap();

    let stats = sys.tenant_stats("owner").unwrap();
    assert!(stats.volatile_files >= 1, "draft.txt must show as volatile");
    assert!(stats.volatile_bytes >= 9);
    assert!(stats.delta_rows >= 1, "the COW update must show as a delta row");
    assert!(stats.cow_files >= 1, "the delegate fork must show as COW state");

    // A tenant with zero idle ticks is not evicted; after enough other
    // activity it is. (The delegate's gesture lock is unreferenced once
    // launch_as_delegate returned.)
    sys.commit_vol("busy", &VolCommitPlan::default()).unwrap();
    let report = sys.evict_idle_tenants(u64::MAX).unwrap();
    assert_eq!(report.tenants, 0, "nothing is that idle");
    let report = sys.evict_idle_tenants(0).unwrap();
    assert!(report.tenants >= 1, "owner (and busy) are idle now");

    let after = sys.tenant_stats("owner").unwrap();
    assert_eq!(after.volatile_files, 0, "volatile files must be reclaimed");
    assert_eq!(after.delta_rows, 0, "delta rows must be reclaimed");
    // Committed state survives eviction.
    assert_eq!(sys.kernel.read(a, &secret).unwrap(), b"committed");
    let rs = sys.cp_query(a, &words.with_id(1), &QueryArgs::default()).unwrap();
    let col = rs.column_index("word").unwrap();
    assert_eq!(rs.rows[0][col].to_string(), "base");
}
