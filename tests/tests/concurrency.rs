//! Concurrency tests: the shared backing store behind `parking_lot`
//! locks serves parallel apps without losing Maxoid's isolation, and the
//! kernel's syscall surface is safe to drive from multiple threads.

use crossbeam::thread;
use maxoid::manifest::MaxoidManifest;
use maxoid::MaxoidSystem;
use maxoid_vfs::{vpath, Cred, Mode, Mount, MountNamespace, Uid, Vfs};

/// Parallel writers in disjoint namespaces never observe each other's
/// data; every thread reads back exactly what it wrote.
#[test]
fn parallel_writers_in_disjoint_namespaces() {
    let vfs = Vfs::new();
    const THREADS: usize = 8;
    const FILES: usize = 40;
    // Give each "app" its own backing dir + namespace.
    let setups: Vec<(Cred, MountNamespace)> = (0..THREADS)
        .map(|i| {
            let host = vpath("/backing").join(&format!("app{i}")).unwrap();
            vfs.with_store_mut(|s| s.mkdir_all(&host, Uid::ROOT, Mode::PUBLIC)).unwrap();
            let mut ns = MountNamespace::new();
            ns.add(Mount::bind(vpath("/data"), host));
            (Cred::new(Uid(10_000 + i as u32)), ns)
        })
        .collect();

    thread::scope(|scope| {
        for (i, (cred, ns)) in setups.iter().enumerate() {
            let vfs = vfs.clone();
            scope.spawn(move |_| {
                for f in 0..FILES {
                    let p = vpath("/data").join(&format!("f{f}.dat")).unwrap();
                    let payload = format!("thread{i}-file{f}");
                    vfs.write(*cred, ns, &p, payload.as_bytes(), Mode::PRIVATE).unwrap();
                    assert_eq!(vfs.read(*cred, ns, &p).unwrap(), payload.as_bytes());
                }
            });
        }
    })
    .expect("threads join");

    // Cross-check after the fact: every thread's files are intact and
    // contain only that thread's data.
    for (i, (cred, ns)) in setups.iter().enumerate() {
        for f in 0..FILES {
            let p = vpath("/data").join(&format!("f{f}.dat")).unwrap();
            let got = vfs.read(*cred, ns, &p).unwrap();
            assert_eq!(got, format!("thread{i}-file{f}").as_bytes());
        }
    }
}

/// Concurrent readers over one namespace see a consistent snapshot while
/// a writer mutates other files (RwLock semantics, no torn reads).
#[test]
fn readers_are_consistent_under_writes() {
    let vfs = Vfs::new();
    vfs.with_store_mut(|s| s.mkdir_all(&vpath("/pub"), Uid::ROOT, Mode::PUBLIC)).unwrap();
    let mut ns = MountNamespace::new();
    ns.add(Mount::bind(vpath("/shared"), vpath("/pub")).with_forced_mode(Mode::PUBLIC));
    let cred = Cred::new(Uid(10_001));
    let stable = vpath("/shared/stable.dat");
    vfs.write(cred, &ns, &stable, b"immutable content", Mode::PUBLIC).unwrap();

    thread::scope(|scope| {
        // One writer hammers a different file.
        {
            let vfs = vfs.clone();
            let ns = ns.clone();
            scope.spawn(move |_| {
                for i in 0..500 {
                    let p = vpath("/shared/hot.dat");
                    vfs.write(cred, &ns, &p, format!("v{i}").as_bytes(), Mode::PUBLIC).unwrap();
                }
            });
        }
        // Readers must always see the stable file whole.
        for _ in 0..4 {
            let vfs = vfs.clone();
            let ns = ns.clone();
            let stable = stable.clone();
            scope.spawn(move |_| {
                for _ in 0..500 {
                    assert_eq!(vfs.read(cred, &ns, &stable).unwrap(), b"immutable content");
                }
            });
        }
    })
    .expect("threads join");
}

/// The πBox-style trusted-cloud extension end to end: a delegate reaches
/// only the whitelisted backend.
#[test]
fn trusted_cloud_extension_end_to_end() {
    let mut sys = MaxoidSystem::boot().unwrap();
    sys.kernel.net.publish("converter.cloud", "convert", b"converted".to_vec());
    sys.kernel.net.publish("attacker.example", "drop", vec![]);
    sys.install("docs", vec![], MaxoidManifest::new()).unwrap();
    sys.install("converter", vec![], MaxoidManifest::new()).unwrap();

    let d = sys.launch_as_delegate("converter", "docs").unwrap();
    // Paper default: no network at all.
    assert!(sys.kernel.connect(d, "converter.cloud").is_err());

    // Opt in to the §2.4 extension for the converter's own backend.
    sys.kernel.enable_trusted_cloud(["converter.cloud".to_string()]);
    assert_eq!(sys.kernel.http_get(d, "converter.cloud/convert").unwrap(), b"converted");
    // Arbitrary exfiltration targets stay blocked.
    assert!(sys.kernel.connect(d, "attacker.example").is_err());
    // Initiators are unaffected either way.
    let a = sys.launch("docs").unwrap();
    assert!(sys.kernel.connect(a, "attacker.example").is_ok());
}
