//! Figure 6 golden test: the COW proxy's generated SQL has exactly the
//! structure the paper shows, and the worked example (rows 1/2/3 with a
//! delegate whiteout, update and offset insert) produces the figure's
//! view contents — executed through the real SQL engine.

use maxoid_cowproxy::{sqlgen, CowProxy, DbView, QueryOpts, DELTA_PK_START};
use maxoid_sqldb::Value;

fn cols() -> Vec<String> {
    vec!["_id".to_string(), "data".to_string()]
}

/// The CREATE VIEW statement matches Figure 6 token for token.
#[test]
fn golden_view_sql() {
    assert_eq!(
        sqlgen::cow_view_sql("tab1", "A", &cols(), "_id"),
        "CREATE VIEW tab1_view_A AS SELECT _id,data FROM tab1 \
         WHERE _id NOT IN (SELECT _id FROM tab1_delta_A) \
         UNION ALL SELECT _id,data FROM tab1_delta_A WHERE _whiteout=0"
    );
}

/// The INSTEAD OF UPDATE trigger matches Figure 6.
#[test]
fn golden_update_trigger_sql() {
    assert_eq!(
        sqlgen::update_trigger_sql("tab1", "A", &cols()),
        "CREATE TRIGGER tab1_A_update INSTEAD OF UPDATE ON tab1_view_A BEGIN \
         INSERT OR REPLACE INTO tab1_delta_A (_id,data,_whiteout) \
         VALUES (NEW._id, NEW.data, 0); END"
    );
}

/// Replays the figure's data: primary rows (1,'a'),(2,'b'),(3,'c');
/// the delegate deletes row 2, updates row 3 to 'd', and inserts 'e'.
/// The view must show (1,'a'),(3,'d'),(10000001,'e') and the delta table
/// must hold exactly the figure's three rows.
#[test]
fn figure6_worked_example() {
    let mut p = CowProxy::new();
    p.execute_batch("CREATE TABLE tab1 (_id INTEGER PRIMARY KEY, data TEXT);").unwrap();
    for (id, d) in [(1, "a"), (2, "b"), (3, "c")] {
        p.insert(&DbView::Primary, "tab1", &[("_id", id.into()), ("data", d.into())]).unwrap();
    }
    let delegate = DbView::Delegate { initiator: "A".into() };
    // The three delegate operations from the figure.
    p.delete(&delegate, "tab1", Some("_id = 2"), &[]).unwrap();
    p.update(&delegate, "tab1", &[("data", "d".into())], Some("_id = 3"), &[]).unwrap();
    let new_id = p.insert(&delegate, "tab1", &[("data", "e".into())]).unwrap();
    assert_eq!(new_id, DELTA_PK_START);
    assert_eq!(new_id, 10_000_001, "the figure's literal offset");

    // The view for A's delegates (pub(x^A)).
    let rs = p
        .query(
            &delegate,
            "tab1",
            &QueryOpts { order_by: Some("_id".into()), ..Default::default() },
            &[],
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Integer(1), Value::Text("a".into())],
            vec![Value::Integer(3), Value::Text("d".into())],
            vec![Value::Integer(10_000_001), Value::Text("e".into())],
        ]
    );

    // The delta table (Vol(A)) holds the figure's rows exactly.
    let delta =
        p.db().query("SELECT _id, data, _whiteout FROM tab1_delta_A ORDER BY _id", &[]).unwrap();
    assert_eq!(
        delta.rows,
        vec![
            vec![Value::Integer(2), Value::Text("b".into()), Value::Integer(1)],
            vec![Value::Integer(3), Value::Text("d".into()), Value::Integer(0)],
            vec![Value::Integer(10_000_001), Value::Text("e".into()), Value::Integer(0)],
        ]
    );

    // The primary table (pub(all)) is untouched.
    let primary = p.db().query("SELECT _id, data FROM tab1 ORDER BY _id", &[]).unwrap();
    assert_eq!(
        primary.rows,
        vec![
            vec![Value::Integer(1), Value::Text("a".into())],
            vec![Value::Integer(2), Value::Text("b".into())],
            vec![Value::Integer(3), Value::Text("c".into())],
        ]
    );
}

/// The generated SQL actually *executes* to create the same objects the
/// proxy creates programmatically (CREATE statements are valid engine
/// input, not just documentation).
#[test]
fn generated_sql_is_executable() {
    let mut db = maxoid_sqldb::Database::new();
    db.execute_batch("CREATE TABLE tab1 (_id INTEGER PRIMARY KEY, data TEXT);").unwrap();
    db.execute_batch(&sqlgen::delta_table_sql(
        "tab1",
        "A",
        &["_id INTEGER PRIMARY KEY".to_string(), "data TEXT".to_string()],
    ))
    .unwrap();
    db.execute_batch(&sqlgen::cow_view_sql("tab1", "A", &cols(), "_id")).unwrap();
    db.execute_batch(&sqlgen::insert_trigger_sql("tab1", "A", &cols())).unwrap();
    db.execute_batch(&sqlgen::update_trigger_sql("tab1", "A", &cols())).unwrap();
    db.execute_batch(&sqlgen::delete_trigger_sql("tab1", "A", &cols())).unwrap();
    assert!(db.has_table("tab1_delta_A"));
    assert!(db.has_view("tab1_view_A"));
    assert!(db.has_trigger("tab1_A_insert"));
    assert!(db.has_trigger("tab1_A_update"));
    assert!(db.has_trigger("tab1_A_delete"));
    // Drive the triggers through plain SQL.
    db.execute_batch("INSERT INTO tab1 VALUES (1,'a');").unwrap();
    db.execute_batch("UPDATE tab1_view_A SET data = 'z' WHERE _id = 1;").unwrap();
    let rs = db.query("SELECT data FROM tab1_view_A WHERE _id = 1", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("z".into())]]);
    let rs = db.query("SELECT data FROM tab1 WHERE _id = 1", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Text("a".into())]]);
}

/// Footnote 5: the proxy's ORDER BY workaround keeps flattening active on
/// the Figure 6 view.
#[test]
fn footnote5_workaround_end_to_end() {
    let mut p = CowProxy::new();
    p.execute_batch("CREATE TABLE tab1 (_id INTEGER PRIMARY KEY, data TEXT);").unwrap();
    for i in 0..100 {
        p.insert(&DbView::Primary, "tab1", &[("data", format!("row{i}").into())]).unwrap();
    }
    let delegate = DbView::Delegate { initiator: "A".into() };
    p.update(&delegate, "tab1", &[("data", "x".into())], Some("_id = 1"), &[]).unwrap();
    p.db().stats.reset();
    let rs = p
        .query(
            &delegate,
            "tab1",
            &QueryOpts {
                columns: vec!["data".into()],
                order_by: Some("_id DESC".into()),
                limit: Some(5),
                ..Default::default()
            },
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 5);
    assert_eq!(rs.columns, vec!["data"]);
    assert_eq!(p.db().stats.flattened_queries.get(), 1);
}
