//! Randomized soak test: a seeded RNG drives hundreds of arbitrary system
//! operations (launches, delegate launches, file and provider writes in
//! every context, clears) while the S1/S2 invariants are re-checked after
//! every step. Deterministic seeds keep failures reproducible.

use maxoid::manifest::MaxoidManifest;
use maxoid::{ContentValues, MaxoidSystem, Pid, QueryArgs, Uri};
use maxoid_vfs::{vpath, Mode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const APPS: usize = 4;
const STEPS: usize = 250;

fn pkg(i: usize) -> String {
    format!("app{i}")
}

/// Tracked ground truth: which public files exist with what content, and
/// which public words exist.
#[derive(Default)]
struct PublicModel {
    files: BTreeMap<String, Vec<u8>>,
    words: Vec<String>,
}

fn run_soak(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = MaxoidSystem::boot().unwrap();
    for i in 0..APPS {
        sys.install(&pkg(i), vec![], MaxoidManifest::new()).unwrap();
    }
    sys.install("probe", vec![], MaxoidManifest::new()).unwrap();
    let words_uri = Uri::parse("content://user_dictionary/words").unwrap();

    let mut model = PublicModel::default();
    // Live process handles: (pid, Some(initiator index) when delegate).
    let mut procs: Vec<(Pid, usize, Option<usize>)> = Vec::new();

    for step in 0..STEPS {
        match rng.gen_range(0..10u32) {
            // Launch an app normally.
            0 | 1 => {
                let a = rng.gen_range(0..APPS);
                let pid = sys.launch(&pkg(a)).unwrap();
                procs.retain(|(_, app, _)| *app != a);
                procs.push((pid, a, None));
            }
            // Launch a delegate pair.
            2 | 3 => {
                let a = rng.gen_range(0..APPS);
                let mut b = rng.gen_range(0..APPS);
                if b == a {
                    b = (b + 1) % APPS;
                }
                let pid = sys.launch_as_delegate(&pkg(b), &pkg(a)).unwrap();
                procs.retain(|(_, app, _)| *app != b);
                procs.push((pid, b, Some(a)));
            }
            // A live process writes a public file.
            4 | 5 => {
                if let Some(&(pid, _, init)) = pick(&mut rng, &procs) {
                    let name = format!("file{}.dat", rng.gen_range(0..8u32));
                    let data = format!("step{step}").into_bytes();
                    let path = vpath("/storage/sdcard").join(&name).unwrap();
                    if sys.kernel.write(pid, &path, &data, Mode::PUBLIC).is_ok() && init.is_none() {
                        // Only initiator writes change public truth.
                        model.files.insert(name, data);
                    }
                }
            }
            // A live process inserts a word.
            6 => {
                if let Some(&(pid, _, init)) = pick(&mut rng, &procs) {
                    let w = format!("word{step}");
                    if sys
                        .cp_insert(pid, &words_uri, &ContentValues::new().put("word", w.as_str()))
                        .is_ok()
                        && init.is_none()
                    {
                        model.words.push(w);
                    }
                }
            }
            // A live process deletes a public file (delegates whiteout).
            7 => {
                if let Some(&(pid, _, init)) = pick(&mut rng, &procs) {
                    let name = format!("file{}.dat", rng.gen_range(0..8u32));
                    let path = vpath("/storage/sdcard").join(&name).unwrap();
                    if sys.kernel.unlink(pid, &path).is_ok() && init.is_none() {
                        model.files.remove(&name);
                    }
                }
            }
            // Clear an initiator's volatile state.
            8 => {
                let a = rng.gen_range(0..APPS);
                sys.clear_vol(&pkg(a)).unwrap();
            }
            // Clear an initiator's delegate private forks.
            _ => {
                let a = rng.gen_range(0..APPS);
                sys.clear_priv(&pkg(a)).unwrap();
            }
        }
        procs.retain(|(pid, _, _)| sys.kernel.process(*pid).is_ok());

        // Invariant: the probe (fresh normal app) sees exactly the model.
        if step % 25 == 24 {
            check_public_view(&mut sys, &model, &words_uri, seed, step);
        }
    }
    check_public_view(&mut sys, &model, &words_uri, seed, STEPS);
}

fn pick<'a>(
    rng: &mut StdRng,
    procs: &'a [(Pid, usize, Option<usize>)],
) -> Option<&'a (Pid, usize, Option<usize>)> {
    if procs.is_empty() {
        None
    } else {
        let idx = rng.gen_range(0..procs.len());
        Some(&procs[idx])
    }
}

fn check_public_view(
    sys: &mut MaxoidSystem,
    model: &PublicModel,
    words_uri: &Uri,
    seed: u64,
    step: usize,
) {
    let probe = sys.launch("probe").unwrap();
    // Files: exactly the model's set (plus the tmp window).
    let listed: BTreeMap<String, Vec<u8>> = sys
        .kernel
        .read_dir(probe, &vpath("/storage/sdcard"))
        .unwrap()
        .into_iter()
        .filter(|e| !e.is_dir)
        .map(|e| {
            let p = vpath("/storage/sdcard").join(&e.name).unwrap();
            (e.name, sys.kernel.read(probe, &p).unwrap())
        })
        .collect();
    assert_eq!(listed, model.files, "public files diverged from model (seed {seed}, step {step})");
    // Words: exactly the initiator-inserted set.
    let rs = sys
        .cp_query(
            probe,
            words_uri,
            &QueryArgs {
                projection: vec!["word".into()],
                sort_order: Some("_id".into()),
                ..Default::default()
            },
        )
        .unwrap();
    let got: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(got, model.words, "public words diverged (seed {seed}, step {step})");
    sys.kernel.kill(sys.kernel.find_processes(&maxoid::AppId::new("probe"))[0]).unwrap();
}

#[test]
fn soak_seed_1() {
    run_soak(0xC0FFEE);
}

#[test]
fn soak_seed_2() {
    run_soak(0xBADF00D);
}

#[test]
fn soak_seed_3() {
    run_soak(42);
}
