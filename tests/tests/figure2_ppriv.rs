//! Figure 2 integration test: normal and persistent private state
//! evolving over a sequence of invocations, end to end through the real
//! mount namespaces (not just the fork bookkeeping).

use maxoid::MaxoidSystem;
use maxoid_tests::standard_cast;
use maxoid_vfs::{vpath, Mode, VPath};

fn npriv_file() -> VPath {
    vpath("/data/data/viewer/prefs.db")
}

fn ppriv_file() -> VPath {
    vpath("/data/data/ppriv/viewer/recent.db")
}

fn read(sys: &MaxoidSystem, pid: maxoid::Pid, p: &VPath) -> Option<String> {
    sys.kernel.read(pid, p).ok().map(|d| String::from_utf8_lossy(&d).to_string())
}

/// Replays the figure: B runs normally (nPriv 0), then as B^A (fork),
/// then B updates Priv(B) (divergence), then B^A again (discard+refork),
/// while pPriv(B^A) persists throughout and pPriv(B^C) stays isolated.
#[test]
fn figure2_full_replay() {
    let mut sys = standard_cast();
    sys.install("other", vec![], maxoid::MaxoidManifest::new()).unwrap();

    // B runs normally with preferences version 0.
    let b0 = sys.launch("viewer").unwrap();
    sys.kernel.write(b0, &npriv_file(), b"prefs v0", Mode::PRIVATE).unwrap();

    // B^A run 1: sees v0 (U1), writes both nPriv and pPriv.
    let d1 = sys.launch_as_delegate("viewer", "initiator").unwrap();
    assert_eq!(read(&sys, d1, &npriv_file()).unwrap(), "prefs v0");
    sys.kernel.write(d1, &npriv_file(), b"prefs v0 + delegate edit", Mode::PRIVATE).unwrap();
    sys.kernel.write(d1, &ppriv_file(), b"pPriv for A", Mode::PRIVATE).unwrap();

    // B^A run 2 (consecutive): the fork is kept — both writes survive.
    let d2 = sys.launch_as_delegate("viewer", "initiator").unwrap();
    assert_eq!(read(&sys, d2, &npriv_file()).unwrap(), "prefs v0 + delegate edit");
    assert_eq!(read(&sys, d2, &ppriv_file()).unwrap(), "pPriv for A");

    // B runs normally again: Priv(B) still holds v0 (S4), and B updates
    // its preferences to v1.
    let b1 = sys.launch("viewer").unwrap();
    assert_eq!(read(&sys, b1, &npriv_file()).unwrap(), "prefs v0");
    sys.kernel.write(b1, &npriv_file(), b"prefs v1", Mode::PRIVATE).unwrap();
    // Normal B never sees pPriv content of the delegate runs.
    assert!(read(&sys, b1, &ppriv_file()).is_none());

    // B^A run 3: Priv(B) diverged — nPriv discarded and re-forked from
    // v1; pPriv persists.
    let d3 = sys.launch_as_delegate("viewer", "initiator").unwrap();
    assert_eq!(read(&sys, d3, &npriv_file()).unwrap(), "prefs v1");
    assert_eq!(read(&sys, d3, &ppriv_file()).unwrap(), "pPriv for A");

    // B^C: fresh nPriv fork from v1, and an *isolated* pPriv.
    let dc = sys.launch_as_delegate("viewer", "other").unwrap();
    assert_eq!(read(&sys, dc, &npriv_file()).unwrap(), "prefs v1");
    assert!(read(&sys, dc, &ppriv_file()).is_none());
    sys.kernel.write(dc, &ppriv_file(), b"pPriv for C", Mode::PRIVATE).unwrap();

    // Back to B^A: its pPriv still reads A's value, not C's.
    let d4 = sys.launch_as_delegate("viewer", "initiator").unwrap();
    assert_eq!(read(&sys, d4, &ppriv_file()).unwrap(), "pPriv for A");
}

/// The fork-outcome probe reports the Figure 2 decisions directly.
#[test]
fn fork_outcomes_match_policy() {
    use maxoid::ForkOutcome;
    let mut sys = standard_cast();
    let b = sys.launch("viewer").unwrap();
    sys.kernel.write(b, &npriv_file(), b"v0", Mode::PRIVATE).unwrap();
    assert_eq!(sys.fork_outcome_probe("initiator", "viewer").unwrap(), ForkOutcome::FreshFork);
    assert_eq!(sys.fork_outcome_probe("initiator", "viewer").unwrap(), ForkOutcome::Kept);
    // B updates Priv(B): next delegate start discards.
    let b2 = sys.launch("viewer").unwrap();
    sys.kernel.write(b2, &npriv_file(), b"v1", Mode::PRIVATE).unwrap();
    assert_eq!(
        sys.fork_outcome_probe("initiator", "viewer").unwrap(),
        ForkOutcome::DiscardedAndReforked
    );
}

/// S4 restore semantics: after any number of delegate runs, a normal run
/// of B sees Priv(B) exactly as it was.
#[test]
fn s4_restore_after_delegate_runs() {
    let mut sys = standard_cast();
    let b = sys.launch("viewer").unwrap();
    sys.kernel.write(b, &npriv_file(), b"pristine", Mode::PRIVATE).unwrap();
    for _ in 0..3 {
        let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
        sys.kernel.write(d, &npriv_file(), b"scribbled", Mode::PRIVATE).unwrap();
        sys.kernel.write(d, &vpath("/data/data/viewer/junk.tmp"), b"junk", Mode::PRIVATE).unwrap();
    }
    let b2 = sys.launch("viewer").unwrap();
    assert_eq!(read(&sys, b2, &npriv_file()).unwrap(), "pristine");
    assert!(!sys.kernel.exists(b2, &vpath("/data/data/viewer/junk.tmp")));
}
