//! Scale test: many initiators, each with several delegates, all active
//! in one system. Verifies that per-initiator state (Vol, nPriv, pPriv,
//! provider deltas) stays pairwise isolated as the population grows, and
//! that Clear-Vol is precise.

use maxoid::manifest::MaxoidManifest;
use maxoid::{ContentValues, MaxoidSystem, Pid, QueryArgs, Uri};
use maxoid_vfs::{vpath, Mode};

const INITIATORS: usize = 6;
const DELEGATES_PER: usize = 3;

fn init_pkg(i: usize) -> String {
    format!("init{i}")
}

fn worker_pkg(j: usize) -> String {
    format!("worker{j}")
}

#[test]
fn many_initiators_stay_pairwise_isolated() {
    let mut sys = MaxoidSystem::boot().unwrap();
    for i in 0..INITIATORS {
        sys.install(&init_pkg(i), vec![], MaxoidManifest::new().private_ext_dir("data")).unwrap();
    }
    for j in 0..DELEGATES_PER {
        sys.install(&worker_pkg(j), vec![], MaxoidManifest::new()).unwrap();
    }
    sys.install("observer", vec![], MaxoidManifest::new()).unwrap();
    let words = Uri::parse("content://user_dictionary/words").unwrap();

    // Each initiator runs its delegates, which leave file + provider
    // traces tagged with the initiator index.
    let mut init_pids: Vec<Pid> = Vec::new();
    for i in 0..INITIATORS {
        let ip = sys.launch(&init_pkg(i)).unwrap();
        init_pids.push(ip);
        for j in 0..DELEGATES_PER {
            let d = sys.launch_as_delegate(&worker_pkg(j), &init_pkg(i)).unwrap();
            // Public-view file write -> Vol(init_i).
            sys.kernel
                .write(
                    d,
                    &vpath("/storage/sdcard").join(&format!("trace_{i}_{j}.txt")).unwrap(),
                    format!("i{i}j{j}").as_bytes(),
                    Mode::PUBLIC,
                )
                .unwrap();
            // Provider write -> delta table of init_i.
            sys.cp_insert(d, &words, &ContentValues::new().put("word", format!("w_{i}_{j}")))
                .unwrap();
            // Private fork write.
            sys.kernel
                .write(
                    d,
                    &vpath("/data/data").join(&worker_pkg(j)).unwrap().join("note").unwrap(),
                    format!("fork {i}").as_bytes(),
                    Mode::PRIVATE,
                )
                .unwrap();
        }
    }

    // Pairwise checks: initiator i sees exactly its own volatile traces.
    for (i, ip) in init_pids.iter().enumerate() {
        let vol = sys.volatile_files(&init_pkg(i)).unwrap();
        let file_traces: Vec<&str> =
            vol.iter().filter(|e| e.rel.starts_with("trace_")).map(|e| e.rel.as_str()).collect();
        assert_eq!(file_traces.len(), DELEGATES_PER, "initiator {i}");
        assert!(file_traces.iter().all(|t| t.contains(&format!("trace_{i}_"))));
        // Its tmp view resolves the same files.
        for j in 0..DELEGATES_PER {
            let tmp = vpath("/storage/sdcard/tmp").join(&format!("trace_{i}_{j}.txt")).unwrap();
            assert_eq!(sys.kernel.read(*ip, &tmp).unwrap(), format!("i{i}j{j}").as_bytes());
        }
        // Provider volatile rows: exactly its own.
        let rs = sys.cp_query(*ip, &words.as_volatile(), &QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), DELEGATES_PER, "initiator {i} volatile rows");
        let w = rs.column_index("word").unwrap();
        assert!(rs.rows.iter().all(|r| r[w].to_string().starts_with(&format!("w_{i}_"))));
    }

    // The observer sees no trace at all.
    let obs = sys.launch("observer").unwrap();
    let names: Vec<String> = sys
        .kernel
        .read_dir(obs, &vpath("/storage/sdcard"))
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(!names.iter().any(|n| n.starts_with("trace_")));
    let rs = sys.cp_query(obs, &words, &QueryArgs::default()).unwrap();
    assert!(rs.rows.is_empty());

    // Clear-Vol for one initiator is surgical.
    let victim = 2;
    sys.clear_vol(&init_pkg(victim)).unwrap();
    assert!(sys.volatile_files(&init_pkg(victim)).unwrap().is_empty());
    for i in (0..INITIATORS).filter(|i| *i != victim) {
        assert_eq!(
            sys.volatile_files(&init_pkg(i))
                .unwrap()
                .iter()
                .filter(|e| e.rel.starts_with("trace_"))
                .count(),
            DELEGATES_PER,
            "initiator {i} must be untouched by initiator {victim}'s Clear-Vol"
        );
    }
}

#[test]
fn delegate_forks_scale_per_initiator_pair() {
    // The same worker app forked for many initiators keeps every fork
    // independent; pPriv too.
    let mut sys = MaxoidSystem::boot().unwrap();
    sys.install("worker", vec![], MaxoidManifest::new()).unwrap();
    for i in 0..INITIATORS {
        sys.install(&init_pkg(i), vec![], MaxoidManifest::new()).unwrap();
    }
    let npriv = vpath("/data/data/worker/state");
    let ppriv = vpath("/data/data/ppriv/worker/history");
    for i in 0..INITIATORS {
        let d = sys.launch_as_delegate("worker", &init_pkg(i)).unwrap();
        sys.kernel.write(d, &npriv, format!("n{i}").as_bytes(), Mode::PRIVATE).unwrap();
        sys.kernel.write(d, &ppriv, format!("p{i}").as_bytes(), Mode::PRIVATE).unwrap();
    }
    // Revisit each context: both layers still hold that initiator's data.
    for i in 0..INITIATORS {
        let d = sys.launch_as_delegate("worker", &init_pkg(i)).unwrap();
        assert_eq!(sys.kernel.read(d, &npriv).unwrap(), format!("n{i}").as_bytes());
        assert_eq!(sys.kernel.read(d, &ppriv).unwrap(), format!("p{i}").as_bytes());
    }
    // A normal run of the worker sees none of it.
    let normal = sys.launch("worker").unwrap();
    assert!(!sys.kernel.exists(normal, &npriv));
    assert!(!sys.kernel.exists(normal, &ppriv));
}
