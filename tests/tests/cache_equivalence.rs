//! Cache-equivalence properties: the hot-path caches (prepared-statement /
//! plan cache in sqldb, rewrite cache in the COW proxy) are pure
//! memoization — every observable result must be byte-identical with the
//! caches disabled, under random workloads that interleave queries with
//! the invalidation triggers:
//!
//! - DDL: `CREATE INDEX` / `DROP INDEX` / `ALTER TABLE ... ROWID START`
//!   (catalog-generation bumps in sqldb),
//! - COW forks (a delegate's first write) and volatile clears (fork-epoch
//!   bumps in the proxy),
//! - adoption of a recovered database into a fresh proxy.

use maxoid_cowproxy::{sqlgen, CowProxy, DbView, QueryOpts};
use maxoid_sqldb::{Database, Value};
use proptest::prelude::*;

/// One random workload step against the words table.
#[derive(Debug, Clone)]
enum Op {
    /// Insert through the given view.
    Insert {
        delegate: bool,
        word: String,
        freq: i64,
    },
    /// Update word `id`'s frequency through the delegate.
    Update {
        id: u8,
        freq: i64,
    },
    /// Delete word `id` through the delegate.
    Delete {
        id: u8,
    },
    /// Query through the given view; `by_word` selects via the (maybe
    /// indexed) word column, exercising plan-cache invalidation.
    Query {
        delegate: bool,
        by_word: Option<String>,
        limit: Option<i64>,
    },
    /// DDL through the proxy's batch path: bumps the catalog generation
    /// and the fork epoch.
    CreateIndex,
    DropIndex,
    AlterRowidStart(i64),
    /// Drops the delegate's delta/view/triggers (fork-epoch bump); the
    /// next delegate write re-forks.
    ClearVol,
}

fn word() -> impl Strategy<Value = String> {
    "[a-z]{1,6}"
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<bool>(), word(), 0..100i64).prop_map(|(delegate, word, freq)| Op::Insert {
            delegate,
            word,
            freq
        }),
        (0..8u8, 0..100i64).prop_map(|(id, freq)| Op::Update { id, freq }),
        (0..8u8).prop_map(|id| Op::Delete { id }),
        (any::<bool>(), proptest::option::of(word()), proptest::option::of(1..5i64))
            .prop_map(|(delegate, by_word, limit)| Op::Query { delegate, by_word, limit }),
        Just(Op::CreateIndex),
        Just(Op::DropIndex),
        (20_000_000..20_000_100i64).prop_map(Op::AlterRowidStart),
        Just(Op::ClearVol),
    ]
}

/// Runs `ops` against a fresh proxy with the caches forced on or off and
/// returns a trace of every observable result. Queries are issued twice
/// per step so the cached run serves the repeat from warm caches.
fn run_trace(ops: &[Op], caches: bool) -> Vec<String> {
    let mut p = CowProxy::new();
    p.set_rewrite_cache(caches);
    p.db().set_statement_caches(caches);
    p.execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER);")
        .unwrap();
    for (i, w) in ["alpha", "beta", "gamma", "delta"].iter().enumerate() {
        p.insert(
            &DbView::Primary,
            "words",
            &[("word", (*w).into()), ("frequency", (i as i64 * 10).into())],
        )
        .unwrap();
    }
    let delegate = DbView::Delegate { initiator: "A".into() };
    let mut trace = Vec::new();
    for o in ops {
        let line = match o {
            Op::Insert { delegate: d, word, freq } => {
                let view = if *d { &delegate } else { &DbView::Primary };
                format!(
                    "insert {:?}",
                    p.insert(
                        view,
                        "words",
                        &[("word", word.as_str().into()), ("frequency", (*freq).into())]
                    )
                )
            }
            Op::Update { id, freq } => format!(
                "update {:?}",
                p.update(
                    &delegate,
                    "words",
                    &[("frequency", (*freq).into())],
                    Some("_id = ?"),
                    &[Value::Integer(*id as i64 + 1)],
                )
            ),
            Op::Delete { id } => format!(
                "delete {:?}",
                p.delete(&delegate, "words", Some("_id = ?"), &[Value::Integer(*id as i64 + 1)])
            ),
            Op::Query { delegate: d, by_word, limit } => {
                let view = if *d { &delegate } else { &DbView::Primary };
                let opts = QueryOpts {
                    columns: vec!["_id".into(), "word".into(), "frequency".into()],
                    where_clause: by_word.as_ref().map(|_| "word = ?".into()),
                    order_by: Some("_id".into()),
                    limit: *limit,
                };
                let params: Vec<Value> = by_word.iter().map(|w| Value::Text(w.clone())).collect();
                let first = p.query(view, "words", &opts, &params);
                let second = p.query(view, "words", &opts, &params);
                format!("query {first:?} / {second:?}")
            }
            Op::CreateIndex => format!(
                "create-index {:?}",
                p.execute_batch("CREATE INDEX IF NOT EXISTS idx_word ON words(word);")
            ),
            Op::DropIndex => {
                format!("drop-index {:?}", p.execute_batch("DROP INDEX IF EXISTS idx_word;"))
            }
            Op::AlterRowidStart(n) => format!(
                "alter-rowid {:?}",
                p.execute_batch(&format!("ALTER TABLE words ROWID START {n};"))
            ),
            Op::ClearVol => format!("clear-vol {:?}", p.clear_volatile("A")),
        };
        trace.push(line);
    }
    // Full final views, both sides.
    let all = QueryOpts { order_by: Some("_id".into()), ..Default::default() };
    trace.push(format!("final-pub {:?}", p.query(&DbView::Primary, "words", &all, &[])));
    trace.push(format!("final-del {:?}", p.query(&delegate, "words", &all, &[])));
    trace
}

/// Runs `ops` like [`run_trace`] but serves every read-only statement
/// from the proxy's published MVCC snapshot ([`CowProxy::read_slot`])
/// instead of the live database, publishing a fresh snapshot at each
/// quiescent point the way the resolver does after a locked call. The
/// trace must be byte-identical to the serialized cache-off run.
fn run_trace_snapshot(ops: &[Op]) -> Vec<String> {
    fn snap_query(
        p: &mut CowProxy,
        view: &DbView,
        opts: &QueryOpts,
        params: &[Value],
    ) -> maxoid_sqldb::SqlResult<maxoid_sqldb::ResultSet> {
        p.publish_read();
        p.read_slot()
            .try_query(view, "words", opts, params)
            .expect("a just-published slot must serve snapshot reads")
    }

    let mut p = CowProxy::new();
    p.execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER);")
        .unwrap();
    for (i, w) in ["alpha", "beta", "gamma", "delta"].iter().enumerate() {
        p.insert(
            &DbView::Primary,
            "words",
            &[("word", (*w).into()), ("frequency", (i as i64 * 10).into())],
        )
        .unwrap();
    }
    let delegate = DbView::Delegate { initiator: "A".into() };
    let mut trace = Vec::new();
    for o in ops {
        let line = match o {
            Op::Insert { delegate: d, word, freq } => {
                let view = if *d { &delegate } else { &DbView::Primary };
                format!(
                    "insert {:?}",
                    p.insert(
                        view,
                        "words",
                        &[("word", word.as_str().into()), ("frequency", (*freq).into())]
                    )
                )
            }
            Op::Update { id, freq } => format!(
                "update {:?}",
                p.update(
                    &delegate,
                    "words",
                    &[("frequency", (*freq).into())],
                    Some("_id = ?"),
                    &[Value::Integer(*id as i64 + 1)],
                )
            ),
            Op::Delete { id } => format!(
                "delete {:?}",
                p.delete(&delegate, "words", Some("_id = ?"), &[Value::Integer(*id as i64 + 1)])
            ),
            Op::Query { delegate: d, by_word, limit } => {
                let view = if *d { &delegate } else { &DbView::Primary };
                let opts = QueryOpts {
                    columns: vec!["_id".into(), "word".into(), "frequency".into()],
                    where_clause: by_word.as_ref().map(|_| "word = ?".into()),
                    order_by: Some("_id".into()),
                    limit: *limit,
                };
                let params: Vec<Value> = by_word.iter().map(|w| Value::Text(w.clone())).collect();
                let first = snap_query(&mut p, view, &opts, &params);
                let second = snap_query(&mut p, view, &opts, &params);
                format!("query {first:?} / {second:?}")
            }
            Op::CreateIndex => format!(
                "create-index {:?}",
                p.execute_batch("CREATE INDEX IF NOT EXISTS idx_word ON words(word);")
            ),
            Op::DropIndex => {
                format!("drop-index {:?}", p.execute_batch("DROP INDEX IF EXISTS idx_word;"))
            }
            Op::AlterRowidStart(n) => format!(
                "alter-rowid {:?}",
                p.execute_batch(&format!("ALTER TABLE words ROWID START {n};"))
            ),
            Op::ClearVol => format!("clear-vol {:?}", p.clear_volatile("A")),
        };
        trace.push(line);
    }
    let all = QueryOpts { order_by: Some("_id".into()), ..Default::default() };
    trace.push(format!("final-pub {:?}", snap_query(&mut p, &DbView::Primary, &all, &[])));
    trace.push(format!("final-del {:?}", snap_query(&mut p, &delegate, &all, &[])));
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Byte-identical traces with caches on and off, under random
    /// query/DDL/fork interleavings.
    #[test]
    fn cached_run_matches_uncached(ops in proptest::collection::vec(op(), 1..24)) {
        prop_assert_eq!(run_trace(&ops, true), run_trace(&ops, false));
    }

    /// MVCC snapshot reads are pure: serving every query from a snapshot
    /// published at the preceding quiescent point is byte-identical to
    /// the serialized cache-off oracle, across the same random
    /// query/DDL/fork/volatile-clear interleavings.
    #[test]
    fn snapshot_reads_match_serialized_oracle(ops in proptest::collection::vec(op(), 1..24)) {
        prop_assert_eq!(run_trace_snapshot(&ops), run_trace(&ops, false));
    }
}

/// Deterministic snapshot-read mechanics: a published slot serves reads,
/// a mutation retracts it (no stale data is ever served), and the next
/// publication re-arms it at the new commit stamp.
#[test]
fn snapshot_slot_retracts_on_mutation_and_rearms() {
    let mut p = CowProxy::new();
    p.execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT);").unwrap();
    p.insert(&DbView::Primary, "words", &[("word", "alpha".into())]).unwrap();
    let slot = p.read_slot();
    assert!(!slot.is_published(), "nothing published yet");

    p.publish_read();
    assert!(slot.is_published());
    let opts = QueryOpts { order_by: Some("_id".into()), ..Default::default() };
    let rs = slot.try_query(&DbView::Primary, "words", &opts, &[]).unwrap().unwrap();
    assert_eq!(rs.rows.len(), 1);

    // A write through the proxy retracts the publication: readers fall
    // back to the locked path rather than seeing stale state.
    p.insert(&DbView::Primary, "words", &[("word", "beta".into())]).unwrap();
    assert!(!slot.is_published(), "mutation must retract the published snapshot");
    assert!(slot.try_query(&DbView::Primary, "words", &opts, &[]).is_none());

    // Republication at the quiescent point serves the new state.
    p.publish_read();
    let rs = slot.try_query(&DbView::Primary, "words", &opts, &[]).unwrap().unwrap();
    assert_eq!(rs.rows.len(), 2);
}

/// A recovered-shape database: schema, public rows, and a pre-existing
/// delta/view/trigger complex for sanitized initiator `a`, built from the
/// proxy's own generated SQL (the adoption path never sees proxy state).
fn recovered_db() -> Database {
    let mut db = Database::new();
    db.execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER);")
        .unwrap();
    for (i, w) in ["alpha", "beta", "gamma"].iter().enumerate() {
        db.execute_batch(&format!(
            "INSERT INTO words VALUES ({}, '{w}', {});",
            i + 1,
            i as i64 * 10
        ))
        .unwrap();
    }
    let cols = vec!["_id".to_string(), "word".to_string(), "frequency".to_string()];
    let defs = vec![
        "_id INTEGER PRIMARY KEY".to_string(),
        "word TEXT".to_string(),
        "frequency INTEGER".to_string(),
    ];
    db.execute_batch(&sqlgen::delta_table_sql("words", "a", &defs)).unwrap();
    db.execute_batch(&sqlgen::cow_view_sql("words", "a", &cols, "_id")).unwrap();
    db.execute_batch(&sqlgen::insert_trigger_sql("words", "a", &cols)).unwrap();
    db.execute_batch(&sqlgen::update_trigger_sql("words", "a", &cols)).unwrap();
    db.execute_batch(&sqlgen::delete_trigger_sql("words", "a", &cols)).unwrap();
    // One pre-adoption delegate edit living in the delta.
    db.execute_batch("UPDATE words_view_a SET word = 'ALPHA' WHERE _id = 1;").unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Adoption equivalence: a proxy adopted over a recovered database
    /// behaves identically with and without caches, across further
    /// delegate activity and DDL.
    #[test]
    fn adopted_proxy_cached_matches_uncached(ops in proptest::collection::vec(op(), 1..16)) {
        let run = |caches: bool| -> Vec<String> {
            let mut p = CowProxy::adopt(recovered_db());
            p.set_rewrite_cache(caches);
            p.db().set_statement_caches(caches);
            p.rebuild_cow_views().unwrap();
            let delegate = DbView::Delegate { initiator: "a".into() };
            let mut trace = Vec::new();
            // The adopted delta must be visible immediately.
            let all = QueryOpts { order_by: Some("_id".into()), ..Default::default() };
            trace.push(format!("adopted {:?}", p.query(&delegate, "words", &all, &[])));
            for o in &ops {
                let line = match o {
                    Op::Insert { word, freq, .. } => format!(
                        "insert {:?}",
                        p.insert(
                            &delegate,
                            "words",
                            &[("word", word.as_str().into()), ("frequency", (*freq).into())]
                        )
                    ),
                    Op::Update { id, freq } => format!(
                        "update {:?}",
                        p.update(
                            &delegate,
                            "words",
                            &[("frequency", (*freq).into())],
                            Some("_id = ?"),
                            &[Value::Integer(*id as i64 + 1)],
                        )
                    ),
                    Op::Delete { id } => format!(
                        "delete {:?}",
                        p.delete(
                            &delegate,
                            "words",
                            Some("_id = ?"),
                            &[Value::Integer(*id as i64 + 1)]
                        )
                    ),
                    Op::Query { by_word, limit, .. } => {
                        let opts = QueryOpts {
                            where_clause: by_word.as_ref().map(|_| "word = ?".into()),
                            order_by: Some("_id".into()),
                            limit: *limit,
                            ..Default::default()
                        };
                        let params: Vec<Value> =
                            by_word.iter().map(|w| Value::Text(w.clone())).collect();
                        format!("query {:?}", p.query(&delegate, "words", &opts, &params))
                    }
                    Op::CreateIndex => format!(
                        "create-index {:?}",
                        p.execute_batch("CREATE INDEX IF NOT EXISTS idx_word ON words(word);")
                    ),
                    Op::DropIndex => format!(
                        "drop-index {:?}",
                        p.execute_batch("DROP INDEX IF EXISTS idx_word;")
                    ),
                    Op::AlterRowidStart(n) => format!(
                        "alter-rowid {:?}",
                        p.execute_batch(&format!("ALTER TABLE words ROWID START {n};"))
                    ),
                    Op::ClearVol => format!("clear-vol {:?}", p.clear_volatile("a")),
                };
                trace.push(line);
            }
            trace.push(format!("final {:?}", p.query(&delegate, "words", &all, &[])));
            trace
        };
        prop_assert_eq!(run(true), run(false));
    }
}

/// Steady-state sanity outside proptest: the cached run actually *uses*
/// its caches (this is what makes the equivalence property meaningful).
#[test]
fn cached_run_reports_cache_traffic() {
    let ops: Vec<Op> = (0..12)
        .map(|i| Op::Query { delegate: i % 2 == 0, by_word: Some("alpha".into()), limit: None })
        .collect();
    let _ = run_trace(&ops, true);
    // run_trace builds its own proxy, so re-run inline to inspect stats.
    let mut p = CowProxy::new();
    p.execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT);").unwrap();
    p.insert(&DbView::Primary, "words", &[("word", "alpha".into())]).unwrap();
    let delegate = DbView::Delegate { initiator: "A".into() };
    p.update(&delegate, "words", &[("word", "ALPHA".into())], Some("_id = 1"), &[]).unwrap();
    let opts = QueryOpts { order_by: Some("_id".into()), ..Default::default() };
    for _ in 0..8 {
        p.query(&delegate, "words", &opts, &[]).unwrap();
    }
    let (hits, misses) = p.rewrite_cache_stats();
    assert!(hits >= 7, "repeat queries must hit the rewrite cache (hits={hits})");
    assert!(misses >= 1);
    assert!(p.db().stats.stmt_cache_hits.get() > 0, "repeat SQL must hit the statement cache");
    // DDL invalidates: a new index forces re-planning.
    p.execute_batch("CREATE INDEX IF NOT EXISTS idx_word ON words(word);").unwrap();
    assert!(p.db().stats.plan_cache_invalidations.get() > 0);
}
