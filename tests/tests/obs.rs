//! Observability neutrality: tracing must be a pure observer.
//!
//! The same workload — COW-proxied queries and a full delegation
//! lifecycle — is run twice, once with `maxoid-obs` disabled and once
//! enabled. Results must be byte-identical and the engine's own
//! `db.stats` counters must match exactly: the obs registry *mirrors*
//! `db.stats`, it never feeds back into it.
//!
//! Obs state is process-global, so this file lives in its own test
//! binary and serializes its tests behind a mutex.

use maxoid::manifest::MaxoidManifest;
use maxoid::{Caller, ContentValues, MaxoidSystem, QueryArgs, Uri};
use maxoid_cowproxy::{CowProxy, DbView, QueryOpts};
use maxoid_vfs::{vpath, Mode};
use proptest::prelude::*;
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

const INITIATOR: &str = "initiator";
const DELEGATE: &str = "viewer";

/// A step of the randomized COW-proxy workload.
#[derive(Debug, Clone)]
enum Op {
    PublicInsert(u8, u8),
    DelegateInsert(u8),
    DelegateUpdate(u8, u8),
    DelegateDelete(u8),
    DelegateQuery,
    PublicQuery,
    ClearVolatile,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..50u8, 0..50u8).prop_map(|(a, b)| Op::PublicInsert(a, b)),
        (0..50u8).prop_map(Op::DelegateInsert),
        (0..8u8, 0..50u8).prop_map(|(a, b)| Op::DelegateUpdate(a, b)),
        (0..8u8).prop_map(Op::DelegateDelete),
        Just(Op::DelegateQuery),
        Just(Op::PublicQuery),
        Just(Op::ClearVolatile),
    ]
}

/// Everything the workload observes: each step's result rendered to a
/// string, plus the final `db.stats` counters and access-path log.
#[derive(Debug, PartialEq)]
struct Trace {
    steps: Vec<String>,
    rows_scanned: u64,
    point_lookups: u64,
    index_probes: u64,
    rows_cloned: u64,
    flattened_queries: u64,
    materialized_views: u64,
    access_paths: Vec<String>,
}

fn run_proxy_workload(ops: &[Op]) -> Trace {
    let mut p = CowProxy::new();
    p.execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, freq INTEGER);")
        .unwrap();
    let delegate = DbView::Delegate { initiator: "a".into() };
    let q_opts = QueryOpts { order_by: Some("_id".into()), ..Default::default() };
    let mut steps = Vec::new();
    for o in ops {
        let out = match o {
            Op::PublicInsert(w, f) => format!(
                "{:?}",
                p.insert(
                    &DbView::Primary,
                    "words",
                    &[("word", format!("w{w}").into()), ("freq", (*f as i64).into())],
                )
            ),
            Op::DelegateInsert(w) => {
                format!("{:?}", p.insert(&delegate, "words", &[("word", format!("d{w}").into())]))
            }
            Op::DelegateUpdate(id, f) => format!(
                "{:?}",
                p.update(
                    &delegate,
                    "words",
                    &[("freq", (*f as i64).into())],
                    Some(&format!("_id = {}", id + 1)),
                    &[],
                )
            ),
            Op::DelegateDelete(id) => format!(
                "{:?}",
                p.delete(&delegate, "words", Some(&format!("_id = {}", id + 1)), &[])
            ),
            Op::DelegateQuery => format!("{:?}", p.query(&delegate, "words", &q_opts, &[])),
            Op::PublicQuery => format!("{:?}", p.query(&DbView::Primary, "words", &q_opts, &[])),
            Op::ClearVolatile => format!("{:?}", p.clear_volatile("a")),
        };
        steps.push(out);
    }
    let s = &p.db().stats;
    let access_paths = s.access_paths.borrow().clone();
    Trace {
        steps,
        rows_scanned: s.rows_scanned.get(),
        point_lookups: s.point_lookups.get(),
        index_probes: s.index_probes.get(),
        rows_cloned: s.rows_cloned.get(),
        flattened_queries: s.flattened_queries.get(),
        materialized_views: s.materialized_views.get(),
        access_paths,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The COW proxy produces identical results and identical `db.stats`
    /// counters whether tracing is on or off.
    #[test]
    fn proxy_workload_is_obs_neutral(ops in proptest::collection::vec(op(), 1..20)) {
        let _g = GATE.lock().unwrap();
        maxoid_obs::disable();
        maxoid_obs::reset();
        let dark = run_proxy_workload(&ops);
        let silent = maxoid_obs::snapshot();
        prop_assert!(silent.spans.is_empty(), "disabled run must record nothing");
        prop_assert!(silent.counters.is_empty(), "disabled run must count nothing");

        maxoid_obs::enable();
        let lit = run_proxy_workload(&ops);
        maxoid_obs::disable();
        let recorded = maxoid_obs::take_snapshot();

        prop_assert_eq!(&dark, &lit, "tracing changed workload results or db.stats");
        prop_assert!(!recorded.spans.is_empty(), "enabled run must record spans");
    }
}

/// Full-system delegation lifecycle: results, volatile listings and
/// provider query rows are identical with tracing on and off — and the
/// traced run actually captures the delegation spans.
#[test]
fn delegation_lifecycle_is_obs_neutral() {
    let _g = GATE.lock().unwrap();
    let run = || -> Vec<String> {
        let mut sys = MaxoidSystem::boot().expect("boot");
        sys.install(INITIATOR, vec![], MaxoidManifest::new()).unwrap();
        sys.install(DELEGATE, vec![], MaxoidManifest::new()).unwrap();
        let uri = Uri::parse("content://user_dictionary/words").unwrap();
        let public = Caller::normal(INITIATOR);
        let delegate = Caller::delegate(DELEGATE, INITIATOR);
        let mut out = Vec::new();
        for (w, f) in [("hello", 10i64), ("world", 20)] {
            let r = sys.resolver.insert(
                &public,
                &uri,
                &ContentValues::new().put("word", w).put("frequency", f),
            );
            out.push(format!("{r:?}"));
        }
        let r = sys.resolver.insert(&delegate, &uri, &ContentValues::new().put("word", "draft"));
        out.push(format!("{r:?}"));
        let pid = sys.launch_as_delegate(DELEGATE, INITIATOR).unwrap();
        let w = sys.kernel.write(pid, &vpath("/storage/sdcard/n.txt"), b"edit", Mode::PUBLIC);
        out.push(format!("{w:?}"));
        let args = QueryArgs {
            projection: vec!["word".into(), "frequency".into()],
            sort_order: Some("_id".into()),
            ..QueryArgs::default()
        };
        for caller in [&public, &delegate, &Caller::normal("bystander")] {
            let rows = sys.resolver.query(caller, &uri, &args).map(|rs| rs.rows);
            out.push(format!("{rows:?}"));
        }
        let vols: Vec<String> = sys
            .volatile_files(INITIATOR)
            .unwrap()
            .into_iter()
            .map(|e| format!("{}:{}", e.rel, e.size))
            .collect();
        out.push(format!("{vols:?}"));
        out.push(format!("{:?}", sys.clear_vol(INITIATOR)));
        let rows = sys.resolver.query(&public, &uri, &args).map(|rs| rs.rows);
        out.push(format!("{rows:?}"));
        out
    };

    maxoid_obs::disable();
    maxoid_obs::reset();
    let dark = run();
    assert!(maxoid_obs::snapshot().spans.is_empty());

    maxoid_obs::enable();
    let lit = run();
    maxoid_obs::disable();
    let snap = maxoid_obs::take_snapshot();

    assert_eq!(dark, lit, "tracing changed the delegation's observable behaviour");
    let names: Vec<&str> = snap.spans.iter().map(|s| s.name).collect();
    for expected in ["delegation.invoke", "delegation.cow_fork", "delegation.clear_vol"] {
        assert!(names.contains(&expected), "traced run missing span {expected}");
    }
    assert!(snap.counters.contains_key("vfs.union.lookups"), "vfs counters missing");
    // One value check that would catch double-counting: exactly one
    // delegation was invoked and committed (via clear_vol).
    assert_eq!(snap.counters.get("delegation.commits"), Some(&1));
}

/// Histogram bucket boundaries double; the mean stays exact.
#[test]
fn histogram_shape_sanity() {
    let _g = GATE.lock().unwrap();
    maxoid_obs::reset();
    maxoid_obs::enable();
    for v in [0u64, 1, 2, 3, 4, 1023, 1024] {
        maxoid_obs::observe("t.hist", v);
    }
    maxoid_obs::disable();
    let snap = maxoid_obs::take_snapshot();
    let h = snap.histograms.get("t.hist").expect("recorded");
    assert_eq!(h.count, 7);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, 1024);
    assert_eq!(h.sum, 0 + 1 + 2 + 3 + 4 + 1023 + 1024);
}
