//! Paged row heap: residency is invisible to SQL, and one device boots
//! the whole system.
//!
//! PR 8 moved sqldb row payloads onto the block tier behind `PageCache`.
//! Like the VFS spill in PR 7, the move is only allowed to change *where*
//! bytes live, never *what* a query observes. This file pins that
//! contract at the layers above the heap:
//!
//! - **Backend equivalence** (proptest): the same randomized SQL workload
//!   — inserts, updates, deletes, point probes, scans, index DDL and
//!   BEGIN/ROLLBACK/COMMIT — applied to a resident database and a paged
//!   one (threshold 0, two-frame cache: maximal eviction pressure)
//!   produces identical results, errors, `dump_sql()` images and planner
//!   counters. A replay leg re-executes the paged database's journal
//!   image into a fresh resident database and must converge to the same
//!   rows.
//! - **COW transparency**: a `CowProxy` adopted over a paged database
//!   forks delta tables that inherit the heap tier, and delegates see
//!   exactly what they would see over a resident base.
//! - **Single-device cold boot**: `MaxoidSystem::boot_from_device`
//!   partitions one block image for WAL + VFS spill + row heap; a system
//!   is seeded, dropped, and rebooted from the device alone, with
//!   provider rows served back out of paged tables.

use maxoid::manifest::MaxoidManifest;
use maxoid::{Caller, ContentValues, DeviceBootConfig, MaxoidSystem, QueryArgs, Uri};
use maxoid_block::{FileDevice, MemDevice};
use maxoid_cowproxy::{delta_table, CowProxy, DbView, QueryOpts};
use maxoid_sqldb::{Database, HeapTier, Value};
use proptest::prelude::*;

/// A heap tier over a fresh in-memory device with a tiny frame budget, so
/// any non-trivial working set thrashes the cache.
fn tiny_tier(pages: usize) -> HeapTier {
    HeapTier::new(Box::new(MemDevice::new()), pages)
}

/// Deterministic text payload; contents depend on (seed, len) only.
fn body(seed: u8, len: u16) -> String {
    (0..len as usize).map(|k| char::from(b'a' + (seed as usize + k) as u8 % 26)).collect()
}

fn fresh_db(paged: bool) -> Database {
    let mut db = Database::new();
    if paged {
        // Threshold 0: the table pages out on the very first insert.
        db.attach_heap(tiny_tier(2), 0);
    }
    db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, k INTEGER, body TEXT);").unwrap();
    db
}

/// A step of the randomized SQL workload. Payload lengths straddle both
/// the heap page size boundary region and the tiny two-frame budget.
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u16),
    Update(u8, u16),
    Delete(u8),
    Probe(u8),
    Scan,
    Index,
    TxnRollback(u8, u16),
    TxnCommit(u8, u16),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0..3000u16).prop_map(|(k, n)| Op::Insert(k, n)),
        (any::<u8>(), 0..3000u16).prop_map(|(k, n)| Op::Insert(k, n)),
        (any::<u8>(), 0..3000u16).prop_map(|(k, n)| Op::Update(k, n)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Probe),
        Just(Op::Scan),
        Just(Op::Index),
        (any::<u8>(), 0..1500u16).prop_map(|(k, n)| Op::TxnRollback(k, n)),
        (any::<u8>(), 0..1500u16).prop_map(|(k, n)| Op::TxnCommit(k, n)),
    ]
}

/// Applies one op and renders the outcome (rows, affected counts or the
/// error) as a comparable string, so backends must also fail identically.
fn apply(db: &mut Database, op: &Op) -> String {
    match op {
        Op::Insert(k, n) => format!(
            "{:?}",
            db.execute(
                "INSERT INTO t (k, body) VALUES (?, ?)",
                &[Value::Integer(*k as i64 % 16), Value::Text(body(*k, *n))],
            )
        ),
        Op::Update(k, n) => format!(
            "{:?}",
            db.execute(
                "UPDATE t SET body = ? WHERE k = ?",
                &[Value::Text(body(k.wrapping_add(1), *n)), Value::Integer(*k as i64 % 16)],
            )
        ),
        Op::Delete(k) => format!(
            "{:?}",
            db.execute("DELETE FROM t WHERE k = ?", &[Value::Integer(*k as i64 % 16)])
        ),
        Op::Probe(k) => format!(
            "{:?}",
            db.query(
                "SELECT _id, k, body FROM t WHERE k = ? ORDER BY _id",
                &[Value::Integer(*k as i64 % 16)],
            )
        ),
        Op::Scan => format!("{:?}", db.query("SELECT _id, k, body FROM t ORDER BY _id", &[])),
        // Duplicate CREATE INDEX must error the same way on both sides.
        Op::Index => format!("{:?}", db.execute("CREATE INDEX ix_k ON t (k)", &[])),
        Op::TxnRollback(k, n) => {
            // Snapshot, mutate a paged table (clone materializes), roll
            // back, and make sure the restored table still answers.
            let a = format!("{:?}", db.begin());
            let b = apply(db, &Op::Insert(*k, *n));
            let c = format!("{:?}", db.rollback());
            let d = apply(db, &Op::Probe(*k));
            format!("{a}/{b}/{c}/{d}")
        }
        Op::TxnCommit(k, n) => {
            let a = format!("{:?}", db.begin());
            let b = apply(db, &Op::Insert(*k, *n));
            let c = format!("{:?}", db.commit());
            format!("{a}/{b}/{c}")
        }
    }
}

/// Full observable image of a database: every row in order.
fn image(db: &Database) -> String {
    format!("{:?}", db.query("SELECT _id, k, body FROM t ORDER BY _id", &[]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The structural guarantee: a paged table under maximal eviction
    /// pressure is observably a resident table — same rows, same errors,
    /// same journal image, same planner decisions.
    #[test]
    fn prop_paged_and_resident_databases_are_equivalent(
        ops in proptest::collection::vec(op(), 1..50)
    ) {
        let mut resident = fresh_db(false);
        let mut paged = fresh_db(true);

        for op in &ops {
            let a = apply(&mut resident, op);
            let b = apply(&mut paged, op);
            prop_assert_eq!(&a, &b, "paged backend diverged on {:?}", op);
        }

        prop_assert_eq!(image(&resident), image(&paged));

        // The planner must make identical decisions: residency may not
        // change access paths, only where the bytes decode from.
        prop_assert_eq!(resident.stats.rows_scanned.get(), paged.stats.rows_scanned.get());
        prop_assert_eq!(resident.stats.point_lookups.get(), paged.stats.point_lookups.get());
        prop_assert_eq!(resident.stats.index_probes.get(), paged.stats.index_probes.get());
        prop_assert_eq!(resident.stats.rows_cloned.get(), paged.stats.rows_cloned.get());

        // dump_sql is the serialization boundary (snapshots, recovery):
        // paged content must materialize to the exact resident statements.
        let dump_r = format!("{:?}", resident.dump_sql());
        let dump_p = format!("{:?}", paged.dump_sql());
        prop_assert_eq!(&dump_r, &dump_p);

        // Journal-replay leg: re-executing the paged database's dump into
        // a fresh resident database converges to the same rows, proving
        // recovery never depends on residency at dump time. (Dumps carry
        // data only; schema recovery is out-of-band, as in `durability`.)
        let mut replayed = fresh_db(false);
        for (sql, params) in paged.dump_sql() {
            replayed.apply_journal_sql(&sql, &params).unwrap();
        }
        prop_assert_eq!(image(&replayed), image(&paged));
    }
}

/// Deterministic eviction-pressure case: a working set far beyond the
/// two-frame budget stays exact and the tier counters prove it thrashed.
#[test]
fn eviction_pressure_keeps_paged_rows_exact() {
    let tier = tiny_tier(2);
    let mut resident = fresh_db(false);
    let mut paged = Database::new();
    paged.attach_heap(tier.clone(), 0);
    paged.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, k INTEGER, body TEXT);").unwrap();

    for i in 0..64u8 {
        let params = [Value::Integer(i as i64), Value::Text(body(i, 700))];
        resident.execute("INSERT INTO t (k, body) VALUES (?, ?)", &params).unwrap();
        paged.execute("INSERT INTO t (k, body) VALUES (?, ?)", &params).unwrap();
    }
    assert_eq!(image(&resident), image(&paged));

    let st = tier.stats();
    assert!(st.evictions > 0, "64 x 700B rows must thrash a 2-frame cache: {st:?}");
}

/// COW transparency: forked delta tables inherit the heap tier, and a
/// delegate's merged view over a paged base matches the resident one.
#[test]
fn cow_fork_over_a_paged_base_matches_resident() {
    let build = |paged: bool| {
        let mut db = Database::new();
        if paged {
            db.attach_heap(tiny_tier(2), 0);
        }
        db.execute_batch(
            "CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER);",
        )
        .unwrap();
        for i in 0..48i64 {
            db.execute(
                "INSERT INTO words (word, frequency) VALUES (?, ?)",
                &[Value::Text(body(i as u8, 300)), Value::Integer(i)],
            )
            .unwrap();
        }
        CowProxy::adopt(db)
    };
    let mut resident = build(false);
    let mut paged = build(true);

    let view = DbView::Delegate { initiator: "editor".into() };
    for i in 0..12i64 {
        let a = resident
            .insert(
                &view,
                "words",
                &[
                    ("word", Value::Text(body(200 + i as u8, 200))),
                    ("frequency", Value::Integer(i)),
                ],
            )
            .unwrap();
        let b = paged
            .insert(
                &view,
                "words",
                &[
                    ("word", Value::Text(body(200 + i as u8, 200))),
                    ("frequency", Value::Integer(i)),
                ],
            )
            .unwrap();
        assert_eq!(a, b, "delta rowids must match across backends");
    }
    resident.delete(&view, "words", Some("frequency = ?"), &[Value::Integer(3)]).unwrap();
    paged.delete(&view, "words", Some("frequency = ?"), &[Value::Integer(3)]).unwrap();

    let opts = QueryOpts {
        columns: vec!["word".into(), "frequency".into()],
        order_by: Some("_id".into()),
        ..QueryOpts::default()
    };
    // The delegate's merged view and the untouched primary view agree.
    assert_eq!(
        resident.query(&view, "words", &opts, &[]).unwrap(),
        paged.query(&view, "words", &opts, &[]).unwrap(),
    );
    assert_eq!(
        resident.query(&DbView::Primary, "words", &opts, &[]).unwrap(),
        paged.query(&DbView::Primary, "words", &opts, &[]).unwrap(),
    );

    // The fork is not a loophole back into RAM: the delta table created by
    // ensure_cow inherited the heap config and paged out like its base.
    let delta = delta_table("words", "editor");
    assert!(paged.db().table(&delta).unwrap().is_paged(), "delta table must inherit the heap");
    assert!(paged.db().table("words").unwrap().is_paged(), "base table must be paged");
    assert!(!resident.db().table(&delta).unwrap().is_paged());
}

const INITIATOR: &str = "initiator";

fn words_uri() -> Uri {
    Uri::parse("content://user_dictionary/words").unwrap()
}

fn query_words(sys: &MaxoidSystem) -> Vec<Vec<Value>> {
    let args = QueryArgs {
        projection: vec!["word".into(), "frequency".into()],
        sort_order: Some("_id".into()),
        ..QueryArgs::default()
    };
    sys.resolver.query(&Caller::normal(INITIATOR), &words_uri(), &args).expect("query").rows
}

/// Opens (or reopens) the single backing image at `path`.
fn device(path: &std::path::Path, fresh: bool) -> Box<dyn maxoid_block::BlockDevice> {
    let mut dev =
        if fresh { FileDevice::create(path).unwrap() } else { FileDevice::open(path).unwrap() };
    dev.set_delete_on_drop(false);
    Box::new(dev)
}

/// One file on disk is the whole machine: WAL, VFS spill tier and sqldb
/// row heap share a partitioned device, and `boot_from_device` brings the
/// system back from it alone — with provider tables re-adopted as paged.
#[test]
fn cold_boot_from_a_single_partitioned_device() {
    let path = std::env::temp_dir().join(format!("maxoid-sqlheap-boot-{}.blk", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // Tiny thresholds so provider rows page immediately and VFS payloads
    // spill; small frame budgets so the caches actually evict.
    let cfg = DeviceBootConfig {
        heap_threshold: 1,
        heap_pages: 4,
        vfs_threshold: 64,
        vfs_pages: 4,
        ..DeviceBootConfig::default()
    };

    // First life: seed provider rows past the heap threshold.
    let sys = MaxoidSystem::boot_from_device(device(&path, true), &cfg).expect("boot");
    sys.install(INITIATOR, vec![], MaxoidManifest::new()).expect("install");
    let caller = Caller::normal(INITIATOR);
    for i in 0..150i64 {
        sys.resolver
            .insert(
                &caller,
                &words_uri(),
                &ContentValues::new().put("word", body(i as u8, 400)).put("frequency", i),
            )
            .expect("insert");
    }
    let heap = sys.heap().expect("device boot attaches a heap tier");
    assert!(
        heap.stats().writeback_bytes > 0 || heap.stats().evictions > 0,
        "150 x 400B words over a 4-frame heap must touch the device: {:?}",
        heap.stats()
    );
    sys.journal().unwrap().flush().unwrap();
    let words = query_words(&sys);
    assert_eq!(words.len(), 150);
    drop(sys);

    // Second life: nothing survives but the device image.
    let sys2 = MaxoidSystem::boot_from_device(device(&path, false), &cfg).expect("cold boot");
    sys2.install(INITIATOR, vec![], MaxoidManifest::new()).expect("re-install");
    assert_eq!(query_words(&sys2), words, "provider rows must survive the reboot");
    let heap2 = sys2.heap().expect("rebooted system keeps its heap tier");
    let st = heap2.stats();
    assert!(
        st.hits + st.misses > 0,
        "recovered words must be served from paged tables, not RAM: {st:?}"
    );

    // Third life: post-reboot writes are journaled onto the same device.
    sys2.resolver
        .insert(
            &caller,
            &words_uri(),
            &ContentValues::new().put("word", "reborn").put("frequency", 3),
        )
        .expect("post-reboot insert");
    sys2.journal().unwrap().flush().unwrap();
    let words2 = query_words(&sys2);
    assert_eq!(words2.len(), words.len() + 1);
    drop(sys2);

    let sys3 = MaxoidSystem::boot_from_device(device(&path, false), &cfg).expect("third boot");
    sys3.install(INITIATOR, vec![], MaxoidManifest::new()).expect("re-install");
    assert_eq!(query_words(&sys3), words2, "post-reboot write must survive the next reboot");
    drop(sys3);
    let _ = std::fs::remove_file(&path);
}
