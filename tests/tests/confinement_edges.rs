//! Additional adversarial tests: attack paths a malicious delegate or a
//! malicious initiator might try, beyond the happy-path Figure 1 edges.

use maxoid::{ContentValues, Intent, QueryArgs, Uri};
use maxoid_tests::{standard_cast, write_private, write_public, VIEW};
use maxoid_vfs::{vpath, Mode, OpenMode};

/// A delegate cannot smuggle data out by renaming a file into "public"
/// locations — renames stay inside its confined view.
#[test]
fn rename_does_not_escape() {
    let mut sys = standard_cast();
    let a = sys.launch("initiator").unwrap();
    let secret = write_private(&sys, a, "initiator", "s.txt", b"secret");
    let d =
        sys.start_activity(Some(a), &Intent::new(VIEW).with_data(secret.as_str())).unwrap().pid();
    // Copy into its view of public storage, then rename around.
    let data = sys.kernel.read(d, &secret).unwrap();
    sys.kernel.write(d, &vpath("/storage/sdcard/a.txt"), &data, Mode::PUBLIC).unwrap();
    sys.kernel.rename(d, &vpath("/storage/sdcard/a.txt"), &vpath("/storage/sdcard/b.txt")).unwrap();
    let x = sys.launch("bystander").unwrap();
    assert!(!sys.kernel.exists(x, &vpath("/storage/sdcard/a.txt")));
    assert!(!sys.kernel.exists(x, &vpath("/storage/sdcard/b.txt")));
}

/// Directory creation by a delegate is confined too.
#[test]
fn mkdir_is_confined() {
    let mut sys = standard_cast();
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    sys.kernel.mkdir_all(d, &vpath("/storage/sdcard/exfil/deep/dir"), Mode::PUBLIC).unwrap();
    sys.kernel.write(d, &vpath("/storage/sdcard/exfil/deep/dir/x"), b"data", Mode::PUBLIC).unwrap();
    let x = sys.launch("bystander").unwrap();
    assert!(!sys.kernel.exists(x, &vpath("/storage/sdcard/exfil")));
}

/// Open file handles do not outlive confinement semantics: a handle the
/// delegate opens for write on a public file pins the *volatile* copy.
#[test]
fn write_handle_pins_volatile_copy() {
    let mut sys = standard_cast();
    let x = sys.launch("bystander").unwrap();
    let f = write_public(&sys, x, "doc.txt", b"public v1");
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    let h = sys.kernel.open(d, &f, OpenMode::ReadWrite).unwrap();
    sys.kernel.write_handle(h, b"delegate edit").unwrap();
    // The public copy is unchanged; the edit went to the volatile copy.
    assert_eq!(sys.kernel.read(x, &f).unwrap(), b"public v1");
    assert_eq!(sys.kernel.read(d, &f).unwrap(), b"delegate edit");
}

/// A malicious initiator cannot use tmp URIs to spy on *other* apps'
/// volatile state: tmp URIs always address the caller's own.
#[test]
fn tmp_uris_are_callers_own() {
    let mut sys = standard_cast();
    sys.install("other", vec![], maxoid::MaxoidManifest::new()).unwrap();
    let words = Uri::parse("content://user_dictionary/words").unwrap();
    // A delegate of `other` creates a volatile record.
    let d = sys.launch_as_delegate("viewer", "other").unwrap();
    sys.cp_insert(d, &words, &ContentValues::new().put("word", "others-secret")).unwrap();
    // `initiator` queries the tmp URI: it sees its own (empty) volatile
    // state, not other's.
    let a = sys.launch("initiator").unwrap();
    let rs = sys.cp_query(a, &words.as_volatile(), &QueryArgs::default());
    assert!(rs.is_err() || rs.unwrap().rows.is_empty());
    // `other` itself sees its volatile record.
    let o = sys.launch("other").unwrap();
    let rs = sys.cp_query(o, &words.as_volatile(), &QueryArgs::default()).unwrap();
    assert_eq!(rs.rows.len(), 1);
}

/// Chooser flows preserve the delegate decision: the user picking an app
/// from ResolverActivity cannot accidentally launder the context.
#[test]
fn chooser_keeps_computed_context() {
    let mut sys = standard_cast();
    // A second viewer creates ambiguity.
    sys.install(
        "viewer2",
        vec![maxoid::AppIntentFilter::new(VIEW, None)],
        maxoid::MaxoidManifest::new(),
    )
    .unwrap();
    let a = sys.launch("initiator").unwrap();
    let outcome =
        sys.start_activity(Some(a), &Intent::new(VIEW).with_data("/storage/sdcard/x")).unwrap();
    let (candidates, ctx) = match outcome {
        maxoid::StartOutcome::Chooser { candidates, ctx } => (candidates, ctx),
        other => panic!("expected chooser, got {other:?}"),
    };
    assert_eq!(candidates.len(), 2);
    let pid = sys.start_chosen(&candidates[1], ctx).unwrap();
    assert!(sys.kernel.process(pid).unwrap().ctx.is_delegate());
}

/// Killing rules close the "consult my normal self" channel: starting a
/// delegate kills the normal instance, and vice versa.
#[test]
fn conflicting_instances_are_killed() {
    let mut sys = standard_cast();
    let normal = sys.launch("viewer").unwrap();
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    // The normal instance is gone.
    assert!(sys.kernel.process(normal).is_err());
    // Launching normally kills the delegate.
    let normal2 = sys.launch("viewer").unwrap();
    assert!(sys.kernel.process(d).is_err());
    assert!(sys.kernel.process(normal2).is_ok());
}

/// The Email per-URI grant pattern: a one-shot read grant lets the viewer
/// open exactly one attachment URI, once, and write grants are separate.
#[test]
fn per_uri_grants_are_one_shot() {
    let mut sys = standard_cast();
    // Register an app-defined provider for `initiator`.
    struct Att;
    impl maxoid_providers::provider::ContentProvider for Att {
        fn authority(&self) -> &str {
            "initiator.attachments"
        }
        fn insert(
            &mut self,
            _: &maxoid::Caller,
            uri: &Uri,
            _: &ContentValues,
        ) -> maxoid_providers::ProviderResult<Uri> {
            Ok(uri.with_id(1))
        }
        fn update(
            &mut self,
            _: &maxoid::Caller,
            _: &Uri,
            _: &ContentValues,
            _: &QueryArgs,
        ) -> maxoid_providers::ProviderResult<usize> {
            Ok(1)
        }
        fn query(
            &mut self,
            _: &maxoid::Caller,
            _: &Uri,
            _: &QueryArgs,
        ) -> maxoid_providers::ProviderResult<maxoid_sqldb::ResultSet> {
            Ok(maxoid_sqldb::ResultSet {
                columns: vec!["data".into()],
                rows: vec![vec![maxoid_sqldb::Value::Text("attachment".into())]],
            })
        }
        fn delete(
            &mut self,
            _: &maxoid::Caller,
            _: &Uri,
            _: &QueryArgs,
        ) -> maxoid_providers::ProviderResult<usize> {
            Ok(0)
        }
        fn clear_volatile(&mut self, _: &str) -> maxoid_providers::ProviderResult<()> {
            Ok(())
        }
    }
    sys.resolver.register(
        maxoid_providers::ProviderScope::AppDefined { owner: "initiator".into() },
        Box::new(Att),
    );
    let a = sys.launch("initiator").unwrap();
    let item = Uri::parse("content://initiator.attachments/att/7").unwrap();
    // Sending a VIEW intent with the grant flag issues the one-shot grant.
    let d = sys
        .start_activity(Some(a), &Intent::new(VIEW).with_data(&item.to_string()).grant_read())
        .unwrap()
        .pid();
    // First read succeeds; the second is denied (grant consumed).
    assert!(sys.cp_query(d, &item, &QueryArgs::default()).is_ok());
    assert!(sys.cp_query(d, &item, &QueryArgs::default()).is_err());
    // Writes were never granted.
    assert!(sys
        .cp_update(d, &item, &ContentValues::new().put("data", "x"), &QueryArgs::default())
        .is_err());
}

/// S3 through the provider path: the initiator cannot read a delegate's
/// private provider-ish files even knowing their exact path.
#[test]
fn initiator_cannot_probe_delegate_fork() {
    let mut sys = standard_cast();
    let a = sys.launch("initiator").unwrap();
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    write_private(&sys, d, "viewer", "delegate_secrets.db", b"fork data");
    // The path inside the delegate's namespace points into the fork; in
    // A's namespace it does not resolve at all.
    let p = vpath("/data/data/viewer/delegate_secrets.db");
    assert!(sys.kernel.read(a, &p).is_err());
    // Neither does the pPriv path.
    assert!(sys.kernel.read(a, &vpath("/data/data/ppriv/viewer")).is_err());
}

/// Clear-Vol also resets the confined clipboard.
#[test]
fn clear_vol_covers_clipboard() {
    let mut sys = standard_cast();
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    let dctx = sys.kernel.process(d).unwrap().ctx.clone();
    sys.clipboard.set(&dctx, "confined clip");
    sys.clear_vol("initiator").unwrap();
    assert_eq!(sys.clipboard.get(&dctx), None);
}
