//! Crash-point sweep: the journal's all-or-nothing guarantee.
//!
//! A journaled system is crashed at **every record boundary** of its log
//! (plus torn tails mid-frame), recovered onto a fresh substrate, and the
//! recovered state compared against reference fingerprints:
//!
//! - **S2 (atomic volatile commit)**: a crash anywhere inside the
//!   `commit_vol` journal transaction recovers to the untouched
//!   all-volatile state; only a log containing the commit record recovers
//!   to the all-committed state. Nothing in between is reachable.
//! - **Equivalence**: replaying the full log reproduces the live
//!   system's file tree (modulo mtimes) and provider query results,
//!   including the COW proxy's delta tables, rowid offsets and views.
//!
//! Initiator/delegate package names are lowercase identifiers on purpose:
//! adoption after recovery rediscovers initiators from sanitized
//! (lowercased) delta-table names.

use maxoid::durability::{recover, RecoveryError};
use maxoid::manifest::MaxoidManifest;
use maxoid::{Caller, ContentValues, MaxoidSystem, QueryArgs, Uri, VolCommitPlan};
use maxoid_journal::{
    crash_prefix, flip_byte, read_records, record_boundaries, torn_log, JournalHandle, Record,
    TailState, VfsRecord,
};
use maxoid_providers::provider::ContentProvider;
use maxoid_providers::UserDictionaryProvider;
use maxoid_sqldb::Value;
use maxoid_vfs::{vpath, Mode};
use proptest::prelude::*;
use std::collections::BTreeMap;

const INITIATOR: &str = "initiator";
const DELEGATE: &str = "viewer";
const AUTHORITY: &str = "user_dictionary";

fn words_uri() -> Uri {
    Uri::parse("content://user_dictionary/words").unwrap()
}

fn query_args() -> QueryArgs {
    QueryArgs {
        projection: vec!["word".into(), "frequency".into()],
        sort_order: Some("_id".into()),
        ..QueryArgs::default()
    }
}

/// Semantic state: the full file tree (mtime-free) and the user
/// dictionary as seen publicly, by the delegate, and through the
/// initiator's volatile (tmp) URI. Queries that fail (e.g. tmp after the
/// delta table was dropped) record `None` so both sides must fail alike.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    files: BTreeMap<String, (bool, Vec<u8>, u32, u8)>,
    public_words: Option<Vec<Vec<Value>>>,
    delegate_words: Option<Vec<Vec<Value>>>,
    volatile_words: Option<Vec<Vec<Value>>>,
}

fn live_fingerprint(sys: &mut MaxoidSystem) -> Fingerprint {
    let files = sys.kernel.vfs().with_store(|s| s.dump_tree());
    let q = |caller: &Caller, uri: &Uri| {
        sys.resolver.query(caller, uri, &query_args()).ok().map(|rs| rs.rows)
    };
    Fingerprint {
        public_words: q(&Caller::normal("bystander"), &words_uri()),
        delegate_words: q(&Caller::delegate(DELEGATE, INITIATOR), &words_uri()),
        volatile_words: q(&Caller::normal(INITIATOR), &words_uri().as_volatile()),
        files,
    }
}

fn recovered_fingerprint(log: &[u8]) -> Fingerprint {
    let mut rec = recover(log).expect("recovery must succeed on any committed prefix");
    let files = rec.vfs.with_store(|s| s.dump_tree());
    let mut dict = UserDictionaryProvider::from_recovered(rec.take_db(AUTHORITY));
    let mut q =
        |caller: &Caller, uri: &Uri| dict.query(caller, uri, &query_args()).ok().map(|rs| rs.rows);
    Fingerprint {
        public_words: q(&Caller::normal("bystander"), &words_uri()),
        delegate_words: q(&Caller::delegate(DELEGATE, INITIATOR), &words_uri()),
        volatile_words: q(&Caller::normal(INITIATOR), &words_uri().as_volatile()),
        files,
    }
}

/// Boots a journaled system (batch size 1: every record durable at its
/// own boundary) with the initiator/delegate cast installed.
fn journaled_system() -> MaxoidSystem {
    let j = JournalHandle::with_batch(1);
    let sys = MaxoidSystem::boot_journaled(j).expect("boot");
    sys.install(INITIATOR, vec![], MaxoidManifest::new()).expect("install initiator");
    sys.install(DELEGATE, vec![], MaxoidManifest::new()).expect("install delegate");
    sys
}

/// Builds the canonical pre-commit situation: public rows, a delegate's
/// confined row edits, and a delegate file write redirected into
/// `Vol(initiator)`. Returns the delta row id of the delegate's insert.
fn seed_volatile_state(sys: &mut MaxoidSystem) -> i64 {
    let public = Caller::normal(INITIATOR);
    for (w, f) in [("hello", 10), ("world", 20)] {
        sys.resolver
            .insert(&public, &words_uri(), &ContentValues::new().put("word", w).put("frequency", f))
            .expect("public insert");
    }
    let delegate = Caller::delegate(DELEGATE, INITIATOR);
    let uri = sys
        .resolver
        .insert(
            &delegate,
            &words_uri(),
            &ContentValues::new().put("word", "draft").put("frequency", 1),
        )
        .expect("delegate insert");
    let delta_id = uri.id().expect("row uri");
    sys.resolver
        .update(
            &delegate,
            &words_uri().with_id(1),
            &ContentValues::new().put("word", "HELLO"),
            &QueryArgs::default(),
        )
        .expect("delegate update");

    let del_pid = sys.launch_as_delegate(DELEGATE, INITIATOR).expect("launch delegate");
    sys.kernel
        .write(del_pid, &vpath("/storage/sdcard/report.txt"), b"edited", Mode::PUBLIC)
        .expect("delegate file write lands in Vol");
    delta_id
}

#[test]
fn crash_at_every_boundary_is_all_or_nothing() {
    let mut sys = journaled_system();
    let delta_id = seed_volatile_state(&mut sys);
    let journal = sys.journal().expect("journaled").clone();
    journal.flush().unwrap();

    let pre = live_fingerprint(&mut sys);
    let base_len = journal.bytes().len();
    assert!(!pre.files.is_empty());
    assert_eq!(pre.volatile_words.as_ref().map(|r| r.len()), Some(2));

    // The initiator commits everything volatile — the external file and
    // the delegate's inserted row — and discards the rest, atomically.
    let external: Vec<String> = sys
        .volatile_files(INITIATOR)
        .unwrap()
        .into_iter()
        .filter(|e| !e.internal)
        .map(|e| e.rel)
        .collect();
    assert!(!external.is_empty(), "the delegate file write must be volatile");
    let plan = VolCommitPlan {
        external,
        internal: vec![],
        provider_rows: vec![(AUTHORITY.into(), "words".into(), delta_id)],
        discard_rest: true,
    };
    let outcome = sys.commit_vol(INITIATOR, &plan).expect("commit_vol");
    assert_eq!(outcome.rows_committed, 1);
    let post = live_fingerprint(&mut sys);
    assert_ne!(pre, post);
    // The committed row is now public.
    assert!(post
        .public_words
        .as_ref()
        .unwrap()
        .iter()
        .any(|r| r[0] == Value::Text("draft".into())));

    let log = journal.bytes();
    let boundaries = record_boundaries(&log);
    assert_eq!(*boundaries.last().unwrap(), log.len(), "log must parse to its end");
    assert!(boundaries.iter().any(|&b| b == base_len), "pre-commit point is a boundary");

    let mut pre_count = 0;
    for &b in &boundaries {
        let prefix = crash_prefix(&log, b);
        if b < base_len {
            // Mid-setup crashes: recovery must simply succeed (the
            // dichotomy below only holds around the commit txn).
            let _ = recover(&prefix).expect("prefix recovers");
            continue;
        }
        let fp = recovered_fingerprint(&prefix);
        if b == log.len() {
            assert_eq!(fp, post, "full log must recover the committed state");
        } else {
            assert_eq!(fp, pre, "crash inside the commit txn must recover all-volatile (b={b})");
            pre_count += 1;
        }
    }
    assert!(pre_count > 3, "the commit txn spans several records");
}

#[test]
fn torn_tail_recovers_like_clean_boundary() {
    let mut sys = journaled_system();
    let delta_id = seed_volatile_state(&mut sys);
    let journal = sys.journal().expect("journaled").clone();
    journal.flush().unwrap();
    let pre = live_fingerprint(&mut sys);
    let base_len = journal.bytes().len();

    let plan = VolCommitPlan {
        provider_rows: vec![(AUTHORITY.into(), "words".into(), delta_id)],
        discard_rest: true,
        ..VolCommitPlan::default()
    };
    sys.commit_vol(INITIATOR, &plan).expect("commit_vol");
    let post = live_fingerprint(&mut sys);

    let log = journal.bytes();
    let boundaries = record_boundaries(&log);
    for &b in boundaries.iter().filter(|&&b| b >= base_len && b < log.len()) {
        for extra in [1, 7, 16] {
            let torn = torn_log(&log, b, extra);
            if torn.len() == log.len() {
                continue; // tearing past the end reproduced the full log
            }
            let rec = recover(&torn).expect("torn log recovers");
            assert!(
                matches!(rec.tail, TailState::Torn { offset } if offset == b),
                "tail must be detected torn at {b}"
            );
            let fp = recovered_fingerprint(&torn);
            assert_eq!(fp, pre, "torn frame must be treated as never written");
        }
    }
    // Sanity: the clean full log still lands on the committed side.
    assert_eq!(recovered_fingerprint(&log), post);
}

#[test]
fn byte_flip_sweep_is_corrupted_never_silently_shortened() {
    // A fully-flushed multi-record, multi-transaction log: the setup
    // workload plus the commit_vol journal transaction.
    let mut sys = journaled_system();
    let delta_id = seed_volatile_state(&mut sys);
    let plan = VolCommitPlan {
        provider_rows: vec![(AUTHORITY.into(), "words".into(), delta_id)],
        discard_rest: true,
        ..VolCommitPlan::default()
    };
    sys.commit_vol(INITIATOR, &plan).expect("commit_vol");
    let journal = sys.journal().expect("journaled").clone();
    journal.flush().unwrap();
    let post = live_fingerprint(&mut sys);

    let log = journal.bytes();
    let clean = read_records(&log);
    assert_eq!(clean.tail, TailState::Clean);
    assert!(clean.records.len() > 20, "workload must produce a substantial log");
    assert_eq!(recovered_fingerprint(&log), post, "clean log recovers exactly");

    // Every single-byte flip in a complete log is damage no torn write
    // can explain: the parse must land on `Corrupted` at or before the
    // flipped frame — never `Clean`/`Torn` with a shorter history.
    for offset in 0..log.len() {
        for mask in [0x01u8, 0x80] {
            let flipped = flip_byte(&log, offset, mask);
            let parsed = read_records(&flipped);
            match parsed.tail {
                TailState::Corrupted { offset: at } => {
                    assert!(
                        at <= offset,
                        "corruption at byte {offset} reported downstream at {at}"
                    );
                    assert!(
                        parsed.records.len() <= clean.records.len(),
                        "flip at {offset} grew the history"
                    );
                }
                other => panic!(
                    "flip at byte {offset} (mask {mask:#04x}) parsed as {other:?} \
                     with {} of {} records — silently shortened",
                    parsed.records.len(),
                    clean.records.len()
                ),
            }
        }
    }

    // And `recover` fails loudly on corrupted logs rather than booting a
    // silently truncated substrate (sampled: full recovery is costly).
    for offset in (0..log.len()).step_by(101) {
        let flipped = flip_byte(&log, offset, 0xFF);
        match recover(&flipped) {
            Err(RecoveryError::Corrupted { .. }) => {}
            Err(other) => panic!("flip at {offset}: wrong error {other}"),
            Ok(_) => panic!("flip at {offset}: recovery succeeded on a corrupted log"),
        }
    }
}

/// Replay interacts with the hot-path caches: journal replay drives the
/// same `execute`/`query` entry points as live traffic, so the statement
/// and plan caches fill and invalidate during recovery. The recovered
/// state must be byte-identical whether the replayed database keeps its
/// caches (the default) or has every cache disabled — and repeated
/// queries against the warm recovered provider must not drift.
#[test]
fn replay_into_cache_enabled_database_matches_cold() {
    let mut sys = journaled_system();
    let delta_id = seed_volatile_state(&mut sys);
    let plan = VolCommitPlan {
        provider_rows: vec![(AUTHORITY.into(), "words".into(), delta_id)],
        discard_rest: true,
        ..VolCommitPlan::default()
    };
    sys.commit_vol(INITIATOR, &plan).expect("commit_vol");
    let journal = sys.journal().expect("journaled").clone();
    journal.flush().unwrap();
    let live = live_fingerprint(&mut sys);
    let log = journal.bytes();

    // Warm replay: caches at their defaults.
    let mut rec = recover(&log).expect("recover");
    let warm_files = rec.vfs.with_store(|s| s.dump_tree());
    let db = rec.take_db(AUTHORITY);
    assert!(db.statement_caches_enabled(), "caches default on during replay");
    assert!(db.stats.stmt_cache_misses.get() > 0, "replay parsed statements through the cache");
    assert!(db.catalog_generation() > 0, "replayed DDL bumped the catalog generation");
    let mut warm = UserDictionaryProvider::from_recovered(db);
    let q = |dict: &mut UserDictionaryProvider, caller: &Caller, uri: &Uri| {
        dict.query(caller, uri, &query_args()).ok().map(|rs| rs.rows)
    };
    let warm_fp = Fingerprint {
        public_words: q(&mut warm, &Caller::normal("bystander"), &words_uri()),
        delegate_words: q(&mut warm, &Caller::delegate(DELEGATE, INITIATOR), &words_uri()),
        volatile_words: q(&mut warm, &Caller::normal(INITIATOR), &words_uri().as_volatile()),
        files: warm_files,
    };
    assert_eq!(warm_fp, live, "cache-enabled replay must reproduce the live state");
    // A second round of the same queries is served by now-warm caches.
    let repeat = Fingerprint {
        public_words: q(&mut warm, &Caller::normal("bystander"), &words_uri()),
        delegate_words: q(&mut warm, &Caller::delegate(DELEGATE, INITIATOR), &words_uri()),
        volatile_words: q(&mut warm, &Caller::normal(INITIATOR), &words_uri().as_volatile()),
        files: warm_fp.files.clone(),
    };
    assert_eq!(repeat, warm_fp, "warm-cache repeat queries must not drift");
    assert!(warm.proxy().db().stats.stmt_cache_hits.get() > 0, "repeats hit the cache");

    // Cold replay: every cache off before any query runs.
    let mut rec = recover(&log).expect("recover");
    let cold_files = rec.vfs.with_store(|s| s.dump_tree());
    let db = rec.take_db(AUTHORITY);
    db.set_statement_caches(false);
    let mut cold = UserDictionaryProvider::from_recovered(db);
    cold.proxy_mut().set_rewrite_cache(false);
    let cold_fp = Fingerprint {
        public_words: q(&mut cold, &Caller::normal("bystander"), &words_uri()),
        delegate_words: q(&mut cold, &Caller::delegate(DELEGATE, INITIATOR), &words_uri()),
        volatile_words: q(&mut cold, &Caller::normal(INITIATOR), &words_uri().as_volatile()),
        files: cold_files,
    };
    assert_eq!(cold_fp, warm_fp, "cache-disabled replay must match the cached one");
}

#[test]
fn group_commit_batching_loses_only_the_pending_tail() {
    // With a large batch, records sit in the pending buffer until a
    // flush-forcing record arrives. bytes() models the crash image: the
    // pending tail is lost, but what is durable is a valid prefix.
    let j = JournalHandle::with_batch(64);
    let mut sys = MaxoidSystem::boot_journaled(j).expect("boot");
    sys.install(INITIATOR, vec![], MaxoidManifest::new()).unwrap();
    let public = Caller::normal(INITIATOR);
    for i in 0..5 {
        sys.resolver
            .insert(&public, &words_uri(), &ContentValues::new().put("word", format!("w{i}")))
            .unwrap();
    }
    let journal = sys.journal().unwrap().clone();
    let durable = journal.bytes();
    // Boot flushed; the five inserts are still pending.
    let rec_fp = recovered_fingerprint(&durable);
    assert_eq!(rec_fp.public_words.as_ref().map(|r| r.len()), Some(0));
    // After an explicit flush they become durable and replay.
    journal.flush().unwrap();
    let rec_fp = recovered_fingerprint(&journal.bytes());
    assert_eq!(rec_fp.public_words.as_ref().map(|r| r.len()), Some(5));
}

/// Builds a log exercising every format-v2 record type: repeated
/// overwrites of one file (delta-encoded writes + an interned path), a
/// compaction (`Compaction` marker + snapshot + DDL + row dumps), and
/// post-compaction traffic (a fresh `PathDef` — the rewrite resets the
/// dictionary). Returns the system; its journal holds the log.
fn v2_heavy_system() -> MaxoidSystem {
    let mut sys = journaled_system();
    seed_volatile_state(&mut sys);
    let pid = sys.launch(INITIATOR).expect("launch");
    let note = vpath(&format!("/data/data/{INITIATOR}/files/note.txt"));
    sys.kernel
        .mkdir_all(pid, &vpath(&format!("/data/data/{INITIATOR}/files")), Mode::PRIVATE)
        .expect("mkdir");
    for i in 0..4u8 {
        // Same length, small middle change: the overwrite delta-encodes.
        let body = format!("draft {i} -- mostly unchanged trailing text");
        sys.kernel.write(pid, &note, body.as_bytes(), Mode::PRIVATE).expect("write");
    }
    sys.compact().expect("compact");
    for i in 0..3u8 {
        let body = format!("final {i} -- mostly unchanged trailing text");
        sys.kernel.write(pid, &note, body.as_bytes(), Mode::PRIVATE).expect("write");
    }
    // A fresh file after the rewrite: a full-image (non-delta) record.
    sys.kernel
        .write(pid, &note.parent().unwrap().join("new.txt").unwrap(), b"x", Mode::PRIVATE)
        .expect("write");
    sys.journal().expect("journaled").flush().unwrap();
    sys
}

/// Names of the record kinds present in a log, for coverage assertions.
fn record_kinds(log: &[u8]) -> std::collections::BTreeSet<&'static str> {
    read_records(log)
        .records
        .iter()
        .map(|(_, r)| match r {
            Record::Vfs(VfsRecord::WriteDelta { .. }) => "write-delta",
            Record::Vfs(VfsRecord::WriteInodeDelta { .. }) => "write-inode-delta",
            Record::Vfs(_) => "vfs",
            Record::PathDef { .. } => "path-def",
            Record::Snapshot { .. } => "snapshot",
            Record::SnapshotDelta { .. } => "snapshot-delta",
            Record::Compaction { .. } => "compaction",
            Record::Sql { .. } => "sql",
            Record::TxnBegin { .. } | Record::TxnCommit { .. } | Record::TxnRollback { .. } => {
                "txn"
            }
        })
        .collect()
}

/// The PR-3 sweeps, on a log full of format-v2 record types: a crash at
/// any boundary of a compacted-then-extended log recovers, the full log
/// reproduces the live state, and a flipped byte anywhere — inside
/// delta, dictionary, snapshot or compaction records — is `Corrupted`,
/// never a silently shortened history.
#[test]
fn v2_record_types_survive_flip_and_crash_sweeps() {
    let mut sys = v2_heavy_system();
    let journal = sys.journal().expect("journaled").clone();
    let live = live_fingerprint(&mut sys);
    let log = journal.bytes();

    let kinds = record_kinds(&log);
    for want in ["write-delta", "path-def", "snapshot", "compaction", "sql", "vfs"] {
        assert!(kinds.contains(want), "workload must produce a {want} record, got {kinds:?}");
    }

    // Crash-prefix sweep: every boundary recovers; the full log matches.
    let boundaries = record_boundaries(&log);
    assert_eq!(*boundaries.last().unwrap(), log.len(), "log must parse to its end");
    for &b in &boundaries {
        let rec = recover(&crash_prefix(&log, b)).expect("prefix recovers");
        assert_eq!(rec.tail, TailState::Clean, "boundary {b}");
    }
    assert_eq!(recovered_fingerprint(&log), live, "full log recovers the live state");

    // Flip sweep: identical contract to the PR-3 sweep, now with the
    // damage landing inside the new record types too.
    let clean = read_records(&log);
    for offset in 0..log.len() {
        for mask in [0x01u8, 0x80] {
            let parsed = read_records(&flip_byte(&log, offset, mask));
            match parsed.tail {
                TailState::Corrupted { offset: at } => {
                    assert!(at <= offset, "corruption at {offset} reported downstream at {at}");
                    assert!(
                        parsed.records.len() <= clean.records.len(),
                        "flip at {offset} grew the history"
                    );
                }
                other => panic!(
                    "flip at byte {offset} (mask {mask:#04x}) parsed as {other:?} — \
                     silently shortened"
                ),
            }
        }
    }
}

/// Incremental checkpoints (`SnapshotDelta`) recover: a log carrying two
/// dirty-only checkpoints plus tail records replays to the live state,
/// every crash boundary recovers, and byte flips inside the delta
/// snapshots are detected as corruption.
#[test]
fn incremental_checkpoints_recover_and_reject_flips() {
    let mut sys = journaled_system();
    seed_volatile_state(&mut sys);
    sys.checkpoint_incremental().expect("first incremental checkpoint");
    let pid = sys.launch(INITIATOR).expect("launch");
    let dir = vpath(&format!("/data/data/{INITIATOR}/files"));
    sys.kernel.mkdir_all(pid, &dir, Mode::PRIVATE).expect("mkdir");
    sys.kernel
        .write(pid, &dir.join("a.txt").unwrap(), b"after first ckpt", Mode::PRIVATE)
        .expect("write");
    sys.checkpoint_incremental().expect("second incremental checkpoint");
    sys.kernel
        .write(pid, &dir.join("b.txt").unwrap(), b"after second ckpt", Mode::PRIVATE)
        .expect("write");
    let journal = sys.journal().expect("journaled").clone();
    journal.flush().unwrap();

    let live = live_fingerprint(&mut sys);
    let log = journal.bytes();
    assert!(record_kinds(&log).contains("snapshot-delta"), "checkpoints must log deltas");
    assert_eq!(recovered_fingerprint(&log), live, "full log recovers the live state");

    for &b in &record_boundaries(&log) {
        recover(&crash_prefix(&log, b)).expect("prefix recovers");
    }
    // Sampled flip check (the exhaustive sweep runs above on the
    // compacted log; delta snapshots are large, so sample here).
    for offset in (0..log.len()).step_by(37) {
        let parsed = read_records(&flip_byte(&log, offset, 0x80));
        assert!(
            matches!(parsed.tail, TailState::Corrupted { .. }),
            "flip at {offset} not detected"
        );
    }
}

/// A random workload step driven through the resolver / kernel.
#[derive(Debug, Clone)]
enum Op {
    PublicInsert(u8),
    DelegateInsert(u8),
    DelegateUpdate(u8),
    VolatileInsert(u8),
    DelegateFileWrite(u8, Vec<u8>),
    ClearVol,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..200u8).prop_map(Op::PublicInsert),
        (0..200u8).prop_map(Op::DelegateInsert),
        (0..200u8).prop_map(Op::DelegateUpdate),
        (0..200u8).prop_map(Op::VolatileInsert),
        (0..4u8, proptest::collection::vec(any::<u8>(), 1..16))
            .prop_map(|(i, d)| Op::DelegateFileWrite(i, d)),
        Just(Op::ClearVol),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sweep every post-setup crash point of a random workload:
    /// recovery always succeeds, the public view recovered from any
    /// prefix is a state the live public view actually passed through
    /// (delegate activity never leaks via a crash), and the full log
    /// reproduces the live state exactly.
    #[test]
    fn random_workload_crash_sweep(ops in proptest::collection::vec(op(), 1..12)) {
        let mut sys = journaled_system();
        let del_pid = sys.launch_as_delegate(DELEGATE, INITIATOR).unwrap();
        let journal = sys.journal().unwrap().clone();
        journal.flush().unwrap();
        let base_len = journal.bytes().len();

        let public = Caller::normal(INITIATOR);
        let delegate = Caller::delegate(DELEGATE, INITIATOR);
        // Every public-view state the live system passed through.
        let mut public_history: Vec<Option<Vec<Vec<Value>>>> = Vec::new();
        let snap = |sys: &mut MaxoidSystem| {
            let rows = sys
                .resolver
                .query(&Caller::normal("bystander"), &words_uri(), &query_args())
                .ok()
                .map(|rs| rs.rows);
            rows
        };
        public_history.push(snap(&mut sys));
        for o in &ops {
            match o {
                Op::PublicInsert(n) => {
                    let _ = sys.resolver.insert(
                        &public,
                        &words_uri(),
                        &ContentValues::new().put("word", format!("p{n}")).put("frequency", *n as i64),
                    );
                }
                Op::DelegateInsert(n) => {
                    let _ = sys.resolver.insert(
                        &delegate,
                        &words_uri(),
                        &ContentValues::new().put("word", format!("d{n}")),
                    );
                }
                Op::DelegateUpdate(n) => {
                    let _ = sys.resolver.update(
                        &delegate,
                        &words_uri().with_id((*n % 4) as i64 + 1),
                        &ContentValues::new().put("frequency", *n as i64),
                        &QueryArgs::default(),
                    );
                }
                Op::VolatileInsert(n) => {
                    let _ = sys.resolver.insert(
                        &public,
                        &words_uri(),
                        &ContentValues::new().put("word", format!("v{n}")).volatile(),
                    );
                }
                Op::DelegateFileWrite(i, data) => {
                    let path = vpath("/storage/sdcard").join(&format!("f{i}.dat")).unwrap();
                    let _ = sys.kernel.write(del_pid, &path, data, Mode::PUBLIC);
                }
                Op::ClearVol => {
                    let _ = sys.clear_vol(INITIATOR);
                }
            }
            public_history.push(snap(&mut sys));
        }
        journal.flush().unwrap();
        let live = live_fingerprint(&mut sys);

        let log = journal.bytes();
        let boundaries = record_boundaries(&log);
        prop_assert_eq!(*boundaries.last().unwrap(), log.len());
        for &b in boundaries.iter().filter(|&&b| b >= base_len) {
            let fp = recovered_fingerprint(&crash_prefix(&log, b));
            prop_assert!(
                public_history.contains(&fp.public_words),
                "crash at {} recovered a public state never observed live: {:?}",
                b,
                fp.public_words
            );
            // A torn continuation of the same prefix recovers identically.
            if b < log.len() {
                let fp_torn = recovered_fingerprint(&torn_log(&log, b, 3));
                prop_assert_eq!(&fp_torn, &fp, "torn tail at {} diverged", b);
            }
        }
        let full = recovered_fingerprint(&log);
        prop_assert_eq!(&full, &live, "full-log replay must equal the live state");
    }

    /// Compaction equivalence: for a random workload, recovering from
    /// the compacted log is indistinguishable from recovering from the
    /// full log — same files, same public/delegate/volatile dictionary
    /// views — and both equal the live state. The compacted log also
    /// still parses cleanly and keeps its boundaries sweepable.
    #[test]
    fn compacted_log_recovers_like_full_log(ops in proptest::collection::vec(op(), 1..12)) {
        let mut sys = journaled_system();
        let del_pid = sys.launch_as_delegate(DELEGATE, INITIATOR).unwrap();
        let journal = sys.journal().unwrap().clone();
        let public = Caller::normal(INITIATOR);
        let delegate = Caller::delegate(DELEGATE, INITIATOR);
        for o in &ops {
            match o {
                Op::PublicInsert(n) => {
                    let _ = sys.resolver.insert(
                        &public,
                        &words_uri(),
                        &ContentValues::new().put("word", format!("p{n}")).put("frequency", *n as i64),
                    );
                }
                Op::DelegateInsert(n) => {
                    let _ = sys.resolver.insert(
                        &delegate,
                        &words_uri(),
                        &ContentValues::new().put("word", format!("d{n}")),
                    );
                }
                Op::DelegateUpdate(n) => {
                    let _ = sys.resolver.update(
                        &delegate,
                        &words_uri().with_id((*n % 4) as i64 + 1),
                        &ContentValues::new().put("frequency", *n as i64),
                        &QueryArgs::default(),
                    );
                }
                Op::VolatileInsert(n) => {
                    let _ = sys.resolver.insert(
                        &public,
                        &words_uri(),
                        &ContentValues::new().put("word", format!("v{n}")).volatile(),
                    );
                }
                Op::DelegateFileWrite(i, data) => {
                    let path = vpath("/storage/sdcard").join(&format!("f{i}.dat")).unwrap();
                    let _ = sys.kernel.write(del_pid, &path, data, Mode::PUBLIC);
                }
                Op::ClearVol => {
                    let _ = sys.clear_vol(INITIATOR);
                }
            }
        }
        journal.flush().unwrap();
        let live = live_fingerprint(&mut sys);
        let full_log = journal.bytes();
        let from_full = recovered_fingerprint(&full_log);

        sys.compact().expect("compact");
        let compacted = journal.bytes();
        let parsed = read_records(&compacted);
        prop_assert_eq!(parsed.tail, TailState::Clean);
        let bounds = record_boundaries(&compacted);
        prop_assert_eq!(
            *bounds.last().unwrap(),
            compacted.len(),
            "compacted log must stay boundary-sweepable"
        );
        let from_compacted = recovered_fingerprint(&compacted);
        prop_assert_eq!(&from_full, &live, "full-log replay must equal the live state");
        prop_assert_eq!(&from_compacted, &live, "compacted replay must equal the live state");
    }
}
