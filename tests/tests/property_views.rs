//! Property-based tests of the core Maxoid invariants, driving random
//! operation sequences through the full system:
//!
//! - **S2 (integrity)**: no sequence of delegate file operations ever
//!   changes what the public world reads.
//! - **U2 (read-your-writes)**: a delegate always reads back the last
//!   value it wrote at a path.
//! - **COW proxy equivalence**: through the provider, a delegate's view
//!   behaves exactly like a shadow map layered over the public rows.

use maxoid::manifest::MaxoidManifest;
use maxoid::{ContentValues, MaxoidSystem, QueryArgs, Uri};
use maxoid_vfs::{vpath, Mode, VPath};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random delegate file operation.
#[derive(Debug, Clone)]
enum FileOp {
    Write(usize, Vec<u8>),
    Append(usize, Vec<u8>),
    Delete(usize),
}

fn file_op() -> impl Strategy<Value = FileOp> {
    prop_oneof![
        (0..4usize, proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(i, d)| FileOp::Write(i, d)),
        (0..4usize, proptest::collection::vec(any::<u8>(), 1..16))
            .prop_map(|(i, d)| FileOp::Append(i, d)),
        (0..4usize).prop_map(FileOp::Delete),
    ]
}

fn paths() -> Vec<VPath> {
    (0..4).map(|i| vpath("/storage/sdcard").join(&format!("f{i}.dat")).unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Public state is invariant under arbitrary delegate file activity,
    /// and the delegate's view equals a model: public state overlaid with
    /// its own writes.
    #[test]
    fn delegate_file_ops_preserve_public_state(ops in proptest::collection::vec(file_op(), 1..24)) {
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.install("init", vec![], MaxoidManifest::new()).unwrap();
        sys.install("worker", vec![], MaxoidManifest::new()).unwrap();
        sys.install("public", vec![], MaxoidManifest::new()).unwrap();
        let public = sys.launch("public").unwrap();
        let files = paths();
        // Seed half the files publicly.
        for (i, p) in files.iter().enumerate() {
            if i % 2 == 0 {
                sys.kernel.write(public, p, format!("seed{i}").as_bytes(), Mode::PUBLIC).unwrap();
            }
        }
        let snapshot: Vec<Option<Vec<u8>>> =
            files.iter().map(|p| sys.kernel.read(public, p).ok()).collect();

        let d = sys.launch_as_delegate("worker", "init").unwrap();
        // The model of the delegate's expected view.
        let mut model: BTreeMap<usize, Option<Vec<u8>>> = BTreeMap::new();
        for (i, s) in snapshot.iter().enumerate() {
            model.insert(i, s.clone());
        }
        for op in &ops {
            match op {
                FileOp::Write(i, data) => {
                    sys.kernel.write(d, &files[*i], data, Mode::PUBLIC).unwrap();
                    model.insert(*i, Some(data.clone()));
                }
                FileOp::Append(i, data) => {
                    match model.get(i).cloned().flatten() {
                        Some(mut cur) => {
                            sys.kernel.append(d, &files[*i], data).unwrap();
                            cur.extend_from_slice(data);
                            model.insert(*i, Some(cur));
                        }
                        None => {
                            prop_assert!(sys.kernel.append(d, &files[*i], data).is_err());
                        }
                    }
                }
                FileOp::Delete(i) => {
                    if model.get(i).cloned().flatten().is_some() {
                        sys.kernel.unlink(d, &files[*i]).unwrap();
                        model.insert(*i, None);
                    } else {
                        prop_assert!(sys.kernel.unlink(d, &files[*i]).is_err());
                    }
                }
            }
            // U2: the delegate reads its own (modelled) state.
            for (i, p) in files.iter().enumerate() {
                prop_assert_eq!(sys.kernel.read(d, p).ok(), model[&i].clone(), "path {}", p);
            }
        }
        // S2: the public view is byte-identical to the snapshot.
        for (p, before) in files.iter().zip(&snapshot) {
            prop_assert_eq!(&sys.kernel.read(public, p).ok(), before, "public view changed at {}", p);
        }
        // And after Clear-Vol, a fresh delegate sees pristine public state.
        sys.clear_vol("init").unwrap();
        let d2 = sys.launch_as_delegate("worker", "init").unwrap();
        for (p, before) in files.iter().zip(&snapshot) {
            prop_assert_eq!(&sys.kernel.read(d2, p).ok(), before);
        }
    }
}

/// A random provider operation by the delegate.
#[derive(Debug, Clone)]
enum RowOp {
    Insert(String),
    Update(i64, String),
    Delete(i64),
}

fn row_op() -> impl Strategy<Value = RowOp> {
    prop_oneof![
        "[a-z]{1,8}".prop_map(RowOp::Insert),
        (1..6i64, "[a-z]{1,8}").prop_map(|(id, w)| RowOp::Update(id, w)),
        (1..6i64).prop_map(RowOp::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The COW proxy's delegate view equals a shadow map over the public
    /// rows, and the public rows never change.
    #[test]
    fn delegate_provider_ops_match_shadow_model(ops in proptest::collection::vec(row_op(), 1..20)) {
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.install("init", vec![], MaxoidManifest::new()).unwrap();
        sys.install("worker", vec![], MaxoidManifest::new()).unwrap();
        sys.install("public", vec![], MaxoidManifest::new()).unwrap();
        let public = sys.launch("public").unwrap();
        let words = Uri::parse("content://user_dictionary/words").unwrap();
        for i in 1..=5 {
            sys.cp_insert(public, &words, &ContentValues::new().put("word", format!("pub{i}"))).unwrap();
        }
        let d = sys.launch_as_delegate("worker", "init").unwrap();
        // Shadow model: id -> Some(word) (live) / None (deleted).
        let mut model: BTreeMap<i64, Option<String>> =
            (1..=5).map(|i| (i, Some(format!("pub{i}")))).collect();
        let mut next_id = 10_000_001i64;
        for op in &ops {
            match op {
                RowOp::Insert(w) => {
                    let uri = sys.cp_insert(d, &words, &ContentValues::new().put("word", w.as_str())).unwrap();
                    let id = uri.id().unwrap();
                    prop_assert_eq!(id, next_id, "delegate ids come from the offset");
                    model.insert(id, Some(w.clone()));
                    next_id += 1;
                }
                RowOp::Update(id, w) => {
                    let n = sys.cp_update(d, &words.with_id(*id),
                        &ContentValues::new().put("word", w.as_str()), &QueryArgs::default()).unwrap();
                    if model.get(id).cloned().flatten().is_some() {
                        prop_assert_eq!(n, 1);
                        model.insert(*id, Some(w.clone()));
                    } else {
                        prop_assert_eq!(n, 0);
                    }
                }
                RowOp::Delete(id) => {
                    let n = sys.cp_delete(d, &words.with_id(*id), &QueryArgs::default()).unwrap();
                    if model.get(id).cloned().flatten().is_some() {
                        prop_assert_eq!(n, 1);
                        model.insert(*id, None);
                    } else {
                        prop_assert_eq!(n, 0);
                    }
                }
            }
        }
        // The delegate's full view equals the live entries of the model.
        let rs = sys.cp_query(d, &words, &QueryArgs {
            projection: vec!["_id".into(), "word".into()],
            sort_order: Some("_id".into()),
            ..Default::default()
        }).unwrap();
        let got: Vec<(i64, String)> = rs.rows.iter()
            .map(|r| (r[0].as_integer().unwrap(), r[1].to_string()))
            .collect();
        let want: Vec<(i64, String)> = model.iter()
            .filter_map(|(id, w)| w.clone().map(|w| (*id, w)))
            .collect();
        prop_assert_eq!(got, want);
        // The public rows are untouched.
        let rs = sys.cp_query(public, &words, &QueryArgs {
            projection: vec!["word".into()],
            sort_order: Some("_id".into()),
            ..Default::default()
        }).unwrap();
        let pub_words: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        prop_assert_eq!(pub_words, (1..=5).map(|i| format!("pub{i}")).collect::<Vec<_>>());
    }
}
