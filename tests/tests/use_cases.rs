//! End-to-end replays of the five §7.1 use cases through the app models.

use maxoid::manifest::MaxoidManifest;
use maxoid::{MaxoidSystem, QueryArgs, Uri};
use maxoid_apps::{
    install_observer, install_viewer, AdobeReader, Browser, CamScanner, Dropbox, EBookDroid, Email,
    FileRef, GoogleDrive, WrapperApp,
};
use maxoid_vfs::{vpath, Mode};

/// Use case 1: securing Dropbox — privacy and integrity with zero code
/// changes, only a Maxoid manifest.
#[test]
fn use_case_dropbox() {
    let dropbox = Dropbox::default();
    let reader = AdobeReader::default();
    let mut sys = MaxoidSystem::boot().unwrap();
    sys.kernel.net.publish("dropbox.example", "contract.pdf", b"signed v1".to_vec());
    sys.install(&dropbox.pkg, vec![], dropbox.maxoid_manifest()).unwrap();
    install_viewer(&mut sys, &reader.pkg).unwrap();
    let obs = install_observer(&mut sys).unwrap();

    let dpid = sys.launch(&dropbox.pkg).unwrap();
    let path = dropbox.sync_down(&mut sys, dpid, "contract.pdf").unwrap();

    // Privacy: the observer cannot see Dropbox's files.
    let opid = sys.launch(&obs).unwrap();
    assert!(!sys.kernel.exists(opid, &path));

    // The viewer (delegate) edits the file; sync never uploads it.
    let viewer = dropbox.open_file(&mut sys, dpid, "contract.pdf").unwrap().pid();
    sys.kernel.write(viewer, &path, b"signed v2", Mode::PUBLIC).unwrap();
    assert!(dropbox.sync_up(&mut sys, dpid).unwrap().is_empty());

    // Manual commit path: upload from tmp, then clear Vol.
    dropbox.upload_from_tmp(&mut sys, dpid, "contract.pdf").unwrap();
    assert_eq!(sys.kernel.http_get(dpid, "dropbox.example/contract.pdf").unwrap(), b"signed v2");
    sys.clear_vol(&dropbox.pkg).unwrap();

    // The launcher gesture: a camera app as Dropbox's delegate takes a
    // private photo for it.
    sys.install("camera", vec![], MaxoidManifest::new()).unwrap();
    let cam = sys.launch_as_delegate("camera", &dropbox.pkg).unwrap();
    sys.kernel
        .write(cam, &vpath("/storage/sdcard/DCIM/receipt.jpg"), b"jpeg", Mode::PUBLIC)
        .unwrap();
    let opid2 = sys.launch(&obs).unwrap();
    assert!(!sys.kernel.exists(opid2, &vpath("/storage/sdcard/DCIM/receipt.jpg")));
    assert!(sys.kernel.exists(dpid, &vpath("/storage/sdcard/tmp/DCIM/receipt.jpg")));
}

/// Use case 2: securing Email attachments (VIEW is private; SAVE is an
/// explicit declassification).
#[test]
fn use_case_email() {
    let email = Email::default();
    let reader = AdobeReader::default();
    let mut sys = MaxoidSystem::boot().unwrap();
    sys.install(&email.pkg, vec![], email.maxoid_manifest()).unwrap();
    install_viewer(&mut sys, &reader.pkg).unwrap();
    let obs = install_observer(&mut sys).unwrap();

    let epid = sys.launch(&email.pkg).unwrap();
    let att = email.receive_attachment(&mut sys, epid, "salary.pdf", b"offer details").unwrap();

    // VIEW: the reader runs confined and leaves its copy in Vol only.
    let vpid = email.view_attachment(&mut sys, epid, &att).unwrap().pid();
    let data = sys.kernel.read(vpid, &att).unwrap();
    reader.open(&mut sys, vpid, &FileRef::Content { name: "salary.pdf".into(), data }).unwrap();
    let opid = sys.launch(&obs).unwrap();
    assert!(!sys.kernel.exists(opid, &vpath("/storage/sdcard/Download/salary.pdf")));

    // SAVE: the user explicitly exports; now it is public by choice.
    let out = email.save_attachment(&mut sys, epid, &att).unwrap();
    let opid2 = sys.launch(&obs).unwrap();
    assert_eq!(sys.kernel.read(opid2, &out).unwrap(), b"offer details");
    let dl = Uri::parse("content://downloads/my_downloads").unwrap();
    assert_eq!(sys.cp_query(opid2, &dl, &QueryArgs::default()).unwrap().rows.len(), 1);
}

/// Use case 3: Browser incognito downloads (the 1-line patch).
#[test]
fn use_case_incognito() {
    let browser = Browser::default();
    let mut sys = MaxoidSystem::boot().unwrap();
    sys.kernel.net.publish("files.example", "memo.pdf", b"memo".to_vec());
    sys.install(&browser.pkg, vec![], MaxoidManifest::new()).unwrap();
    let obs = install_observer(&mut sys).unwrap();
    let bpid = sys.launch(&browser.pkg).unwrap();

    // Normal download: public record and file.
    browser.download(&mut sys, bpid, "files.example/memo.pdf", "normal.pdf", false).unwrap();
    // Incognito download: volatile.
    browser.download(&mut sys, bpid, "files.example/memo.pdf", "secret.pdf", true).unwrap();
    sys.pump_downloads().unwrap();
    assert_eq!(sys.download_notifications().len(), 2);

    let opid = sys.launch(&obs).unwrap();
    assert!(sys.kernel.exists(opid, &vpath("/storage/sdcard/Download/normal.pdf")));
    assert!(!sys.kernel.exists(opid, &vpath("/storage/sdcard/Download/secret.pdf")));
    let (pub_n, vol_n) = browser.downloads_list(&mut sys, bpid).unwrap();
    assert_eq!((pub_n, vol_n), (1, 1));

    // Ending the incognito session erases only the volatile download.
    sys.clear_vol(&browser.pkg).unwrap();
    let (pub_n, vol_n) = browser.downloads_list(&mut sys, bpid).unwrap();
    assert_eq!((pub_n, vol_n), (1, 0));
    assert!(sys.kernel.exists(bpid, &vpath("/storage/sdcard/Download/normal.pdf")));
}

/// Use case 4: the wrapper app's system-wide incognito mode.
#[test]
fn use_case_wrapper() {
    let wrapper = WrapperApp::default();
    let scanner = CamScanner::default();
    let mut sys = MaxoidSystem::boot().unwrap();
    sys.install(&wrapper.pkg, vec![], wrapper.maxoid_manifest()).unwrap();
    install_viewer(&mut sys, &scanner.pkg).unwrap();
    let obs = install_observer(&mut sys).unwrap();

    let wpid = sys.launch(&wrapper.pkg).unwrap();
    wrapper.hold_document(&mut sys, wpid, "deed.pdf", b"property deed").unwrap();
    // The "real app" (CamScanner) runs as the wrapper's delegate and
    // leaves all its usual SD-card traces.
    let spid = sys.launch_as_delegate(&scanner.pkg, &wrapper.pkg).unwrap();
    scanner.scan_page(&mut sys, spid, "deed", b"pixels").unwrap();

    // Nothing is publicly visible during or after.
    let opid = sys.launch(&obs).unwrap();
    assert!(!sys.kernel.exists(opid, &vpath("/storage/sdcard/CamScanner/deed.jpg")));
    wrapper.end_session(&mut sys).unwrap();
    assert!(sys.volatile_files(&wrapper.pkg).unwrap().is_empty());
    // Even the scanner's private recent-scans DB from the session is gone.
    let s2 = sys.launch_as_delegate(&scanner.pkg, &wrapper.pkg).unwrap();
    assert!(
        maxoid_apps::dataproc::read_private_lines(&sys, s2, &scanner.pkg, "scans.db").is_empty()
    );
}

/// Use case 5: EBookDroid's persistent private state (the 45-line-style
/// patch) — already covered in unit tests; here the cross-initiator
/// isolation is exercised through the full launcher path.
#[test]
fn use_case_ebookdroid_cross_initiator() {
    let viewer = EBookDroid::default();
    let email = Email::default();
    let dropbox = Dropbox::default();
    let mut sys = MaxoidSystem::boot().unwrap();
    sys.install(&viewer.pkg, vec![], MaxoidManifest::new()).unwrap();
    sys.install(&email.pkg, vec![], email.maxoid_manifest()).unwrap();
    sys.install(&dropbox.pkg, vec![], dropbox.maxoid_manifest()).unwrap();

    let epid = sys.launch(&email.pkg).unwrap();
    let att = email.receive_attachment(&mut sys, epid, "a.pdf", b"A").unwrap();

    let d_email = sys.launch_as_delegate(&viewer.pkg, &email.pkg).unwrap();
    viewer.open(&mut sys, d_email, &att).unwrap();

    // For Dropbox, the recents are empty: pPriv is per initiator.
    let d_dropbox = sys.launch_as_delegate(&viewer.pkg, &dropbox.pkg).unwrap();
    assert!(viewer.recent_files(&sys, d_dropbox).unwrap().is_empty());

    // Back on behalf of email: the attachment is in the merged list.
    let d_email2 = sys.launch_as_delegate(&viewer.pkg, &email.pkg).unwrap();
    assert!(viewer.recent_files(&sys, d_email2).unwrap().iter().any(|r| r.contains("a.pdf")));
}

/// §2.2 case II: Google Drive disclosed-path opens. On stock Android the
/// invoked viewer "can leak information about the files that have been
/// disclosed" (Table 1); under Maxoid the same viewer runs as a delegate
/// and the leak is confined.
#[test]
fn use_case_google_drive() {
    let gdrive = GoogleDrive::default();
    let reader = AdobeReader::default();
    let mut sys = MaxoidSystem::boot().unwrap();
    sys.kernel.net.publish("drive.example", "contract.pdf", b"drive secret".to_vec());
    sys.install(&gdrive.pkg, vec![], MaxoidManifest::new()).unwrap();
    install_viewer(&mut sys, &reader.pkg).unwrap();
    let obs = install_observer(&mut sys).unwrap();

    let gpid = sys.launch(&gdrive.pkg).unwrap();
    let cached = gdrive.cache_file(&mut sys, gpid, "contract.pdf").unwrap();

    // Open with delegate=true (the Maxoid intent flag).
    let vpid = gdrive.open_cached(&mut sys, gpid, &cached, true).unwrap().pid();
    assert!(sys.kernel.process(vpid).unwrap().ctx.is_delegate());
    // The delegate reads the cached file through its view of Priv(drive).
    let data = sys.kernel.read(vpid, &cached).unwrap();
    assert_eq!(data, b"drive secret");
    // It leaves its usual SD-card copy — confined to Vol(drive).
    reader.open(&mut sys, vpid, &FileRef::Content { name: "contract.pdf".into(), data }).unwrap();
    let opid = sys.launch(&obs).unwrap();
    assert!(!sys.kernel.exists(opid, &vpath("/storage/sdcard/Download/contract.pdf")));
    assert!(sys.kernel.exists(gpid, &vpath("/storage/sdcard/tmp/Download/contract.pdf")));
    // One gesture erases the session's traces.
    sys.clear_vol(&gdrive.pkg).unwrap();
    sys.clear_priv(&gdrive.pkg).unwrap();
    assert!(sys.volatile_files(&gdrive.pkg).unwrap().is_empty());
}

/// The paper's note that three of the 77 apps cannot work as delegates
/// because they need network: our delegate fails exactly that way.
#[test]
fn network_dependent_delegate_fails_gracefully() {
    let mut sys = MaxoidSystem::boot().unwrap();
    sys.kernel.net.publish("convert.example", "api", b"".to_vec());
    sys.install("converter", vec![], MaxoidManifest::new()).unwrap();
    sys.install("docs", vec![], MaxoidManifest::new()).unwrap();
    // Normally the converter reaches its backend.
    let normal = sys.launch("converter").unwrap();
    assert!(sys.kernel.connect(normal, "convert.example").is_ok());
    // As a delegate it sees an ordinary network error, not a crash.
    let confined = sys.launch_as_delegate("converter", "docs").unwrap();
    assert_eq!(
        sys.kernel.connect(confined, "convert.example").unwrap_err(),
        maxoid_kernel::KernelError::NetworkUnreachable
    );
}
