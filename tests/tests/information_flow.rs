//! Figure 1 integration tests: every permitted information-flow edge
//! works, every forbidden edge is blocked, across files, providers, IPC,
//! network and services — the S1-S4 security goals end to end.

use maxoid::{ContentValues, Intent, QueryArgs, Uri};
use maxoid_tests::{standard_cast, write_private, write_public, VIEW};
use maxoid_vfs::{vpath, Mode};

/// Priv(A) -> B^A: a delegate reads its initiator's private state.
#[test]
fn edge_priv_a_to_delegate() {
    let mut sys = standard_cast();
    let a = sys.launch("initiator").unwrap();
    let secret = write_private(&sys, a, "initiator", "secret.txt", b"priv(A)");
    let d =
        sys.start_activity(Some(a), &Intent::new(VIEW).with_data(secret.as_str())).unwrap().pid();
    assert_eq!(sys.kernel.read(d, &secret).unwrap(), b"priv(A)");
}

/// B^A -> Vol(A): a delegate's public writes land in volatile state,
/// visible to A and to co-delegates, not to the public.
#[test]
fn edge_delegate_to_vol_a() {
    let mut sys = standard_cast();
    let a = sys.launch("initiator").unwrap();
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    sys.kernel.write(d, &vpath("/storage/sdcard/out.txt"), b"tainted", Mode::PUBLIC).unwrap();
    // A observes it (Vol(A) <-> A).
    assert_eq!(sys.kernel.read(a, &vpath("/storage/sdcard/tmp/out.txt")).unwrap(), b"tainted");
    // A co-delegate of A sees it at the original name (Pub(x^A)).
    sys.install("scanner", vec![], maxoid::MaxoidManifest::new()).unwrap();
    let d2 = sys.launch_as_delegate("scanner", "initiator").unwrap();
    assert_eq!(sys.kernel.read(d2, &vpath("/storage/sdcard/out.txt")).unwrap(), b"tainted");
    // The bystander sees nothing (S1).
    let x = sys.launch("bystander").unwrap();
    assert!(!sys.kernel.exists(x, &vpath("/storage/sdcard/out.txt")));
    assert!(!sys.kernel.exists(x, &vpath("/storage/sdcard/tmp/out.txt")));
}

/// B^A -> Priv(B^A): private writes are confined to the fork; Priv(B) is
/// untouched (S4) and A cannot read the fork (S3).
#[test]
fn edge_delegate_to_priv_fork() {
    let mut sys = standard_cast();
    let a = sys.launch("initiator").unwrap();
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    let fork_file = write_private(&sys, d, "viewer", "notes.db", b"in fork");
    // A cannot read Priv(B^A): the path resolves inside A's namespace to
    // nothing it can reach.
    assert!(sys.kernel.read(a, &fork_file).is_err());
    // A normal run of B does not see the fork's data (B^A was killed by
    // the conflicting launch, per the §6.2 rule).
    let b = sys.launch("viewer").unwrap();
    assert!(!sys.kernel.exists(b, &fork_file));
}

/// Pub(all) -> everyone: public data stays readable by delegates (U1),
/// and initiator updates remain visible until the unilateral fork (U2).
#[test]
fn edge_pub_all_visibility() {
    let mut sys = standard_cast();
    let x = sys.launch("bystander").unwrap();
    let f = write_public(&sys, x, "news.txt", b"v1");
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    assert_eq!(sys.kernel.read(d, &f).unwrap(), b"v1");
    // The initiator-side world updates the file; the delegate sees it.
    sys.kernel.write(x, &f, b"v2", Mode::PUBLIC).unwrap();
    assert_eq!(sys.kernel.read(d, &f).unwrap(), b"v2");
    // After the delegate writes the file, it stops following updates.
    sys.kernel.write(d, &f, b"delegate", Mode::PUBLIC).unwrap();
    sys.kernel.write(x, &f, b"v3", Mode::PUBLIC).unwrap();
    assert_eq!(sys.kernel.read(d, &f).unwrap(), b"delegate");
    // The public world never saw the delegate version.
    assert_eq!(sys.kernel.read(x, &f).unwrap(), b"v3");
}

/// Forbidden edge: delegate -> network (ENETUNREACH).
#[test]
fn forbidden_delegate_network() {
    let mut sys = standard_cast();
    sys.kernel.net.publish("c2.example", "drop", vec![]);
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    assert!(sys.kernel.connect(d, "c2.example").is_err());
    assert!(sys.kernel.http_get(d, "c2.example/drop").is_err());
    // The same app regains network when run normally again.
    let b = sys.launch("viewer").unwrap();
    assert!(sys.kernel.connect(b, "c2.example").is_ok());
}

/// Forbidden edge: delegate -> unrelated app via Binder.
#[test]
fn forbidden_delegate_binder() {
    let mut sys = standard_cast();
    let a = sys.launch("initiator").unwrap();
    let x = sys.launch("bystander").unwrap();
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    assert!(sys.kernel.binder_check_pid(d, x).is_err());
    assert!(sys.kernel.binder_check_pid(d, a).is_ok());
}

/// Forbidden edges: delegate -> Bluetooth / SMS; clipboard confinement.
#[test]
fn forbidden_delegate_services() {
    let mut sys = standard_cast();
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    let dctx = sys.kernel.process(d).unwrap().ctx.clone();
    assert!(sys.bluetooth.send(&dctx, b"leak").is_err());
    assert!(sys.sms.send(&dctx, "+1", "leak").is_err());
    // Clipboard: the delegate's copy never reaches the global clipboard.
    sys.clipboard.set(&maxoid::ExecContext::Normal, "public clip");
    sys.clipboard.set(&dctx, "secret clip");
    assert_eq!(sys.clipboard.get(&maxoid::ExecContext::Normal).as_deref(), Some("public clip"));
    assert_eq!(sys.clipboard.get(&dctx).as_deref(), Some("secret clip"));
}

/// Provider flows: the same Figure 1 edges through a system content
/// provider instead of files.
#[test]
fn provider_edges_mirror_file_edges() {
    let mut sys = standard_cast();
    let words = Uri::parse("content://user_dictionary/words").unwrap();
    let x = sys.launch("bystander").unwrap();
    sys.cp_insert(x, &words, &ContentValues::new().put("word", "public")).unwrap();

    let a = sys.launch("initiator").unwrap();
    let d = sys.launch_as_delegate("viewer", "initiator").unwrap();
    // U1: the delegate sees the pre-existing public row.
    assert_eq!(sys.cp_query(d, &words, &QueryArgs::default()).unwrap().rows.len(), 1);
    // The delegate updates it: copy-on-write.
    sys.cp_update(
        d,
        &words.with_id(1),
        &ContentValues::new().put("word", "tainted"),
        &QueryArgs::default(),
    )
    .unwrap();
    // Delegate reads its write; the bystander reads the original.
    let drs = sys.cp_query(d, &words.with_id(1), &QueryArgs::default()).unwrap();
    assert_eq!(drs.rows[0][drs.column_index("word").unwrap()].to_string(), "tainted");
    let xrs = sys.cp_query(x, &words.with_id(1), &QueryArgs::default()).unwrap();
    assert_eq!(xrs.rows[0][xrs.column_index("word").unwrap()].to_string(), "public");
    // A retrieves the volatile copy through the tmp URI.
    let ars = sys.cp_query(a, &words.as_volatile(), &QueryArgs::default()).unwrap();
    assert_eq!(ars.rows.len(), 1);
    // Clear-Vol discards it.
    sys.clear_vol("initiator").unwrap();
    let drs = sys.cp_query(d, &words.with_id(1), &QueryArgs::default()).unwrap();
    assert_eq!(drs.rows[0][drs.column_index("word").unwrap()].to_string(), "public");
}

/// Invocation-transitivity: B^A invoking C yields C^A; broadcasts from
/// B^A stay inside A's delegate set; nested delegation fails.
#[test]
fn ipc_transitivity_and_broadcast() {
    let mut sys = standard_cast();
    sys.install(
        "editor",
        vec![maxoid::AppIntentFilter::new("EDIT", None)],
        maxoid::MaxoidManifest::new(),
    )
    .unwrap();
    let a = sys.launch("initiator").unwrap();
    let d = sys
        .start_activity(Some(a), &Intent::new(VIEW).with_data("/storage/sdcard/f"))
        .unwrap()
        .pid();
    // B^A invokes the editor: it becomes a delegate of A, not of B.
    let e = sys.start_activity(Some(d), &Intent::new("EDIT")).unwrap().pid();
    assert_eq!(
        sys.kernel.process(e).unwrap().ctx,
        maxoid::ExecContext::OnBehalfOf(maxoid::AppId::new("initiator"))
    );
    // Nested delegation is refused.
    let err = sys.start_activity(Some(d), &Intent::new("EDIT").as_delegate());
    assert!(matches!(err, Err(maxoid::SystemError::Ams(maxoid::AmsError::NestedDelegation))));
    // Broadcast from the delegate reaches only A and A's delegates.
    let sender = sys.kernel.process(d).unwrap();
    let targets = sys
        .broadcast_targets(Some((&sender.app.clone(), &sender.ctx.clone())), &Intent::new("EDIT"));
    for pid in targets {
        let p = sys.kernel.process(pid).unwrap();
        assert!(
            p.app.pkg() == "initiator"
                || p.ctx == maxoid::ExecContext::OnBehalfOf(maxoid::AppId::new("initiator")),
            "broadcast escaped to {} ({})",
            p.app,
            p.ctx
        );
    }
}

/// The initiator itself is never restricted: S1-S4 protect, they do not
/// privilege.
#[test]
fn initiators_keep_stock_behaviour() {
    let mut sys = standard_cast();
    sys.kernel.net.publish("api.example", "sync", b"ok".to_vec());
    let a = sys.launch("initiator").unwrap();
    // Network, public writes, provider inserts: all stock.
    assert_eq!(sys.kernel.http_get(a, "api.example/sync").unwrap(), b"ok");
    write_public(&sys, a, "shared.txt", b"x");
    let words = Uri::parse("content://user_dictionary/words").unwrap();
    sys.cp_insert(a, &words, &ContentValues::new().put("word", "w")).unwrap();
    // But it cannot touch other apps' private state.
    let v = sys.launch("viewer").unwrap();
    let vpriv = write_private(&sys, v, "viewer", "own.db", b"viewer data");
    assert!(sys.kernel.read(a, &vpriv).is_err());
}
