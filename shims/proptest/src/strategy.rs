//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type. Unlike real proptest there is no
/// value tree / shrinking; `generate` draws one value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `f` (bounded retries; falls back
    /// to the last draw if none passes, rather than aborting the test).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mut last = self.inner.generate(rng);
        for _ in 0..32 {
            if (self.f)(&last) {
                break;
            }
            last = self.inner.generate(rng);
        }
        last
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`any`].
#[derive(Clone)]
pub struct Any<T>(PhantomData<T>);

/// Uniform values of a primitive type (`any::<u8>()`, `any::<bool>()`, …).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Primitive types supported by [`any`].
pub trait ArbitraryValue {
    /// Draws one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128 % span) as i128)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + ((rng.next_u64() as u128 % span) as i128)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` strategies: a simplified regex of the form `[class]{m,n}`
/// (character classes with ranges and literals). A pattern without a
/// class generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_pattern(self);
        if chars.is_empty() {
            return (*self).to_string();
        }
        let len = rng.usize_in(min..max + 1);
        (0..len).map(|_| chars[rng.usize_in(0..chars.len())]).collect()
    }
}

/// Parses `[a-z_%]{1,6}` into (alphabet, min, max). Returns an empty
/// alphabet for patterns without a leading class.
fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let bytes: Vec<char> = pattern.chars().collect();
    if bytes.first() != Some(&'[') {
        return (Vec::new(), 0, 0);
    }
    let close = match bytes.iter().position(|&c| c == ']') {
        Some(i) => i,
        None => return (Vec::new(), 0, 0),
    };
    let mut chars = Vec::new();
    let mut i = 1;
    while i < close {
        if i + 2 < close && bytes[i + 1] == '-' {
            let (lo, hi) = (bytes[i] as u32, bytes[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    chars.push(c);
                }
            }
            i += 3;
        } else {
            // `\\` escapes inside a class pass the next char through.
            if bytes[i] == '\\' && i + 1 < close {
                i += 1;
            }
            chars.push(bytes[i]);
            i += 1;
        }
    }
    // Repetition suffix {m,n}, {m}, or none (defaults to exactly one).
    let rest: String = bytes[close + 1..].iter().collect();
    let (min, max) = if rest.starts_with('{') && rest.ends_with('}') {
        let body = &rest[1..rest.len() - 1];
        match body.split_once(',') {
            Some((m, n)) => (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(1)),
            None => {
                let k = body.trim().parse().unwrap_or(1);
                (k, k)
            }
        }
    } else {
        (1, 1)
    };
    (chars, min, max)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds the union; panics on zero arms.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::for_case("string_pattern_shapes", 0);
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()), "bad len {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[ab_%]{0,8}".generate(&mut rng);
            assert!(t.len() <= 8);
            assert!(t.chars().all(|c| matches!(c, 'a' | 'b' | '_' | '%')));
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::for_case("ranges_and_tuples", 1);
        for _ in 0..200 {
            let v = (1..40i64).generate(&mut rng);
            assert!((1..40).contains(&v));
            let (a, b) = (1..40i64, "[a-z]{1,6}").generate(&mut rng);
            assert!((1..40).contains(&a) && !b.is_empty());
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::for_case("union_hits_every_arm", 2);
        let u = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
