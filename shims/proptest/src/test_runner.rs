//! Deterministic case runner support: RNG, config, and failure type.

use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        // Real proptest defaults to 256; tests here drive whole databases
        // per case, so the shim keeps unannotated blocks cheaper.
        Config { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert*` failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: skip this case, try the next.
    Reject,
}

/// Deterministic splitmix64 stream, seeded from test name + case index so
/// every run regenerates identical inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        case.hash(&mut hasher);
        TestRng { state: hasher.finish() | 1 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform usize in `range` (empty ranges yield `range.start`).
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.end <= range.start {
            return range.start;
        }
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
