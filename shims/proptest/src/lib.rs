//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest 1.x it uses: the `proptest!` / `prop_oneof!` /
//! `prop_assert*` macros, `Strategy` with `prop_map`, integer-range and
//! simple-regex string strategies, tuples, `collection::{vec, btree_map}`,
//! and `option::of`. Generation is deterministic per test name and case
//! index. There is **no shrinking** — a failing case reports the full
//! generated inputs instead.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors of `elem` values with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s with sizes drawn from `size`.
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates maps of `key -> value` entries with a size in `size`.
    /// Key collisions may leave the map below the drawn size, as in real
    /// proptest before retries.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.size.clone());
            let mut out = BTreeMap::new();
            // Bounded retries so colliding key strategies still terminate.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy wrapping an inner strategy in `Option`.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// Generates `Some` roughly three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything a proptest-based test module needs.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: an optional `#![proptest_config(..)]` header
/// followed by `fn name(arg in strategy, ..) { body }` items (each keeps
/// its own `#[test]` attribute, as in real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let ($($arg,)+) = {
                        let ($(ref $arg,)+) = strategies;
                        ($($crate::strategy::Strategy::generate($arg, &mut rng),)+)
                    };
                    let described = format!("{:?}", ($(&$arg,)+));
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest '{}' failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name), case, config.cases, msg, described,
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Asserts inside a proptest body, failing the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
