//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the thin slice of the `rand 0.8` API it actually uses: a seedable
//! deterministic generator (`StdRng::seed_from_u64`) plus `Rng::gen_range`
//! over half-open integer ranges. The generator is splitmix64 — good
//! enough statistical quality for test fuzzing and benchmark workloads,
//! and fully reproducible from the seed.

use std::ops::Range;

/// Core RNG trait: anything that can emit uniform `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed; identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open `low..high` range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// A biased coin flip.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly samplable from a `Range`.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `range` (panics on an empty range, matching
    /// real `rand`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a "just give me a random one" distribution.
pub trait Standard: Sized {
    /// Generates one value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }
}
