//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no registry access, so this crate provides
//! the `parking_lot 0.12` surface the workspace uses — `Mutex::lock`,
//! `RwLock::read`/`write` returning guards directly (no `Result`). Poison
//! is ignored, matching parking_lot's poison-free semantics: a panicked
//! holder does not wedge later accessors.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
