//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no registry access, so this crate provides
//! the `parking_lot 0.12` surface the workspace uses — `Mutex::lock`,
//! `RwLock::read`/`write` returning guards directly (no `Result`). Poison
//! is ignored, matching parking_lot's poison-free semantics: a panicked
//! holder does not wedge later accessors.

use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, RwLock as StdRwLock};
use std::time::Duration;

/// Guard type returned by [`Mutex::lock`] (std's guard; the poison-free
/// behaviour lives in the lock methods, not the guard).
pub use std::sync::MutexGuard;

/// Guard types returned by [`RwLock::read`] / [`RwLock::write`] (std's
/// guards, re-exported so callers can name them in struct fields).
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking; `None` when held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a read guard without blocking; `None` when a
    /// writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking; `None` when
    /// any other guard is outstanding.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves safety).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Result of a timed condition-variable wait (parking_lot's shape: a
/// method rather than std's tuple return).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed rather
    /// than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with parking_lot's in-place API: `wait` takes the
/// guard by `&mut` instead of consuming and returning it.
#[derive(Debug, Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Atomically releases the mutex and blocks until notified; the
    /// mutex is re-acquired before returning. Spurious wakeups are
    /// possible — callers must re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: std's wait consumes the guard and returns a fresh one
        // for the same mutex. We move the guard out of `*guard` by value,
        // hand it to std, and write the returned guard back before anyone
        // can observe the hole. `StdCondvar::wait` does not unwind (poison
        // is converted below), so no path drops the duplicated guard twice.
        unsafe {
            let owned = std::ptr::read(guard);
            let reacquired = self.0.wait(owned).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, reacquired);
        }
    }

    /// As [`Condvar::wait`] but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        // SAFETY: same move-out/write-back discipline as `wait`.
        unsafe {
            let owned = std::ptr::read(guard);
            let (reacquired, res) =
                self.0.wait_timeout(owned, timeout).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, reacquired);
            WaitTimeoutResult(res.timed_out())
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("free now"), 5);
    }

    #[test]
    fn try_read_and_try_write_respect_writers() {
        let l = RwLock::new(0u32);
        {
            let _r = l.read();
            assert!(l.try_read().is_some(), "readers share");
            assert!(l.try_write().is_none(), "writer excluded by reader");
        }
        {
            let _w = l.write();
            assert!(l.try_read().is_none(), "reader excluded by writer");
            assert!(l.try_write().is_none(), "second writer excluded");
        }
        *l.try_write().expect("free now") = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_handoff_between_threads() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().expect("waiter joins"));
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        // The guard is still valid and the mutex still works afterwards.
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
