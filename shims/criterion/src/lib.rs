//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate implements
//! the criterion 0.5 API surface the benches use — `benchmark_group`,
//! `sample_size`, `bench_function`, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros — over a simple
//! wall-clock sampler. Output mimics criterion's
//! `name  time: [lo mean hi]` lines so results remain grep-able; there
//! is no statistical regression machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches here use
/// `std::hint::black_box` directly, but the name is part of the API).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> BenchmarkId {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    /// Measures `f`: calibrates an iteration count so one sample takes
    /// roughly a millisecond, then records `sample_count` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: run until ~1ms or 10k iters to pick batch size.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(1) && calib_iters < 10_000 {
            std::hint::black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_nanos() as f64 / calib_iters.max(1) as f64;
        let batch = ((1_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 100_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self) -> (f64, f64, f64) {
        if self.samples_ns.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        (sorted[0], mean, sorted[sorted.len() - 1])
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// A named set of related benchmarks. Holds a phantom borrow of the
/// `Criterion` so the lifetime relationship matches the real crate.
pub struct BenchmarkGroup<'a> {
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples_ns: Vec::new(),
            // Cap shim sample counts: criterion defaults to 100 samples
            // with warm-up; the shim targets quick CI-friendly runs.
            sample_count: self.sample_count.min(30),
        };
        f(&mut b);
        let (lo, mean, hi) = b.report();
        println!(
            "{:<50} time:   [{} {} {}]",
            format!("{}/{}", self.name, id),
            fmt_ns(lo),
            fmt_ns(mean),
            fmt_ns(hi)
        );
        self
    }

    /// Ends the group (blank separator line, as criterion does).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmarking group: {name}");
        BenchmarkGroup { _criterion: std::marker::PhantomData, name, sample_count: 20 }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            _criterion: std::marker::PhantomData,
            name: "bench".to_string(),
            sample_count: 20,
        };
        g.bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut ran = false;
        g.bench_function(BenchmarkId::from_parameter("noop"), |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("read", "android").to_string(), "read/android");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}
