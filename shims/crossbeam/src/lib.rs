//! Offline stand-in for `crossbeam`, covering `crossbeam::thread::scope`.
//!
//! The build environment has no registry access, so this wraps
//! `std::thread::scope` (stable since 1.63) in crossbeam's 0.8 calling
//! convention: `scope(..)` returns a `Result` and spawned closures
//! receive a `&Scope` argument for nested spawns.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope (crossbeam's `thread::Result`).
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// Handle for spawning further threads inside a scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn siblings, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike `std::thread::scope` the result is a `Result`, as
    /// in crossbeam (`Err` is never produced here — std propagates child
    /// panics by unwinding — but callers `.unwrap()`/`.expect()` it).
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Multi-producer channels mirroring the `crossbeam-channel` surface the
/// workspace uses, backed by `std::sync::mpsc`. The receiver is made
/// cloneable (crossbeam receivers are multi-consumer) by sharing the
/// underlying std receiver behind a mutex; contending consumers simply
/// take turns, which is enough for work-queue and watchdog patterns.
pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Send failed: every receiver is gone. Carries the value back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Blocking receive failed: every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive outcome.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty, senders still connected.
        Empty,
        /// Channel empty and every sender is gone.
        Disconnected,
    }

    /// Timed receive outcome.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and every sender is gone.
        Disconnected,
    }

    /// Sending half; clone freely across threads.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Queues `value`; fails only when all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half; clone shares the same queue (multi-consumer).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Blocks until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv().map_err(|_| RecvError)
        }

        /// Returns immediately with a message, `Empty`, or `Disconnected`.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Draining iterator: yields until all senders drop.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..8 {
                let c = &counter;
                scope.spawn(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("threads join");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            let c = &counter;
            scope.spawn(move |inner| {
                inner.spawn(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .expect("threads join");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn join_handles_return_values() {
        let total: i32 = thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|i| scope.spawn(move |_| i * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("threads join");
        assert_eq!(total, 60);
    }

    #[test]
    fn channel_crosses_threads() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        thread::scope(|scope| {
            for i in 0..4 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).expect("receiver alive"));
            }
        })
        .expect("threads join");
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        use super::channel::TryRecvError;
        let (tx, rx) = super::channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_without_senders_sending() {
        use super::channel::RecvTimeoutError;
        let (tx, rx) = super::channel::unbounded::<u8>();
        let res = rx.recv_timeout(std::time::Duration::from_millis(5));
        assert_eq!(res, Err(RecvTimeoutError::Timeout));
        tx.send(1).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(100)), Ok(1));
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3, "each message delivered exactly once");
    }
}
