//! Offline stand-in for `crossbeam`, covering `crossbeam::thread::scope`.
//!
//! The build environment has no registry access, so this wraps
//! `std::thread::scope` (stable since 1.63) in crossbeam's 0.8 calling
//! convention: `scope(..)` returns a `Result` and spawned closures
//! receive a `&Scope` argument for nested spawns.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scope (crossbeam's `thread::Result`).
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// Handle for spawning further threads inside a scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn siblings, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike `std::thread::scope` the result is a `Result`, as
    /// in crossbeam (`Err` is never produced here — std propagates child
    /// panics by unwinding — but callers `.unwrap()`/`.expect()` it).
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..8 {
                let c = &counter;
                scope.spawn(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .expect("threads join");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            let c = &counter;
            scope.spawn(move |inner| {
                inner.spawn(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .expect("threads join");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn join_handles_return_values() {
        let total: i32 = thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|i| scope.spawn(move |_| i * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .expect("threads join");
        assert_eq!(total, 60);
    }
}
