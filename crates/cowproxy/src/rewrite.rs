//! Per-epoch memoization of the proxy's generated SQL (the rewrite cache).
//!
//! Every data call through [`crate::CowProxy`] rewrites the caller's
//! operation into plain SQL over primary tables, COW views or delta
//! tables. The rewrite is a pure function of the *shape* of the call —
//! the view, the table, the column list, the WHERE/ORDER BY text — plus
//! the proxy's current COW topology (which deltas and COW views exist).
//! The topology only changes at coarse-grained events: a COW fork, a
//! volatile clear/commit, provider DDL, or view registration. The cache
//! therefore keys entries by call shape and stamps them with a *fork
//! epoch*; any topology change bumps the epoch and implicitly drops every
//! cached rewrite.
//!
//! Cached SQL is a string (plus the resolved target relation and the
//! footnote-5 appended-column count) — never a prepared [`maxoid_sqldb`]
//! statement handle. Execution still flows through
//! [`maxoid_sqldb::Database::execute`] / `query` with SQL text so the
//! logical journal records exactly what an uncached proxy would record;
//! statement-level caching happens inside the database's own plan cache.

use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Entry cap; the cache is cleared wholesale when it fills. Proxy
/// workloads have a small closed set of statement shapes (one per
/// provider API call site), so eviction is effectively never hit.
pub(crate) const REWRITE_CACHE_CAP: usize = 256;

/// Operation tags distinguishing cache keys across proxy entry points.
pub(crate) mod op {
    pub const INSERT: u8 = 0;
    pub const UPDATE: u8 = 1;
    pub const DELETE: u8 = 2;
    pub const QUERY: u8 = 3;
}

/// A borrowed cache key: the shape of one proxy call. Hashing and
/// comparison work directly on the borrowed parts so a lookup allocates
/// nothing beyond the caller's transient `parts` slice.
#[derive(Debug)]
pub(crate) struct Key<'a> {
    /// One of the [`op`] tags.
    pub op: u8,
    /// Discriminant of the [`crate::DbView`] (primary/delegate/volatile/admin).
    pub view_tag: u8,
    /// Initiator identity, `""` for primary/admin views.
    pub initiator: &'a str,
    /// The table (or user view) named by the caller.
    pub table: &'a str,
    /// Op-specific shape strings (column names, WHERE text, ORDER BY
    /// text). Option-ness is encoded by the caller with explicit tag
    /// parts so `None` and `Some("")` key differently.
    pub parts: &'a [&'a str],
    /// Op-specific count (e.g. SET-column count) disambiguating the
    /// `parts` layout.
    pub num: i64,
    /// Second op-specific number (e.g. encoded LIMIT).
    pub num2: i64,
}

impl Key<'_> {
    fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.op.hash(&mut h);
        self.view_tag.hash(&mut h);
        self.initiator.hash(&mut h);
        self.table.hash(&mut h);
        self.parts.len().hash(&mut h);
        for p in self.parts {
            p.hash(&mut h);
        }
        self.num.hash(&mut h);
        self.num2.hash(&mut h);
        h.finish()
    }

    fn matches(&self, e: &Entry) -> bool {
        self.op == e.op
            && self.view_tag == e.view_tag
            && self.num == e.num
            && self.num2 == e.num2
            && self.initiator == e.initiator
            && self.table == e.table
            && self.parts.len() == e.parts.len()
            && self.parts.iter().zip(&e.parts).all(|(a, b)| *a == b)
    }
}

/// The memoized rewrite of one call shape.
#[derive(Debug, Clone)]
pub(crate) struct Rewrite {
    /// The relation the call resolved to (primary table, COW view or
    /// delta table).
    pub target: Arc<str>,
    /// The generated SQL text.
    pub sql: Arc<str>,
    /// Footnote-5 ORDER BY columns appended to the projection (queries
    /// only); the result set is truncated by this many columns.
    pub appended: usize,
    /// Whether resolution rewrote a delegate read onto a COW view (so a
    /// hit replays the `cowproxy.view_rewrites` counter the uncached
    /// path would have bumped).
    pub rewrote: bool,
}

#[derive(Debug)]
struct Entry {
    epoch: u64,
    op: u8,
    view_tag: u8,
    initiator: String,
    table: String,
    parts: Vec<String>,
    num: i64,
    num2: i64,
    rewrite: Rewrite,
}

/// The per-proxy rewrite cache. Interior-mutable because queries take
/// `&CowProxy`.
#[derive(Debug, Default)]
pub(crate) struct RewriteCache {
    disabled: Cell<bool>,
    epoch: Cell<u64>,
    entries: RefCell<HashMap<u64, Entry>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl RewriteCache {
    pub(crate) fn enabled(&self) -> bool {
        !self.disabled.get()
    }

    /// Toggles the cache; disabling drops every entry so re-enabling
    /// starts cold.
    pub(crate) fn set_enabled(&self, on: bool) {
        self.disabled.set(!on);
        if !on {
            self.entries.borrow_mut().clear();
        }
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Advances the fork epoch, logically invalidating every cached
    /// rewrite. Entries are dropped eagerly; the per-entry epoch stamp is
    /// belt and braces against reuse across a bump.
    pub(crate) fn bump_epoch(&self) {
        self.epoch.set(self.epoch.get().wrapping_add(1));
        self.entries.borrow_mut().clear();
    }

    pub(crate) fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    pub(crate) fn lookup(&self, key: &Key<'_>) -> Option<Rewrite> {
        if self.disabled.get() {
            return None;
        }
        let entries = self.entries.borrow();
        if let Some(e) = entries.get(&key.fingerprint()) {
            if e.epoch == self.epoch.get() && key.matches(e) {
                self.hits.set(self.hits.get() + 1);
                maxoid_obs::counter_add("cowproxy.rewrite_cache_hits", 1);
                return Some(e.rewrite.clone());
            }
        }
        self.misses.set(self.misses.get() + 1);
        maxoid_obs::counter_add("cowproxy.rewrite_cache_misses", 1);
        None
    }

    pub(crate) fn insert(&self, key: &Key<'_>, rewrite: Rewrite) {
        if self.disabled.get() {
            return;
        }
        let mut entries = self.entries.borrow_mut();
        if entries.len() >= REWRITE_CACHE_CAP {
            entries.clear();
        }
        entries.insert(
            key.fingerprint(),
            Entry {
                epoch: self.epoch.get(),
                op: key.op,
                view_tag: key.view_tag,
                initiator: key.initiator.to_string(),
                table: key.table.to_string(),
                parts: key.parts.iter().map(|p| p.to_string()).collect(),
                num: key.num,
                num2: key.num2,
                rewrite,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw(sql: &str) -> Rewrite {
        Rewrite { target: "t".into(), sql: sql.into(), appended: 0, rewrote: false }
    }

    fn key<'a>(op_: u8, table: &'a str, parts: &'a [&'a str]) -> Key<'a> {
        Key { op: op_, view_tag: 1, initiator: "A", table, parts, num: 0, num2: 0 }
    }

    #[test]
    fn hit_after_insert() {
        let c = RewriteCache::default();
        let parts = ["word", "frequency"];
        c.insert(&key(op::INSERT, "words", &parts), rw("INSERT ..."));
        let got = c.lookup(&key(op::INSERT, "words", &parts)).expect("hit");
        assert_eq!(&*got.sql, "INSERT ...");
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn shape_differences_miss() {
        let c = RewriteCache::default();
        let parts = ["word"];
        c.insert(&key(op::INSERT, "words", &parts), rw("a"));
        // Different op, table, parts, view tag or initiator all miss.
        assert!(c.lookup(&key(op::UPDATE, "words", &parts)).is_none());
        assert!(c.lookup(&key(op::INSERT, "other", &parts)).is_none());
        assert!(c.lookup(&key(op::INSERT, "words", &["freq"])).is_none());
        let mut k = key(op::INSERT, "words", &parts);
        k.view_tag = 2;
        assert!(c.lookup(&k).is_none());
        let mut k = key(op::INSERT, "words", &parts);
        k.initiator = "B";
        assert!(c.lookup(&k).is_none());
        let mut k = key(op::INSERT, "words", &parts);
        k.num = 7;
        assert!(c.lookup(&k).is_none());
    }

    #[test]
    fn epoch_bump_invalidates() {
        let c = RewriteCache::default();
        let parts = ["word"];
        c.insert(&key(op::QUERY, "words", &parts), rw("SELECT ..."));
        assert!(c.lookup(&key(op::QUERY, "words", &parts)).is_some());
        c.bump_epoch();
        assert!(c.lookup(&key(op::QUERY, "words", &parts)).is_none());
    }

    #[test]
    fn disabled_cache_bypasses() {
        let c = RewriteCache::default();
        let parts = ["word"];
        c.set_enabled(false);
        c.insert(&key(op::QUERY, "words", &parts), rw("x"));
        assert!(c.lookup(&key(op::QUERY, "words", &parts)).is_none());
        // Disabled lookups count neither hits nor misses.
        assert_eq!(c.stats(), (0, 0));
        c.set_enabled(true);
        assert!(c.lookup(&key(op::QUERY, "words", &parts)).is_none());
        assert_eq!(c.stats(), (0, 1));
    }
}
