//! Naming scheme for proxy-managed objects.
//!
//! The proxy derives delta-table, COW-view and trigger names from the
//! primary table and the initiator, matching the paper's Figure 6
//! (`tab1_delta_A`, `tab1_view_A`, `tab1_A_update`).

/// Primary keys of rows inserted by delegates start at this offset so they
/// never collide with public rows (paper §5.2: "the delta table's primary
/// key starts at a large number N"). Figure 6 shows the first delegate
/// insert as 10000001.
pub const DELTA_PK_START: i64 = 10_000_001;

/// Sanitizes an initiator identity (Android package name) into an SQL
/// identifier fragment.
pub fn sanitize(initiator: &str) -> String {
    initiator.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Name of the per-initiator delta table for a primary table.
pub fn delta_table(table: &str, initiator: &str) -> String {
    format!("{table}_delta_{}", sanitize(initiator))
}

/// Name of the per-initiator COW view for a table or user-defined view.
pub fn cow_view(table: &str, initiator: &str) -> String {
    format!("{table}_view_{}", sanitize(initiator))
}

/// Name of an INSTEAD OF trigger on a COW view.
pub fn trigger(table: &str, initiator: &str, event: &str) -> String {
    format!("{table}_{}_{event}", sanitize(initiator))
}

/// Name of the mirrored secondary index on a per-initiator delta table.
///
/// Index names share one namespace, so the base index name is suffixed the
/// same way delta tables are (`idx_word` -> `idx_word_delta_A`).
pub fn delta_index(index: &str, initiator: &str) -> String {
    format!("{index}_delta_{}", sanitize(initiator))
}

/// The whiteout marker column added to every delta table.
pub const WHITEOUT_COL: &str = "_whiteout";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_names() {
        assert_eq!(delta_table("tab1", "A"), "tab1_delta_A");
        assert_eq!(cow_view("tab1", "A"), "tab1_view_A");
        assert_eq!(trigger("tab1", "A", "update"), "tab1_A_update");
    }

    #[test]
    fn delta_index_names_follow_delta_tables() {
        assert_eq!(delta_index("idx_word", "A"), "idx_word_delta_A");
        assert_eq!(
            delta_index("idx_status", "com.android.browser"),
            "idx_status_delta_com_android_browser"
        );
    }

    #[test]
    fn package_names_sanitized() {
        assert_eq!(sanitize("com.dropbox.android"), "com_dropbox_android");
        assert_eq!(
            delta_table("downloads", "com.android.browser"),
            "downloads_delta_com_android_browser"
        );
    }
}
