//! Naming scheme for proxy-managed objects.
//!
//! The proxy derives delta-table, COW-view and trigger names from the
//! primary table and the initiator, matching the paper's Figure 6
//! (`tab1_delta_A`, `tab1_view_A`, `tab1_A_update`).

/// Primary keys of rows inserted by delegates start at this offset so they
/// never collide with public rows (paper §5.2: "the delta table's primary
/// key starts at a large number N"). Figure 6 shows the first delegate
/// insert as 10000001.
pub const DELTA_PK_START: i64 = 10_000_001;

/// Sanitizes an initiator identity (Android package name) into an SQL
/// identifier fragment.
pub fn sanitize(initiator: &str) -> String {
    initiator.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Name of the per-initiator delta table for a primary table.
pub fn delta_table(table: &str, initiator: &str) -> String {
    format!("{table}_delta_{}", sanitize(initiator))
}

/// Name of the per-initiator COW view for a table or user-defined view.
pub fn cow_view(table: &str, initiator: &str) -> String {
    format!("{table}_view_{}", sanitize(initiator))
}

/// Name of an INSTEAD OF trigger on a COW view.
pub fn trigger(table: &str, initiator: &str, event: &str) -> String {
    format!("{table}_{}_{event}", sanitize(initiator))
}

/// Name of the mirrored secondary index on a per-initiator delta table.
///
/// Index names share one namespace, so the base index name is suffixed the
/// same way delta tables are (`idx_word` -> `idx_word_delta_A`).
pub fn delta_index(index: &str, initiator: &str) -> String {
    format!("{index}_delta_{}", sanitize(initiator))
}

/// The whiteout marker column added to every delta table.
pub const WHITEOUT_COL: &str = "_whiteout";

/// An interner for proxy-managed object names.
///
/// The free functions above allocate a fresh `String` on every call; on
/// the proxy's hot paths the same `(table, initiator)` pair is resolved
/// over and over. The interner memoizes each derived name as an
/// `Arc<str>` so steady-state resolution is a hash lookup plus a
/// refcount bump. Interior-mutable because reads go through `&CowProxy`.
#[derive(Debug, Default)]
pub struct NameInterner {
    map: std::cell::RefCell<
        std::collections::HashMap<u64, Vec<(u8, String, String, std::sync::Arc<str>)>>,
    >,
}

const K_DELTA: u8 = 0;
const K_VIEW: u8 = 1;
const K_TRIG_INSERT: u8 = 2;
const K_TRIG_UPDATE: u8 = 3;
const K_TRIG_DELETE: u8 = 4;
const K_DELTA_INDEX: u8 = 5;

impl NameInterner {
    fn intern(
        &self,
        kind: u8,
        a: &str,
        b: &str,
        make: impl FnOnce() -> String,
    ) -> std::sync::Arc<str> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        kind.hash(&mut h);
        a.hash(&mut h);
        b.hash(&mut h);
        let fp = h.finish();
        let mut map = self.map.borrow_mut();
        let bucket = map.entry(fp).or_default();
        if let Some((_, _, _, name)) =
            bucket.iter().find(|(k, ka, kb, _)| *k == kind && ka == a && kb == b)
        {
            return name.clone();
        }
        let name: std::sync::Arc<str> = make().into();
        bucket.push((kind, a.to_string(), b.to_string(), name.clone()));
        name
    }

    /// Interned [`delta_table`].
    pub fn delta_table(&self, table: &str, initiator: &str) -> std::sync::Arc<str> {
        self.intern(K_DELTA, table, initiator, || delta_table(table, initiator))
    }

    /// Interned [`cow_view`].
    pub fn cow_view(&self, table: &str, initiator: &str) -> std::sync::Arc<str> {
        self.intern(K_VIEW, table, initiator, || cow_view(table, initiator))
    }

    /// Interned [`trigger`]; `event` must be one of `insert`, `update`,
    /// `delete`.
    pub fn trigger(&self, table: &str, initiator: &str, event: &str) -> std::sync::Arc<str> {
        let kind = match event {
            "insert" => K_TRIG_INSERT,
            "update" => K_TRIG_UPDATE,
            _ => K_TRIG_DELETE,
        };
        self.intern(kind, table, initiator, || trigger(table, initiator, event))
    }

    /// Interned [`delta_index`].
    pub fn delta_index(&self, index: &str, initiator: &str) -> std::sync::Arc<str> {
        self.intern(K_DELTA_INDEX, index, initiator, || delta_index(index, initiator))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_names() {
        assert_eq!(delta_table("tab1", "A"), "tab1_delta_A");
        assert_eq!(cow_view("tab1", "A"), "tab1_view_A");
        assert_eq!(trigger("tab1", "A", "update"), "tab1_A_update");
    }

    #[test]
    fn delta_index_names_follow_delta_tables() {
        assert_eq!(delta_index("idx_word", "A"), "idx_word_delta_A");
        assert_eq!(
            delta_index("idx_status", "com.android.browser"),
            "idx_status_delta_com_android_browser"
        );
    }

    #[test]
    fn interner_matches_free_functions() {
        let i = NameInterner::default();
        assert_eq!(&*i.delta_table("tab1", "A"), delta_table("tab1", "A"));
        assert_eq!(&*i.cow_view("tab1", "A"), cow_view("tab1", "A"));
        assert_eq!(&*i.trigger("tab1", "A", "update"), trigger("tab1", "A", "update"));
        assert_eq!(&*i.delta_index("idx_word", "A"), delta_index("idx_word", "A"));
        // Repeated resolution returns the same allocation.
        let first = i.delta_table("tab1", "A");
        let second = i.delta_table("tab1", "A");
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        // Different kinds with equal inputs stay distinct.
        assert_ne!(&*i.trigger("tab1", "A", "insert"), &*i.trigger("tab1", "A", "delete"));
    }

    #[test]
    fn package_names_sanitized() {
        assert_eq!(sanitize("com.dropbox.android"), "com_dropbox_android");
        assert_eq!(
            delta_table("downloads", "com.android.browser"),
            "downloads_delta_com_android_browser"
        );
    }
}
