//! The copy-on-write proxy layer (paper §5.2).
//!
//! Content providers talk to [`CowProxy`] exactly as they would to SQLite:
//! they create primary tables and user-defined views, then issue
//! insert/update/query/delete calls. The extra input is a [`DbView`]
//! describing *whose* view of the data the call operates on; the proxy
//! routes the operation to primary tables, per-initiator COW views, delta
//! tables, or the administrative view accordingly, creating delta tables,
//! COW views and INSTEAD OF triggers on demand.

use crate::hierarchy::ViewHierarchy;
use crate::names::{
    cow_view, delta_table, sanitize, trigger, NameInterner, DELTA_PK_START, WHITEOUT_COL,
};
use crate::reader::{CowPublished, ReadSlot};
use crate::rewrite::{op, Key, Rewrite, RewriteCache};
use crate::sqlgen;
use maxoid_sqldb::{Affinity, Database, FlattenPolicy, ResultSet, SqlError, SqlResult, Value};
use std::sync::Arc;

/// Which Maxoid view of provider state an operation targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbView {
    /// Primary tables: initiators using normal URIs, and all apps when no
    /// confinement is active.
    Primary,
    /// The merged copy-on-write view for delegates of `initiator`.
    Delegate {
        /// The initiator the calling delegate runs on behalf of.
        initiator: String,
    },
    /// Only the volatile records of `initiator` (the provider's `tmp`
    /// URIs), excluding whiteouts.
    Volatile {
        /// The initiator whose volatile state is addressed.
        initiator: String,
    },
    /// The administrative view: all public and volatile records, with
    /// provenance columns. Used by providers with active background work
    /// (Downloads, Media) that must track every record.
    Admin,
}

/// Options for a proxy query.
#[derive(Debug, Clone, Default)]
pub struct QueryOpts {
    /// Columns to project; empty means `*`.
    pub columns: Vec<String>,
    /// WHERE clause text (without the keyword), e.g. `"_id = ?"`.
    pub where_clause: Option<String>,
    /// ORDER BY text (without the keyword), e.g. `"word DESC"`.
    pub order_by: Option<String>,
    /// LIMIT row count.
    pub limit: Option<i64>,
}

/// Provenance column added by [`CowProxy::admin_query`].
pub const ADMIN_STATE_COL: &str = "_maxoid_state";
/// Initiator column added by [`CowProxy::admin_query`] (NULL for public).
pub const ADMIN_INITIATOR_COL: &str = "_maxoid_initiator";

/// The COW proxy: an embedded database plus per-initiator volatile state.
#[derive(Debug)]
pub struct CowProxy {
    db: Database,
    hierarchy: ViewHierarchy,
    /// Initiators that currently have at least one delta table.
    initiators: Vec<String>,
    /// Interned delta/view/trigger names (hot-path allocation killer).
    names: NameInterner,
    /// Per-fork-epoch memo of generated SQL keyed by call shape.
    rewrite: RewriteCache,
    /// The published-snapshot slot served to lock-free readers.
    read_slot: ReadSlot,
}

// Threading contract: like the `Database` it wraps, a live `CowProxy` is
// `Send`-not-`Sync`. Each provider authority owns one proxy behind its
// per-authority write lock in the resolver table; *mutations* are
// per-authority serialized, never parallel within one proxy. Reads are
// different since MVCC: the proxy publishes immutable snapshots into a
// shared [`ReadSlot`] (see [`CowProxy::publish_read`]) and any number of
// threads query them concurrently without the write lock.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<CowProxy>();
};

impl Default for CowProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl CowProxy {
    /// Creates a proxy over an empty database with the default planner
    /// policy (SQLite 3.8.6 flattening, as ported by the paper's authors).
    pub fn new() -> Self {
        Self::with_policy(FlattenPolicy::Sqlite386)
    }

    /// Creates a proxy with a specific planner policy (for ablations).
    pub fn with_policy(policy: FlattenPolicy) -> Self {
        CowProxy {
            db: Database::with_policy(policy),
            hierarchy: ViewHierarchy::default(),
            initiators: Vec::new(),
            names: NameInterner::default(),
            rewrite: RewriteCache::default(),
            read_slot: ReadSlot::new(),
        }
    }

    /// Direct access to the underlying database (administrative escape
    /// hatch for providers and tests).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database.
    ///
    /// The borrower may run arbitrary DDL, so the rewrite cache is
    /// conservatively invalidated.
    pub fn db_mut(&mut self) -> &mut Database {
        self.retract_read();
        self.rewrite.bump_epoch();
        &mut self.db
    }

    /// Runs provider schema DDL (CREATE TABLE statements) directly.
    pub fn execute_batch(&mut self, sql: &str) -> SqlResult<()> {
        self.retract_read();
        self.rewrite.bump_epoch();
        self.db.execute_batch(sql)
    }

    /// Registers a user-defined SQL view (e.g. Media's `images` over
    /// `files`). The proxy records its dependencies so per-initiator COW
    /// views can be built for the whole hierarchy (paper Figure 5).
    pub fn register_user_view(&mut self, sql: &str) -> SqlResult<()> {
        self.retract_read();
        self.rewrite.bump_epoch();
        self.hierarchy.register(&mut self.db, sql)
    }

    /// Enables or disables the rewrite cache (on by default). Used by the
    /// cache-equivalence tests and the ablation benchmarks.
    pub fn set_rewrite_cache(&mut self, on: bool) {
        self.retract_read();
        self.rewrite.set_enabled(on);
    }

    // -----------------------------------------------------------------
    // Snapshot publication (the MVCC read path).
    // -----------------------------------------------------------------

    /// A cloneable handle to this proxy's published-snapshot slot.
    ///
    /// The slot is how lock-free readers reach the proxy: the resolver's
    /// read handles hold one and serve queries from it without the
    /// authority's write lock (see [`ReadSlot::try_query`]).
    pub fn read_slot(&self) -> ReadSlot {
        self.read_slot.clone()
    }

    /// Publishes the current committed database state into the read slot.
    ///
    /// Call at quiescent points — after a mutation has fully settled; the
    /// resolver does so after every locked provider call. Publication is
    /// memoized end to end: an unchanged `(commit stamp, fork epoch)`
    /// pair costs two atomic loads and a read-lock probe. When the
    /// database cannot snapshot (a transaction is open, or a table is
    /// paged onto the block tier) the slot is retracted instead, sending
    /// readers down the locked path.
    pub fn publish_read(&mut self) {
        let _sp = maxoid_obs::span("cowproxy.publish");
        match self.db.begin_read() {
            Some(snap) => {
                self.read_slot.publish(CowPublished { snap, fork_epoch: self.rewrite.epoch() })
            }
            None => self.read_slot.retract(),
        }
    }

    /// Retracts the published snapshot. Every `&mut self` entry point
    /// calls this *before* touching state, so readers never race a
    /// mutation in flight: they see the prior committed snapshot or fall
    /// back to the locked path.
    fn retract_read(&self) {
        let _sp = maxoid_obs::span("cowproxy.retract");
        self.read_slot.retract();
    }

    /// Whether the rewrite cache is active.
    pub fn rewrite_cache_enabled(&self) -> bool {
        self.rewrite.enabled()
    }

    /// `(hits, misses)` of the rewrite cache since construction.
    pub fn rewrite_cache_stats(&self) -> (u64, u64) {
        self.rewrite.stats()
    }

    /// The current fork epoch. Bumped by any event that can change COW
    /// topology: a fork, a volatile clear, provider DDL, user-view
    /// registration or mutable database access.
    pub fn fork_epoch(&self) -> u64 {
        self.rewrite.epoch()
    }

    /// Lists initiators that currently hold volatile records.
    pub fn initiators_with_volatile(&self) -> &[String] {
        &self.initiators
    }

    /// Attaches a journal sink: every mutation executed through the
    /// proxy's database is recorded as a logical SQL record attributed to
    /// component `name` (conventionally `db.<authority>`).
    pub fn attach_journal(&mut self, sink: maxoid_journal::SinkRef, name: &str) {
        self.retract_read();
        self.db.set_journal(sink, name);
    }

    /// Wraps a database rebuilt by journal replay, rediscovering which
    /// initiators hold volatile state from the `<table>_delta_<initiator>`
    /// naming convention.
    ///
    /// Initiator identities recovered this way are the *sanitized*,
    /// lowercased forms (sanitization is lossy). Those re-sanitize to
    /// themselves, so every proxy operation keeps addressing the same
    /// delta tables. After adopting, re-register the provider's
    /// user-defined views (existing replayed definitions are adopted, not
    /// recreated) and then call [`CowProxy::rebuild_cow_views`].
    pub fn adopt(db: Database) -> Self {
        let mut initiators: Vec<String> = Vec::new();
        for table in db.table_names() {
            if let Some(pos) = table.rfind("_delta_") {
                let initiator = &table[pos + "_delta_".len()..];
                if !initiator.is_empty() && !initiators.iter().any(|i| i == initiator) {
                    initiators.push(initiator.to_string());
                }
            }
        }
        CowProxy {
            db,
            hierarchy: ViewHierarchy::default(),
            initiators,
            names: NameInterner::default(),
            rewrite: RewriteCache::default(),
            read_slot: ReadSlot::new(),
        }
    }

    /// Rebuilds the per-initiator COW instances of registered user views.
    ///
    /// Those views are created from rewritten ASTs and deliberately never
    /// journaled (they are derived state); after recovery they are missing
    /// and `read_relation` would silently fall back to the plain user
    /// view, hiding an initiator's delta rows. This rebuilds them eagerly
    /// for every initiator with volatile state — a superset of the
    /// on-demand set that existed before the crash, which is harmless: a
    /// COW view whose bases carry no deltas reads identically to the
    /// plain view, and `clear_volatile` drops them all the same way.
    pub fn rebuild_cow_views(&mut self) -> SqlResult<()> {
        self.retract_read();
        self.rewrite.bump_epoch();
        let initiators = self.initiators.clone();
        for initiator in &initiators {
            for view in self.hierarchy.view_names() {
                self.hierarchy.ensure_cow_views(&mut self.db, &view, initiator)?;
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // View plumbing.
    // -----------------------------------------------------------------

    /// Returns true if `initiator` has a delta table for `table`.
    pub fn has_delta(&self, table: &str, initiator: &str) -> bool {
        self.db.has_table(&self.names.delta_table(table, initiator))
    }

    /// Total rows currently held in `initiator`'s delta tables across
    /// every base table (whiteouts included — they occupy space too).
    /// Per-tenant accounting hook for fleet-scale stats (DESIGN.md §4.14).
    pub fn delta_row_count(&self, initiator: &str) -> usize {
        let suffix = format!("_delta_{}", sanitize(initiator)).to_ascii_lowercase();
        self.db
            .table_names()
            .into_iter()
            .filter(|t| t.ends_with(&suffix))
            .map(|t| self.db.table(&t).map(|tb| tb.len()).unwrap_or(0))
            .sum()
    }

    /// Ensures delta table, COW view and triggers exist for
    /// `(table, initiator)`; created on demand at the first volatile write
    /// (paper: "Delta tables and COW views are created on demand").
    pub fn ensure_cow(&mut self, table: &str, initiator: &str) -> SqlResult<()> {
        if self.has_delta(table, initiator) {
            return Ok(());
        }
        self.retract_read();
        if !self.db.has_table(table) {
            // User-defined view: ensure COW views exist for its bases.
            if self.db.has_view(table) {
                let creates = !self.db.has_view(&self.names.cow_view(table, initiator));
                let out = self.hierarchy.ensure_cow_views(&mut self.db, table, initiator);
                if creates && out.is_ok() {
                    self.rewrite.bump_epoch();
                }
                return out;
            }
            return Err(SqlError::NoSuchTable(table.to_string()));
        }
        let mut sp = maxoid_obs::span("cowproxy.cow_fork");
        sp.field_with("table", || table.to_string());
        sp.field_with("initiator", || initiator.to_string());
        maxoid_obs::counter_add("cowproxy.cow_forks", 1);
        let (columns, column_defs, pk, base_indexes) = {
            let t = self.db.table(table)?;
            let columns = t.schema.column_names();
            // Mirror every base-table secondary index onto the delta table
            // so index access paths work on both arms of the COW view.
            let base_indexes: Vec<(String, String)> = t
                .indexes()
                .iter()
                .map(|ix| (ix.name().to_string(), t.schema.columns[ix.column()].name.clone()))
                .collect();
            let defs: Vec<String> = t
                .schema
                .columns
                .iter()
                .map(|c| {
                    let ty = match c.affinity {
                        Affinity::Integer => "INTEGER",
                        Affinity::Real => "REAL",
                        Affinity::Text => "TEXT",
                        Affinity::Blob => "BLOB",
                        Affinity::Numeric => "NUMERIC",
                    };
                    let mut d = format!("{} {ty}", c.name);
                    if c.primary_key {
                        d.push_str(" PRIMARY KEY");
                    }
                    d
                })
                .collect();
            let pk =
                t.schema.pk_column.map(|i| t.schema.columns[i].name.clone()).ok_or_else(|| {
                    SqlError::Unsupported(format!(
                        "COW proxy requires an INTEGER PRIMARY KEY on {table}"
                    ))
                })?;
            (columns, defs, pk, base_indexes)
        };
        // The five DDL objects must appear atomically: a half-built COW
        // structure would route delegate writes into a view without its
        // confinement triggers.
        self.db.begin()?;
        let build = (|| -> SqlResult<()> {
            self.db.execute_batch(&sqlgen::delta_table_sql(table, initiator, &column_defs))?;
            // Expressed as SQL (rather than a direct `set_pk_start` call) so
            // the mutation lands in the logical journal and replayed delta
            // tables key from the same offset.
            self.db.execute(
                &format!(
                    "ALTER TABLE {} ROWID START {DELTA_PK_START}",
                    delta_table(table, initiator)
                ),
                &[],
            )?;
            for (index, column) in &base_indexes {
                self.db.execute_batch(&sqlgen::delta_index_sql(index, table, initiator, column))?;
            }
            self.db.execute_batch(&sqlgen::cow_view_sql(table, initiator, &columns, &pk))?;
            self.db.execute_batch(&sqlgen::insert_trigger_sql(table, initiator, &columns))?;
            self.db.execute_batch(&sqlgen::update_trigger_sql(table, initiator, &columns))?;
            self.db.execute_batch(&sqlgen::delete_trigger_sql(table, initiator, &columns))
        })();
        match build {
            Ok(()) => self.db.commit()?,
            Err(e) => {
                self.db.rollback()?;
                return Err(e);
            }
        }
        // The fork changed COW topology: cached rewrites that resolved
        // reads to the primary table are now stale for this initiator.
        self.rewrite.bump_epoch();
        if !self.initiators.iter().any(|i| i == initiator) {
            self.initiators.push(initiator.to_string());
        }
        Ok(())
    }

    /// Resolves the relation name an operation should target for a read.
    ///
    /// Reads before the first volatile write see the primary table
    /// unchanged (unilateral copy-on-write: the fork happens on first
    /// write, not on delegate start).
    pub fn read_relation(&self, table: &str, view: &DbView) -> SqlResult<String> {
        self.read_relation_interned(table, view).map(|r| r.to_string())
    }

    /// [`CowProxy::read_relation`] returning the interned name; the hot
    /// query path clones an `Arc<str>` instead of reallocating.
    fn read_relation_interned(&self, table: &str, view: &DbView) -> SqlResult<Arc<str>> {
        relation_for_read(&self.names, &self.db, table, view)
    }

    // -----------------------------------------------------------------
    // The SQLite-shaped data API.
    // -----------------------------------------------------------------

    /// Inserts a row; returns the new row's id.
    ///
    /// For delegates the row lands in the initiator's delta table via the
    /// INSTEAD OF INSERT trigger, keyed from the offset `N`. For
    /// `DbView::Volatile` (an initiator's `isVolatile` insert, §6.1 API 4)
    /// the row is written to the initiator's own delta table directly.
    pub fn insert(
        &mut self,
        view: &DbView,
        table: &str,
        values: &[(&str, Value)],
    ) -> SqlResult<i64> {
        let mut sp = maxoid_obs::span("cowproxy.insert");
        sp.field_with("table", || table.to_string());
        sp.field_with("view", || format!("{view:?}"));
        self.retract_read();
        let (cols, params) = split_values(values);
        let (view_tag, vinit) = view_key(view);
        let key = Key {
            op: op::INSERT,
            view_tag,
            initiator: vinit,
            table,
            parts: &cols,
            num: 0,
            num2: 0,
        };
        match view {
            DbView::Primary | DbView::Admin => {
                let sql = match self.rewrite.lookup(&key) {
                    Some(rw) => rw.sql,
                    None => {
                        let sql: Arc<str> = insert_sql(table, &cols).into();
                        let rw = Rewrite {
                            target: Arc::from(table),
                            sql: sql.clone(),
                            appended: 0,
                            rewrote: false,
                        };
                        self.rewrite.insert(&key, rw);
                        sql
                    }
                };
                let out = self.db.execute(&sql, &params)?;
                out.last_insert_id.ok_or_else(|| {
                    SqlError::Unsupported(format!("insert into {table} produced no rowid"))
                })
            }
            DbView::Delegate { initiator } => {
                // A cache hit proves the COW structure existed at this
                // epoch (the fork itself bumps it), so ensure_cow's
                // existence probes can be skipped entirely.
                let hit = self.rewrite.lookup(&key);
                if hit.is_none() {
                    self.ensure_cow(table, initiator)?;
                }
                let delta = self.names.delta_table(table, initiator);
                let before = self.db.table(&delta)?.next_rowid();
                let sql = match hit {
                    Some(rw) => rw.sql,
                    None => {
                        let target = self.names.cow_view(table, initiator);
                        let sql: Arc<str> = insert_sql(&target, &cols).into();
                        let rw = Rewrite { target, sql: sql.clone(), appended: 0, rewrote: false };
                        self.rewrite.insert(&key, rw);
                        sql
                    }
                };
                self.db.execute(&sql, &params)?;
                // The trigger inserted into the delta table; recover the id.
                let after = self.db.table(&delta)?.next_rowid();
                Ok(if after > before { after - 1 } else { before })
            }
            DbView::Volatile { initiator } => {
                let hit = self.rewrite.lookup(&key);
                if hit.is_none() {
                    self.ensure_cow(table, initiator)?;
                }
                let delta = self.names.delta_table(table, initiator);
                let mut params = params;
                params.push(Value::Integer(0));
                let sql = match hit {
                    Some(rw) => rw.sql,
                    None => {
                        let mut wcols = cols.clone();
                        wcols.push(WHITEOUT_COL);
                        let sql: Arc<str> = insert_sql(&delta, &wcols).into();
                        let rw = Rewrite {
                            target: delta.clone(),
                            sql: sql.clone(),
                            appended: 0,
                            rewrote: false,
                        };
                        self.rewrite.insert(&key, rw);
                        sql
                    }
                };
                let out = self.db.execute(&sql, &params)?;
                out.last_insert_id.ok_or_else(|| {
                    SqlError::Unsupported(format!("insert into {delta} produced no rowid"))
                })
            }
        }
    }

    /// Updates rows matching `where_clause`; returns the affected count.
    pub fn update(
        &mut self,
        view: &DbView,
        table: &str,
        sets: &[(&str, Value)],
        where_clause: Option<&str>,
        where_params: &[Value],
    ) -> SqlResult<usize> {
        let mut sp = maxoid_obs::span("cowproxy.update");
        sp.field_with("table", || table.to_string());
        sp.field_with("view", || format!("{view:?}"));
        self.retract_read();
        let mut parts: Vec<&str> = sets.iter().map(|(c, _)| *c).collect();
        parts.push(if where_clause.is_some() { "1" } else { "0" });
        parts.push(where_clause.unwrap_or(""));
        let (view_tag, vinit) = view_key(view);
        let key = Key {
            op: op::UPDATE,
            view_tag,
            initiator: vinit,
            table,
            parts: &parts,
            num: sets.len() as i64,
            num2: 0,
        };
        let sql: Arc<str> = match self.rewrite.lookup(&key) {
            Some(rw) => rw.sql,
            None => {
                let target: Arc<str> = match view {
                    DbView::Primary | DbView::Admin => Arc::from(table),
                    DbView::Delegate { initiator } => {
                        self.ensure_cow(table, initiator)?;
                        self.names.cow_view(table, initiator)
                    }
                    DbView::Volatile { initiator } => self.names.delta_table(table, initiator),
                };
                if matches!(view, DbView::Volatile { .. }) && !self.db.has_table(&target) {
                    return Ok(0);
                }
                // SET parameters come first, then WHERE parameters; the
                // statement uses explicit indices so one parameter list
                // serves both.
                let mut sql = format!("UPDATE {target} SET ");
                for (i, (c, _)) in sets.iter().enumerate() {
                    if i > 0 {
                        sql.push_str(", ");
                    }
                    sql.push_str(&format!("{c} = ?{}", i + 1));
                }
                if let Some(w) = where_clause {
                    sql.push_str(" WHERE ");
                    sql.push_str(&renumber_params(w, sets.len()));
                }
                let sql: Arc<str> = sql.into();
                let rw = Rewrite { target, sql: sql.clone(), appended: 0, rewrote: false };
                self.rewrite.insert(&key, rw);
                sql
            }
        };
        let mut params: Vec<Value> = sets.iter().map(|(_, v)| v.clone()).collect();
        if where_clause.is_some() {
            params.extend(where_params.iter().cloned());
        }
        Ok(self.db.execute(&sql, &params)?.rows_affected)
    }

    /// Deletes rows matching `where_clause`; returns the affected count.
    ///
    /// Through a delegate view this creates whiteout records rather than
    /// touching public rows.
    pub fn delete(
        &mut self,
        view: &DbView,
        table: &str,
        where_clause: Option<&str>,
        where_params: &[Value],
    ) -> SqlResult<usize> {
        let mut sp = maxoid_obs::span("cowproxy.delete");
        sp.field_with("table", || table.to_string());
        sp.field_with("view", || format!("{view:?}"));
        self.retract_read();
        let parts = [if where_clause.is_some() { "1" } else { "0" }, where_clause.unwrap_or("")];
        let (view_tag, vinit) = view_key(view);
        let key = Key {
            op: op::DELETE,
            view_tag,
            initiator: vinit,
            table,
            parts: &parts,
            num: 0,
            num2: 0,
        };
        let sql: Arc<str> = match self.rewrite.lookup(&key) {
            Some(rw) => rw.sql,
            None => {
                let target: Arc<str> = match view {
                    DbView::Primary | DbView::Admin => Arc::from(table),
                    DbView::Delegate { initiator } => {
                        self.ensure_cow(table, initiator)?;
                        self.names.cow_view(table, initiator)
                    }
                    DbView::Volatile { initiator } => self.names.delta_table(table, initiator),
                };
                if matches!(view, DbView::Volatile { .. }) && !self.db.has_table(&target) {
                    return Ok(0);
                }
                let mut sql = format!("DELETE FROM {target}");
                if let Some(w) = where_clause {
                    sql.push_str(" WHERE ");
                    sql.push_str(w);
                }
                let sql: Arc<str> = sql.into();
                let rw = Rewrite { target, sql: sql.clone(), appended: 0, rewrote: false };
                self.rewrite.insert(&key, rw);
                sql
            }
        };
        Ok(self.db.execute(&sql, where_params)?.rows_affected)
    }

    /// Queries the selected view of a table (or user-defined view).
    ///
    /// Reproduces the paper's footnote-5 workaround: when the planner
    /// requires ORDER BY columns to be part of the selection for
    /// flattening, the proxy appends them to the projection and strips the
    /// extra columns from the result.
    pub fn query(
        &self,
        view: &DbView,
        table: &str,
        opts: &QueryOpts,
        params: &[Value],
    ) -> SqlResult<ResultSet> {
        cached_query(&self.rewrite, &self.names, &self.db, view, table, opts, params)
    }

    /// The administrative view (paper §5.2): every public and volatile
    /// record of `table` with provenance columns appended
    /// ([`ADMIN_STATE_COL`], [`ADMIN_INITIATOR_COL`], and `_whiteout`).
    pub fn admin_query(&self, table: &str) -> SqlResult<ResultSet> {
        let base = self.db.query(&format!("SELECT * FROM {table}"), &[])?;
        let mut columns = base.columns.clone();
        columns.push(ADMIN_STATE_COL.to_string());
        columns.push(ADMIN_INITIATOR_COL.to_string());
        columns.push(WHITEOUT_COL.to_string());
        let mut rows: Vec<Vec<Value>> = base
            .rows
            .into_iter()
            .map(|mut r| {
                r.push(Value::Text("public".into()));
                r.push(Value::Null);
                r.push(Value::Integer(0));
                r
            })
            .collect();
        for initiator in &self.initiators {
            let delta = delta_table(table, initiator);
            if !self.db.has_table(&delta) {
                continue;
            }
            let drs = self.db.query(&format!("SELECT * FROM {delta}"), &[])?;
            let wh_idx = drs
                .column_index(WHITEOUT_COL)
                .ok_or_else(|| SqlError::NoSuchColumn(WHITEOUT_COL.into()))?;
            for mut r in drs.rows {
                let wh = r.remove(wh_idx);
                r.push(Value::Text("volatile".into()));
                r.push(Value::Text(initiator.clone()));
                r.push(wh);
                rows.push(r);
            }
        }
        Ok(ResultSet { columns, rows })
    }

    /// Discards all volatile state of `initiator` across every table:
    /// drops its delta tables, COW views and triggers. This implements the
    /// initiator's "discard the entire Vol(A)" clean-up (§3.3) for
    /// provider state.
    pub fn clear_volatile(&mut self, initiator: &str) -> SqlResult<usize> {
        let mut sp = maxoid_obs::span("cowproxy.clear_volatile");
        sp.field_with("initiator", || initiator.to_string());
        self.retract_read();
        let suffix = format!("_delta_{}", sanitize(initiator));
        let doomed: Vec<String> = self
            .db
            .table_names()
            .into_iter()
            .filter(|t| t.ends_with(&suffix.to_ascii_lowercase()))
            .collect();
        let mut dropped = 0;
        for delta in &doomed {
            let table =
                delta.strip_suffix(&suffix.to_ascii_lowercase()).unwrap_or(delta).to_string();
            // Dropping the view drops its triggers too.
            self.db.execute_batch(&format!(
                "DROP VIEW IF EXISTS {}; DROP TABLE IF EXISTS {delta};",
                cow_view(&table, initiator)
            ))?;
            // Defensive: drop triggers individually in case the view name
            // was never created.
            for ev in ["insert", "update", "delete"] {
                self.db.execute_batch(&format!(
                    "DROP TRIGGER IF EXISTS {};",
                    trigger(&table, initiator, ev)
                ))?;
            }
            dropped += 1;
        }
        self.hierarchy.drop_initiator(&mut self.db, initiator)?;
        self.initiators.retain(|i| i != initiator);
        // Delta tables and COW views are gone; cached rewrites that
        // targeted them must not be replayed.
        self.rewrite.bump_epoch();
        Ok(dropped)
    }

    /// Commits one volatile row of `initiator` into the public table,
    /// replacing any public row with the same key. Returns true if a row
    /// was committed. This is the provider-side half of the initiator's
    /// selective commit (§3.3).
    pub fn commit_volatile_row(
        &mut self,
        initiator: &str,
        table: &str,
        id: i64,
    ) -> SqlResult<bool> {
        let mut sp = maxoid_obs::span("cowproxy.commit_volatile_row");
        sp.field_with("table", || table.to_string());
        sp.field_with("id", || id.to_string());
        self.retract_read();
        let delta = delta_table(table, initiator);
        if !self.db.has_table(&delta) {
            return Ok(false);
        }
        let rs = self.db.query(
            &format!("SELECT * FROM {delta} WHERE _id = ? AND {WHITEOUT_COL} = 0"),
            &[Value::Integer(id)],
        )?;
        let Some(row) = rs.rows.first() else { return Ok(false) };
        let public_cols = self.db.table(table)?.schema.column_names();
        let mut cols = Vec::new();
        let mut params = Vec::new();
        for (c, v) in rs.columns.iter().zip(row) {
            if public_cols.iter().any(|p| p.eq_ignore_ascii_case(c)) {
                cols.push(c.as_str());
                params.push(v.clone());
            }
        }
        let sql = format!(
            "INSERT OR REPLACE INTO {table} ({}) VALUES ({})",
            cols.join(", "),
            (1..=params.len()).map(|i| format!("?{i}")).collect::<Vec<_>>().join(", ")
        );
        self.db.execute(&sql, &params)?;
        Ok(true)
    }
}

/// Resolves the relation a read should target, given any database — the
/// live one under the authority lock or a frozen snapshot. Shared by
/// [`CowProxy::read_relation`] and the snapshot path in [`crate::reader`];
/// because the existence probes run against the passed database, a
/// snapshot read decides delta/COW-view routing *within* the snapshot
/// ("snapshot-to-snapshot"), never against newer live state.
pub(crate) fn relation_for_read(
    names: &NameInterner,
    db: &Database,
    table: &str,
    view: &DbView,
) -> SqlResult<Arc<str>> {
    match view {
        DbView::Primary | DbView::Admin => Ok(Arc::from(table)),
        DbView::Delegate { initiator } => {
            if db.has_table(&names.delta_table(table, initiator))
                || (db.has_view(table) && db.has_view(&names.cow_view(table, initiator)))
            {
                maxoid_obs::counter_add("cowproxy.view_rewrites", 1);
                Ok(names.cow_view(table, initiator))
            } else {
                Ok(Arc::from(table))
            }
        }
        DbView::Volatile { initiator } => {
            let delta = names.delta_table(table, initiator);
            if db.has_table(&delta) {
                Ok(delta)
            } else {
                Err(SqlError::NoSuchTable(delta.to_string()))
            }
        }
    }
}

/// The proxy query pipeline over an explicit `(rewrite, names, db)`
/// triple: builds (or replays from the rewrite cache) the rewritten SQL
/// for one view-routed query, executes it, and strips any footnote-5
/// appended ORDER BY columns. [`CowProxy::query`] calls it with the
/// proxy's own state; [`crate::reader::ReadSlot::try_query`] calls it
/// with a thread-local cache pair and a snapshot-bound database.
pub(crate) fn cached_query(
    rewrite: &RewriteCache,
    names: &NameInterner,
    db: &Database,
    view: &DbView,
    table: &str,
    opts: &QueryOpts,
    params: &[Value],
) -> SqlResult<ResultSet> {
    let mut sp = maxoid_obs::span("cowproxy.query");
    sp.field_with("table", || table.to_string());
    sp.field_with("view", || format!("{view:?}"));
    let mut parts: Vec<&str> = opts.columns.iter().map(|s| s.as_str()).collect();
    parts.push(if opts.where_clause.is_some() { "1" } else { "0" });
    parts.push(opts.where_clause.as_deref().unwrap_or(""));
    parts.push(if opts.order_by.is_some() { "1" } else { "0" });
    parts.push(opts.order_by.as_deref().unwrap_or(""));
    parts.push(if opts.limit.is_some() { "1" } else { "0" });
    let (view_tag, vinit) = view_key(view);
    let key = Key {
        op: op::QUERY,
        view_tag,
        initiator: vinit,
        table,
        parts: &parts,
        num: opts.columns.len() as i64,
        num2: opts.limit.unwrap_or(0),
    };
    let (target, sql, appended) = match rewrite.lookup(&key) {
        Some(rw) => {
            if rw.rewrote {
                // Replay the counter the uncached resolution bumps.
                maxoid_obs::counter_add("cowproxy.view_rewrites", 1);
            }
            (rw.target, rw.sql, rw.appended)
        }
        None => {
            let target = relation_for_read(names, db, table, view)?;
            let mut columns = opts.columns.clone();
            let explicit = !columns.is_empty();
            let mut appended = 0usize;
            if explicit {
                if let Some(order) = &opts.order_by {
                    // Footnote 5: add ORDER BY columns to query columns
                    // when necessary so flattening can fire.
                    for term in order.split(',') {
                        let col = term.split_whitespace().next().unwrap_or("");
                        if !col.is_empty()
                            && col.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                            && !col.chars().all(|c| c.is_ascii_digit())
                            && !columns.iter().any(|c| c.eq_ignore_ascii_case(col))
                        {
                            columns.push(col.to_string());
                            appended += 1;
                        }
                    }
                }
            }
            let mut sql = String::from("SELECT ");
            if explicit {
                sql.push_str(&columns.join(", "));
            } else {
                sql.push('*');
            }
            sql.push_str(&format!(" FROM {target}"));
            let mut where_parts: Vec<String> = Vec::new();
            if let Some(w) = &opts.where_clause {
                where_parts.push(format!("({w})"));
            }
            if matches!(view, DbView::Volatile { .. }) {
                // Volatile reads exclude whiteout records.
                where_parts.push(format!("{WHITEOUT_COL} = 0"));
            }
            if !where_parts.is_empty() {
                sql.push_str(" WHERE ");
                sql.push_str(&where_parts.join(" AND "));
            }
            if let Some(order) = &opts.order_by {
                sql.push_str(" ORDER BY ");
                sql.push_str(order);
            }
            if let Some(limit) = opts.limit {
                sql.push_str(&format!(" LIMIT {limit}"));
            }
            let sql: Arc<str> = sql.into();
            let rewrote = matches!(view, DbView::Delegate { .. }) && &*target != table;
            let rw = Rewrite { target: target.clone(), sql: sql.clone(), appended, rewrote };
            rewrite.insert(&key, rw);
            (target, sql, appended)
        }
    };
    sp.field_with("relation", || target.to_string());
    let mut rs = db.query(&sql, params)?;
    if appended > 0 {
        let keep = rs.columns.len() - appended;
        rs.columns.truncate(keep);
        for row in &mut rs.rows {
            row.truncate(keep);
        }
    }
    Ok(rs)
}

fn split_values<'a>(values: &'a [(&'a str, Value)]) -> (Vec<&'a str>, Vec<Value>) {
    (values.iter().map(|(c, _)| *c).collect(), values.iter().map(|(_, v)| v.clone()).collect())
}

/// Rewrite-cache discriminant of a view: `(tag, initiator)`.
fn view_key(view: &DbView) -> (u8, &str) {
    match view {
        DbView::Primary => (0, ""),
        DbView::Delegate { initiator } => (1, initiator),
        DbView::Volatile { initiator } => (2, initiator),
        DbView::Admin => (3, ""),
    }
}

fn insert_sql(table: &str, cols: &[&str]) -> String {
    format!(
        "INSERT INTO {table} ({}) VALUES ({})",
        cols.join(", "),
        (1..=cols.len()).map(|i| format!("?{i}")).collect::<Vec<_>>().join(", ")
    )
}

/// Shifts positional `?` parameters in a WHERE fragment by `offset`.
/// Only bare `?` markers are rewritten; explicit `?N` are left alone.
fn renumber_params(where_clause: &str, offset: usize) -> String {
    let mut out = String::with_capacity(where_clause.len() + 4);
    let mut n = offset;
    let mut chars = where_clause.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if c == '\'' {
            in_string = !in_string;
            out.push(c);
            continue;
        }
        if c == '?' && !in_string && !chars.peek().map(|d| d.is_ascii_digit()).unwrap_or(false) {
            n += 1;
            out.push_str(&format!("?{n}"));
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proxy_with_words() -> CowProxy {
        let mut p = CowProxy::new();
        p.execute_batch(
            "CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER);",
        )
        .unwrap();
        for (w, f) in [("alpha", 10), ("beta", 20), ("gamma", 30)] {
            p.insert(&DbView::Primary, "words", &[("word", w.into()), ("frequency", f.into())])
                .unwrap();
        }
        p
    }

    fn delegate() -> DbView {
        DbView::Delegate { initiator: "A".into() }
    }

    #[test]
    fn delegate_reads_primary_before_first_write() {
        let p = proxy_with_words();
        assert_eq!(p.read_relation("words", &delegate()).unwrap(), "words");
        let rs = p.query(&delegate(), "words", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn delegate_update_is_copy_on_write() {
        let mut p = proxy_with_words();
        let n = p
            .update(
                &delegate(),
                "words",
                &[("word", "ALPHA".into())],
                Some("_id = ?"),
                &[Value::Integer(1)],
            )
            .unwrap();
        assert_eq!(n, 1);
        // Delegate sees its own write.
        let rs = p
            .query(
                &delegate(),
                "words",
                &QueryOpts {
                    columns: vec!["word".into()],
                    where_clause: Some("_id = ?".into()),
                    ..Default::default()
                },
                &[Value::Integer(1)],
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Text("ALPHA".into())]]);
        // The public record is untouched.
        let pubrs = p
            .query(
                &DbView::Primary,
                "words",
                &QueryOpts {
                    columns: vec!["word".into()],
                    where_clause: Some("_id = 1".into()),
                    ..Default::default()
                },
                &[],
            )
            .unwrap();
        assert_eq!(pubrs.rows, vec![vec![Value::Text("alpha".into())]]);
    }

    #[test]
    fn delegate_insert_keys_from_offset() {
        let mut p = proxy_with_words();
        let id = p
            .insert(&delegate(), "words", &[("word", "delta".into()), ("frequency", 1.into())])
            .unwrap();
        assert_eq!(id, DELTA_PK_START);
        let id2 = p
            .insert(&delegate(), "words", &[("word", "eps".into()), ("frequency", 2.into())])
            .unwrap();
        assert_eq!(id2, DELTA_PK_START + 1);
        // Visible to the delegate, invisible publicly.
        let rs = p.query(&delegate(), "words", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(rs.rows.len(), 5);
        let pubrs = p.query(&DbView::Primary, "words", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(pubrs.rows.len(), 3);
    }

    #[test]
    fn delegate_delete_is_whiteout() {
        let mut p = proxy_with_words();
        let n = p.delete(&delegate(), "words", Some("_id = 2"), &[]).unwrap();
        assert_eq!(n, 1);
        let rs = p.query(&delegate(), "words", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(rs.rows.len(), 2);
        // Public record survives.
        let pubrs = p.query(&DbView::Primary, "words", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(pubrs.rows.len(), 3);
        // The whiteout appears in the admin view.
        let admin = p.admin_query("words").unwrap();
        let wh_idx = admin.column_index(WHITEOUT_COL).unwrap();
        assert!(admin.rows.iter().any(|r| r[wh_idx] == Value::Integer(1)));
    }

    #[test]
    fn volatile_view_shows_only_deltas() {
        let mut p = proxy_with_words();
        p.update(&delegate(), "words", &[("word", "X".into())], Some("_id = 3"), &[]).unwrap();
        p.delete(&delegate(), "words", Some("_id = 1"), &[]).unwrap();
        let vol = DbView::Volatile { initiator: "A".into() };
        let rs = p.query(&vol, "words", &QueryOpts::default(), &[]).unwrap();
        // Only the non-whiteout volatile record.
        assert_eq!(rs.rows.len(), 1);
        let widx = rs.column_index("word").unwrap();
        assert_eq!(rs.rows[0][widx], Value::Text("X".into()));
    }

    #[test]
    fn initiator_isvolatile_insert() {
        let mut p = proxy_with_words();
        let vol = DbView::Volatile { initiator: "browser".into() };
        let id =
            p.insert(&vol, "words", &[("word", "incog".into()), ("frequency", 0.into())]).unwrap();
        assert!(id >= DELTA_PK_START);
        // Public view unchanged; browser's delegates see it.
        assert_eq!(
            p.query(&DbView::Primary, "words", &QueryOpts::default(), &[]).unwrap().rows.len(),
            3
        );
        let del = DbView::Delegate { initiator: "browser".into() };
        assert_eq!(p.query(&del, "words", &QueryOpts::default(), &[]).unwrap().rows.len(), 4);
    }

    #[test]
    fn clear_volatile_restores_pristine_state() {
        let mut p = proxy_with_words();
        p.update(&delegate(), "words", &[("word", "X".into())], Some("_id = 1"), &[]).unwrap();
        assert!(p.has_delta("words", "A"));
        let dropped = p.clear_volatile("A").unwrap();
        assert_eq!(dropped, 1);
        assert!(!p.has_delta("words", "A"));
        assert!(p.initiators_with_volatile().is_empty());
        // Delegate reads fall back to primary.
        let rs = p.query(&delegate(), "words", &QueryOpts::default(), &[]).unwrap();
        let widx = rs.column_index("word").unwrap();
        assert_eq!(rs.rows[0][widx], Value::Text("alpha".into()));
    }

    #[test]
    fn commit_volatile_row_publishes() {
        let mut p = proxy_with_words();
        p.update(&delegate(), "words", &[("word", "edited".into())], Some("_id = 2"), &[]).unwrap();
        assert!(p.commit_volatile_row("A", "words", 2).unwrap());
        let rs = p
            .query(
                &DbView::Primary,
                "words",
                &QueryOpts {
                    columns: vec!["word".into()],
                    where_clause: Some("_id = 2".into()),
                    ..Default::default()
                },
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Text("edited".into())]]);
        // Committing a missing row is a no-op.
        assert!(!p.commit_volatile_row("A", "words", 999).unwrap());
    }

    #[test]
    fn isolation_between_initiators() {
        let mut p = proxy_with_words();
        let da = DbView::Delegate { initiator: "A".into() };
        let db_ = DbView::Delegate { initiator: "B".into() };
        p.update(&da, "words", &[("word", "forA".into())], Some("_id = 1"), &[]).unwrap();
        p.update(&db_, "words", &[("word", "forB".into())], Some("_id = 1"), &[]).unwrap();
        let qa = p
            .query(
                &da,
                "words",
                &QueryOpts {
                    columns: vec!["word".into()],
                    where_clause: Some("_id = 1".into()),
                    ..Default::default()
                },
                &[],
            )
            .unwrap();
        let qb = p
            .query(
                &db_,
                "words",
                &QueryOpts {
                    columns: vec!["word".into()],
                    where_clause: Some("_id = 1".into()),
                    ..Default::default()
                },
                &[],
            )
            .unwrap();
        assert_eq!(qa.rows, vec![vec![Value::Text("forA".into())]]);
        assert_eq!(qb.rows, vec![vec![Value::Text("forB".into())]]);
    }

    #[test]
    fn update_visibility_u2_for_unforked_rows() {
        // Delegates observe initiator updates to rows they have not touched.
        let mut p = proxy_with_words();
        p.update(&delegate(), "words", &[("word", "mine".into())], Some("_id = 1"), &[]).unwrap();
        // An initiator updates row 2 after the fork of row 1.
        p.update(&DbView::Primary, "words", &[("word", "pub2".into())], Some("_id = 2"), &[])
            .unwrap();
        let rs = p
            .query(
                &delegate(),
                "words",
                &QueryOpts { columns: vec!["_id".into(), "word".into()], ..Default::default() },
                &[],
            )
            .unwrap();
        let find = |id: i64| -> Value {
            rs.rows.iter().find(|r| r[0] == Value::Integer(id)).unwrap()[1].clone()
        };
        // Row 1: delegate's own version. Row 2: initiator's fresh update.
        assert_eq!(find(1), Value::Text("mine".into()));
        assert_eq!(find(2), Value::Text("pub2".into()));
    }

    #[test]
    fn query_appends_order_columns_for_flattening() {
        let p = {
            let mut p = proxy_with_words();
            p.update(&delegate(), "words", &[("word", "X".into())], Some("_id = 1"), &[]).unwrap();
            p
        };
        p.db().stats.reset();
        let rs = p
            .query(
                &delegate(),
                "words",
                &QueryOpts {
                    columns: vec!["word".into()],
                    order_by: Some("_id DESC".into()),
                    ..Default::default()
                },
                &[],
            )
            .unwrap();
        // The workaround keeps the projection narrow for the caller...
        assert_eq!(rs.columns, vec!["word"]);
        // ...while the planner still flattened the view.
        assert_eq!(p.db().stats.flattened_queries.get(), 1);
        assert_eq!(rs.rows.first().unwrap()[0], Value::Text("gamma".into()));
    }

    #[test]
    fn cow_point_query_probes_indexes_on_both_arms() {
        let mut p = proxy_with_words();
        p.execute_batch("CREATE INDEX idx_words_word ON words (word);").unwrap();
        // First volatile write forks the table; the delta table must come
        // up with a mirror of the base index.
        p.update(&delegate(), "words", &[("word", "X".into())], Some("_id = 1"), &[]).unwrap();
        assert!(p.db().table("words_delta_A").unwrap().has_index("idx_words_word_delta_A"));

        p.db().stats.reset();
        let rs = p
            .query(
                &delegate(),
                "words",
                &QueryOpts { where_clause: Some("word = 'gamma'".into()), ..Default::default() },
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        // The query flattened into two single-table arms, and each arm
        // resolved `word = 'gamma'` with an index probe instead of a scan.
        assert_eq!(p.db().stats.flattened_queries.get(), 1);
        assert!(
            p.db().stats.index_probes.get() >= 2,
            "expected an index probe per UNION ALL arm, got {}",
            p.db().stats.index_probes.get()
        );
        // The only scan left is the 1-row NOT IN delta subquery — neither
        // arm walks the base table.
        assert!(p.db().stats.rows_scanned.get() <= 1);
        let paths = p.db().stats.take_access_paths();
        assert!(paths.iter().any(|l| l.contains("INDEX idx_words_word EQ")), "{paths:?}");
        assert!(paths.iter().any(|l| l.contains("INDEX idx_words_word_delta_A EQ")), "{paths:?}");
    }

    #[test]
    fn rewrite_cache_hits_on_repeated_shapes() {
        let mut p = proxy_with_words();
        let del = delegate();
        let q = QueryOpts {
            columns: vec!["word".into()],
            where_clause: Some("_id = ?".into()),
            ..Default::default()
        };
        // First delegate update forks (epoch bump), second reuses the
        // cached UPDATE rewrite; repeated queries reuse the SELECT.
        p.update(&del, "words", &[("word", "a".into())], Some("_id = ?"), &[1.into()]).unwrap();
        p.update(&del, "words", &[("word", "b".into())], Some("_id = ?"), &[1.into()]).unwrap();
        let (h0, _) = p.rewrite_cache_stats();
        assert!(h0 >= 1, "second update should hit, stats {:?}", p.rewrite_cache_stats());
        let r1 = p.query(&del, "words", &q, &[Value::Integer(1)]).unwrap();
        let r2 = p.query(&del, "words", &q, &[Value::Integer(1)]).unwrap();
        assert_eq!(r1.rows, r2.rows);
        let (h1, _) = p.rewrite_cache_stats();
        assert!(h1 > h0, "repeated query should hit the rewrite cache");
    }

    #[test]
    fn rewrite_cache_epoch_tracks_topology() {
        let mut p = proxy_with_words();
        let e0 = p.fork_epoch();
        // Fork: first delegate write bumps the epoch.
        p.update(&delegate(), "words", &[("word", "x".into())], Some("_id = 1"), &[]).unwrap();
        let e1 = p.fork_epoch();
        assert!(e1 > e0);
        // Queries before and after clear_volatile resolve differently;
        // the epoch bump keeps the cache honest.
        let q = QueryOpts { where_clause: Some("_id = 1".into()), ..Default::default() };
        let forked = p.query(&delegate(), "words", &q, &[]).unwrap();
        assert_eq!(forked.rows[0][1], Value::Text("x".into()));
        p.clear_volatile("A").unwrap();
        assert!(p.fork_epoch() > e1);
        let cleared = p.query(&delegate(), "words", &q, &[]).unwrap();
        assert_eq!(cleared.rows[0][1], Value::Text("alpha".into()));
    }

    #[test]
    fn rewrite_cache_disabled_matches_enabled() {
        let run = |cache: bool| -> Vec<Vec<Value>> {
            let mut p = proxy_with_words();
            p.set_rewrite_cache(cache);
            let del = delegate();
            p.insert(&del, "words", &[("word", "new".into()), ("frequency", 5.into())]).unwrap();
            p.update(&del, "words", &[("word", "up".into())], Some("_id = ?"), &[1.into()])
                .unwrap();
            p.delete(&del, "words", Some("_id = 2"), &[]).unwrap();
            let q = QueryOpts {
                columns: vec!["_id".into(), "word".into()],
                order_by: Some("_id".into()),
                ..Default::default()
            };
            let mut rows = p.query(&del, "words", &q, &[]).unwrap().rows;
            rows.extend(p.query(&del, "words", &q, &[]).unwrap().rows);
            rows
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn renumber_only_bare_params() {
        assert_eq!(
            renumber_params("a = ? AND b = ?2 AND c = ?", 3),
            "a = ?4 AND b = ?2 AND c = ?5"
        );
        assert_eq!(renumber_params("name = '?' AND x = ?", 1), "name = '?' AND x = ?2");
    }
}
