//! COW views for user-defined SQL views (paper Figure 5).
//!
//! Content providers may define their own SQL views over base tables —
//! Media defines `images`, `audio_meta` and `video` as selections over its
//! `files` table, and `audio` on top of `audio_meta`. The proxy keeps delta
//! tables only for base tables; for each user-defined view it maintains a
//! per-initiator COW view that is "defined identically to the original
//! user-defined SQL views, except that the base tables in the definition
//! are replaced with their corresponding COW views" (§5.2). Because a view
//! may use another view as a base, the proxy maintains a hierarchy and
//! creates COW views parents-first.

use crate::names::cow_view;
use maxoid_sqldb::ast::{SelectStmt, Stmt};
use maxoid_sqldb::parser::parse_statement;
use maxoid_sqldb::{Database, SqlError, SqlResult};
use std::collections::BTreeMap;

/// A registered user-defined view and its dependencies.
#[derive(Debug, Clone)]
struct UserView {
    name: String,
    select: SelectStmt,
    /// Names of tables/views referenced in FROM clauses (dependencies).
    bases: Vec<String>,
}

/// Registry of user-defined views and their per-initiator COW instances.
#[derive(Debug, Default)]
pub struct ViewHierarchy {
    views: BTreeMap<String, UserView>,
}

impl ViewHierarchy {
    /// Registers a user-defined view from its CREATE VIEW statement,
    /// creating it in the database and recording its dependencies.
    ///
    /// If a view of the same name already exists (e.g. the database was
    /// rebuilt from a journal, which replays the CREATE VIEW) the existing
    /// definition is adopted and only the hierarchy metadata is recorded.
    pub fn register(&mut self, db: &mut Database, sql: &str) -> SqlResult<()> {
        let stmt = parse_statement(sql)?;
        let Stmt::CreateView { name, select, .. } = &stmt else {
            return Err(SqlError::Unsupported("register_user_view requires CREATE VIEW".into()));
        };
        let mut bases = Vec::new();
        collect_bases(select, &mut bases);
        if !db.has_view(name) {
            // Run the original text through `execute` so the statement
            // lands in the logical journal verbatim.
            db.execute(sql, &[])?;
        }
        self.views.insert(
            name.to_ascii_lowercase(),
            UserView { name: name.clone(), select: select.clone(), bases },
        );
        Ok(())
    }

    /// Returns true if `name` is a registered user-defined view.
    pub fn is_user_view(&self, name: &str) -> bool {
        self.views.contains_key(&name.to_ascii_lowercase())
    }

    /// Returns the registered view names.
    pub fn view_names(&self) -> Vec<String> {
        self.views.values().map(|v| v.name.clone()).collect()
    }

    /// Ensures the per-initiator COW view for user view `name` exists,
    /// creating COW views for base user views first. Base *tables* must
    /// already have their delta/COW structures (the caller's
    /// `ensure_cow`).
    pub fn ensure_cow_views(
        &self,
        db: &mut Database,
        name: &str,
        initiator: &str,
    ) -> SqlResult<()> {
        let uv = self
            .views
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| SqlError::NoSuchTable(name.to_string()))?;
        let target = cow_view(&uv.name, initiator);
        if db.has_view(&target) {
            return Ok(());
        }
        // Recurse into user-view bases first (hierarchy order).
        for base in &uv.bases {
            if self.is_user_view(base) {
                self.ensure_cow_views(db, base, initiator)?;
            }
        }
        // Rewrite the definition: every base that has a COW instance is
        // replaced by it. Base tables without a delta keep their name
        // (reads fall through to the primary — unilateral COW).
        let mut select = uv.select.clone();
        rewrite_bases(&mut select, &|base| {
            let candidate = cow_view(base, initiator);
            if db.has_view(&candidate) {
                Some(candidate)
            } else {
                None
            }
        });
        // Executed as an AST (no SQL text), so this CREATE VIEW never
        // reaches the journal. That is deliberate: COW view instances are
        // derived state, and recovery rebuilds them from the registered
        // user views (`CowProxy::rebuild_cow_views`).
        let create = Stmt::CreateView { name: target, if_not_exists: false, select };
        db.exec_stmt(&create, &[], None)?;
        Ok(())
    }

    /// Drops all per-initiator COW views built from user-defined views.
    pub fn drop_initiator(&self, db: &mut Database, initiator: &str) -> SqlResult<()> {
        for uv in self.views.values() {
            let target = cow_view(&uv.name, initiator);
            db.execute_batch(&format!("DROP VIEW IF EXISTS {target};"))?;
        }
        Ok(())
    }
}

/// Collects FROM-clause base relation names from a select (including IN
/// subqueries is unnecessary: user views reference bases in FROM).
fn collect_bases(select: &SelectStmt, out: &mut Vec<String>) {
    for core in &select.cores {
        for tref in &core.from {
            if !out.iter().any(|b| b.eq_ignore_ascii_case(&tref.name)) {
                out.push(tref.name.clone());
            }
        }
    }
}

/// Rewrites FROM-clause relation names via `map` (None = keep).
fn rewrite_bases(select: &mut SelectStmt, map: &dyn Fn(&str) -> Option<String>) {
    for core in &mut select.cores {
        for tref in &mut core.from {
            if let Some(new_name) = map(&tref.name) {
                // Preserve the original name as the binding alias so
                // column qualifications in the view body keep resolving.
                if tref.alias.is_none() {
                    tref.alias = Some(tref.name.clone());
                }
                tref.name = new_name;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::proxy::{CowProxy, DbView, QueryOpts};
    use maxoid_sqldb::Value;

    /// Media-like schema: `files` base table; `images` and `video` views
    /// over it; `audio` over `audio_meta` over `files` (two levels).
    fn media_proxy() -> CowProxy {
        let mut p = CowProxy::new();
        p.execute_batch(
            "CREATE TABLE files (_id INTEGER PRIMARY KEY, path TEXT, media_type INTEGER, title TEXT);",
        )
        .unwrap();
        p.register_user_view(
            "CREATE VIEW images AS SELECT _id, path, title FROM files WHERE media_type = 1",
        )
        .unwrap();
        p.register_user_view(
            "CREATE VIEW audio_meta AS SELECT _id, path, title FROM files WHERE media_type = 2",
        )
        .unwrap();
        p.register_user_view("CREATE VIEW audio AS SELECT _id, title FROM audio_meta").unwrap();
        for (path, ty, title) in
            [("/sdcard/a.jpg", 1, "a"), ("/sdcard/b.mp3", 2, "b"), ("/sdcard/c.jpg", 1, "c")]
        {
            p.insert(
                &DbView::Primary,
                "files",
                &[("path", path.into()), ("media_type", ty.into()), ("title", title.into())],
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn user_views_work_for_initiators() {
        let p = media_proxy();
        let rs = p.query(&DbView::Primary, "images", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(rs.rows.len(), 2);
        let rs = p.query(&DbView::Primary, "audio", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn delegate_sees_cow_view_of_user_view() {
        let mut p = media_proxy();
        let del = DbView::Delegate { initiator: "cam".into() };
        // Delegate adds an image via the files COW view.
        p.insert(
            &del,
            "files",
            &[
                ("path", "/sdcard/new.jpg".into()),
                ("media_type", 1.into()),
                ("title", "new".into()),
            ],
        )
        .unwrap();
        // Build the user-view COW instance on demand.
        p.ensure_cow("images", "cam").unwrap();
        let rs = p.query(&del, "images", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(rs.rows.len(), 3);
        // Public images view unchanged.
        let pubrs = p.query(&DbView::Primary, "images", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(pubrs.rows.len(), 2);
    }

    #[test]
    fn two_level_hierarchy_builds_in_order() {
        let mut p = media_proxy();
        let del = DbView::Delegate { initiator: "player".into() };
        p.insert(
            &del,
            "files",
            &[("path", "/sdcard/s.mp3".into()), ("media_type", 2.into()), ("title", "song".into())],
        )
        .unwrap();
        // `audio` depends on `audio_meta`, which depends on `files`.
        p.ensure_cow("audio", "player").unwrap();
        let rs = p.query(&del, "audio", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(rs.rows.len(), 2);
        // The intermediate COW view exists too.
        assert!(p.db().has_view("audio_meta_view_player"));
    }

    #[test]
    fn clear_volatile_drops_user_view_instances() {
        let mut p = media_proxy();
        let del = DbView::Delegate { initiator: "cam".into() };
        p.insert(
            &del,
            "files",
            &[("path", "/x.jpg".into()), ("media_type", 1.into()), ("title", "x".into())],
        )
        .unwrap();
        p.ensure_cow("images", "cam").unwrap();
        assert!(p.db().has_view("images_view_cam"));
        p.clear_volatile("cam").unwrap();
        assert!(!p.db().has_view("images_view_cam"));
        assert!(!p.has_delta("files", "cam"));
    }

    #[test]
    fn reads_before_writes_use_plain_user_view() {
        let p = media_proxy();
        let del = DbView::Delegate { initiator: "fresh".into() };
        // No delta yet: the read relation is the plain user view.
        assert_eq!(p.read_relation("images", &del).unwrap(), "images");
        let rs = p.query(&del, "images", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn register_rejects_non_view_sql() {
        let mut p = CowProxy::new();
        assert!(p.register_user_view("CREATE TABLE t (_id INTEGER PRIMARY KEY)").is_err());
    }

    #[test]
    fn qualified_columns_keep_resolving_after_rewrite() {
        let mut p = CowProxy::new();
        p.execute_batch("CREATE TABLE base (_id INTEGER PRIMARY KEY, v TEXT);").unwrap();
        p.register_user_view("CREATE VIEW qual AS SELECT base._id, base.v FROM base").unwrap();
        p.insert(&DbView::Primary, "base", &[("v", "x".into())]).unwrap();
        let del = DbView::Delegate { initiator: "D".into() };
        p.insert(&del, "base", &[("v", "y".into())]).unwrap();
        p.ensure_cow("qual", "D").unwrap();
        let rs = p.query(&del, "qual", &QueryOpts::default(), &[]).unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert!(rs.rows.iter().any(|r| r[1] == Value::Text("y".into())));
    }
}
