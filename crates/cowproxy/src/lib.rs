//! The Maxoid copy-on-write SQL proxy (paper §5.2).
//!
//! System content providers sit on top of this layer instead of raw
//! SQLite. The proxy implements *unilateral per-row copy-on-write*: public
//! data lives in **primary tables**; the first volatile write by a
//! delegate of initiator `A` creates a per-initiator **delta table**
//! (primary columns plus a `_whiteout` flag) and a **COW view** merging
//! the two with `UNION ALL`. INSTEAD OF triggers on the COW view confine
//! all delegate modifications to the delta table, so:
//!
//! - delegates always read their own writes through the COW view (U2),
//! - public rows are never modified by delegates (S2),
//! - deletion is emulated with whiteout records,
//! - rows inserted by delegates are keyed from a large offset `N`
//!   ([`names::DELTA_PK_START`]) and never collide with public keys.
//!
//! The initiator reads its volatile records through [`DbView::Volatile`]
//! (the provider's `tmp` URIs), selectively commits them with
//! [`CowProxy::commit_volatile_row`], and discards everything with
//! [`CowProxy::clear_volatile`].
//!
//! # Examples
//!
//! ```
//! use maxoid_cowproxy::{CowProxy, DbView, QueryOpts};
//! use maxoid_sqldb::Value;
//!
//! let mut proxy = CowProxy::new();
//! proxy
//!     .execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT);")
//!     .unwrap();
//! proxy.insert(&DbView::Primary, "words", &[("word", "hello".into())]).unwrap();
//!
//! // A delegate of initiator "email" updates word 1: copy-on-write.
//! let delegate = DbView::Delegate { initiator: "email".into() };
//! proxy
//!     .update(&delegate, "words", &[("word", "HELLO".into())], Some("_id = 1"), &[])
//!     .unwrap();
//!
//! // Public state is untouched; the delegate reads its write.
//! let public = proxy.query(&DbView::Primary, "words", &QueryOpts::default(), &[]).unwrap();
//! assert_eq!(public.rows[0][1], Value::Text("hello".into()));
//! let confined = proxy.query(&delegate, "words", &QueryOpts::default(), &[]).unwrap();
//! assert_eq!(confined.rows[0][1], Value::Text("HELLO".into()));
//! ```

#![warn(missing_docs)]

pub mod hierarchy;
pub mod names;
pub mod proxy;
pub mod reader;
pub(crate) mod rewrite;
pub mod sqlgen;

pub use names::{cow_view, delta_table, NameInterner, DELTA_PK_START, WHITEOUT_COL};
pub use proxy::{CowProxy, DbView, QueryOpts, ADMIN_INITIATOR_COL, ADMIN_STATE_COL};
pub use reader::ReadSlot;
