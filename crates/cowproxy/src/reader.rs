//! The lock-free snapshot read path for the COW proxy.
//!
//! A [`crate::CowProxy`] lives behind its authority's write lock; every
//! operation routed through that lock serializes against every other. MVCC
//! snapshot reads (see `maxoid_sqldb::Database::begin_read`) break read
//! traffic out of that queue: after each mutation settles, the lock holder
//! calls [`crate::CowProxy::publish_read`], which captures an immutable
//! [`maxoid_sqldb::ReadSnapshot`] of the committed database and stores it
//! in a shared **read slot**. Reader threads clone the slot's contents
//! under a short `RwLock` read guard — never the authority lock — and run
//! ordinary proxy queries against the snapshot.
//!
//! Three invariants make this safe:
//!
//! 1. **Publication only at quiescent points.** Every `&mut self` proxy
//!    entry point retracts the slot *before* mutating, so a reader can
//!    never observe a half-applied statement; it either sees the previous
//!    committed snapshot or finds the slot empty and falls back to the
//!    locked path. Writers that bypass the proxy (e.g. the system core
//!    holding its own provider `Arc<Mutex<..>>`) still flow through the
//!    proxy's mutating methods, so the retraction discipline holds.
//! 2. **Snapshot-to-snapshot reads.** A snapshot freezes base tables,
//!    delta tables, COW views and triggers at one commit stamp, so a
//!    flattened COW-view query evaluates both `UNION ALL` arms against
//!    the same instant — no torn read between a delta and its base.
//! 3. **Fork-epoch stamping.** The published snapshot carries the proxy's
//!    fork epoch. Thread-local rewrite caches compare it on every bind
//!    and drop their entries when COW topology changed, exactly as the
//!    locked path's cache does.
//!
//! Per-thread state (a [`maxoid_sqldb::SnapshotReader`] with its prepared
//! statements, a [`NameInterner`], a rewrite cache) lives in a
//! `thread_local!` registry keyed by slot id, so repeated reads on one
//! thread reuse plans across snapshot retargets and share nothing across
//! threads.

use crate::names::NameInterner;
use crate::proxy::{cached_query, DbView, QueryOpts};
use crate::rewrite::RewriteCache;
use maxoid_sqldb::{Database, ReadSnapshot, ResultSet, SnapshotReader, SqlResult, Value};
use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slot ids are process-unique so thread-local readers never mix
/// snapshots of different logical databases.
static NEXT_SLOT_ID: AtomicU64 = AtomicU64::new(1);

/// What the write side publishes: a committed snapshot plus the fork
/// epoch it was taken at.
#[derive(Debug, Clone)]
pub(crate) struct CowPublished {
    pub snap: ReadSnapshot,
    pub fork_epoch: u64,
}

/// A cloneable, `Send + Sync` handle to one proxy's published snapshot.
///
/// Obtained from [`crate::CowProxy::read_slot`]; typically held by a
/// resolver-side read handle so queries can be served without taking the
/// authority's write lock. When the slot is empty (a mutation retracted
/// it, a transaction is open, or a table is paged to the block tier),
/// [`ReadSlot::try_query`] returns `None` and the caller falls back to
/// the locked path.
#[derive(Debug, Clone)]
pub struct ReadSlot {
    id: u64,
    slot: Arc<RwLock<Option<CowPublished>>>,
}

// The slot handle crosses threads by design.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ReadSlot>();
};

/// One thread's cached machinery for reading a particular slot.
struct CowReader {
    reader: SnapshotReader,
    names: NameInterner,
    rewrite: RewriteCache,
    fork_epoch: u64,
}

thread_local! {
    /// Per-thread snapshot readers, keyed by slot id.
    static READERS: RefCell<HashMap<u64, CowReader>> = RefCell::new(HashMap::new());
}

impl ReadSlot {
    pub(crate) fn new() -> Self {
        ReadSlot {
            id: NEXT_SLOT_ID.fetch_add(1, Ordering::Relaxed),
            slot: Arc::new(RwLock::new(None)),
        }
    }

    /// Installs a published snapshot. Skips the write lock when the
    /// incumbent is already the same `(stamp, fork_epoch)` pair.
    pub(crate) fn publish(&self, p: CowPublished) {
        if let Some(cur) = &*self.slot.read() {
            if cur.fork_epoch == p.fork_epoch && cur.snap.stamp() == p.snap.stamp() {
                return;
            }
        }
        *self.slot.write() = Some(p);
    }

    /// Empties the slot; readers fall back to the locked path until the
    /// next [`ReadSlot::publish`].
    pub(crate) fn retract(&self) {
        // Cheap read-guard probe first: retraction runs on every proxy
        // mutation and is usually a no-op between publishes.
        if self.slot.read().is_some() {
            *self.slot.write() = None;
        }
    }

    /// Whether a snapshot is currently published.
    pub fn is_published(&self) -> bool {
        self.slot.read().is_some()
    }

    /// The commit stamp of the published snapshot, if any.
    pub fn stamp(&self) -> Option<u64> {
        self.slot.read().as_ref().map(|p| p.snap.stamp())
    }

    /// Runs a proxy query against the published snapshot, if one exists.
    ///
    /// Returns `None` when the slot is empty — the caller must then take
    /// the authority lock and query the live proxy. `Some(result)` is a
    /// full COW-aware query: delegate views resolve to COW views, volatile
    /// views to delta tables, exactly as [`crate::CowProxy::query`] would.
    pub fn try_query(
        &self,
        view: &DbView,
        table: &str,
        opts: &QueryOpts,
        params: &[Value],
    ) -> Option<SqlResult<ResultSet>> {
        self.try_query_gated(|_| true, view, table, opts, params)
    }

    /// [`ReadSlot::try_query`] with a routing gate evaluated against the
    /// *same* snapshot the query would use.
    ///
    /// `gate` receives the snapshot-bound database; returning `false`
    /// declines the snapshot path (yielding `None`) without racing a
    /// republish in between. Providers use this for reads that may need a
    /// write-side fixup first — e.g. Media falls back to the locked path
    /// when a delta exists for a user view's base but the per-initiator
    /// COW view has not been built yet, so the locked `ensure_cow` can
    /// run.
    pub fn try_query_gated(
        &self,
        gate: impl FnOnce(&Database) -> bool,
        view: &DbView,
        table: &str,
        opts: &QueryOpts,
        params: &[Value],
    ) -> Option<SqlResult<ResultSet>> {
        let published = self.slot.read().clone()?;
        READERS.with(|cell| {
            let mut map = cell.borrow_mut();
            let r = map.entry(self.id).or_insert_with(|| CowReader {
                reader: SnapshotReader::new(),
                names: NameInterner::default(),
                rewrite: RewriteCache::default(),
                fork_epoch: published.fork_epoch,
            });
            if r.fork_epoch != published.fork_epoch {
                // COW topology changed since this thread last read the
                // slot: cached rewrites may target dropped relations.
                r.rewrite.bump_epoch();
                r.fork_epoch = published.fork_epoch;
            }
            let db = r.reader.bind(&published.snap);
            if !gate(db) {
                return None;
            }
            maxoid_obs::counter_add("cowproxy.snapshot_queries", 1);
            Some(cached_query(&r.rewrite, &r.names, db, view, table, opts, params))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CowProxy;

    fn seeded() -> CowProxy {
        let mut p = CowProxy::new();
        p.execute_batch("CREATE TABLE words (_id INTEGER PRIMARY KEY, word TEXT, frequency INTEGER);")
            .unwrap();
        for (w, f) in [("alpha", 10), ("beta", 20), ("gamma", 30)] {
            p.insert(&DbView::Primary, "words", &[("word", w.into()), ("frequency", f.into())])
                .unwrap();
        }
        p
    }

    #[test]
    fn slot_starts_empty_and_publishes_on_demand() {
        let mut p = seeded();
        let slot = p.read_slot();
        assert!(!slot.is_published());
        assert!(slot.try_query(&DbView::Primary, "words", &QueryOpts::default(), &[]).is_none());
        p.publish_read();
        assert!(slot.is_published());
        let rs = slot
            .try_query(&DbView::Primary, "words", &QueryOpts::default(), &[])
            .expect("published")
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn mutation_retracts_until_republished() {
        let mut p = seeded();
        let slot = p.read_slot();
        p.publish_read();
        assert!(slot.is_published());
        p.insert(&DbView::Primary, "words", &[("word", "delta".into())]).unwrap();
        assert!(!slot.is_published(), "a write must retract the published snapshot");
        assert!(slot.try_query(&DbView::Primary, "words", &QueryOpts::default(), &[]).is_none());
        p.publish_read();
        let rs = slot
            .try_query(&DbView::Primary, "words", &QueryOpts::default(), &[])
            .unwrap()
            .unwrap();
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn snapshot_queries_see_cow_views_and_volatile_state() {
        let mut p = seeded();
        let delegate = DbView::Delegate { initiator: "A".into() };
        p.update(&delegate, "words", &[("word", "ALPHA".into())], Some("_id = 1"), &[]).unwrap();
        p.publish_read();
        let slot = p.read_slot();
        // Delegate read resolves onto the COW view inside the snapshot.
        let rs = slot
            .try_query(
                &delegate,
                "words",
                &QueryOpts {
                    columns: vec!["word".into()],
                    where_clause: Some("_id = 1".into()),
                    ..Default::default()
                },
                &[],
            )
            .unwrap()
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Text("ALPHA".into())]]);
        // Primary view through the same snapshot is untouched.
        let rs = slot
            .try_query(
                &DbView::Primary,
                "words",
                &QueryOpts {
                    columns: vec!["word".into()],
                    where_clause: Some("_id = 1".into()),
                    ..Default::default()
                },
                &[],
            )
            .unwrap()
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Text("alpha".into())]]);
        // Volatile view sees the delta row, whiteouts excluded.
        let rs = slot
            .try_query(&DbView::Volatile { initiator: "A".into() }, "words", &QueryOpts::default(), &[])
            .unwrap()
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn published_snapshot_is_immutable_under_later_writes() {
        let mut p = seeded();
        p.publish_read();
        let slot = p.read_slot();
        // Clone the published state by querying, then mutate and check the
        // reader bound to the old snapshot still sees three rows.
        let published = slot.slot.read().clone().unwrap();
        p.insert(&DbView::Primary, "words", &[("word", "delta".into())]).unwrap();
        let mut reader = SnapshotReader::new();
        let db = reader.bind(&published.snap);
        let rs = db.query("SELECT * FROM words", &[]).unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(p.db().query("SELECT * FROM words", &[]).unwrap().rows.len(), 4);
    }

    #[test]
    fn gate_declines_against_the_same_snapshot() {
        let mut p = seeded();
        p.publish_read();
        let slot = p.read_slot();
        let out = slot.try_query_gated(
            |db| !db.has_table("words"),
            &DbView::Primary,
            "words",
            &QueryOpts::default(),
            &[],
        );
        assert!(out.is_none(), "gate returning false must fall back");
    }

    #[test]
    fn snapshot_reads_work_from_other_threads() {
        let mut p = seeded();
        p.publish_read();
        let slot = p.read_slot();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let slot = slot.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let rs = slot
                            .try_query(&DbView::Primary, "words", &QueryOpts::default(), &[])
                            .expect("published")
                            .unwrap();
                        assert_eq!(rs.rows.len(), 3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fork_epoch_change_invalidates_thread_local_rewrites() {
        let mut p = seeded();
        let delegate = DbView::Delegate { initiator: "A".into() };
        p.publish_read();
        let slot = p.read_slot();
        // Warm the thread-local cache: delegate read before any fork
        // resolves to the primary table.
        let rs =
            slot.try_query(&delegate, "words", &QueryOpts::default(), &[]).unwrap().unwrap();
        assert_eq!(rs.rows.len(), 3);
        // Fork: the delegate deletes a row (whiteout). The epoch bump must
        // reach the thread-local cache or the stale rewrite would keep
        // reading the primary table.
        p.delete(&delegate, "words", Some("_id = 1"), &[]).unwrap();
        p.publish_read();
        let rs =
            slot.try_query(&delegate, "words", &QueryOpts::default(), &[]).unwrap().unwrap();
        assert_eq!(rs.rows.len(), 2, "post-fork snapshot read must see the whiteout");
    }
}
