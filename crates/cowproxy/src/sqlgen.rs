//! SQL generation for proxy-managed objects.
//!
//! Generates the exact structures shown in the paper's Figure 6: the delta
//! table (primary columns plus `_whiteout`), the COW view as a `UNION ALL`
//! compound select, and the INSTEAD OF triggers implementing per-row
//! copy-on-write. These strings are executed against [`maxoid_sqldb`] and
//! also serve as golden-test artefacts.

use crate::names::{cow_view, delta_index, delta_table, trigger, WHITEOUT_COL};

/// Generates `CREATE TABLE` for a delta table given the primary table's
/// column definitions rendered as `name TYPE [PRIMARY KEY]` fragments.
pub fn delta_table_sql(table: &str, initiator: &str, column_defs: &[String]) -> String {
    let mut cols = column_defs.join(", ");
    cols.push_str(&format!(", {WHITEOUT_COL} BOOLEAN"));
    format!("CREATE TABLE {} ({cols})", delta_table(table, initiator))
}

/// Generates `CREATE INDEX` mirroring a base-table secondary index onto
/// the delta table, so a flattened COW query can probe an index on both
/// arms of the `UNION ALL`. Mirrors are always non-unique: uniqueness is a
/// base-table constraint and is enforced when a volatile row is committed,
/// not inside an initiator's private copy.
pub fn delta_index_sql(index: &str, table: &str, initiator: &str, column: &str) -> String {
    format!(
        "CREATE INDEX {} ON {} ({column})",
        delta_index(index, initiator),
        delta_table(table, initiator),
    )
}

/// Generates the COW view for a primary table (Figure 6):
///
/// ```sql
/// CREATE VIEW tab1_view_A AS
/// SELECT _id,data FROM tab1
///   WHERE _id NOT IN (SELECT _id FROM tab1_delta_A)
/// UNION ALL
/// SELECT _id,data FROM tab1_delta_A WHERE _whiteout=0
/// ```
pub fn cow_view_sql(table: &str, initiator: &str, columns: &[String], pk: &str) -> String {
    let collist = columns.join(",");
    let delta = delta_table(table, initiator);
    format!(
        "CREATE VIEW {view} AS SELECT {collist} FROM {table} \
         WHERE {pk} NOT IN (SELECT {pk} FROM {delta}) \
         UNION ALL SELECT {collist} FROM {delta} WHERE {wh}=0",
        view = cow_view(table, initiator),
        wh = WHITEOUT_COL,
    )
}

/// Generates the INSTEAD OF INSERT trigger: new rows land in the delta
/// table with `_whiteout = 0` (a NULL key auto-assigns from the offset).
pub fn insert_trigger_sql(table: &str, initiator: &str, columns: &[String]) -> String {
    let collist = columns.join(",");
    let news: Vec<String> = columns.iter().map(|c| format!("NEW.{c}")).collect();
    format!(
        "CREATE TRIGGER {name} INSTEAD OF INSERT ON {view} BEGIN \
         INSERT INTO {delta} ({collist},{wh}) VALUES ({vals}, 0); END",
        name = trigger(table, initiator, "insert"),
        view = cow_view(table, initiator),
        delta = delta_table(table, initiator),
        wh = WHITEOUT_COL,
        vals = news.join(", "),
    )
}

/// Generates the INSTEAD OF UPDATE trigger (Figure 6): per-row
/// copy-on-write confining the modification to the delta table.
pub fn update_trigger_sql(table: &str, initiator: &str, columns: &[String]) -> String {
    let collist = columns.join(",");
    let news: Vec<String> = columns.iter().map(|c| format!("NEW.{c}")).collect();
    format!(
        "CREATE TRIGGER {name} INSTEAD OF UPDATE ON {view} BEGIN \
         INSERT OR REPLACE INTO {delta} ({collist},{wh}) VALUES ({vals}, 0); END",
        name = trigger(table, initiator, "update"),
        view = cow_view(table, initiator),
        delta = delta_table(table, initiator),
        wh = WHITEOUT_COL,
        vals = news.join(", "),
    )
}

/// Generates the INSTEAD OF DELETE trigger: deletion is emulated with a
/// whiteout record (`_whiteout = 1`), leaving the public row untouched.
pub fn delete_trigger_sql(table: &str, initiator: &str, columns: &[String]) -> String {
    let collist = columns.join(",");
    let olds: Vec<String> = columns.iter().map(|c| format!("OLD.{c}")).collect();
    format!(
        "CREATE TRIGGER {name} INSTEAD OF DELETE ON {view} BEGIN \
         INSERT OR REPLACE INTO {delta} ({collist},{wh}) VALUES ({vals}, 1); END",
        name = trigger(table, initiator, "delete"),
        view = cow_view(table, initiator),
        delta = delta_table(table, initiator),
        wh = WHITEOUT_COL,
        vals = olds.join(", "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<String> {
        vec!["_id".to_string(), "data".to_string()]
    }

    #[test]
    fn view_sql_matches_figure6_shape() {
        let sql = cow_view_sql("tab1", "A", &cols(), "_id");
        assert_eq!(
            sql,
            "CREATE VIEW tab1_view_A AS SELECT _id,data FROM tab1 \
             WHERE _id NOT IN (SELECT _id FROM tab1_delta_A) \
             UNION ALL SELECT _id,data FROM tab1_delta_A WHERE _whiteout=0"
        );
    }

    #[test]
    fn update_trigger_matches_figure6_shape() {
        let sql = update_trigger_sql("tab1", "A", &cols());
        assert_eq!(
            sql,
            "CREATE TRIGGER tab1_A_update INSTEAD OF UPDATE ON tab1_view_A BEGIN \
             INSERT OR REPLACE INTO tab1_delta_A (_id,data,_whiteout) \
             VALUES (NEW._id, NEW.data, 0); END"
        );
    }

    #[test]
    fn delete_trigger_writes_whiteout() {
        let sql = delete_trigger_sql("tab1", "A", &cols());
        assert!(sql.contains("VALUES (OLD._id, OLD.data, 1)"));
        assert!(sql.contains("INSTEAD OF DELETE"));
    }

    #[test]
    fn delta_index_mirrors_base_index() {
        let sql = delta_index_sql("idx_word", "tab1", "A", "data");
        assert_eq!(sql, "CREATE INDEX idx_word_delta_A ON tab1_delta_A (data)");
    }

    #[test]
    fn delta_table_adds_whiteout_column() {
        let sql = delta_table_sql(
            "tab1",
            "A",
            &["_id INTEGER PRIMARY KEY".to_string(), "data TEXT".to_string()],
        );
        assert_eq!(
            sql,
            "CREATE TABLE tab1_delta_A (_id INTEGER PRIMARY KEY, data TEXT, _whiteout BOOLEAN)"
        );
    }
}
