//! The four initiator case-study apps (§2.2, §7.1): Dropbox, Google
//! Drive, Email, and Browser.

use maxoid::manifest::{InvocationFilter, MaxoidManifest};
use maxoid::{
    AppId, ContentValues, DownloadRequest, Intent, MaxoidSystem, Pid, QueryArgs, StartOutcome,
    SystemResult, Uri,
};
use maxoid_vfs::{vpath, Mode, VPath};

/// The VIEW action used throughout the case studies.
pub const ACTION_VIEW: &str = "android.intent.action.VIEW";

/// Dropbox model (§7.1 "Securing Dropbox").
///
/// Stores the user's files in a directory on external storage. Under
/// Maxoid its manifest declares that directory private and marks VIEW
/// intents as private, so viewers run as delegates without any code
/// change. Its sync loop uploads every changed file it can see —
/// faithfully reproducing the integrity problem of stock Android.
#[derive(Debug, Clone)]
pub struct Dropbox {
    /// Package name.
    pub pkg: String,
    /// EXTDIR-relative storage directory.
    pub dir: String,
}

impl Default for Dropbox {
    fn default() -> Self {
        Dropbox { pkg: "com.dropbox.android".into(), dir: "Dropbox".into() }
    }
}

impl Dropbox {
    /// The Maxoid manifest from the paper's case study: the storage dir is
    /// private and VIEW invocations are delegated. Shipped as the XML file
    /// the paper describes (§6.1) and parsed here.
    pub fn maxoid_manifest(&self) -> MaxoidManifest {
        let xml = format!(
            r#"<maxoid-manifest>
                 <private-external-dir path="{dir}"/>
                 <invocation-filters mode="whitelist">
                   <filter action="{ACTION_VIEW}"/>
                 </invocation-filters>
               </maxoid-manifest>"#,
            dir = self.dir,
        );
        MaxoidManifest::from_xml(&xml).expect("static manifest XML is valid")
    }

    /// App-visible path of a synced file.
    pub fn file_path(&self, name: &str) -> VPath {
        vpath("/storage/sdcard")
            .join(&self.dir)
            .and_then(|d| d.join(name))
            .expect("file names are valid components")
    }

    /// Simulates a sync-down: fetches a file from the Dropbox server and
    /// stores it in the storage directory.
    pub fn sync_down(&self, sys: &MaxoidSystem, pid: Pid, name: &str) -> SystemResult<VPath> {
        let data = sys.kernel.http_get(pid, &format!("dropbox.example/{name}"))?;
        let path = self.file_path(name);
        sys.kernel.mkdir_all(pid, &path.parent().expect("file has parent"), Mode::PUBLIC)?;
        sys.kernel.write(pid, &path, &data, Mode::PUBLIC)?;
        Ok(path)
    }

    /// The user taps a file: Dropbox sends a VIEW intent with the path.
    pub fn open_file(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        name: &str,
    ) -> SystemResult<StartOutcome> {
        let intent = Intent::new(ACTION_VIEW)
            .with_data(self.file_path(name).as_str())
            .with_mime(guess_mime(name));
        sys.start_activity(Some(pid), &intent)
    }

    /// The sync loop: uploads every file in the storage dir whose content
    /// differs from the server copy. Returns uploaded names. On stock
    /// Android this silently uploads a delegate's corruption; under Maxoid
    /// delegate edits live in `Vol` and are never picked up here.
    pub fn sync_up(&self, sys: &MaxoidSystem, pid: Pid) -> SystemResult<Vec<String>> {
        let dir = vpath("/storage/sdcard").join(&self.dir).expect("valid dir");
        let mut uploaded = Vec::new();
        let entries = sys.kernel.read_dir(pid, &dir).unwrap_or_default();
        for e in entries {
            if e.is_dir {
                continue;
            }
            let local = sys.kernel.read(pid, &dir.join(&e.name)?)?;
            let remote = sys
                .kernel
                .http_get(pid, &format!("dropbox.example/{}", e.name))
                .unwrap_or_default();
            if local != remote {
                // "Upload": publish the new content to the server.
                sys.kernel.net.publish("dropbox.example", &e.name, local);
                uploaded.push(e.name);
            }
        }
        Ok(uploaded)
    }

    /// Manual commit flow (§7.1): the user picks an edited file from
    /// `EXTDIR/tmp` and uploads it, then clears `Vol(Dropbox)`.
    pub fn upload_from_tmp(&self, sys: &MaxoidSystem, pid: Pid, name: &str) -> SystemResult<()> {
        let tmp = vpath("/storage/sdcard/tmp").join(&self.dir).and_then(|d| d.join(name))?;
        let data = sys.kernel.read(pid, &tmp)?;
        sys.kernel.net.publish("dropbox.example", name, data);
        Ok(())
    }
}

/// Google Drive model (§2.2 case II): caches downloads in private
/// internal storage; world-readable cache files with random-string names.
#[derive(Debug, Clone)]
pub struct GoogleDrive {
    /// Package name.
    pub pkg: String,
}

impl Default for GoogleDrive {
    fn default() -> Self {
        GoogleDrive { pkg: "com.google.android.apps.docs".into() }
    }
}

impl GoogleDrive {
    /// Downloads a file into the private cache with an unguessable name;
    /// the file itself is world-readable so a disclosed path can be
    /// opened by another app.
    pub fn cache_file(&self, sys: &MaxoidSystem, pid: Pid, name: &str) -> SystemResult<VPath> {
        let data = sys.kernel.http_get(pid, &format!("drive.example/{name}"))?;
        // "Random" component: derived from the name deterministically.
        let token: String =
            name.bytes().map(|b| char::from(b'a' + (b.wrapping_mul(17) % 26))).collect();
        let dir = vpath("/data/data").join(&self.pkg)?.join("cache")?;
        sys.kernel.mkdir_all(pid, &dir, Mode::PRIVATE)?;
        let path = dir.join(&format!("{token}-{name}"))?;
        sys.kernel.write(pid, &path, &data, Mode::WORLD_READABLE)?;
        Ok(path)
    }

    /// Opens a cached file with a viewer, disclosing its path.
    pub fn open_cached(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        cached: &VPath,
        delegate: bool,
    ) -> SystemResult<StartOutcome> {
        let mut intent =
            Intent::new(ACTION_VIEW).with_data(cached.as_str()).with_mime("application/pdf");
        if delegate {
            intent = intent.as_delegate();
        }
        sys.start_activity(Some(pid), &intent)
    }
}

/// Email model (§2.2 case III, §7.1 "Securing Email attachments").
#[derive(Debug, Clone)]
pub struct Email {
    /// Package name.
    pub pkg: String,
}

impl Default for Email {
    fn default() -> Self {
        Email { pkg: "com.android.email".into() }
    }
}

impl Email {
    /// The Maxoid manifest: VIEW intents are private (§7.1).
    pub fn maxoid_manifest(&self) -> MaxoidManifest {
        MaxoidManifest::new().filter(InvocationFilter::action(ACTION_VIEW))
    }

    /// Receives a message, storing the attachment in private internal
    /// storage.
    pub fn receive_attachment(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        name: &str,
        data: &[u8],
    ) -> SystemResult<VPath> {
        let dir = vpath("/data/data").join(&self.pkg)?.join("attachments")?;
        sys.kernel.mkdir_all(pid, &dir, Mode::PRIVATE)?;
        let path = dir.join(name)?;
        sys.kernel.write(pid, &path, data, Mode::PRIVATE)?;
        Ok(path)
    }

    /// The user clicks VIEW on the attachment: Email discloses the private
    /// path via the intent (under Maxoid the viewer becomes a delegate and
    /// reads it through its confined view of `Priv(Email)`).
    pub fn view_attachment(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        attachment: &VPath,
    ) -> SystemResult<StartOutcome> {
        let intent = Intent::new(ACTION_VIEW)
            .with_data(attachment.as_str())
            .with_mime(guess_mime(attachment.as_str()))
            .grant_read();
        sys.start_activity(Some(pid), &intent)
    }

    /// The explicit SAVE button: exports the attachment to public storage
    /// and the Downloads provider — deliberate declassification.
    pub fn save_attachment(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        attachment: &VPath,
    ) -> SystemResult<VPath> {
        let data = sys.kernel.read(pid, attachment)?;
        let name = attachment.file_name().unwrap_or("attachment").to_string();
        sys.kernel.mkdir_all(pid, &vpath("/storage/sdcard/Download"), Mode::PUBLIC)?;
        let out = vpath("/storage/sdcard/Download").join(&name)?;
        sys.kernel.write(pid, &out, &data, Mode::PUBLIC)?;
        let uri = Uri::parse("content://downloads/my_downloads").expect("static uri");
        sys.cp_insert(
            pid,
            &uri,
            &ContentValues::new()
                .put("dest", out.as_str())
                .put("title", name.as_str())
                .put("status", maxoid_providers::downloads::status::SUCCESS),
        )?;
        Ok(out)
    }
}

/// Browser model (§7.1 "Enhancing Browser's incognito mode").
///
/// The paper adds **one line** to Browser: downloads from an incognito
/// tab set the volatile flag on the `DownloadManager` request.
#[derive(Debug, Clone)]
pub struct Browser {
    /// Package name.
    pub pkg: String,
}

impl Default for Browser {
    fn default() -> Self {
        Browser { pkg: "com.android.browser".into() }
    }
}

impl Browser {
    /// Downloads a URL; `incognito` is the one-line change routing the
    /// request to volatile state.
    pub fn download(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        url: &str,
        filename: &str,
        incognito: bool,
    ) -> SystemResult<i64> {
        let req = DownloadRequest {
            url: url.to_string(),
            dest: vpath("/storage/sdcard/Download").join(filename)?,
            title: filename.to_string(),
            headers: vec![],
            volatile: incognito, // The 1-line Browser patch.
        };
        sys.enqueue_download(pid, &req)
    }

    /// The user taps a completed download's notification: a proper app is
    /// started — as Browser's delegate when the download was incognito.
    pub fn open_download_notification(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        note: &maxoid_providers::DownloadNotification,
    ) -> SystemResult<StartOutcome> {
        let mut intent = Intent::new(ACTION_VIEW)
            .with_data(vpath("/storage/sdcard/Download").join(&note.title)?.as_str())
            .with_mime(guess_mime(&note.title));
        if note.initiator.is_some() {
            intent = intent.as_delegate();
        }
        sys.start_activity(Some(pid), &intent)
    }

    /// Queries the browser's own download list, merging public and
    /// volatile records (the incognito tab's view).
    pub fn downloads_list(&self, sys: &MaxoidSystem, pid: Pid) -> SystemResult<(usize, usize)> {
        let pub_uri = Uri::parse("content://downloads/my_downloads").expect("static uri");
        let public = sys.cp_query(pid, &pub_uri, &QueryArgs::default())?.rows.len();
        let volatile = sys
            .cp_query(pid, &pub_uri.as_volatile(), &QueryArgs::default())
            .map(|rs| rs.rows.len())
            .unwrap_or(0);
        Ok((public, volatile))
    }
}

/// Picks a MIME type from a file name (enough for intent resolution).
pub fn guess_mime(name: &str) -> &'static str {
    if name.ends_with(".pdf") {
        "application/pdf"
    } else if name.ends_with(".doc") || name.ends_with(".txt") {
        "application/msword"
    } else if name.ends_with(".jpg") || name.ends_with(".png") {
        "image/jpeg"
    } else if name.ends_with(".mp4") {
        "video/mp4"
    } else {
        "application/octet-stream"
    }
}

/// Installs an app model package with a VIEW receiver (viewer-style apps).
pub fn install_viewer(sys: &MaxoidSystem, pkg: &str) -> SystemResult<AppId> {
    sys.install(pkg, vec![maxoid::AppIntentFilter::new(ACTION_VIEW, None)], MaxoidManifest::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataproc::AdobeReader;

    #[test]
    fn dropbox_stock_android_has_no_integrity() {
        // Without the Maxoid manifest, any app can corrupt Dropbox's files
        // and the sync loop uploads the corruption.
        let db = Dropbox::default();
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.kernel.net.publish("dropbox.example", "notes.txt", b"clean".to_vec());
        sys.install(&db.pkg, vec![], MaxoidManifest::new()).unwrap();
        sys.install("com.evil", vec![], MaxoidManifest::new()).unwrap();
        let dpid = sys.launch(&db.pkg).unwrap();
        db.sync_down(&mut sys, dpid, "notes.txt").unwrap();
        // Another (normal) app overwrites the file on public storage.
        let evil = sys.launch("com.evil").unwrap();
        sys.kernel.write(evil, &db.file_path("notes.txt"), b"corrupted", Mode::PUBLIC).unwrap();
        let uploaded = db.sync_up(&mut sys, dpid).unwrap();
        assert_eq!(uploaded, vec!["notes.txt"]);
        assert_eq!(sys.kernel.http_get(dpid, "dropbox.example/notes.txt").unwrap(), b"corrupted");
    }

    #[test]
    fn dropbox_with_maxoid_manifest_keeps_integrity() {
        let db = Dropbox::default();
        let reader = AdobeReader::default();
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.kernel.net.publish("dropbox.example", "notes.txt", b"clean".to_vec());
        sys.install(&db.pkg, vec![], db.maxoid_manifest()).unwrap();
        install_viewer(&mut sys, &reader.pkg).unwrap();
        sys.install("com.evil", vec![], MaxoidManifest::new()).unwrap();

        let dpid = sys.launch(&db.pkg).unwrap();
        db.sync_down(&mut sys, dpid, "notes.txt").unwrap();

        // The evil normal app cannot even see the private dir's file.
        let evil = sys.launch("com.evil").unwrap();
        assert!(!sys.kernel.exists(evil, &db.file_path("notes.txt")));

        // A viewer invoked via VIEW becomes a delegate; its edit is
        // confined to Vol(Dropbox).
        let viewer = db.open_file(&mut sys, dpid, "notes.txt").unwrap().pid();
        sys.kernel.write(viewer, &db.file_path("notes.txt"), b"edited", Mode::PUBLIC).unwrap();
        // The sync loop still sees the clean copy: no silent upload.
        assert!(db.sync_up(&mut sys, dpid).unwrap().is_empty());
        // The user explicitly uploads the edit from tmp, then clears Vol.
        db.upload_from_tmp(&mut sys, dpid, "notes.txt").unwrap();
        assert_eq!(sys.kernel.http_get(dpid, "dropbox.example/notes.txt").unwrap(), b"edited");
        sys.clear_vol(&db.pkg).unwrap();
        assert!(sys.volatile_files(&db.pkg).unwrap().is_empty());
    }

    #[test]
    fn email_attachment_viewer_is_confined() {
        let email = Email::default();
        let reader = AdobeReader::default();
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.install(&email.pkg, vec![], email.maxoid_manifest()).unwrap();
        install_viewer(&mut sys, &reader.pkg).unwrap();
        let epid = sys.launch(&email.pkg).unwrap();
        let att =
            email.receive_attachment(&mut sys, epid, "report.pdf", b"confidential PDF").unwrap();
        let vpid = email.view_attachment(&mut sys, epid, &att).unwrap().pid();
        // The viewer is a delegate and reads the private attachment.
        let viewer_proc = sys.kernel.process(vpid).unwrap();
        assert!(viewer_proc.ctx.is_delegate());
        assert_eq!(sys.kernel.read(vpid, &att).unwrap(), b"confidential PDF");
        // Its Table 1 leak (SD-card copy) is confined to Vol(email).
        let r = AdobeReader::default();
        r.open(
            &mut sys,
            vpid,
            &crate::dataproc::FileRef::Content {
                name: "report.pdf".into(),
                data: b"confidential PDF".to_vec(),
            },
        )
        .unwrap();
        // Email (the initiator) sees the copy under EXTDIR/tmp.
        assert!(sys.kernel.exists(epid, &vpath("/storage/sdcard/tmp/Download/report.pdf")));
        // A normal app does not see it on the public SD card.
        sys.install("com.other", vec![], MaxoidManifest::new()).unwrap();
        let other = sys.launch("com.other").unwrap();
        assert!(!sys.kernel.exists(other, &vpath("/storage/sdcard/Download/report.pdf")));
    }

    #[test]
    fn email_save_button_declassifies() {
        let email = Email::default();
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.install(&email.pkg, vec![], email.maxoid_manifest()).unwrap();
        let epid = sys.launch(&email.pkg).unwrap();
        let att = email.receive_attachment(&mut sys, epid, "pub.pdf", b"data").unwrap();
        let out = email.save_attachment(&mut sys, epid, &att).unwrap();
        sys.install("com.other", vec![], MaxoidManifest::new()).unwrap();
        let other = sys.launch("com.other").unwrap();
        assert_eq!(sys.kernel.read(other, &out).unwrap(), b"data");
    }

    #[test]
    fn incognito_download_is_volatile() {
        let browser = Browser::default();
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.kernel.net.publish("files.example", "page.pdf", b"pdf".to_vec());
        sys.install(&browser.pkg, vec![], MaxoidManifest::new()).unwrap();
        let bpid = sys.launch(&browser.pkg).unwrap();
        browser.download(&mut sys, bpid, "files.example/page.pdf", "page.pdf", true).unwrap();
        sys.pump_downloads().unwrap();
        let notes = sys.download_notifications();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].initiator.as_deref(), Some(browser.pkg.as_str()));
        // The browser sees one volatile download, zero public.
        let (public, volatile) = browser.downloads_list(&mut sys, bpid).unwrap();
        assert_eq!((public, volatile), (0, 1));
        // Clear-Vol wipes the incognito trace: file, record, everything.
        sys.clear_vol(&browser.pkg).unwrap();
        assert!(sys
            .open_download(Some(&browser.pkg), &vpath("/storage/sdcard/Download/page.pdf"))
            .is_err());
    }

    #[test]
    fn gdrive_cache_discloses_only_by_path() {
        let gd = GoogleDrive::default();
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.kernel.net.publish("drive.example", "doc.pdf", b"drive doc".to_vec());
        sys.install(&gd.pkg, vec![], MaxoidManifest::new()).unwrap();
        sys.install("com.other", vec![], MaxoidManifest::new()).unwrap();
        let gpid = sys.launch(&gd.pkg).unwrap();
        let cached = gd.cache_file(&mut sys, gpid, "doc.pdf").unwrap();
        // Another app cannot *list* the cache dir (it's in Drive's private
        // namespace entirely — our model is even stricter than stock
        // Android's world-readable trick).
        let other = sys.launch("com.other").unwrap();
        assert!(sys.kernel.read_dir(other, &cached.parent().unwrap()).is_err());
    }
}
