//! The leak audit: regenerating Table 1.
//!
//! After an app processes target data, this module scans the device for
//! traces of it: private state of the processing app, public external
//! storage, and system providers. Running the audit after the same
//! operation in (a) stock-Android mode and (b) Maxoid-delegate mode shows
//! the confinement: the same traces exist, but under Maxoid they are
//! invisible outside the initiator's volatile state.

use maxoid::{AppId, MaxoidSystem, QueryArgs, SystemResult, Uri};

/// Where a trace of the sensitive operation was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceLocation {
    /// A file in the processing app's private internal state.
    PrivateFile(String),
    /// A file on public external storage (visible to every app).
    PublicFile(String),
    /// A row in a public system-provider table.
    ProviderRow {
        /// The provider authority.
        authority: String,
        /// The matching row rendered as text.
        row: String,
    },
    /// A file in the initiator's volatile state (confined, discardable).
    VolatileFile(String),
}

/// A full audit report for one marker string.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Traces found, in scan order.
    pub traces: Vec<TraceLocation>,
}

impl AuditReport {
    /// Traces visible to arbitrary third-party apps (the leak surface).
    pub fn public_leaks(&self) -> Vec<&TraceLocation> {
        self.traces
            .iter()
            .filter(|t| {
                matches!(t, TraceLocation::PublicFile(_) | TraceLocation::ProviderRow { .. })
            })
            .collect()
    }

    /// Traces confined to an initiator's volatile state.
    pub fn confined(&self) -> Vec<&TraceLocation> {
        self.traces.iter().filter(|t| matches!(t, TraceLocation::VolatileFile(_))).collect()
    }
}

/// Scans the device for `marker` (file-name or content substring).
///
/// `observer_pkg` must be an installed app with no special privileges; its
/// view defines what "public" means. `suspect_pkg` is the data-processing
/// app whose private state is inspected (with root, as a forensic tool
/// would). `initiator` — when given — additionally scans that app's
/// volatile state.
pub fn audit(
    sys: &MaxoidSystem,
    observer_pkg: &str,
    suspect_pkg: &str,
    initiator: Option<&str>,
    marker: &str,
) -> SystemResult<AuditReport> {
    let mut report = AuditReport::default();

    // 1. The suspect's private internal state (root inspection of the
    //    backing store — what Table 1's "private state" column records).
    let suspect_priv = maxoid::layout::back_internal(suspect_pkg)?;
    scan_backing(sys, &suspect_priv, marker, &mut |p| {
        report.traces.push(TraceLocation::PrivateFile(p));
    });

    // 2. Public external storage, as seen by the unprivileged observer.
    let observer = sys.launch(observer_pkg)?;
    scan_visible(sys, observer, "/storage/sdcard", marker, &mut |p| {
        report.traces.push(TraceLocation::PublicFile(p));
    });

    // 3. Public rows of the system providers.
    for (authority, collection) in
        [("media", "files"), ("downloads", "my_downloads"), ("user_dictionary", "words")]
    {
        let uri = Uri::parse(&format!("content://{authority}/{collection}")).expect("static uri");
        if let Ok(rs) = sys.cp_query(observer, &uri, &QueryArgs::default()) {
            for row in &rs.rows {
                let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                let line = rendered.join("|");
                if line.contains(marker) {
                    report.traces.push(TraceLocation::ProviderRow {
                        authority: authority.to_string(),
                        row: line,
                    });
                }
            }
        }
    }
    sys.kernel.kill(sys.kernel.find_processes(&AppId::new(observer_pkg))[0])?;

    // 4. The initiator's volatile state, when asked.
    if let Some(init) = initiator {
        for entry in sys.volatile_files(init)? {
            if entry.rel.contains(marker) {
                report.traces.push(TraceLocation::VolatileFile(entry.rel.clone()));
                continue;
            }
            let host = if entry.internal {
                maxoid::layout::back_internal_tmp(init)?.join(&entry.rel)?
            } else {
                maxoid::layout::back_ext_tmp(init)?.join(&entry.rel)?
            };
            let content = sys.kernel.vfs().with_store(|s| s.read(&host)).unwrap_or_default();
            if contains_bytes(&content, marker.as_bytes()) {
                report.traces.push(TraceLocation::VolatileFile(entry.rel.clone()));
            }
        }
    }
    Ok(report)
}

/// Scans a backing-store tree for the marker (name or content).
fn scan_backing(
    sys: &MaxoidSystem,
    root: &maxoid_vfs::VPath,
    marker: &str,
    found: &mut impl FnMut(String),
) {
    sys.kernel.vfs().with_store(|s| {
        fn rec(
            s: &maxoid_vfs::Store,
            p: &maxoid_vfs::VPath,
            marker: &str,
            found: &mut impl FnMut(String),
        ) {
            let Ok(meta) = s.stat(p) else { return };
            if meta.is_dir {
                if let Ok(entries) = s.read_dir(p) {
                    for e in entries {
                        if let Ok(c) = p.join(&e.name) {
                            rec(s, &c, marker, found);
                        }
                    }
                }
            } else {
                let name_hit = p.as_str().contains(marker);
                let content_hit =
                    s.read(p).map(|d| contains_bytes(&d, marker.as_bytes())).unwrap_or(false);
                if name_hit || content_hit {
                    found(p.as_str().to_string());
                }
            }
        }
        rec(s, root, marker, found);
    });
}

/// Scans what a given process can actually see under `root`.
fn scan_visible(
    sys: &MaxoidSystem,
    pid: maxoid::Pid,
    root: &str,
    marker: &str,
    found: &mut impl FnMut(String),
) {
    let Ok(root) = maxoid_vfs::VPath::new(root) else { return };
    let mut stack = vec![root];
    while let Some(p) = stack.pop() {
        let Ok(meta) = sys.kernel.stat(pid, &p) else { continue };
        if meta.is_dir {
            if let Ok(entries) = sys.kernel.read_dir(pid, &p) {
                for e in entries {
                    if let Ok(c) = p.join(&e.name) {
                        stack.push(c);
                    }
                }
            }
        } else {
            let name_hit = p.as_str().contains(marker);
            let content_hit = sys
                .kernel
                .read(pid, &p)
                .map(|d| contains_bytes(&d, marker.as_bytes()))
                .unwrap_or(false);
            if name_hit || content_hit {
                found(p.as_str().to_string());
            }
        }
    }
}

fn contains_bytes(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

/// Convenience: the standard observer app used by the leak study.
pub fn install_observer(sys: &MaxoidSystem) -> SystemResult<String> {
    let pkg = "org.maxoid.observer";
    if !sys.kernel.is_installed(&AppId::new(pkg)) {
        sys.install(pkg, vec![], maxoid::MaxoidManifest::new())?;
    }
    Ok(pkg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataproc::{AdobeReader, FileRef};
    use crate::initiators::{install_viewer, Email};
    use maxoid::manifest::MaxoidManifest;

    #[test]
    fn audit_detects_stock_leak_and_maxoid_confinement() {
        let reader = AdobeReader::default();
        let email = Email::default();
        let marker = "quarterly_report";

        // Stock behaviour: the reader opens the attachment as a normal
        // app and copies it to the SD card.
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.install(&email.pkg, vec![], MaxoidManifest::new()).unwrap();
        install_viewer(&mut sys, &reader.pkg).unwrap();
        install_observer(&mut sys).unwrap();
        let rpid = sys.launch(&reader.pkg).unwrap();
        reader
            .open(
                &mut sys,
                rpid,
                &FileRef::Content { name: format!("{marker}.pdf"), data: b"numbers".to_vec() },
            )
            .unwrap();
        let report = audit(&mut sys, "org.maxoid.observer", &reader.pkg, None, marker).unwrap();
        assert!(!report.public_leaks().is_empty(), "stock Android must leak");
        assert!(report.traces.iter().any(|t| matches!(t, TraceLocation::PrivateFile(_))));

        // Maxoid: the same reader code runs as Email's delegate.
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.install(&email.pkg, vec![], email.maxoid_manifest()).unwrap();
        install_viewer(&mut sys, &reader.pkg).unwrap();
        install_observer(&mut sys).unwrap();
        let epid = sys.launch(&email.pkg).unwrap();
        let att =
            email.receive_attachment(&mut sys, epid, &format!("{marker}.pdf"), b"numbers").unwrap();
        let vpid = email.view_attachment(&mut sys, epid, &att).unwrap().pid();
        reader
            .open(
                &mut sys,
                vpid,
                &FileRef::Content { name: format!("{marker}.pdf"), data: b"numbers".to_vec() },
            )
            .unwrap();
        let report =
            audit(&mut sys, "org.maxoid.observer", &reader.pkg, Some(&email.pkg), marker).unwrap();
        assert!(report.public_leaks().is_empty(), "Maxoid must not leak publicly");
        assert!(!report.confined().is_empty(), "the trace must exist in Vol");
        // Clear-Vol removes even the confined trace.
        sys.clear_vol(&email.pkg).unwrap();
        let report =
            audit(&mut sys, "org.maxoid.observer", &reader.pkg, Some(&email.pkg), marker).unwrap();
        assert!(report.confined().is_empty());
    }
}
