//! The wrapper app (§7.1): an app that does nothing but hold sensitive
//! documents, used as an initiator to force "real apps" into a
//! system-wide incognito mode. After the delegates finish, clearing the
//! volatile state removes every trace they left anywhere.

use maxoid::manifest::{InvocationFilter, MaxoidManifest};
use maxoid::{Intent, MaxoidSystem, Pid, StartOutcome, SystemResult};
use maxoid_vfs::{vpath, Mode, VPath};

/// The document-holding wrapper app.
#[derive(Debug, Clone)]
pub struct WrapperApp {
    /// Package name.
    pub pkg: String,
}

impl Default for WrapperApp {
    fn default() -> Self {
        WrapperApp { pkg: "org.maxoid.wrapper".into() }
    }
}

impl WrapperApp {
    /// Manifest: every outgoing intent invokes a delegate (an empty
    /// blacklist matches nothing, so everything is private).
    pub fn maxoid_manifest(&self) -> MaxoidManifest {
        MaxoidManifest::new().filter(InvocationFilter::default())
        // A default filter matches every intent; whitelist mode makes
        // every invocation private.
    }

    /// Stores a sensitive document in the wrapper's private storage.
    pub fn hold_document(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        name: &str,
        data: &[u8],
    ) -> SystemResult<VPath> {
        let dir = vpath("/data/data").join(&self.pkg)?.join("docs")?;
        sys.kernel.mkdir_all(pid, &dir, Mode::PRIVATE)?;
        let path = dir.join(name)?;
        sys.kernel.write(pid, &path, data, Mode::PRIVATE)?;
        Ok(path)
    }

    /// Opens a held document with a real app, which runs incognito (as
    /// the wrapper's delegate).
    pub fn open_with(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        doc: &VPath,
        viewer_pkg: &str,
    ) -> SystemResult<StartOutcome> {
        let intent = Intent::new(crate::initiators::ACTION_VIEW)
            .with_data(doc.as_str())
            .with_target(viewer_pkg);
        sys.start_activity(Some(pid), &intent)
    }

    /// Ends the incognito session: clears volatile state and delegate
    /// private forks, removing all traces.
    pub fn end_session(&self, sys: &MaxoidSystem) -> SystemResult<()> {
        sys.clear_vol(&self.pkg)?;
        sys.clear_priv(&self.pkg)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataproc::{read_private_lines, AdobeReader, FileRef};
    use crate::initiators::install_viewer;

    #[test]
    fn system_wide_incognito_mode() {
        let wrapper = WrapperApp::default();
        let reader = AdobeReader::default();
        let mut sys = MaxoidSystem::boot().unwrap();
        sys.install(&wrapper.pkg, vec![], wrapper.maxoid_manifest()).unwrap();
        install_viewer(&mut sys, &reader.pkg).unwrap();

        let wpid = sys.launch(&wrapper.pkg).unwrap();
        let doc = wrapper.hold_document(&mut sys, wpid, "tax_return.pdf", b"sensitive").unwrap();
        let vpid = wrapper.open_with(&mut sys, wpid, &doc, &reader.pkg).unwrap().pid();
        assert!(sys.kernel.process(vpid).unwrap().ctx.is_delegate());
        // The reader leaves its usual traces while confined.
        reader.open(&mut sys, vpid, &FileRef::Path(doc.clone())).unwrap();
        assert_eq!(read_private_lines(&sys, vpid, &reader.pkg, "recent_files.xml").len(), 1);

        // End the session: every trace disappears.
        wrapper.end_session(&mut sys).unwrap();
        assert!(sys.volatile_files(&wrapper.pkg).unwrap().is_empty());
        // A fresh delegate run sees an empty recents list...
        let v2 = sys.launch_as_delegate(&reader.pkg, &wrapper.pkg).unwrap();
        assert!(read_private_lines(&sys, v2, &reader.pkg, "recent_files.xml").is_empty());
        // ...and a normal run of the reader never saw anything.
        // (Kill the delegate first so the normal instance may start.)
        let normal = sys.launch(&reader.pkg).unwrap();
        assert!(read_private_lines(&sys, normal, &reader.pkg, "recent_files.xml").is_empty());
    }
}
