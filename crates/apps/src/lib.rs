//! Behavioural models of the apps in the Maxoid paper's case studies.
//!
//! Two families:
//!
//! - **Data-processing apps** (Table 1): Adobe Reader, Kingsoft Office,
//!   Barcode Scanner, CamScanner, CameraMX, VPlayer — legacy apps that
//!   leave traces of processed data in private and public state. They are
//!   plain path/URI users and run unmodified as Maxoid delegates (U3).
//! - **Initiator apps** (§2.2, §7.1): Dropbox, Google Drive, Email,
//!   Browser — apps that need help from the processing apps, each
//!   demonstrating one use case from the evaluation. Plus EBookDroid, the
//!   Maxoid-aware delegate using persistent private state, and the
//!   wrapper app providing system-wide incognito mode.
//!
//! [`audit`] regenerates the Table 1 leak study and verifies Maxoid's
//! confinement of the same behaviours.

#![warn(missing_docs)]

pub mod audit;
pub mod compute;
pub mod dataproc;
pub mod ebookdroid;
pub mod initiators;
pub mod wrapper;

pub use audit::{audit, install_observer, AuditReport, TraceLocation};
pub use dataproc::{
    AdobeReader, BarcodeScanner, CamScanner, CameraMx, FileRef, KingsoftOffice, VPlayer,
};
pub use ebookdroid::EBookDroid;
pub use initiators::{install_viewer, Browser, Dropbox, Email, GoogleDrive, ACTION_VIEW};
pub use wrapper::WrapperApp;
