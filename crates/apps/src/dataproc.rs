//! Behavioural models of the Table 1 data-processing apps.
//!
//! The paper manually studies 77 Google Play apps and tabulates the state
//! each leaves behind after processing its target data (Table 1). These
//! models perform the *same writes* — recent-file XML / databases in
//! private state, file copies / thumbnails / logs / Media rows in public
//! state — so the leak study is reproducible, and so running the same
//! binaries as Maxoid delegates demonstrates the confinement.
//!
//! The models are honest legacy apps: they use ordinary paths and
//! provider URIs and never know whether they run confined (U3).

use crate::compute;
use maxoid::{MaxoidSystem, MediaKind, Pid, SystemResult};
use maxoid_vfs::{vpath, Mode, VPath};

/// How a document reaches a viewer.
#[derive(Debug, Clone)]
pub enum FileRef {
    /// A plain path the viewer opens itself.
    Path(VPath),
    /// Raw bytes received through a content URI / file descriptor (the
    /// per-URI grant pattern); the viewer never sees a path.
    Content {
        /// A display name for the recent-files list.
        name: String,
        /// The document bytes.
        data: Vec<u8>,
    },
}

impl FileRef {
    fn name(&self) -> String {
        match self {
            FileRef::Path(p) => p.file_name().unwrap_or("unnamed").to_string(),
            FileRef::Content { name, .. } => name.clone(),
        }
    }
}

fn private_dir(pkg: &str) -> VPath {
    vpath("/data/data").join(pkg).expect("package names are valid path components")
}

/// Appends a line to a private app file (shared-prefs XML or app DB are
/// both private files in Android, §2.1).
fn append_private_line(
    sys: &MaxoidSystem,
    pid: Pid,
    pkg: &str,
    file: &str,
    line: &str,
) -> SystemResult<()> {
    let path = private_dir(pkg).join(file)?;
    let mut data = sys.kernel.read(pid, &path).unwrap_or_default();
    data.extend_from_slice(line.as_bytes());
    data.push(b'\n');
    sys.kernel.write(pid, &path, &data, Mode::PRIVATE)?;
    Ok(())
}

/// Reads the lines of a private app file (empty when absent).
pub fn read_private_lines(sys: &MaxoidSystem, pid: Pid, pkg: &str, file: &str) -> Vec<String> {
    let path = match private_dir(pkg).join(file) {
        Ok(p) => p,
        Err(_) => return Vec::new(),
    };
    match sys.kernel.read(pid, &path) {
        Ok(data) => String::from_utf8_lossy(&data).lines().map(|l| l.to_string()).collect(),
        Err(_) => Vec::new(),
    }
}

/// Adobe Reader model (Table 1, document viewer row).
///
/// Opening a file records it in the recent-files XML; opening a *content
/// URI* additionally copies the document to the SD card — the leak the
/// paper calls out for Email attachments.
#[derive(Debug, Clone)]
pub struct AdobeReader {
    /// The model's package name.
    pub pkg: String,
}

impl Default for AdobeReader {
    fn default() -> Self {
        AdobeReader { pkg: "com.adobe.reader".into() }
    }
}

impl AdobeReader {
    /// Result of opening a document.
    pub fn open(&self, sys: &MaxoidSystem, pid: Pid, file: &FileRef) -> SystemResult<u64> {
        let (name, data) = match file {
            FileRef::Path(p) => (file.name(), sys.kernel.read(pid, p)?),
            FileRef::Content { name, data } => {
                // A content-URI open: Reader saves a copy on the SD card.
                let copy = vpath("/storage/sdcard/Download").join(name)?;
                sys.kernel.mkdir_all(pid, &vpath("/storage/sdcard/Download"), Mode::PUBLIC)?;
                sys.kernel.write(pid, &copy, data, Mode::PUBLIC)?;
                (name.clone(), data.clone())
            }
        };
        // XML: recent files (private state).
        append_private_line(sys, pid, &self.pkg, "recent_files.xml", &name)?;
        // Render (CPU-bound; unaffected by confinement).
        Ok(compute::render_document(&data, 2))
    }

    /// In-file search (Table 5 task).
    pub fn search(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        path: &VPath,
        needle: &str,
    ) -> SystemResult<usize> {
        let data = sys.kernel.read(pid, path)?;
        Ok(compute::in_file_search(&data, needle.as_bytes(), 4))
    }
}

/// Kingsoft Office model (Table 1): recent files in an app-defined
/// format, a thumbnail on the SD card, and entries in a database *stored
/// on the SD card*.
#[derive(Debug, Clone)]
pub struct KingsoftOffice {
    /// The model's package name.
    pub pkg: String,
}

impl Default for KingsoftOffice {
    fn default() -> Self {
        KingsoftOffice { pkg: "cn.wps.moffice".into() }
    }
}

impl KingsoftOffice {
    /// Opens a document, leaving the Table 1 traces.
    pub fn open(&self, sys: &MaxoidSystem, pid: Pid, path: &VPath) -> SystemResult<u64> {
        let data = sys.kernel.read(pid, path)?;
        let name = path.file_name().unwrap_or("doc").to_string();
        // ADF: recent files (private, app-defined format).
        append_private_line(sys, pid, &self.pkg, "recent.adf", &format!("R|{name}"))?;
        // Thumbnail on the SD card.
        sys.kernel.mkdir_all(pid, &vpath("/storage/sdcard/.office_thumbs"), Mode::PUBLIC)?;
        let thumb = vpath("/storage/sdcard/.office_thumbs").join(&format!("{name}.png"))?;
        sys.kernel.write(pid, &thumb, &data[..data.len().min(32)], Mode::PUBLIC)?;
        // Entries in a database stored on the SD card.
        let db = vpath("/storage/sdcard/.office_db");
        let mut existing = sys.kernel.read(pid, &db).unwrap_or_default();
        existing.extend_from_slice(format!("open:{name}\n").as_bytes());
        sys.kernel.write(pid, &db, &existing, Mode::PUBLIC)?;
        Ok(compute::render_document(&data, 1))
    }
}

/// Barcode Scanner model (Table 1): recent scans in a private DB; the
/// decoded text is the output handed to the invoker.
#[derive(Debug, Clone)]
pub struct BarcodeScanner {
    /// The model's package name.
    pub pkg: String,
}

impl Default for BarcodeScanner {
    fn default() -> Self {
        BarcodeScanner { pkg: "com.google.zxing".into() }
    }
}

impl BarcodeScanner {
    /// Scans a QR code; stores the decoded payload in the recent-scans DB.
    pub fn scan(&self, sys: &MaxoidSystem, pid: Pid, code_id: u64) -> SystemResult<String> {
        let payload = compute::qr_payload(code_id);
        append_private_line(sys, pid, &self.pkg, "scans.db", &payload)?;
        Ok(payload)
    }
}

/// CamScanner model (Table 1): scanning a page writes an image file, a
/// thumbnail and a log file to the SD card, plus a private recent-scans
/// DB entry.
#[derive(Debug, Clone)]
pub struct CamScanner {
    /// The model's package name.
    pub pkg: String,
}

impl Default for CamScanner {
    fn default() -> Self {
        CamScanner { pkg: "com.intsig.camscanner".into() }
    }
}

impl CamScanner {
    /// Scans a document page (Table 5 task: "process a scanned page").
    pub fn scan_page(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        page_name: &str,
        raw_pixels: &[u8],
    ) -> SystemResult<VPath> {
        let processed = compute::process_scanned_page(raw_pixels, 3);
        let dir = vpath("/storage/sdcard/CamScanner");
        sys.kernel.mkdir_all(pid, &dir, Mode::PUBLIC)?;
        // Image file saved to SD card.
        let img = dir.join(&format!("{page_name}.jpg"))?;
        sys.kernel.write(pid, &img, &processed, Mode::PUBLIC)?;
        // Thumbnail on SD card.
        let thumb = dir.join(&format!(".{page_name}.thumb"))?;
        sys.kernel.write(pid, &thumb, &processed[..processed.len().min(16)], Mode::PUBLIC)?;
        // Log file on the SD card.
        let log = dir.join("scan.log")?;
        let mut existing = sys.kernel.read(pid, &log).unwrap_or_default();
        existing.extend_from_slice(format!("scanned {page_name}\n").as_bytes());
        sys.kernel.write(pid, &log, &existing, Mode::PUBLIC)?;
        // Private DB: recent scans.
        append_private_line(sys, pid, &self.pkg, "scans.db", page_name)?;
        Ok(img)
    }
}

/// CameraMX model (Table 1): taking a photo writes the file to the SD
/// card and inserts a Media provider row; editing adds another row.
#[derive(Debug, Clone)]
pub struct CameraMx {
    /// The model's package name.
    pub pkg: String,
}

impl Default for CameraMx {
    fn default() -> Self {
        CameraMx { pkg: "com.magix.camera_mx".into() }
    }
}

impl CameraMx {
    /// Takes a photo (Table 5 task).
    pub fn take_photo(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        name: &str,
        bytes: usize,
    ) -> SystemResult<VPath> {
        let photo = compute::capture_photo(bytes, name.len() as u64 + 1);
        let dir = vpath("/storage/sdcard/DCIM");
        sys.kernel.mkdir_all(pid, &dir, Mode::PUBLIC)?;
        let path = dir.join(&format!("{name}.jpg"))?;
        sys.kernel.write(pid, &path, &photo, Mode::PUBLIC)?;
        // New entry in Media provider (+ its thumbnail service).
        sys.scan_media(pid, &path, MediaKind::Image, name, photo.len())?;
        Ok(path)
    }

    /// Saves an edited photo (Table 5 task): a new file and Media row.
    pub fn save_edited(
        &self,
        sys: &MaxoidSystem,
        pid: Pid,
        original: &VPath,
    ) -> SystemResult<VPath> {
        let data = sys.kernel.read(pid, original)?;
        let edited = compute::process_scanned_page(&data, 1);
        let name = format!("{}_edit", original.file_name().unwrap_or("photo"));
        let path = vpath("/storage/sdcard/DCIM").join(&format!("{name}.jpg"))?;
        sys.kernel.write(pid, &path, &edited, Mode::PUBLIC)?;
        sys.scan_media(pid, &path, MediaKind::Image, &name, edited.len())?;
        Ok(path)
    }
}

/// VPlayer model (Table 1): playing a video records private playback
/// history and drops a thumbnail on the SD card.
#[derive(Debug, Clone)]
pub struct VPlayer {
    /// The model's package name.
    pub pkg: String,
}

impl Default for VPlayer {
    fn default() -> Self {
        VPlayer { pkg: "me.abitno.vplayer".into() }
    }
}

impl VPlayer {
    /// Plays a video file.
    pub fn play(&self, sys: &MaxoidSystem, pid: Pid, path: &VPath) -> SystemResult<u64> {
        let data = sys.kernel.read(pid, path)?;
        let name = path.file_name().unwrap_or("video").to_string();
        // DB: playback history (private).
        append_private_line(sys, pid, &self.pkg, "history.db", &name)?;
        // Thumbnail for this video on the SD card.
        sys.kernel.mkdir_all(pid, &vpath("/storage/sdcard/.vplayer"), Mode::PUBLIC)?;
        let thumb = vpath("/storage/sdcard/.vplayer").join(&format!("{name}.thumb"))?;
        sys.kernel.write(pid, &thumb, &data[..data.len().min(16)], Mode::PUBLIC)?;
        Ok(compute::render_document(&data, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid::manifest::MaxoidManifest;

    fn boot_with(pkgs: &[&str]) -> MaxoidSystem {
        let mut sys = MaxoidSystem::boot().unwrap();
        for p in pkgs {
            sys.install(p, vec![], MaxoidManifest::new()).unwrap();
        }
        sys
    }

    #[test]
    fn reader_leaves_table1_traces_when_unconfined() {
        let reader = AdobeReader::default();
        let mut sys = boot_with(&[&reader.pkg]);
        let pid = sys.launch(&reader.pkg).unwrap();
        reader
            .open(
                &mut sys,
                pid,
                &FileRef::Content { name: "secret.pdf".into(), data: b"PDF secret".to_vec() },
            )
            .unwrap();
        // Private trace: recent files.
        assert_eq!(
            read_private_lines(&sys, pid, &reader.pkg, "recent_files.xml"),
            vec!["secret.pdf"]
        );
        // Public trace: copy on the SD card — visible to any other app.
        let other_pkg = "com.other";
        let mut sys2 = sys;
        sys2.install(other_pkg, vec![], MaxoidManifest::new()).unwrap();
        let other = sys2.launch(other_pkg).unwrap();
        assert_eq!(
            sys2.kernel.read(other, &vpath("/storage/sdcard/Download/secret.pdf")).unwrap(),
            b"PDF secret"
        );
    }

    #[test]
    fn camscanner_leaves_three_public_traces() {
        let cs = CamScanner::default();
        let mut sys = boot_with(&[&cs.pkg]);
        let pid = sys.launch(&cs.pkg).unwrap();
        let px = compute::capture_photo(128, 9);
        cs.scan_page(&mut sys, pid, "contract", &px).unwrap();
        for p in [
            "/storage/sdcard/CamScanner/contract.jpg",
            "/storage/sdcard/CamScanner/.contract.thumb",
            "/storage/sdcard/CamScanner/scan.log",
        ] {
            assert!(sys.kernel.exists(pid, &vpath(p)), "missing {p}");
        }
        assert_eq!(read_private_lines(&sys, pid, &cs.pkg, "scans.db"), vec!["contract"]);
    }

    #[test]
    fn cameramx_registers_media_rows() {
        let cam = CameraMx::default();
        let mut sys = boot_with(&[&cam.pkg]);
        let pid = sys.launch(&cam.pkg).unwrap();
        let photo = cam.take_photo(&mut sys, pid, "p1", 256).unwrap();
        cam.save_edited(&mut sys, pid, &photo).unwrap();
        let images = maxoid::Uri::parse("content://media/images").unwrap();
        let rs = sys.cp_query(pid, &images, &maxoid::QueryArgs::default()).unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn scanner_records_history() {
        let sc = BarcodeScanner::default();
        let mut sys = boot_with(&[&sc.pkg]);
        let pid = sys.launch(&sc.pkg).unwrap();
        let url = sc.scan(&mut sys, pid, 7).unwrap();
        assert!(url.contains("/item/7"));
        assert_eq!(read_private_lines(&sys, pid, &sc.pkg, "scans.db"), vec![url]);
    }

    #[test]
    fn vplayer_and_office_traces() {
        let vp = VPlayer::default();
        let ks = KingsoftOffice::default();
        let mut sys = boot_with(&[&vp.pkg, &ks.pkg]);
        let vpid = sys.launch(&vp.pkg).unwrap();
        sys.kernel
            .write(vpid, &vpath("/storage/sdcard/movie.mp4"), b"video bytes", Mode::PUBLIC)
            .unwrap();
        vp.play(&mut sys, vpid, &vpath("/storage/sdcard/movie.mp4")).unwrap();
        assert!(sys.kernel.exists(vpid, &vpath("/storage/sdcard/.vplayer/movie.mp4.thumb")));

        let kpid = sys.launch(&ks.pkg).unwrap();
        sys.kernel
            .write(kpid, &vpath("/storage/sdcard/report.doc"), b"doc bytes", Mode::PUBLIC)
            .unwrap();
        ks.open(&mut sys, kpid, &vpath("/storage/sdcard/report.doc")).unwrap();
        assert!(sys.kernel.exists(kpid, &vpath("/storage/sdcard/.office_db")));
        assert!(sys.kernel.exists(kpid, &vpath("/storage/sdcard/.office_thumbs/report.doc.png")));
    }
}
