//! EBookDroid model (§7.1 "Using delegates' persistent private state").
//!
//! The only Maxoid-*aware* delegate in the case studies: the paper's
//! 45-line patch makes the document viewer store recent files and
//! bookmarks in its **persistent private state** (`pPriv`) when running as
//! a delegate, and show a recent list merged from both databases. pPriv
//! survives re-forks of nPriv and is isolated per initiator, so
//! attachments opened on behalf of Email reappear in the recents list the
//! next time the viewer runs for Email, but never when it runs normally
//! or for another initiator.

use maxoid::{ExecContext, MaxoidSystem, Pid, SystemResult};
use maxoid_vfs::{vpath, Mode, VPath};

/// The EBookDroid document-viewer model.
#[derive(Debug, Clone)]
pub struct EBookDroid {
    /// Package name.
    pub pkg: String,
}

impl Default for EBookDroid {
    fn default() -> Self {
        EBookDroid { pkg: "org.ebookdroid".into() }
    }
}

impl EBookDroid {
    fn npriv_db(&self) -> VPath {
        vpath("/data/data").join(&self.pkg).and_then(|d| d.join("recent.db")).expect("static path")
    }

    fn ppriv_db(&self) -> VPath {
        vpath("/data/data/ppriv")
            .join(&self.pkg)
            .and_then(|d| d.join("recent.db"))
            .expect("static path")
    }

    /// Queries whether this process runs as a delegate (the Maxoid
    /// delegate API, §6.1).
    fn is_delegate(sys: &MaxoidSystem, pid: Pid) -> SystemResult<bool> {
        Ok(matches!(sys.kernel.process(pid)?.ctx, ExecContext::OnBehalfOf(_)))
    }

    /// Opens a document: records it in the appropriate recents database.
    /// This is the patched code path — delegates write to pPriv, normal
    /// runs write to nPriv; cache files would still go to nPriv.
    pub fn open(&self, sys: &MaxoidSystem, pid: Pid, path: &VPath) -> SystemResult<()> {
        let _content = sys.kernel.read(pid, path)?;
        let db = if Self::is_delegate(sys, pid)? { self.ppriv_db() } else { self.npriv_db() };
        let mut data = sys.kernel.read(pid, &db).unwrap_or_default();
        data.extend_from_slice(path.as_str().as_bytes());
        data.push(b'\n');
        sys.kernel.write(pid, &db, &data, Mode::PRIVATE)?;
        // Unimportant cache state still goes to the normal private state.
        let cache = vpath("/data/data").join(&self.pkg)?.join("cache.bin")?;
        sys.kernel.write(pid, &cache, b"render-cache", Mode::PRIVATE)?;
        Ok(())
    }

    /// Returns the recents list merged from both databases (the patched
    /// list-building code).
    pub fn recent_files(&self, sys: &MaxoidSystem, pid: Pid) -> SystemResult<Vec<String>> {
        let mut out = Vec::new();
        for db in [self.npriv_db(), self.ppriv_db()] {
            if let Ok(data) = sys.kernel.read(pid, &db) {
                out.extend(String::from_utf8_lossy(&data).lines().map(|l| l.to_string()));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid::manifest::MaxoidManifest;

    fn boot() -> (MaxoidSystem, EBookDroid, String) {
        let mut sys = MaxoidSystem::boot().unwrap();
        let viewer = EBookDroid::default();
        sys.install(&viewer.pkg, vec![], MaxoidManifest::new()).unwrap();
        sys.install("com.email", vec![], MaxoidManifest::new()).unwrap();
        sys.install("com.dropbox", vec![], MaxoidManifest::new()).unwrap();
        (sys, viewer, "com.email".to_string())
    }

    /// Write a world-readable book into the initiator's private dir so the
    /// delegate can open it through its view of Priv(initiator).
    fn put_book(sys: &MaxoidSystem, owner_pid: Pid, owner: &str, name: &str) -> VPath {
        let p = vpath("/data/data").join(owner).unwrap().join(name).unwrap();
        sys.kernel.write(owner_pid, &p, b"book", Mode::PRIVATE).unwrap();
        p
    }

    #[test]
    fn ppriv_survives_normal_runs_and_is_per_initiator() {
        let (mut sys, viewer, email) = boot();
        let epid = sys.launch(&email).unwrap();
        let book = put_book(&mut sys, epid, &email, "att1.pdf");

        // Run 1 as Email's delegate: open the attachment.
        let d1 = sys.launch_as_delegate(&viewer.pkg, &email).unwrap();
        viewer.open(&mut sys, d1, &book).unwrap();
        assert_eq!(viewer.recent_files(&sys, d1).unwrap().len(), 1);

        // The viewer runs normally and updates its private state — this
        // diverges Priv(B) and will discard nPriv(B^A).
        let normal = sys.launch(&viewer.pkg).unwrap();
        let own = vpath("/data/data").join(&viewer.pkg).unwrap().join("own.pdf").unwrap();
        sys.kernel.write(normal, &own, b"own book", Mode::PRIVATE).unwrap();
        viewer.open(&mut sys, normal, &own).unwrap();
        // Normal runs never see the delegate's recents (S1).
        let normal_recents = viewer.recent_files(&sys, normal).unwrap();
        assert_eq!(normal_recents, vec![own.as_str().to_string()]);

        // Run 2 as Email's delegate: nPriv was re-forked (cache gone), but
        // pPriv kept the attachment entry.
        let d2 = sys.launch_as_delegate(&viewer.pkg, &email).unwrap();
        let recents = viewer.recent_files(&sys, d2).unwrap();
        assert!(recents.contains(&book.as_str().to_string()));
        // And it also sees the (normal-run) entry via the fresh fork of
        // Priv(B) — the user's normal history carries over (U1).
        assert!(recents.contains(&own.as_str().to_string()));

        // A delegate run for Dropbox sees neither Email's pPriv entries
        // nor Email's attachment.
        let dd = sys.launch_as_delegate(&viewer.pkg, "com.dropbox").unwrap();
        let dropbox_recents = viewer.recent_files(&sys, dd).unwrap();
        assert!(!dropbox_recents.contains(&book.as_str().to_string()));
    }

    #[test]
    fn clear_priv_erases_ppriv() {
        let (mut sys, viewer, email) = boot();
        let epid = sys.launch(&email).unwrap();
        let book = put_book(&mut sys, epid, &email, "att.pdf");
        let d = sys.launch_as_delegate(&viewer.pkg, &email).unwrap();
        viewer.open(&mut sys, d, &book).unwrap();
        sys.clear_priv(&email).unwrap();
        let d2 = sys.launch_as_delegate(&viewer.pkg, &email).unwrap();
        assert!(viewer.recent_files(&sys, d2).unwrap().is_empty());
    }
}
