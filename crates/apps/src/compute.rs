//! Deterministic compute kernels standing in for app CPU work.
//!
//! The paper's Table 3 includes a CPU-bound microbenchmark (matrix
//! multiplication) and Table 5 measures user-perceivable task latency
//! dominated by rendering and image processing. These kernels provide the
//! same cost structure — pure CPU work whose running time is independent
//! of Maxoid confinement — without real codecs.

/// Multiplies two `n × n` matrices derived deterministically from a seed;
/// returns a checksum. The Table 3 CPU-bound microbenchmark.
pub fn matmul_checksum(n: usize, seed: u64) -> u64 {
    let mut a = vec![0u64; n * n];
    let mut b = vec![0u64; n * n];
    // Golden-ratio mixing keeps adjacent seeds distinct after the `| 1`.
    let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    for v in a.iter_mut().chain(b.iter_mut()) {
        // Xorshift64: cheap deterministic fill.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *v = x & 0xff;
    }
    let mut c = vec![0u64; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] = c[i * n + j].wrapping_add(aik.wrapping_mul(b[k * n + j]));
            }
        }
    }
    c.iter().fold(0u64, |acc, v| acc.wrapping_add(*v))
}

/// "Renders" a document: a byte-mixing pass over the content repeated
/// `passes` times. Stands in for PDF rasterization (Table 5, Adobe
/// Reader open).
pub fn render_document(data: &[u8], passes: usize) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for _ in 0..passes {
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Searches for a needle across a document repeatedly (Table 5, in-file
/// search). Returns the number of matches found.
pub fn in_file_search(data: &[u8], needle: &[u8], passes: usize) -> usize {
    if needle.is_empty() {
        return 0;
    }
    let mut count = 0;
    for _ in 0..passes {
        count += data.windows(needle.len()).filter(|w| *w == needle).count();
    }
    count
}

/// "Processes" a scanned page: per-pixel transform emulating CamScanner's
/// de-skew/contrast pipeline.
pub fn process_scanned_page(pixels: &[u8], rounds: usize) -> Vec<u8> {
    let mut out = pixels.to_vec();
    for r in 0..rounds {
        for (i, p) in out.iter_mut().enumerate() {
            *p = p.wrapping_mul(31).wrapping_add((i as u8) ^ (r as u8));
        }
    }
    out
}

/// Synthesizes a "photo" of the requested size from a seed (CameraMX
/// capture path).
pub fn capture_photo(bytes: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..bytes)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 0xff) as u8
        })
        .collect()
}

/// Generates a deterministic QR payload for the scanner models.
pub fn qr_payload(id: u64) -> String {
    format!("http://links.example/item/{id}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_is_deterministic() {
        assert_eq!(matmul_checksum(16, 42), matmul_checksum(16, 42));
        assert_ne!(matmul_checksum(16, 42), matmul_checksum(16, 43));
    }

    #[test]
    fn render_depends_on_content_and_passes() {
        let d1 = b"document one";
        assert_eq!(render_document(d1, 3), render_document(d1, 3));
        assert_ne!(render_document(d1, 3), render_document(d1, 4));
        assert_ne!(render_document(d1, 3), render_document(b"other", 3));
    }

    #[test]
    fn search_counts_matches() {
        let data = b"abc needle abc needle abc";
        assert_eq!(in_file_search(data, b"needle", 1), 2);
        assert_eq!(in_file_search(data, b"needle", 3), 6);
        assert_eq!(in_file_search(data, b"", 5), 0);
        assert_eq!(in_file_search(data, b"zzz", 2), 0);
    }

    #[test]
    fn photo_capture_sized_and_seeded() {
        let p = capture_photo(1024, 7);
        assert_eq!(p.len(), 1024);
        assert_eq!(p, capture_photo(1024, 7));
        assert_ne!(p, capture_photo(1024, 8));
    }

    #[test]
    fn page_processing_roundtrips_deterministically() {
        let px = capture_photo(256, 1);
        assert_eq!(process_scanned_page(&px, 2), process_scanned_page(&px, 2));
        assert_ne!(process_scanned_page(&px, 2), process_scanned_page(&px, 3));
    }
}
