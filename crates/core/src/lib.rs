//! Maxoid: transparently confining mobile applications with custom views
//! of state (EuroSys 2015) — a full-system reproduction in Rust.
//!
//! Maxoid lets an app (the **initiator**, `A`) invoke another, untrusted
//! app (the **delegate**, `B^A`) on its sensitive data while guaranteeing
//! secrecy and integrity for both sides. Rather than taint tracking, it
//! presents delegates *custom views of state*:
//!
//! - **Files** (§4): per-process mount namespaces with Aufs-style union
//!   mounts. A delegate's private writes are confined to a copy-on-write
//!   overlay (`nPriv`), its public writes are redirected into the
//!   initiator's volatile state (`Vol(A)`), and whiteouts/copy-up make it
//!   all transparent.
//! - **System content providers** (§5): a copy-on-write SQL proxy with
//!   per-initiator delta tables, `UNION ALL` COW views and `INSTEAD OF`
//!   triggers (see [`maxoid_cowproxy`]).
//! - **IPC** (§3.4): invocation-transitivity (everything a delegate starts
//!   is a delegate of the same initiator), Binder endpoint restrictions,
//!   confined broadcasts, and no nested delegation.
//! - **Network** (§2.4): delegates see `ENETUNREACH`.
//!
//! The crate wires the substrate crates into a bootable [`MaxoidSystem`]
//! that behaves like a device: install apps, send intents, run delegates,
//! inspect and commit volatile state, and use the launcher gestures
//! (start-as-delegate, Clear-Vol, Clear-Priv).
//!
//! # Examples
//!
//! ```
//! use maxoid::{Intent, MaxoidSystem};
//! use maxoid::manifest::{InvocationFilter, MaxoidManifest};
//! use maxoid::intent::AppIntentFilter;
//! use maxoid_vfs::{vpath, Mode};
//!
//! let mut sys = MaxoidSystem::boot().unwrap();
//! // Email marks VIEW intents private via its Maxoid manifest.
//! sys.install(
//!     "email",
//!     vec![],
//!     MaxoidManifest::new().filter(InvocationFilter::action("VIEW")),
//! )
//! .unwrap();
//! sys.install("viewer", vec![AppIntentFilter::new("VIEW", None)], MaxoidManifest::new())
//!     .unwrap();
//!
//! let email = sys.launch("email").unwrap();
//! sys.kernel.write(email, &vpath("/data/data/email/att.pdf"), b"secret", Mode::PRIVATE)
//!     .unwrap();
//!
//! // Viewing the attachment starts the viewer as email's delegate...
//! let viewer = sys
//!     .start_activity(Some(email), &Intent::new("VIEW").with_data("/data/data/email/att.pdf"))
//!     .unwrap()
//!     .pid();
//! // ...which can read the private file, but cannot reach the network.
//! assert_eq!(sys.kernel.read(viewer, &vpath("/data/data/email/att.pdf")).unwrap(), b"secret");
//! assert!(sys.kernel.connect(viewer, "evil.example").is_err());
//! ```

#![warn(missing_docs)]

pub mod ams;
pub mod branch_manager;
pub mod durability;
pub mod intent;
pub mod layout;
pub mod manifest;
pub mod private_state;
pub mod services;
pub mod system;
pub mod volatile;

pub use ams::{ActivityManager, AmsError, Route};
pub use branch_manager::{BranchLocator, BranchManager};
pub use durability::{recover, RecoveredSubstrate, RecoveryError, VFS_COMPONENT};
pub use intent::{AppIntentFilter, Intent, FLAG_GRANT_READ_URI_PERMISSION, FLAG_START_AS_DELEGATE};
pub use manifest::{FilterMode, InvocationFilter, ManifestError, MaxoidManifest};
pub use private_state::{ForkOutcome, PrivateStateManager};
pub use services::{BluetoothService, ClipboardService, SmsService};
pub use system::{
    DeviceBootConfig, EvictReport, MaxoidSystem, StartOutcome, SystemError, SystemResult,
    TenantStats, VolCommitOutcome, VolCommitPlan, INIT_LOCK_SOFT_CAP,
};
pub use volatile::{VolatileEntry, VolatileState};

// Re-export the substrate types users need at the API boundary.
pub use maxoid_kernel::{AppId, ExecContext, Pid};
pub use maxoid_providers::{Caller, ContentValues, DownloadRequest, MediaKind, QueryArgs, Uri};
