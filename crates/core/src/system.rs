//! The Maxoid system facade: everything wired together.
//!
//! [`MaxoidSystem`] owns the kernel (processes, VFS, network), the branch
//! manager, the Activity Manager, the content resolver with the three
//! ported system providers, the private-state manager, volatile-state
//! management, and the policy services. It is the single object examples,
//! tests and the app models drive — the analogue of a booted device.
//!
//! # Threading model
//!
//! Every entry point takes `&self`, so an `Arc<MaxoidSystem>` can be
//! cloned across threads and driven concurrently — the analogue of many
//! apps running at once on one device. Shared state is sharded behind
//! fine-grained interior locks, and the hot read paths (path resolution,
//! provider queries, `caller`) take only read locks:
//!
//! * kernel process table — pid-hashed `RwLock` shards; the app
//!   registry is an `Arc`-swapped immutable snapshot (reads clone an
//!   `Arc<Process>` out of one shard and release it before doing any
//!   I/O; see DESIGN.md §4.14);
//! * VFS store — inode-hashed shard locks inside
//!   [`maxoid_vfs::Store`]; ops lock only the shards they touch, in
//!   ascending index order (§4.14);
//! * provider table — `RwLock` over per-authority entries. Each entry
//!   holds the provider's **write lock** (`Arc<Mutex<provider>>`) plus a
//!   lock-free read handle: routed queries are served from the
//!   provider's published MVCC snapshot (`maxoid_cowproxy::ReadSlot`)
//!   without the write lock, so reads on *one* authority run in
//!   parallel with each other; mutations serialize on the write lock
//!   and republish a snapshot before releasing it. Different
//!   authorities dispatch in parallel as before;
//! * journal — a state mutex plus a storage mutex with leader/follower
//!   group commit (see [`maxoid_journal::JournalHandle`]);
//! * AMS registry (`RwLock`), private-state manager (`Mutex`), services
//!   (leaf mutexes), and a per-initiator gesture lock serializing the
//!   delegation lifecycle of one initiator.
//!
//! **Global lock order** (acquire left-to-right, never right-to-left):
//!
//! ```text
//! per-initiator gesture lock
//!   → AMS registry / private-state manager
//!     → kernel process-table shard (at most one at a time)
//!       → VFS store shards (ascending shard order)
//!         → provider mutexes (ascending authority order)
//!           → journal state → journal storage
//! ```
//!
//! Service mutexes (clipboard, bluetooth, sms) and the obs registry are
//! leaves: nothing is acquired while they are held. The per-initiator
//! lock serializes delegate COW-forks, `commit_vol`, `clear_vol` and
//! `clear_priv` for one initiator while other initiators proceed in
//! parallel.

use crate::ams::{ActivityManager, AmsError, Route};
use crate::branch_manager::{BranchLocator, BranchManager};
use crate::intent::{AppIntentFilter, Intent};
use crate::layout;
use crate::manifest::MaxoidManifest;
use crate::private_state::{ForkOutcome, PrivateStateManager};
use crate::services::{BluetoothService, ClipboardService, SmsService};
use crate::volatile::{VolatileEntry, VolatileState};
use maxoid_journal::JournalHandle;
use maxoid_kernel::{AppId, ExecContext, Kernel, KernelError, Pid};
use maxoid_providers::provider::ContentProvider;
use maxoid_providers::{
    Caller, ContentResolver, ContentValues, DownloadRequest, DownloadsProvider, MediaKind,
    MediaProvider, ProviderError, ProviderResult, ProviderScope, QueryArgs, SystemFiles, Uri,
    UserDictionaryProvider,
};
use maxoid_sqldb::ResultSet;
use maxoid_vfs::{Vfs, VfsResult};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Top-level error for system operations.
#[derive(Debug)]
pub enum SystemError {
    /// Invocation routing failed.
    Ams(AmsError),
    /// A kernel operation failed.
    Kernel(KernelError),
    /// A filesystem operation failed.
    Fs(maxoid_vfs::VfsError),
    /// A provider operation failed.
    Provider(ProviderError),
    /// A journal operation failed.
    Journal(maxoid_journal::JournalError),
    /// A block-device operation (partition table, storage tier) failed.
    Block(maxoid_block::BlockError),
    /// Log compaction could not replay the current log.
    Recovery(String),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Ams(e) => write!(f, "ams: {e}"),
            SystemError::Kernel(e) => write!(f, "kernel: {e}"),
            SystemError::Fs(e) => write!(f, "fs: {e}"),
            SystemError::Provider(e) => write!(f, "provider: {e}"),
            SystemError::Journal(e) => write!(f, "journal: {e}"),
            SystemError::Block(e) => write!(f, "block: {e}"),
            SystemError::Recovery(e) => write!(f, "compaction replay: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<AmsError> for SystemError {
    fn from(e: AmsError) -> Self {
        SystemError::Ams(e)
    }
}

impl From<KernelError> for SystemError {
    fn from(e: KernelError) -> Self {
        SystemError::Kernel(e)
    }
}

impl From<maxoid_vfs::VfsError> for SystemError {
    fn from(e: maxoid_vfs::VfsError) -> Self {
        SystemError::Fs(e)
    }
}

impl From<ProviderError> for SystemError {
    fn from(e: ProviderError) -> Self {
        SystemError::Provider(e)
    }
}

impl From<maxoid_journal::JournalError> for SystemError {
    fn from(e: maxoid_journal::JournalError) -> Self {
        SystemError::Journal(e)
    }
}

impl From<maxoid_block::BlockError> for SystemError {
    fn from(e: maxoid_block::BlockError) -> Self {
        SystemError::Block(e)
    }
}

/// Result alias for system operations.
pub type SystemResult<T> = Result<T, SystemError>;

/// Adapter registering a shared provider instance in the resolver while
/// the system keeps a handle for direct service APIs (download pump,
/// media scans). The authority is cached because a `&str` cannot be
/// returned through the lock guard.
struct SharedProvider<P> {
    authority: &'static str,
    inner: Arc<Mutex<P>>,
}

impl<P: ContentProvider + Send> SharedProvider<P> {
    fn new(authority: &'static str, inner: Arc<Mutex<P>>) -> Self {
        SharedProvider { authority, inner }
    }
}

impl<P: ContentProvider + Send> ContentProvider for SharedProvider<P> {
    fn authority(&self) -> &str {
        self.authority
    }

    fn insert(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
    ) -> ProviderResult<Uri> {
        self.inner.lock().insert(caller, uri, values)
    }

    fn update(
        &mut self,
        caller: &Caller,
        uri: &Uri,
        values: &ContentValues,
        args: &QueryArgs,
    ) -> ProviderResult<usize> {
        self.inner.lock().update(caller, uri, values, args)
    }

    fn query(&mut self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<ResultSet> {
        self.inner.lock().query(caller, uri, args)
    }

    fn delete(&mut self, caller: &Caller, uri: &Uri, args: &QueryArgs) -> ProviderResult<usize> {
        self.inner.lock().delete(caller, uri, args)
    }

    fn clear_volatile(&mut self, initiator: &str) -> ProviderResult<()> {
        self.inner.lock().clear_volatile(initiator)
    }

    fn commit_volatile_row(
        &mut self,
        initiator: &str,
        table: &str,
        id: i64,
    ) -> ProviderResult<bool> {
        self.inner.lock().commit_volatile_row(initiator, table, id)
    }

    fn publish_read(&mut self) {
        self.inner.lock().publish_read()
    }
}

/// A booted Maxoid device: kernel + system services + providers.
///
/// Shareable: every API takes `&self`; wrap in an [`Arc`] to drive it
/// from several threads (see the module docs for the lock order).
pub struct MaxoidSystem {
    /// The kernel (process table, VFS, network).
    pub kernel: Kernel,
    /// The content resolver with all system providers registered.
    pub resolver: ContentResolver,
    /// Clipboard service (per-context instances).
    pub clipboard: ClipboardService,
    /// Bluetooth policy service.
    pub bluetooth: BluetoothService,
    /// SMS policy service.
    pub sms: SmsService,
    /// The Activity Manager (intent routing); registrations are rare,
    /// routing reads are frequent.
    ams: RwLock<ActivityManager>,
    branch_mgr: BranchManager,
    priv_mgr: Mutex<PrivateStateManager>,
    volatile: VolatileState,
    downloads: Arc<Mutex<DownloadsProvider<BranchLocator>>>,
    media: Arc<Mutex<MediaProvider<BranchLocator>>>,
    userdict: Arc<Mutex<UserDictionaryProvider>>,
    downloads_pid: Pid,
    journal: Option<JournalHandle>,
    /// Heap tier provider row payloads page to, when booted from a
    /// device (or attached explicitly).
    heap: Option<maxoid_sqldb::HeapTier>,
    /// Per-initiator gesture locks: COW-fork of a delegate, `commit_vol`,
    /// `clear_vol` and `clear_priv` for one initiator are mutually
    /// exclusive; different initiators run their gestures in parallel.
    /// Entries carry an activity stamp and are swept when the map grows
    /// past [`INIT_LOCK_SOFT_CAP`] or a tenant is evicted, so 10k
    /// one-shot tenants do not pin 10k lock entries forever.
    init_locks: Mutex<BTreeMap<String, GestureEntry>>,
    /// Logical activity clock: ticks once per gesture-lock acquisition.
    /// Tenant idleness is measured in these ticks, not wall time, so the
    /// evictor is deterministic under test.
    activity_clock: std::sync::atomic::AtomicU64,
}

/// A per-initiator gesture lock plus the activity stamp used by the
/// idle-tenant evictor.
#[derive(Debug, Default)]
struct GestureEntry {
    lock: Arc<Mutex<()>>,
    /// Value of `activity_clock` at the last acquisition.
    last_used: u64,
}

/// When the gesture-lock map grows past this many entries, acquiring a
/// lock sweeps every entry no thread currently references (`Arc` strong
/// count 1) and not stamped within [`SWEEP_RETAIN_TICKS`]. The map stays
/// bounded by `cap + concurrently-active tenants`; a swept tenant's next
/// gesture just recreates its entry.
pub const INIT_LOCK_SOFT_CAP: usize = 256;

/// Entries stamped within this many activity-clock ticks survive the
/// soft-cap sweep. Consequently a tenant with volatile state but no map
/// entry is certifiably idle for at least this long — the basis on which
/// [`MaxoidSystem::evict_idle_tenants`] may reclaim swept tenants.
const SWEEP_RETAIN_TICKS: u64 = 128;

// The whole point of the facade: one device shared by many app threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MaxoidSystem>();
};

impl std::fmt::Debug for MaxoidSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaxoidSystem").finish()
    }
}

impl MaxoidSystem {
    /// Boots a Maxoid device: kernel, branch manager, system providers.
    pub fn boot() -> SystemResult<Self> {
        Self::boot_inner(None, Vfs::new())
    }

    /// Boots a Maxoid device with a write-ahead journal attached.
    ///
    /// The journal sink is wired into the VFS store *before* the branch
    /// manager creates the backing layout and into each provider database
    /// *before* its schema DDL runs, so replaying the log from an empty
    /// substrate ([`crate::durability::recover`]) rebuilds everything —
    /// directory layout, catalogs (tables, indexes, user views) and rows.
    /// The boot-time records are flushed before returning; afterwards
    /// durability follows the journal's group-commit batching.
    /// If the journal already holds records (e.g. it sits on a file-backed
    /// [`maxoid_journal::BlockStorage`] reopened after a restart), boot
    /// instead **cold-boots**: the log is replayed into the fresh substrate
    /// before any sinks attach, then providers adopt the recovered
    /// databases. App installs and UIDs are not journaled — callers
    /// re-install apps after a cold boot.
    pub fn boot_journaled(journal: JournalHandle) -> SystemResult<Self> {
        Self::boot_inner(Some(journal), Vfs::new())
    }

    /// Like [`MaxoidSystem::boot_journaled`], but the caller supplies the
    /// (empty) VFS — typically [`Vfs::with_block_device`], so that both the
    /// journal *and* the file store live behind block devices and large
    /// recovered payloads spill to pages instead of resident memory.
    pub fn boot_journaled_with_vfs(journal: JournalHandle, vfs: Vfs) -> SystemResult<Self> {
        Self::boot_inner(Some(journal), vfs)
    }

    /// Boots (or cold-boots) a Maxoid device from **one block device**:
    /// a [`maxoid_block::PartitionTable`] multiplexes the image into a
    /// WAL partition (the journal's `BlockStorage`), a VFS spill
    /// partition (large file payloads), and a sqldb heap partition
    /// (large provider tables page their rows through it). An empty
    /// device is formatted; a device carrying an earlier run's image is
    /// reopened and its journal replayed, after which the recovered
    /// provider databases re-adopt the heap tier — tables past the spill
    /// threshold migrate straight back out of resident memory.
    pub fn boot_from_device(
        dev: Box<dyn maxoid_block::BlockDevice>,
        cfg: &DeviceBootConfig,
    ) -> SystemResult<Self> {
        let table =
            maxoid_block::PartitionTable::open_or_create(dev, cfg.chunk_sectors, cfg.dir_sectors)?;
        let wal = maxoid_journal::BlockStorage::open(
            Box::new(table.handle(maxoid_block::PART_WAL)),
            cfg.wal_pages,
        )?;
        let journal = JournalHandle::with_storage(Box::new(wal), cfg.wal_batch);
        let vfs = Vfs::with_block_device(
            Box::new(table.handle(maxoid_block::PART_VFS)),
            cfg.vfs_pages,
            cfg.vfs_threshold,
        );
        let mut sys = Self::boot_inner(Some(journal), vfs)?;
        let tier = maxoid_sqldb::HeapTier::new(
            Box::new(table.handle(maxoid_block::PART_HEAP)),
            cfg.heap_pages,
        );
        sys.attach_heap_tier(&tier, cfg.heap_threshold);
        sys.heap = Some(tier);
        Ok(sys)
    }

    /// Attaches `tier` to every system provider database: tables past
    /// `threshold` encoded bytes (now or later) page their rows to it.
    fn attach_heap_tier(&self, tier: &maxoid_sqldb::HeapTier, threshold: usize) {
        self.userdict.lock().proxy_mut().db_mut().attach_heap(tier.clone(), threshold);
        self.downloads.lock().proxy_mut().db_mut().attach_heap(tier.clone(), threshold);
        self.media.lock().proxy_mut().db_mut().attach_heap(tier.clone(), threshold);
    }

    /// The sqldb heap tier, when booted from a device.
    pub fn heap(&self) -> Option<&maxoid_sqldb::HeapTier> {
        self.heap.as_ref()
    }

    fn boot_inner(journal: Option<JournalHandle>, vfs: Vfs) -> SystemResult<Self> {
        let mut sp = maxoid_obs::span("system.boot");
        sp.field("journaled", if journal.is_some() { "true" } else { "false" });

        // Cold boot: the handle was opened over existing storage. Replay
        // the committed log into the bare VFS *before* any journal sink is
        // attached (replay must not re-log itself), and keep the recovered
        // provider databases for adoption below.
        let mut recovered = None;
        if let Some(j) = &journal {
            if !j.is_empty() {
                let sub = crate::durability::recover_into(&j.bytes(), vfs.clone())
                    .map_err(|e| SystemError::Recovery(e.to_string()))?;
                recovered = Some(sub);
            }
        }
        sp.field("cold_boot", if recovered.is_some() { "true" } else { "false" });

        let kernel = Kernel::with_vfs(vfs);
        if let Some(j) = &journal {
            kernel.vfs().attach_journal(j.sink());
        }
        let branch_mgr = BranchManager::new(kernel.vfs().clone())?;
        let volatile = VolatileState::new(kernel.vfs().clone());
        let files = SystemFiles::new(kernel.vfs().clone(), BranchLocator);

        // The Downloads service's own process: a trusted system app with
        // network access.
        let dl_app = AppId::new("android.providers.downloads");
        kernel.install_app(&dl_app);
        let downloads_pid =
            kernel.spawn(&dl_app, ExecContext::Normal, maxoid_vfs::MountNamespace::new())?;

        let downloads = Arc::new(Mutex::new(match (&journal, &mut recovered) {
            (Some(j), Some(sub)) => DownloadsProvider::from_recovered_journaled(
                sub.take_db(maxoid_providers::downloads::AUTHORITY),
                files.clone(),
                j.sink(),
            ),
            (Some(j), None) => DownloadsProvider::with_journal(files.clone(), j.sink()),
            _ => DownloadsProvider::new(files.clone()),
        }));
        let media = Arc::new(Mutex::new(match (&journal, &mut recovered) {
            (Some(j), Some(sub)) => MediaProvider::from_recovered_journaled(
                sub.take_db(maxoid_providers::media::AUTHORITY),
                files,
                j.sink(),
            ),
            (Some(j), None) => MediaProvider::with_journal(files, j.sink()),
            _ => MediaProvider::new(files),
        }));
        let userdict = match (&journal, &mut recovered) {
            (Some(j), Some(sub)) => UserDictionaryProvider::from_recovered_journaled(
                sub.take_db(maxoid_providers::userdict::AUTHORITY),
                j.sink(),
            ),
            (Some(j), None) => UserDictionaryProvider::with_journal(j.sink()),
            _ => UserDictionaryProvider::new(),
        };

        let userdict = Arc::new(Mutex::new(userdict));
        let resolver = ContentResolver::new();
        // Each system provider registers alongside its lock-free read
        // handle: resolver queries are served from the provider's
        // published MVCC snapshot whenever one is available, and only
        // fall back to the per-authority write lock otherwise.
        let dict_read = userdict.lock().read_handle();
        resolver.register_with_read(
            ProviderScope::System,
            Box::new(SharedProvider::new(maxoid_providers::userdict::AUTHORITY, userdict.clone())),
            dict_read,
        );
        let downloads_read = downloads.lock().read_handle();
        resolver.register_with_read(
            ProviderScope::System,
            Box::new(SharedProvider::new(
                maxoid_providers::downloads::AUTHORITY,
                downloads.clone(),
            )),
            downloads_read,
        );
        let media_read = media.lock().read_handle();
        resolver.register_with_read(
            ProviderScope::System,
            Box::new(SharedProvider::new(maxoid_providers::media::AUTHORITY, media.clone())),
            media_read,
        );

        // Make the boot-time records (layout mkdirs, schema DDL) durable:
        // a crash immediately after boot must still recover the catalogs.
        if let Some(j) = &journal {
            j.flush()?;
        }

        Ok(MaxoidSystem {
            kernel,
            ams: RwLock::new(ActivityManager::new()),
            resolver,
            clipboard: ClipboardService::new(),
            bluetooth: BluetoothService::default(),
            sms: SmsService::default(),
            branch_mgr,
            priv_mgr: Mutex::new(PrivateStateManager::new()),
            volatile,
            downloads,
            media,
            userdict,
            downloads_pid,
            journal,
            heap: None,
            init_locks: Mutex::new(BTreeMap::new()),
            activity_clock: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Returns the attached journal, if this system was booted with one.
    pub fn journal(&self) -> Option<&JournalHandle> {
        self.journal.as_ref()
    }

    /// Snapshot of the file store's residency and page-cache counters
    /// (the VFS analogue of the SQL layer's `db.stats`).
    pub fn store_stats(&self) -> maxoid_vfs::StoreStats {
        self.kernel.vfs().store_stats()
    }

    /// Checkpoints the journal: the current file store is written as a
    /// snapshot record and already-applied physical records are pruned,
    /// bounding recovery time. Provider SQL history stays logical.
    pub fn checkpoint(&self) -> SystemResult<()> {
        if let Some(j) = &self.journal {
            let _sp = maxoid_obs::span("system.checkpoint");
            let image = self.kernel.vfs().with_store(|s| s.snapshot_image());
            j.checkpoint(&[(crate::durability::VFS_COMPONENT.to_string(), image)])?;
            maxoid_obs::counter_add("system.checkpoints", 1);
        }
        Ok(())
    }

    /// Incremental checkpoint: serializes only the store state dirtied
    /// since the last checkpoint (full or incremental) as a
    /// `SnapshotDelta` record, pruning the physical VFS records it
    /// subsumes. Cost scales with the working set, not the store — the
    /// difference between checkpointing being a periodic maintenance tick
    /// and a stop-the-world rewrite.
    pub fn checkpoint_incremental(&self) -> SystemResult<()> {
        if let Some(j) = &self.journal {
            let _sp = maxoid_obs::span("system.checkpoint_incremental");
            let delta = self.kernel.vfs().with_store_mut(|s| s.take_dirty_image());
            j.checkpoint_delta(crate::durability::VFS_COMPONENT, delta)?;
            maxoid_obs::counter_add("system.checkpoints_incremental", 1);
        }
        Ok(())
    }

    /// Compacts the journal: recovery-replays the current log in memory,
    /// then rewrites it as a snapshot + catalog DDL + row dumps, so a
    /// subsequent recovery replays *live state* instead of uptime
    /// history. Like [`MaxoidSystem::checkpoint`], concurrent traffic
    /// between the internal flush and the rewrite rides the journal's own
    /// locking (state → storage order); records enqueued during the
    /// rewrite land after it, exactly as with a full checkpoint.
    pub fn compact(&self) -> SystemResult<()> {
        if let Some(j) = &self.journal {
            let _sp = maxoid_obs::span("system.compact");
            j.flush()?;
            let (records, upto) = crate::durability::compact_log(&j.bytes())
                .map_err(|e| SystemError::Recovery(e.to_string()))?;
            j.replace_with(&records, upto)?;
            maxoid_obs::counter_add("system.compactions", 1);
        }
        Ok(())
    }

    /// Returns the branch manager (examples render mount tables from it).
    pub fn branch_manager(&self) -> &BranchManager {
        &self.branch_mgr
    }

    /// The gesture lock of one initiator (created on first use). Ranked
    /// highest in the lock order: acquired before any other system lock.
    ///
    /// Also the activity stamp: each acquisition ticks the logical
    /// activity clock and re-stamps the tenant's entry. When the map has
    /// outgrown [`INIT_LOCK_SOFT_CAP`], entries no thread references are
    /// swept inline — dropping such an entry is safe because the map held
    /// the only `Arc`, so no one can be holding (or about to hold) the
    /// mutex, and the next gesture simply recreates it.
    fn init_lock(&self, init: &str) -> Arc<Mutex<()>> {
        let now = self.activity_clock.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        let mut map = self.init_locks.lock();
        let entry = map.entry(init.to_string()).or_default();
        entry.last_used = now;
        let lock = entry.lock.clone();
        if map.len() > INIT_LOCK_SOFT_CAP {
            // Our clone keeps this tenant's count at 2, so the sweep can
            // never drop the entry we are about to return. Recently
            // stamped entries survive so that "absent from the map"
            // certifies at least SWEEP_RETAIN_TICKS of idleness (any
            // later gesture would have recreated the entry) — the idle
            // evictor relies on exactly that to reclaim tenants whose
            // entries were swept.
            map.retain(|_, e| {
                Arc::strong_count(&e.lock) > 1
                    || now.saturating_sub(e.last_used) < SWEEP_RETAIN_TICKS
            });
        }
        lock
    }

    /// Number of per-initiator gesture-lock entries currently retained
    /// (bounded-growth regression hook).
    pub fn init_lock_count(&self) -> usize {
        self.init_locks.lock().len()
    }

    /// Current value of the logical activity clock (ticks once per
    /// gesture-lock acquisition across all tenants).
    pub fn activity_clock(&self) -> u64 {
        self.activity_clock.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Installs an app: uid assignment, backing directories, intent
    /// filters and Maxoid manifest registration.
    pub fn install(
        &self,
        pkg: &str,
        filters: Vec<AppIntentFilter>,
        manifest: MaxoidManifest,
    ) -> SystemResult<AppId> {
        let app = AppId::new(pkg);
        let uid = self.kernel.install_app(&app);
        self.branch_mgr.prepare_app(pkg, uid, &manifest)?;
        self.ams.write().register_app(&app, filters, manifest);
        Ok(app)
    }

    /// Returns an installed app's Maxoid manifest (cloned out of the AMS
    /// registry lock).
    pub fn manifest_of(&self, app: &AppId) -> Option<MaxoidManifest> {
        self.ams.read().manifest(app).cloned()
    }

    /// Computes the delivery set for a broadcast from `sender` (AMS
    /// facade; §3.4 delegate narrowing applies).
    pub fn broadcast_targets(
        &self,
        sender: Option<(&AppId, &ExecContext)>,
        intent: &Intent,
    ) -> Vec<Pid> {
        self.ams.read().broadcast_targets(sender, intent, &self.running())
    }

    /// Launches an app normally (tapping its icon): no sender context.
    /// Any live instance running in a different context is killed first
    /// (the §6.2 rule applies regardless of how the app starts).
    pub fn launch(&self, pkg: &str) -> SystemResult<Pid> {
        let app = AppId::new(pkg);
        self.kill_conflicting(&app, &ExecContext::Normal)?;
        self.spawn_in_context(&app, ExecContext::Normal)
    }

    /// The launcher's "start as delegate" gesture (§6.3): the user drags
    /// the initiator's icon onto the Initiator target, then taps the app.
    pub fn launch_as_delegate(&self, pkg: &str, initiator: &str) -> SystemResult<Pid> {
        let route = self.ams.read().route(
            None,
            &Intent::new("android.intent.action.MAIN").with_target(pkg),
            &self.running(),
        )?;
        // The launcher overrides the computed (normal) context.
        let Route::Start { target, .. } = route else {
            unreachable!("explicit target cannot produce a chooser")
        };
        let ctx = ExecContext::OnBehalfOf(AppId::new(initiator));
        self.kill_conflicting(&target, &ctx)?;
        self.spawn_in_context(&target, ctx)
    }

    fn running(&self) -> Vec<(Pid, AppId, ExecContext)> {
        self.kernel.processes().iter().map(|p| (p.pid, p.app.clone(), p.ctx.clone())).collect()
    }

    fn kill_conflicting(&self, app: &AppId, ctx: &ExecContext) -> SystemResult<()> {
        let doomed: Vec<Pid> = self
            .kernel
            .processes()
            .iter()
            .filter(|p| &p.app == app && &p.ctx != ctx)
            .map(|p| p.pid)
            .collect();
        for pid in doomed {
            self.kernel.kill(pid)?;
        }
        Ok(())
    }

    fn spawn_in_context(&self, app: &AppId, ctx: ExecContext) -> SystemResult<Pid> {
        // The root of the delegation lifecycle: invoke → COW fork → spawn.
        // (Commit/discard arrive later via `commit_vol` / `clear_vol`.)
        let _inv = match &ctx {
            ExecContext::OnBehalfOf(init) => {
                let mut sp = maxoid_obs::span("delegation.invoke");
                sp.field_with("delegate", || app.pkg().to_string());
                sp.field_with("initiator", || init.pkg().to_string());
                Some(sp)
            }
            _ => None,
        };
        let manifest = self.manifest_of(app).unwrap_or_default();
        let ns = match &ctx {
            ExecContext::Normal => self.branch_mgr.initiator_namespace(app.pkg(), &manifest)?,
            ExecContext::OnBehalfOf(init) => {
                // Serialize the COW-fork against commit/clear gestures of
                // the same initiator.
                let gesture = self.init_lock(init.pkg());
                let _g = gesture.lock();
                let mut sp = maxoid_obs::span("delegation.cow_fork");
                sp.field_with("delegate", || app.pkg().to_string());
                sp.field_with("initiator", || init.pkg().to_string());
                let init_manifest = self.manifest_of(init).unwrap_or_default();
                // Figure 2 lifecycle: fork / keep / discard nPriv.
                let outcome = self.priv_mgr.lock().on_delegate_start(
                    self.kernel.vfs(),
                    init.pkg(),
                    app.pkg(),
                )?;
                sp.field_with("priv_fork", || format!("{outcome:?}"));
                self.branch_mgr.delegate_namespace(
                    app.pkg(),
                    &manifest,
                    init.pkg(),
                    &init_manifest,
                )?
            }
        };
        Ok(self.kernel.spawn(app, ctx, ns)?)
    }

    /// Sends an intent from `sender` (None = the user via the launcher),
    /// starting the resolved target. Returns the new process or the
    /// chooser candidates.
    pub fn start_activity(
        &self,
        sender: Option<Pid>,
        intent: &Intent,
    ) -> SystemResult<StartOutcome> {
        let sender_info = match sender {
            Some(pid) => {
                let p = self.kernel.process(pid)?;
                Some((p.app.clone(), p.ctx.clone()))
            }
            None => None,
        };
        let sender_ref = sender_info.as_ref().map(|(a, c)| (a, c));
        let route = self.ams.read().route(sender_ref, intent, &self.running())?;
        match route {
            Route::Chooser { candidates, ctx } => Ok(StartOutcome::Chooser { candidates, ctx }),
            Route::Start { target, ctx, kill_first } => {
                for pid in kill_first {
                    self.kernel.kill(pid)?;
                }
                // Per-URI grant plumbing for content data with the grant
                // flag (the Email attachment pattern).
                if intent.read_granted() {
                    if let Some(data) = &intent.data {
                        if let Ok(uri) = Uri::parse(data) {
                            self.resolver.grant_uri_permission(target.pkg(), &uri, false, true);
                        }
                    }
                }
                let pid = self.spawn_in_context(&target, ctx)?;
                Ok(StartOutcome::Started(pid))
            }
        }
    }

    /// Completes a chooser: starts `choice` in the already-computed
    /// context (ResolverActivity is an intent channel, not an instance).
    pub fn start_chosen(&self, choice: &AppId, ctx: ExecContext) -> SystemResult<Pid> {
        self.kill_conflicting(choice, &ctx)?;
        self.spawn_in_context(choice, ctx)
    }

    /// Returns the provider-facing caller identity of a process.
    pub fn caller(&self, pid: Pid) -> SystemResult<Caller> {
        let p = self.kernel.process(pid)?;
        Ok(Caller { app: p.app.clone(), ctx: p.ctx.clone() })
    }

    // -----------------------------------------------------------------
    // Provider conveniences bound to a calling process.
    // -----------------------------------------------------------------

    /// Opens a resolver-call span carrying the target URI.
    fn cp_span(name: &'static str, uri: &Uri) -> maxoid_obs::SpanGuard {
        let mut sp = maxoid_obs::span(name);
        sp.field_with("uri", || uri.to_string());
        sp
    }

    /// Provider insert on behalf of `pid`.
    pub fn cp_insert(&self, pid: Pid, uri: &Uri, values: &ContentValues) -> SystemResult<Uri> {
        let _sp = Self::cp_span("system.cp_insert", uri);
        let caller = self.caller(pid)?;
        Ok(self.resolver.insert(&caller, uri, values)?)
    }

    /// Provider update on behalf of `pid`.
    pub fn cp_update(
        &self,
        pid: Pid,
        uri: &Uri,
        values: &ContentValues,
        args: &QueryArgs,
    ) -> SystemResult<usize> {
        let _sp = Self::cp_span("system.cp_update", uri);
        let caller = self.caller(pid)?;
        Ok(self.resolver.update(&caller, uri, values, args)?)
    }

    /// Provider query on behalf of `pid`.
    pub fn cp_query(&self, pid: Pid, uri: &Uri, args: &QueryArgs) -> SystemResult<ResultSet> {
        let _sp = Self::cp_span("system.cp_query", uri);
        let caller = self.caller(pid)?;
        Ok(self.resolver.query(&caller, uri, args)?)
    }

    /// Provider delete on behalf of `pid`.
    pub fn cp_delete(&self, pid: Pid, uri: &Uri, args: &QueryArgs) -> SystemResult<usize> {
        let _sp = Self::cp_span("system.cp_delete", uri);
        let caller = self.caller(pid)?;
        Ok(self.resolver.delete(&caller, uri, args)?)
    }

    // -----------------------------------------------------------------
    // Download manager and media scanner service APIs.
    // -----------------------------------------------------------------

    /// `DownloadManager.enqueue` on behalf of `pid`.
    pub fn enqueue_download(&self, pid: Pid, req: &DownloadRequest) -> SystemResult<i64> {
        let caller = self.caller(pid)?;
        Ok(self.downloads.lock().enqueue(&caller, req)?)
    }

    /// Pumps the Downloads background worker once.
    pub fn pump_downloads(&self) -> SystemResult<usize> {
        let pid = self.downloads_pid;
        Ok(self.downloads.lock().process_pending(&self.kernel, pid)?)
    }

    /// Drains download notifications.
    pub fn download_notifications(&self) -> Vec<maxoid_providers::DownloadNotification> {
        self.downloads.lock().take_notifications()
    }

    /// Opens a completed download's bytes (provenance-aware).
    pub fn open_download(
        &self,
        initiator: Option<&str>,
        dest: &maxoid_vfs::VPath,
    ) -> SystemResult<Vec<u8>> {
        Ok(self.downloads.lock().open_download(initiator, dest)?)
    }

    /// Media scanner service: scan a file on behalf of `pid`.
    pub fn scan_media(
        &self,
        pid: Pid,
        path: &maxoid_vfs::VPath,
        kind: MediaKind,
        title: &str,
        size: usize,
    ) -> SystemResult<i64> {
        let caller = self.caller(pid)?;
        Ok(self.media.lock().scan_file(&caller, path, kind, title, size)?)
    }

    /// Opens a thumbnail generated by the media scanner.
    pub fn open_thumbnail(
        &self,
        initiator: Option<&str>,
        media_path: &maxoid_vfs::VPath,
    ) -> SystemResult<Vec<u8>> {
        Ok(self.media.lock().open_thumbnail(initiator, media_path)?)
    }

    // -----------------------------------------------------------------
    // Volatile state: list, commit, and the launcher gestures.
    // -----------------------------------------------------------------

    /// Lists the volatile files of an initiator.
    pub fn volatile_files(&self, init: &str) -> SystemResult<Vec<VolatileEntry>> {
        Ok(self.volatile.list(init)?)
    }

    /// Commits a volatile external file to its non-volatile place (§3.3).
    pub fn commit_volatile_file(&self, init: &str, rel: &str) -> SystemResult<()> {
        let manifest = self.manifest_of(&AppId::new(init)).unwrap_or_default();
        Ok(self.volatile.commit_external(init, &manifest, rel)?)
    }

    /// Commits a volatile internal file into `Priv(init)`.
    pub fn commit_volatile_internal(&self, init: &str, rel: &str) -> SystemResult<()> {
        Ok(self.volatile.commit_internal(init, rel)?)
    }

    /// The launcher's Clear-Vol gesture (§6.3): discards `Vol(init)` —
    /// volatile files, provider delta tables, and the confined clipboard.
    ///
    /// On a journaled system the whole discard is one journal
    /// transaction; a crash mid-way recovers to the pre-gesture state.
    pub fn clear_vol(&self, init: &str) -> SystemResult<usize> {
        let mut sp = maxoid_obs::span("delegation.clear_vol");
        sp.field_with("initiator", || init.to_string());
        let outcome =
            self.commit_vol(init, &VolCommitPlan { discard_rest: true, ..Default::default() })?;
        Ok(outcome.files_removed)
    }

    /// The initiator's selective Commit gesture (§3.3) as a single atomic
    /// step: promotes the chosen volatile files and provider delta rows
    /// to non-volatile state and (optionally) discards the rest of
    /// `Vol(init)`.
    ///
    /// On a journaled system the entire plan — external and internal
    /// file copies, provider row commits across authorities, and the
    /// trailing Clear-Vol — is bracketed in one journal transaction. A
    /// crash at *any* record boundary recovers to either the full
    /// post-commit state or the untouched all-volatile state, never
    /// between. If a step fails, the journal transaction is rolled back:
    /// the live system may be part-way through (the in-memory mutations
    /// already happened), but a crash-and-recover lands back at the
    /// all-volatile side.
    ///
    /// The whole gesture holds the initiator's gesture lock: concurrent
    /// commits of *different* initiators proceed in parallel, but a
    /// delegate of `init` cannot COW-fork mid-commit.
    pub fn commit_vol(&self, init: &str, plan: &VolCommitPlan) -> SystemResult<VolCommitOutcome> {
        let mut sp = maxoid_obs::span("delegation.commit_vol");
        sp.field_with("initiator", || init.to_string());
        sp.field_with("discard_rest", || plan.discard_rest.to_string());
        let gesture = self.init_lock(init);
        let _g = gesture.lock();
        let txn = match &self.journal {
            Some(j) => Some(j.begin_txn()?),
            None => None,
        };
        let result = self.commit_vol_inner(init, plan);
        if let (Some(j), Some(txn)) = (&self.journal, txn) {
            match &result {
                Ok(_) => j.commit_txn(txn)?,
                // Best effort: the rollback record only narrows the torn
                // window; an open transaction is discarded on recovery
                // anyway.
                Err(_) => {
                    let _ = j.rollback_txn(txn);
                }
            }
        }
        match &result {
            Ok(out) => {
                // The commit/discard moved or removed volatile files
                // behind the unions' backs in places the leaf mutations
                // may not all have covered; force the resolution caches
                // whose branches can see those trees to refill. The blast
                // radius is this tenant's volatile/private roots plus the
                // public branch a commit may have landed in — bumping
                // globally here would thrash every *other* tenant's
                // caches on each gesture, the fleet-scale scan cliff.
                self.kernel.vfs().with_store(|s| {
                    for root in [
                        layout::back_ext_tmp(init),
                        layout::back_internal_tmp(init),
                        layout::back_ext_app(init),
                        layout::back_internal(init),
                        Ok(layout::back_ext_pub()),
                    ]
                    .into_iter()
                    .flatten()
                    {
                        s.bump_visibility_under(&root);
                    }
                });
                sp.field_with("rows_committed", || out.rows_committed.to_string());
                sp.field_with("files_removed", || out.files_removed.to_string());
                maxoid_obs::counter_add("delegation.commits", 1);
            }
            Err(_) => {
                sp.field("outcome", "rolled_back");
                maxoid_obs::counter_add("delegation.rollbacks", 1);
            }
        }
        result
    }

    fn commit_vol_inner(&self, init: &str, plan: &VolCommitPlan) -> SystemResult<VolCommitOutcome> {
        let manifest = self.manifest_of(&AppId::new(init)).unwrap_or_default();
        for rel in &plan.external {
            self.volatile.commit_external(init, &manifest, rel)?;
        }
        for rel in &plan.internal {
            self.volatile.commit_internal(init, rel)?;
        }
        let mut rows_committed = 0;
        for (authority, table, id) in &plan.provider_rows {
            if self.resolver.commit_volatile_row(authority, init, table, *id)? {
                rows_committed += 1;
            }
        }
        let mut files_removed = 0;
        if plan.discard_rest {
            files_removed = self.volatile.clear(init)?;
            self.resolver.clear_volatile(init)?;
            self.clipboard.clear_confined(init);
        }
        Ok(VolCommitOutcome { rows_committed, files_removed })
    }

    /// The launcher's Clear-Priv gesture (§6.3): clears `Priv(x^init)`
    /// for every app `x` (delegate forks and persistent private state).
    pub fn clear_priv(&self, init: &str) -> SystemResult<usize> {
        let gesture = self.init_lock(init);
        let _g = gesture.lock();
        Ok(self.priv_mgr.lock().clear_initiator(self.kernel.vfs(), init)?)
    }

    /// Exposes the fork decision for tests (Figure 2 assertions).
    pub fn fork_outcome_probe(&self, init: &str, pkg: &str) -> VfsResult<ForkOutcome> {
        self.priv_mgr.lock().on_delegate_start(self.kernel.vfs(), init, pkg)
    }

    // -----------------------------------------------------------------
    // Per-tenant accounting and idle-state eviction (fleet scale).
    // -----------------------------------------------------------------

    /// Per-tenant state accounting for one initiator: how much COW state
    /// its delegation activity has accreted (DESIGN.md §4.14).
    ///
    /// * **COW files/bytes** — everything under the initiator's delegate
    ///   fork branches: `nPriv(x^init)`, `pPriv(x^init)` and the
    ///   external `x--init` branches.
    /// * **Delta rows** — rows in this initiator's provider delta tables
    ///   across all three system providers (whiteouts included).
    /// * **Volatile files/bytes** — the file portion of `Vol(init)`.
    pub fn tenant_stats(&self, init: &str) -> SystemResult<TenantStats> {
        fn usage(s: &maxoid_vfs::Store, p: &maxoid_vfs::VPath) -> VfsResult<(usize, u64)> {
            let meta = match s.stat(p) {
                Ok(m) => m,
                Err(maxoid_vfs::VfsError::NotFound) => return Ok((0, 0)),
                Err(e) => return Err(e),
            };
            if !meta.is_dir {
                return Ok((1, meta.size));
            }
            let mut files = 0;
            let mut bytes = 0;
            for e in s.read_dir(p)? {
                let (f, b) = usage(s, &p.join(&e.name)?)?;
                files += f;
                bytes += b;
            }
            Ok((files, bytes))
        }

        let (cow_files, cow_bytes) = self.kernel.vfs().with_store(|s| -> VfsResult<_> {
            let mut files = 0;
            let mut bytes = 0;
            for root in [
                maxoid_vfs::vpath("/backing/npriv").join(init)?,
                maxoid_vfs::vpath("/backing/ppriv").join(init)?,
            ] {
                let (f, b) = usage(s, &root)?;
                files += f;
                bytes += b;
            }
            // External delegate branches are keyed `<pkg>--<init>`.
            let deleg_root = maxoid_vfs::vpath("/backing/ext/deleg");
            if s.exists(&deleg_root) {
                let suffix = format!("--{init}");
                for e in s.read_dir(&deleg_root)? {
                    if e.name.ends_with(&suffix) {
                        let (f, b) = usage(s, &deleg_root.join(&e.name)?)?;
                        files += f;
                        bytes += b;
                    }
                }
            }
            Ok((files, bytes))
        })?;

        let mut volatile_files = 0;
        let mut volatile_bytes = 0;
        for entry in self.volatile.list(init)? {
            volatile_files += 1;
            volatile_bytes += entry.size;
        }

        let delta_rows = self.downloads.lock().delta_row_count(init)
            + self.media.lock().delta_row_count(init)
            + self.userdict.lock().delta_row_count(init);

        Ok(TenantStats { cow_files, cow_bytes, delta_rows, volatile_files, volatile_bytes })
    }

    /// Evicts the volatile state of tenants idle for at least
    /// `min_idle_ticks` activity-clock ticks: discards their `Vol(init)`
    /// files, provider delta tables and confined clipboard, and drops
    /// their gesture-lock entry. Only tenants whose gesture lock no
    /// thread references are candidates, so an in-flight gesture is never
    /// raced; each eviction runs under the tenant's own gesture lock.
    ///
    /// This is the fleet-scale memory backstop: a tenant whose user
    /// walked away stops holding volatile COW state (its *committed*
    /// state — `Priv`, `pPriv`, public rows — is untouched and its next
    /// delegation works normally, starting from a fresh `Vol`).
    pub fn evict_idle_tenants(&self, min_idle_ticks: u64) -> SystemResult<EvictReport> {
        let _sp = maxoid_obs::span("system.evict_idle_tenants");
        let now = self.activity_clock();
        let mut candidates: Vec<(String, Option<Arc<Mutex<()>>>)> = {
            let map = self.init_locks.lock();
            map.iter()
                .filter(|(_, e)| {
                    Arc::strong_count(&e.lock) == 1
                        && now.saturating_sub(e.last_used) >= min_idle_ticks
                })
                .map(|(k, e)| (k.clone(), Some(e.lock.clone())))
                .collect()
        };
        // Tenants whose entry the soft-cap sweep already dropped still
        // hold volatile state. Absence from the map certifies at least
        // SWEEP_RETAIN_TICKS of idleness (any later gesture would have
        // recreated the entry), so when the caller's threshold is within
        // that certificate, owners of volatile tmp dirs join the
        // candidate set too.
        if min_idle_ticks <= SWEEP_RETAIN_TICKS {
            let known: std::collections::BTreeSet<String> =
                self.init_locks.lock().keys().cloned().collect();
            let owners = self.kernel.vfs().with_store(|s| -> maxoid_vfs::VfsResult<Vec<String>> {
                let mut out = Vec::new();
                let tmp_root = maxoid_vfs::vpath("/backing/internal_tmp");
                if s.exists(&tmp_root) {
                    for e in s.read_dir(&tmp_root)? {
                        out.push(e.name);
                    }
                }
                out.sort_unstable();
                out.dedup();
                Ok(out)
            })?;
            for init in owners {
                if !known.contains(&init) && !self.volatile.list(&init)?.is_empty() {
                    candidates.push((init, None));
                }
            }
        }
        let mut report = EvictReport::default();
        for (init, gesture) in candidates {
            // Swept tenants get a fresh entry so the eviction serializes
            // against any gesture racing back in.
            let gesture = gesture.unwrap_or_else(|| self.init_lock(&init));
            let _g = gesture.lock();
            report.files_removed += self.volatile.clear(&init)?;
            self.resolver.clear_volatile(&init)?;
            self.clipboard.clear_confined(&init);
            let mut map = self.init_locks.lock();
            if let Some(e) = map.get(&init) {
                // Two refs = the map's + ours: nobody raced us back in.
                if Arc::ptr_eq(&e.lock, &gesture) && Arc::strong_count(&e.lock) == 2 {
                    map.remove(&init);
                }
            }
            report.tenants += 1;
        }
        maxoid_obs::counter_add("system.tenants_evicted", report.tenants as u64);
        Ok(report)
    }
}

/// Per-tenant state accounting (see [`MaxoidSystem::tenant_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Files under the tenant's delegate COW fork branches.
    pub cow_files: usize,
    /// Bytes under the tenant's delegate COW fork branches.
    pub cow_bytes: u64,
    /// Rows in the tenant's provider delta tables.
    pub delta_rows: usize,
    /// Files in `Vol(init)` (external + internal tmp).
    pub volatile_files: usize,
    /// Bytes in `Vol(init)`.
    pub volatile_bytes: u64,
}

impl TenantStats {
    /// Total bytes of evictable per-tenant state.
    pub fn total_bytes(&self) -> u64 {
        self.cow_bytes + self.volatile_bytes
    }
}

/// What [`MaxoidSystem::evict_idle_tenants`] reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvictReport {
    /// Tenants whose volatile state was discarded.
    pub tenants: usize,
    /// Volatile files removed across all evicted tenants.
    pub files_removed: usize,
}

/// Geometry and budgets for [`MaxoidSystem::boot_from_device`]: how the
/// single image is partitioned and how many cache pages each tier may
/// keep resident.
#[derive(Debug, Clone)]
pub struct DeviceBootConfig {
    /// Sectors per partition chunk (the remapping granularity).
    pub chunk_sectors: u64,
    /// Directory sectors reserved for the chunk map.
    pub dir_sectors: u64,
    /// Page-cache budget of the journal's `BlockStorage`.
    pub wal_pages: usize,
    /// Journal group-commit batch size.
    pub wal_batch: usize,
    /// Page-cache budget of the VFS spill tier.
    pub vfs_pages: usize,
    /// File size (bytes) above which VFS payloads spill to pages.
    pub vfs_threshold: usize,
    /// Page-cache budget of the sqldb row heap.
    pub heap_pages: usize,
    /// Table size (encoded bytes) above which rows page to the heap.
    pub heap_threshold: usize,
}

impl Default for DeviceBootConfig {
    fn default() -> Self {
        DeviceBootConfig {
            chunk_sectors: 64,
            dir_sectors: 8,
            wal_pages: 32,
            wal_batch: 8,
            vfs_pages: 64,
            vfs_threshold: 4096,
            heap_pages: 64,
            heap_threshold: 64 * 1024,
        }
    }
}

/// A selective volatile-commit plan (§3.3): which parts of `Vol(init)`
/// to promote to non-volatile state, and whether to discard the rest.
#[derive(Debug, Clone, Default)]
pub struct VolCommitPlan {
    /// External tmp files to commit (paths relative to EXTDIR).
    pub external: Vec<String>,
    /// Internal tmp files to commit into `Priv(init)`.
    pub internal: Vec<String>,
    /// Provider delta rows to commit: `(authority, table, delta row id)`.
    pub provider_rows: Vec<(String, String, i64)>,
    /// Discard the remaining volatile state afterwards (Clear-Vol), in
    /// the same journal transaction.
    pub discard_rest: bool,
}

/// What [`MaxoidSystem::commit_vol`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolCommitOutcome {
    /// Provider delta rows promoted into public tables.
    pub rows_committed: usize,
    /// Volatile files removed by the trailing discard (0 when
    /// `discard_rest` was false).
    pub files_removed: usize,
}

/// What `start_activity` produced.
#[derive(Debug)]
pub enum StartOutcome {
    /// The target started with this pid.
    Started(Pid),
    /// Several candidates: the user must choose (ResolverActivity).
    Chooser {
        /// The matching apps.
        candidates: Vec<AppId>,
        /// The context the choice will run in.
        ctx: ExecContext,
    },
}

impl StartOutcome {
    /// Unwraps the started pid.
    ///
    /// # Panics
    ///
    /// Panics if a chooser was returned instead.
    pub fn pid(self) -> Pid {
        match self {
            StartOutcome::Started(pid) => pid,
            StartOutcome::Chooser { .. } => panic!("expected a started activity, got chooser"),
        }
    }
}
