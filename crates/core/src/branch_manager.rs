//! The Aufs branch manager (§4.2).
//!
//! Lives in Zygote in the paper: when an app process forks, the branch
//! manager selects and mounts the branches that give the process its
//! Maxoid view of files, before the process drops root. Table 2 of the
//! paper specifies the external-storage layout this module reproduces:
//!
//! | Mount point     | Branches for `A`  | Branches for `B^A`            |
//! |-----------------|-------------------|-------------------------------|
//! | EXTDIR          | pub (rw)          | A/tmp (rw), pub               |
//! | EXTDIR/data/A   | A/data/A (rw)     | A/tmp/data/A (rw), A/data/A   |
//! | EXTDIR/data/B   | N/A               | B-A/data/B (rw), B/data/B     |
//! | EXTDIR/tmp      | A/tmp (rw)        | N/A                           |
//!
//! plus the internal mounts: the delegate's nPriv union over
//! `/data/data/B`, its pPriv bind, and the initiator's private directory
//! exposed with copy-on-write redirection into Vol(A).

use crate::layout;
use crate::manifest::MaxoidManifest;
use maxoid_providers::FileLocator;
use maxoid_vfs::{
    Branch, Mode, Mount, MountNamespace, Uid, Union, VPath, Vfs, VfsError, VfsResult,
};

/// Builds per-process mount namespaces and manages branch directories.
#[derive(Debug, Clone)]
pub struct BranchManager {
    vfs: Vfs,
}

impl BranchManager {
    /// Creates the branch manager and the shared backing directories.
    pub fn new(vfs: Vfs) -> VfsResult<Self> {
        vfs.with_store_mut(|s| {
            s.mkdir_all(&layout::back_ext_pub(), Uid::ROOT, Mode::PUBLIC)?;
            s.mkdir_all(&maxoid_vfs::vpath("/backing/internal"), Uid::ROOT, Mode::PUBLIC)?;
            s.mkdir_all(&maxoid_vfs::vpath("/backing/internal_tmp"), Uid::ROOT, Mode::PUBLIC)?;
            s.mkdir_all(&maxoid_vfs::vpath("/backing/npriv"), Uid::ROOT, Mode::PUBLIC)?;
            s.mkdir_all(&maxoid_vfs::vpath("/backing/ppriv"), Uid::ROOT, Mode::PUBLIC)?;
            s.mkdir_all(&maxoid_vfs::vpath("/backing/ext/apps"), Uid::ROOT, Mode::PUBLIC)?;
            s.mkdir_all(&maxoid_vfs::vpath("/backing/ext/deleg"), Uid::ROOT, Mode::PUBLIC)
        })?;
        Ok(BranchManager { vfs })
    }

    /// Returns the underlying VFS.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Creates an app's backing directories at install time: its internal
    /// private dir (owned by its uid) and its declared private
    /// external-storage branches.
    pub fn prepare_app(&self, pkg: &str, uid: Uid, manifest: &MaxoidManifest) -> VfsResult<()> {
        self.vfs.with_store_mut(|s| {
            s.mkdir_all(&layout::back_internal(pkg)?, uid, Mode::PRIVATE)?;
            for rel in &manifest.private_ext_dirs {
                s.mkdir_all(&layout::back_ext_app(pkg)?.join(rel)?, uid, Mode::PUBLIC)?;
            }
            Ok(())
        })
    }

    fn ensure_dir(&self, path: &VPath) -> VfsResult<()> {
        self.vfs.with_store_mut(|s| s.mkdir_all(path, Uid::ROOT, Mode::PUBLIC))
    }

    /// Builds the namespace for app `pkg` running normally (initiator).
    ///
    /// The initiator's views are identical to stock Android, plus the
    /// `EXTDIR/tmp` window onto Vol(pkg) and the internal-tmp window under
    /// its private dir.
    pub fn initiator_namespace(
        &self,
        pkg: &str,
        manifest: &MaxoidManifest,
    ) -> VfsResult<MountNamespace> {
        let mut ns = MountNamespace::new();
        // Internal private storage: a single direct branch — "Aufs is not
        // used for initiators' private directories" (§4.2), so initiators
        // pay no union overhead.
        ns.add(Mount::bind(layout::internal_dir(pkg)?, layout::back_internal(pkg)?));
        // Window onto volatile copies of internal files made by delegates.
        let itmp = layout::back_internal_tmp(pkg)?;
        self.ensure_dir(&itmp)?;
        ns.add(
            Mount::bind(layout::internal_dir(pkg)?.join("tmp")?, itmp)
                .with_forced_mode(Mode::PUBLIC),
        );
        // EXTDIR: the public branch, read-write.
        ns.add(
            Mount::bind(layout::extdir(), layout::back_ext_pub()).with_forced_mode(Mode::PUBLIC),
        );
        // Declared private external dirs are backed by the app's branch.
        for rel in &manifest.private_ext_dirs {
            let host = layout::back_ext_app(pkg)?.join(rel)?;
            self.ensure_dir(&host)?;
            ns.add(Mount::bind(layout::extdir().join(rel)?, host).with_forced_mode(Mode::PUBLIC));
        }
        // EXTDIR/tmp: the initiator's view of Vol(pkg) files.
        let ext_tmp = layout::back_ext_tmp(pkg)?;
        self.ensure_dir(&ext_tmp)?;
        ns.add(Mount::bind(layout::ext_tmp_dir(), ext_tmp).with_forced_mode(Mode::PUBLIC));
        Ok(ns)
    }

    /// Builds the namespace for `pkg` running as a delegate of `init`
    /// (`B^A`), per Table 2 and §4.2.
    pub fn delegate_namespace(
        &self,
        pkg: &str,
        pkg_manifest: &MaxoidManifest,
        init: &str,
        init_manifest: &MaxoidManifest,
    ) -> VfsResult<MountNamespace> {
        if pkg == init {
            return Err(VfsError::InvalidArgument);
        }
        let mut ns = MountNamespace::new();

        // nPriv(B^A): writable overlay forked (lazily, copy-on-write) from
        // Priv(B).
        let overlay = layout::back_npriv(init, pkg)?;
        self.ensure_dir(&overlay)?;
        let npriv =
            Union::new(vec![Branch::rw(overlay), Branch::ro(layout::back_internal(pkg)?)], false);
        ns.add(Mount::union(layout::internal_dir(pkg)?, npriv));

        // pPriv(B^A): persistent, per-initiator, a plain writable bind.
        let ppriv = layout::back_ppriv(init, pkg)?;
        self.ensure_dir(&ppriv)?;
        ns.add(Mount::bind(layout::ppriv_dir(pkg)?, ppriv));

        // The initiator's internal private dir, exposed read-all with
        // writes redirected into Vol(A) (internal tmp). This carries the
        // paper's "modify Aufs to always allow read" change.
        let itmp = layout::back_internal_tmp(init)?;
        self.ensure_dir(&itmp)?;
        let init_priv =
            Union::new(vec![Branch::rw(itmp), Branch::ro(layout::back_internal(init)?)], true);
        ns.add(Mount::union(layout::internal_dir(init)?, init_priv).with_forced_mode(Mode::PUBLIC));

        // EXTDIR: A/tmp (rw) over pub (Table 2 row 1).
        let a_tmp = layout::back_ext_tmp(init)?;
        self.ensure_dir(&a_tmp)?;
        let ext =
            Union::new(vec![Branch::rw(a_tmp.clone()), Branch::ro(layout::back_ext_pub())], false);
        ns.add(Mount::union(layout::extdir(), ext).with_forced_mode(Mode::PUBLIC));

        // The initiator's private external dirs: A/tmp/<rel> (rw) over
        // A/<rel> (Table 2 row 2) — reads see A's private files, writes
        // land in Vol(A).
        for rel in &init_manifest.private_ext_dirs {
            let upper = a_tmp.join(rel)?;
            self.ensure_dir(&upper)?;
            let lower = layout::back_ext_app(init)?.join(rel)?;
            self.ensure_dir(&lower)?;
            let u = Union::new(vec![Branch::rw(upper), Branch::ro(lower)], true);
            ns.add(Mount::union(layout::extdir().join(rel)?, u).with_forced_mode(Mode::PUBLIC));
        }

        // The delegate's own private external dirs: B-A/<rel> (rw) over
        // B/<rel> (Table 2 row 3) — invisible to both A and normal B.
        for rel in &pkg_manifest.private_ext_dirs {
            let upper = layout::back_ext_delegate(pkg, init)?.join(rel)?;
            self.ensure_dir(&upper)?;
            let lower = layout::back_ext_app(pkg)?.join(rel)?;
            self.ensure_dir(&lower)?;
            let u = Union::new(vec![Branch::rw(upper), Branch::ro(lower)], false);
            ns.add(Mount::union(layout::extdir().join(rel)?, u).with_forced_mode(Mode::PUBLIC));
        }

        // No EXTDIR/tmp for delegates (Table 2 row 4: N/A).
        Ok(ns)
    }

    /// Renders a namespace as a Table 2-style mount table (used by the
    /// `mount_table` example to regenerate the paper's table).
    pub fn render_mount_table(ns: &MountNamespace) -> String {
        let mut out = String::new();
        let mut mounts: Vec<_> = ns.mounts().to_vec();
        mounts.sort_by(|a, b| a.point.as_str().cmp(b.point.as_str()));
        for m in mounts {
            let branches = match &m.kind {
                maxoid_vfs::MountKind::Bind { host, read_only } => {
                    format!("{host}{}", if *read_only { "" } else { " (rw)" })
                }
                maxoid_vfs::MountKind::Union(u) => u
                    .branches()
                    .iter()
                    .map(|b| format!("{}{}", b.host, if b.writable { " (rw)" } else { "" }))
                    .collect::<Vec<_>>()
                    .join(", "),
            };
            out.push_str(&format!("{:<28} {branches}\n", m.point.as_str()));
        }
        out
    }
}

/// [`FileLocator`] backed by the canonical layout: lets trusted services
/// (Downloads, Media) resolve client-visible paths to public or volatile
/// backing locations.
#[derive(Debug, Clone, Default)]
pub struct BranchLocator;

impl FileLocator for BranchLocator {
    fn public_host(&self, path: &VPath) -> VfsResult<VPath> {
        path.rebase(&layout::extdir(), &layout::back_ext_pub()).ok_or(VfsError::InvalidArgument)
    }

    fn volatile_host(&self, initiator: &str, path: &VPath) -> VfsResult<VPath> {
        if let Some(host) = path.rebase(&layout::extdir(), &layout::back_ext_tmp(initiator)?) {
            return Ok(host);
        }
        // Internal private paths of the initiator map to internal-tmp.
        let internal = layout::internal_dir(initiator)?;
        path.rebase(&internal, &layout::back_internal_tmp(initiator)?)
            .ok_or(VfsError::InvalidArgument)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid_vfs::{vpath, Cred};

    fn setup() -> (Vfs, BranchManager) {
        let vfs = Vfs::new();
        let bm = BranchManager::new(vfs.clone()).unwrap();
        (vfs, bm)
    }

    const UID_A: Uid = Uid(10_001);
    const UID_B: Uid = Uid(10_002);

    fn manifests() -> (MaxoidManifest, MaxoidManifest) {
        (
            MaxoidManifest::new().private_ext_dir("data/A"),
            MaxoidManifest::new().private_ext_dir("data/B"),
        )
    }

    #[test]
    fn table2_mount_points_for_initiator() {
        let (_, bm) = setup();
        let (ma, _) = manifests();
        bm.prepare_app("A", UID_A, &ma).unwrap();
        let ns = bm.initiator_namespace("A", &ma).unwrap();
        let points: Vec<String> =
            ns.mounts().iter().map(|m| m.point.as_str().to_string()).collect();
        assert!(points.contains(&"/storage/sdcard".to_string()));
        assert!(points.contains(&"/storage/sdcard/data/A".to_string()));
        assert!(points.contains(&"/storage/sdcard/tmp".to_string()));
        assert!(points.contains(&"/data/data/A".to_string()));
    }

    #[test]
    fn table2_mount_points_for_delegate() {
        let (_, bm) = setup();
        let (ma, mb) = manifests();
        bm.prepare_app("A", UID_A, &ma).unwrap();
        bm.prepare_app("B", UID_B, &mb).unwrap();
        let ns = bm.delegate_namespace("B", &mb, "A", &ma).unwrap();
        let points: Vec<String> =
            ns.mounts().iter().map(|m| m.point.as_str().to_string()).collect();
        // EXTDIR, EXTDIR/data/A, EXTDIR/data/B mounted; EXTDIR/tmp absent.
        assert!(points.contains(&"/storage/sdcard".to_string()));
        assert!(points.contains(&"/storage/sdcard/data/A".to_string()));
        assert!(points.contains(&"/storage/sdcard/data/B".to_string()));
        assert!(!points.contains(&"/storage/sdcard/tmp".to_string()));
        // Internal: own nPriv union, pPriv bind, initiator's dir exposed.
        assert!(points.contains(&"/data/data/B".to_string()));
        assert!(points.contains(&"/data/data/ppriv/B".to_string()));
        assert!(points.contains(&"/data/data/A".to_string()));
    }

    #[test]
    fn figure4_file_views() {
        // The paper's Figure 4 scenario: A's file b edited by B^A with a
        // side change to public file c; X sees none of it.
        let (vfs, bm) = setup();
        let (ma, mb) = manifests();
        bm.prepare_app("A", UID_A, &ma).unwrap();
        bm.prepare_app("B", UID_B, &mb).unwrap();
        bm.prepare_app("X", Uid(10_003), &MaxoidManifest::new()).unwrap();
        let a_ns = bm.initiator_namespace("A", &ma).unwrap();
        let del_ns = bm.delegate_namespace("B", &mb, "A", &ma).unwrap();
        let x_ns = bm.initiator_namespace("X", &MaxoidManifest::new()).unwrap();
        let a = Cred::new(UID_A);
        let b = Cred::new(UID_B);
        let x = Cred::new(Uid(10_003));

        // A puts file b in its private external dir; public file c exists.
        vfs.write(a, &a_ns, &vpath("/storage/sdcard/data/A/b"), b"v1", Mode::PUBLIC).unwrap();
        vfs.write(x, &x_ns, &vpath("/storage/sdcard/c"), b"c1", Mode::PUBLIC).unwrap();

        // B^A reads and edits b (allowed via A's exposed view).
        assert_eq!(vfs.read(b, &del_ns, &vpath("/storage/sdcard/data/A/b")).unwrap(), b"v1");
        vfs.write(b, &del_ns, &vpath("/storage/sdcard/data/A/b"), b"v2", Mode::PUBLIC).unwrap();
        // Side change on c.
        vfs.write(b, &del_ns, &vpath("/storage/sdcard/c"), b"c2", Mode::PUBLIC).unwrap();

        // B^A reads its own writes (U2).
        assert_eq!(vfs.read(b, &del_ns, &vpath("/storage/sdcard/data/A/b")).unwrap(), b"v2");
        assert_eq!(vfs.read(b, &del_ns, &vpath("/storage/sdcard/c")).unwrap(), b"c2");

        // A sees the original b, and the updated version under tmp.
        assert_eq!(vfs.read(a, &a_ns, &vpath("/storage/sdcard/data/A/b")).unwrap(), b"v1");
        assert_eq!(vfs.read(a, &a_ns, &vpath("/storage/sdcard/tmp/data/A/b")).unwrap(), b"v2");
        assert_eq!(vfs.read(a, &a_ns, &vpath("/storage/sdcard/tmp/c")).unwrap(), b"c2");

        // X sees neither A's private file nor any of B^A's updates (S1).
        assert!(vfs.read(x, &x_ns, &vpath("/storage/sdcard/data/A/b")).is_err());
        assert_eq!(vfs.read(x, &x_ns, &vpath("/storage/sdcard/c")).unwrap(), b"c1");
        assert!(!vfs.exists(x, &x_ns, &vpath("/storage/sdcard/tmp/c")));
    }

    #[test]
    fn delegate_private_ext_writes_invisible_to_both() {
        let (vfs, bm) = setup();
        let (ma, mb) = manifests();
        bm.prepare_app("A", UID_A, &ma).unwrap();
        bm.prepare_app("B", UID_B, &mb).unwrap();
        let a_ns = bm.initiator_namespace("A", &ma).unwrap();
        let b_ns = bm.initiator_namespace("B", &mb).unwrap();
        let del_ns = bm.delegate_namespace("B", &mb, "A", &ma).unwrap();
        let a = Cred::new(UID_A);
        let b = Cred::new(UID_B);

        // Normal B has a file in its private external dir.
        vfs.write(b, &b_ns, &vpath("/storage/sdcard/data/B/base"), b"base", Mode::PUBLIC).unwrap();
        // B^A sees it (U1) and writes a new file there.
        assert_eq!(vfs.read(b, &del_ns, &vpath("/storage/sdcard/data/B/base")).unwrap(), b"base");
        vfs.write(b, &del_ns, &vpath("/storage/sdcard/data/B/leak"), b"x", Mode::PUBLIC).unwrap();
        // Invisible to normal B (S4) and to A (S3).
        assert!(!vfs.exists(b, &b_ns, &vpath("/storage/sdcard/data/B/leak")));
        assert!(!vfs.exists(a, &a_ns, &vpath("/storage/sdcard/data/B/leak")));
        assert!(!vfs.exists(a, &a_ns, &vpath("/storage/sdcard/tmp/data/B/leak")));
    }

    #[test]
    fn delegate_reads_initiator_internal_and_redirects_writes() {
        let (vfs, bm) = setup();
        let (ma, mb) = manifests();
        bm.prepare_app("A", UID_A, &ma).unwrap();
        bm.prepare_app("B", UID_B, &mb).unwrap();
        let a_ns = bm.initiator_namespace("A", &ma).unwrap();
        let del_ns = bm.delegate_namespace("B", &mb, "A", &ma).unwrap();
        let a = Cred::new(UID_A);
        let b = Cred::new(UID_B);

        // A stores a private internal attachment.
        vfs.write(a, &a_ns, &vpath("/data/data/A/att.pdf"), b"secret", Mode::PRIVATE).unwrap();
        // B^A reads it despite the uid mismatch (always-allow-read Aufs).
        assert_eq!(vfs.read(b, &del_ns, &vpath("/data/data/A/att.pdf")).unwrap(), b"secret");
        // B^A modifies it: redirected, A sees original + tmp copy.
        vfs.write(b, &del_ns, &vpath("/data/data/A/att.pdf"), b"edited", Mode::PUBLIC).unwrap();
        assert_eq!(vfs.read(a, &a_ns, &vpath("/data/data/A/att.pdf")).unwrap(), b"secret");
        assert_eq!(vfs.read(a, &a_ns, &vpath("/data/data/A/tmp/att.pdf")).unwrap(), b"edited");
    }

    #[test]
    fn npriv_overlay_confines_delegate_private_writes() {
        let (vfs, bm) = setup();
        let (ma, mb) = manifests();
        bm.prepare_app("A", UID_A, &ma).unwrap();
        bm.prepare_app("B", UID_B, &mb).unwrap();
        let b_ns = bm.initiator_namespace("B", &mb).unwrap();
        let del_ns = bm.delegate_namespace("B", &mb, "A", &ma).unwrap();
        let b = Cred::new(UID_B);

        vfs.write(b, &b_ns, &vpath("/data/data/B/prefs.xml"), b"p1", Mode::PRIVATE).unwrap();
        // Delegate sees B's prefs (U1)...
        assert_eq!(vfs.read(b, &del_ns, &vpath("/data/data/B/prefs.xml")).unwrap(), b"p1");
        // ...its update is confined to the overlay (S4).
        vfs.write(b, &del_ns, &vpath("/data/data/B/prefs.xml"), b"p2", Mode::PRIVATE).unwrap();
        assert_eq!(vfs.read(b, &b_ns, &vpath("/data/data/B/prefs.xml")).unwrap(), b"p1");
        assert_eq!(vfs.read(b, &del_ns, &vpath("/data/data/B/prefs.xml")).unwrap(), b"p2");
    }

    #[test]
    fn locator_roundtrip() {
        let loc = BranchLocator;
        assert_eq!(
            loc.public_host(&vpath("/storage/sdcard/Download/f")).unwrap().as_str(),
            "/backing/ext/pub/Download/f"
        );
        assert_eq!(
            loc.volatile_host("A", &vpath("/storage/sdcard/Download/f")).unwrap().as_str(),
            "/backing/ext/apps/A/tmp/Download/f"
        );
        assert_eq!(
            loc.volatile_host("A", &vpath("/data/data/A/cache/f")).unwrap().as_str(),
            "/backing/internal_tmp/A/cache/f"
        );
        assert!(loc.public_host(&vpath("/elsewhere")).is_err());
        assert!(loc.volatile_host("A", &vpath("/data/data/B/f")).is_err());
    }

    #[test]
    fn self_delegation_rejected() {
        let (_, bm) = setup();
        let m = MaxoidManifest::new();
        assert!(bm.delegate_namespace("A", &m, "A", &m).is_err());
    }

    #[test]
    fn render_mount_table_shape() {
        let (_, bm) = setup();
        let (ma, mb) = manifests();
        bm.prepare_app("A", UID_A, &ma).unwrap();
        bm.prepare_app("B", UID_B, &mb).unwrap();
        let ns = bm.delegate_namespace("B", &mb, "A", &ma).unwrap();
        let table = BranchManager::render_mount_table(&ns);
        assert!(table.contains("/storage/sdcard"));
        assert!(table.contains("(rw)"));
        assert!(table.contains("/backing/ext/apps/A/tmp"));
    }
}
