//! Activity Manager Service (§3.4, §6.2 item 1).
//!
//! Tracks which apps exist, their intent filters, and routes invocations:
//!
//! - decides whether the invoked instance runs normally or as a delegate
//!   (the intent's Maxoid flag, or the sender's manifest filters);
//! - enforces **invocation-transitivity**: an invocation from `B^A` always
//!   yields `C^A`, broadcasts from `B^A` reach only `A` and `A`'s
//!   delegates, and **nested delegation fails**;
//! - applies the kill rules: starting `B^A` kills a running normal `B`
//!   (§4.2), and an instance running for a different initiator is killed
//!   before the new context starts (§6.2);
//! - models `ResolverActivity` as an intent channel: when several apps
//!   match, candidates are returned for the user to choose from, and the
//!   chosen target starts in the context computed from the *original*
//!   sender.

use crate::intent::{AppIntentFilter, Intent};
use crate::manifest::MaxoidManifest;
use maxoid_kernel::{AppId, ExecContext, Pid};
use std::collections::BTreeMap;

/// Errors from invocation routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmsError {
    /// No installed app accepts the intent.
    NoMatch(String),
    /// A delegate attempted nested delegation (§3.4: unsupported).
    NestedDelegation,
    /// The named target is not installed.
    NoSuchApp(String),
}

impl std::fmt::Display for AmsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmsError::NoMatch(a) => write!(f, "no activity found to handle {a}"),
            AmsError::NestedDelegation => f.write_str("nested delegation is not supported"),
            AmsError::NoSuchApp(a) => write!(f, "no such app: {a}"),
        }
    }
}

impl std::error::Error for AmsError {}

/// The routing decision for one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// A single target resolved; start it in this context.
    Start {
        /// The app to start.
        target: AppId,
        /// The context it must run in.
        ctx: ExecContext,
        /// Instances that must be killed first (conflicting contexts).
        kill_first: Vec<Pid>,
    },
    /// Several candidates match: the ResolverActivity intent channel. The
    /// chooser is *not* an app instance; re-route with an explicit target
    /// once the user picks (the computed context already sticks).
    Chooser {
        /// Matching apps, in registration order.
        candidates: Vec<AppId>,
        /// The context the eventual choice will run in.
        ctx: ExecContext,
    },
}

/// Registration record for one installed app.
#[derive(Debug, Clone, Default)]
struct AppRecord {
    filters: Vec<AppIntentFilter>,
    manifest: MaxoidManifest,
}

/// The Activity Manager: app registry and invocation routing.
///
/// Process bookkeeping (which pids run which contexts) is supplied by the
/// caller at routing time, keeping this module free of kernel state.
#[derive(Debug, Default)]
pub struct ActivityManager {
    apps: BTreeMap<AppId, AppRecord>,
}

impl ActivityManager {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ActivityManager::default()
    }

    /// Registers an app with its intent filters and Maxoid manifest.
    pub fn register_app(
        &mut self,
        app: &AppId,
        filters: Vec<AppIntentFilter>,
        manifest: MaxoidManifest,
    ) {
        self.apps.insert(app.clone(), AppRecord { filters, manifest });
    }

    /// Returns an app's Maxoid manifest.
    pub fn manifest(&self, app: &AppId) -> Option<&MaxoidManifest> {
        self.apps.get(app).map(|r| &r.manifest)
    }

    /// Returns installed apps accepting the intent (ResolverActivity's
    /// candidate list).
    pub fn resolve_candidates(&self, intent: &Intent) -> Vec<AppId> {
        if let Some(t) = &intent.target {
            return if self.apps.contains_key(t) { vec![t.clone()] } else { Vec::new() };
        }
        self.apps
            .iter()
            .filter(|(_, r)| r.filters.iter().any(|f| f.accepts(intent)))
            .map(|(a, _)| a.clone())
            .collect()
    }

    /// Computes the context the invoked instance must run in, given the
    /// sender's context (§3.4).
    ///
    /// - A delegate's invocations are forced into its initiator's context
    ///   (invocation-transitivity); a delegate asking for its own delegate
    ///   is nested delegation and fails.
    /// - An initiator invokes a delegate when the intent flag is set or
    ///   its manifest filters say so; otherwise the target runs normally.
    pub fn invocation_context(
        &self,
        sender: Option<(&AppId, &ExecContext)>,
        intent: &Intent,
    ) -> Result<ExecContext, AmsError> {
        match sender {
            None => Ok(ExecContext::Normal),
            Some((app, ExecContext::Normal)) => {
                let manifest_wants =
                    self.apps.get(app).map(|r| r.manifest.wants_delegate(intent)).unwrap_or(false);
                if intent.delegate_requested() || manifest_wants {
                    Ok(ExecContext::OnBehalfOf(app.clone()))
                } else {
                    Ok(ExecContext::Normal)
                }
            }
            Some((_, ExecContext::OnBehalfOf(init))) => {
                if intent.delegate_requested() {
                    // B^A asking to invoke C as *B's* delegate: refused.
                    return Err(AmsError::NestedDelegation);
                }
                Ok(ExecContext::OnBehalfOf(init.clone()))
            }
        }
    }

    /// Routes an invocation: resolves the target, computes the context,
    /// and lists conflicting instances to kill.
    ///
    /// `running` enumerates live processes as (pid, app, context); the
    /// caller (the system facade) owns the process table.
    pub fn route(
        &self,
        sender: Option<(&AppId, &ExecContext)>,
        intent: &Intent,
        running: &[(Pid, AppId, ExecContext)],
    ) -> Result<Route, AmsError> {
        let ctx = self.invocation_context(sender, intent)?;
        let candidates = self.resolve_candidates(intent);
        if candidates.is_empty() {
            return Err(match &intent.target {
                Some(t) => AmsError::NoSuchApp(t.pkg().to_string()),
                None => AmsError::NoMatch(intent.action.clone()),
            });
        }
        if candidates.len() > 1 {
            return Ok(Route::Chooser { candidates, ctx });
        }
        let target = candidates.into_iter().next().expect("len checked above");
        // Kill rule: any live instance of the target in a *different*
        // context must die before this one starts (§4.2, §6.2).
        let kill_first = running
            .iter()
            .filter(|(_, app, rctx)| app == &target && rctx != &ctx)
            .map(|(pid, _, _)| *pid)
            .collect();
        Ok(Route::Start { target, ctx, kill_first })
    }

    /// Computes the delivery set for a broadcast from `sender`: normal
    /// senders reach everyone with a matching receiver; a delegate of `A`
    /// reaches only `A` and delegates of `A` (§3.4).
    pub fn broadcast_targets(
        &self,
        sender: Option<(&AppId, &ExecContext)>,
        intent: &Intent,
        running: &[(Pid, AppId, ExecContext)],
    ) -> Vec<Pid> {
        let matches_filter = |app: &AppId| {
            self.apps.get(app).map(|r| r.filters.iter().any(|f| f.accepts(intent))).unwrap_or(false)
        };
        match sender {
            Some((_, ExecContext::OnBehalfOf(init))) => running
                .iter()
                .filter(|(_, app, ctx)| {
                    matches_filter(app)
                        && match ctx {
                            ExecContext::Normal => app == init,
                            ExecContext::OnBehalfOf(i) => i == init,
                        }
                })
                .map(|(pid, _, _)| *pid)
                .collect(),
            _ => running
                .iter()
                .filter(|(_, app, _)| matches_filter(app))
                .map(|(pid, _, _)| *pid)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::InvocationFilter;

    const VIEW: &str = "android.intent.action.VIEW";

    fn ams() -> ActivityManager {
        let mut a = ActivityManager::new();
        a.register_app(
            &AppId::new("email"),
            vec![AppIntentFilter::new("android.intent.action.SENDTO", None)],
            MaxoidManifest::new().filter(InvocationFilter::action(VIEW)),
        );
        a.register_app(
            &AppId::new("viewer"),
            vec![AppIntentFilter::new(VIEW, Some("application/pdf"))],
            MaxoidManifest::new(),
        );
        a.register_app(
            &AppId::new("viewer2"),
            vec![AppIntentFilter::new(VIEW, Some("application/pdf"))],
            MaxoidManifest::new(),
        );
        a.register_app(&AppId::new("scanner"), vec![], MaxoidManifest::new());
        a
    }

    fn view_pdf() -> Intent {
        Intent::new(VIEW).with_mime("application/pdf")
    }

    #[test]
    fn manifest_filter_makes_invocation_private() {
        let a = ams();
        let email = AppId::new("email");
        // Email's manifest marks VIEW intents private: delegate context.
        let ctx = a.invocation_context(Some((&email, &ExecContext::Normal)), &view_pdf()).unwrap();
        assert_eq!(ctx, ExecContext::OnBehalfOf(email.clone()));
        // A SEND intent is not filtered: normal context.
        let ctx = a
            .invocation_context(
                Some((&email, &ExecContext::Normal)),
                &Intent::new("android.intent.action.SEND"),
            )
            .unwrap();
        assert_eq!(ctx, ExecContext::Normal);
    }

    #[test]
    fn intent_flag_forces_delegate() {
        let a = ams();
        let scanner = AppId::new("scanner");
        let ctx = a
            .invocation_context(Some((&scanner, &ExecContext::Normal)), &view_pdf().as_delegate())
            .unwrap();
        assert_eq!(ctx, ExecContext::OnBehalfOf(scanner));
    }

    #[test]
    fn invocation_transitivity() {
        let a = ams();
        let viewer = AppId::new("viewer");
        let del_ctx = ExecContext::OnBehalfOf(AppId::new("email"));
        // B^A invoking anything yields a delegate of A.
        let ctx = a.invocation_context(Some((&viewer, &del_ctx)), &view_pdf()).unwrap();
        assert_eq!(ctx, ExecContext::OnBehalfOf(AppId::new("email")));
        // Nested delegation fails.
        assert_eq!(
            a.invocation_context(Some((&viewer, &del_ctx)), &view_pdf().as_delegate()),
            Err(AmsError::NestedDelegation)
        );
    }

    #[test]
    fn chooser_for_multiple_candidates() {
        let a = ams();
        let email = AppId::new("email");
        let route = a.route(Some((&email, &ExecContext::Normal)), &view_pdf(), &[]).unwrap();
        match route {
            Route::Chooser { candidates, ctx } => {
                assert_eq!(candidates.len(), 2);
                // The context was computed from the original sender.
                assert_eq!(ctx, ExecContext::OnBehalfOf(email.clone()));
            }
            other => panic!("expected chooser, got {other:?}"),
        }
        // Explicit target resolves uniquely.
        let route = a
            .route(Some((&email, &ExecContext::Normal)), &view_pdf().with_target("viewer"), &[])
            .unwrap();
        assert!(matches!(route, Route::Start { target, .. } if target == AppId::new("viewer")));
    }

    #[test]
    fn kill_rules() {
        let a = ams();
        let email = AppId::new("email");
        let running = vec![
            (Pid(1), AppId::new("viewer"), ExecContext::Normal),
            (Pid(2), AppId::new("viewer"), ExecContext::OnBehalfOf(AppId::new("dropbox"))),
            (Pid(3), AppId::new("email"), ExecContext::Normal),
        ];
        let route = a
            .route(
                Some((&email, &ExecContext::Normal)),
                &view_pdf().with_target("viewer"),
                &running,
            )
            .unwrap();
        match route {
            Route::Start { ctx, kill_first, .. } => {
                assert_eq!(ctx, ExecContext::OnBehalfOf(email));
                // Both the normal instance and the dropbox-delegate die.
                assert_eq!(kill_first, vec![Pid(1), Pid(2)]);
            }
            other => panic!("expected start, got {other:?}"),
        }
    }

    #[test]
    fn same_context_instance_not_killed() {
        let a = ams();
        let email = AppId::new("email");
        let running = vec![(Pid(1), AppId::new("viewer"), ExecContext::OnBehalfOf(email.clone()))];
        let route = a
            .route(
                Some((&email, &ExecContext::Normal)),
                &view_pdf().with_target("viewer"),
                &running,
            )
            .unwrap();
        assert!(matches!(route, Route::Start { kill_first, .. } if kill_first.is_empty()));
    }

    #[test]
    fn no_match_errors() {
        let a = ams();
        assert!(matches!(
            a.route(None, &Intent::new("bogus.ACTION"), &[]),
            Err(AmsError::NoMatch(_))
        ));
        assert!(matches!(
            a.route(None, &Intent::new("x").with_target("ghost"), &[]),
            Err(AmsError::NoSuchApp(_))
        ));
    }

    #[test]
    fn broadcast_confinement() {
        let mut a = ams();
        // Give everyone a receiver for the broadcast action.
        for app in ["email", "viewer", "scanner"] {
            a.register_app(
                &AppId::new(app),
                vec![AppIntentFilter::new("BROADCAST", None)],
                MaxoidManifest::new(),
            );
        }
        let running = vec![
            (Pid(1), AppId::new("email"), ExecContext::Normal),
            (Pid(2), AppId::new("viewer"), ExecContext::OnBehalfOf(AppId::new("email"))),
            (Pid(3), AppId::new("scanner"), ExecContext::Normal),
            (Pid(4), AppId::new("scanner"), ExecContext::OnBehalfOf(AppId::new("other"))),
        ];
        let bcast = Intent::new("BROADCAST");
        // From a delegate of email: only email + its delegates.
        let viewer = AppId::new("viewer");
        let del_ctx = ExecContext::OnBehalfOf(AppId::new("email"));
        let targets = a.broadcast_targets(Some((&viewer, &del_ctx)), &bcast, &running);
        assert_eq!(targets, vec![Pid(1), Pid(2)]);
        // From a normal app: everyone with a receiver.
        let scanner = AppId::new("scanner");
        let targets = a.broadcast_targets(Some((&scanner, &ExecContext::Normal)), &bcast, &running);
        assert_eq!(targets, vec![Pid(1), Pid(2), Pid(3), Pid(4)]);
    }
}
