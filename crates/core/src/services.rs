//! Policy-enforcing system services (§6.2 item 5).
//!
//! Bluetooth Manager and Telephony (SMS) refuse to transmit for delegates
//! — both are network-equivalent exfiltration channels. The Clipboard
//! Service keeps **separate clipboard instances** per delegate context, so
//! a delegate cannot leak `Priv(A)`-derived text to the global clipboard
//! and neither can it read another initiator's confined clips.
//!
//! All three services are shared device-wide, so their state is interior:
//! each holds one `Mutex` and every API takes `&self`. The services sit at
//! the leaves of the lock order (nothing else is acquired while a service
//! mutex is held), so they can be called from any layer without deadlock
//! concerns.

use maxoid_kernel::{ExecContext, KernelError, KernelResult};
use parking_lot::Mutex;
use std::collections::BTreeMap;

#[derive(Debug, Default)]
struct ClipState {
    global: Option<String>,
    /// Keyed by initiator: the clipboard shared by that initiator's
    /// delegates.
    confined: BTreeMap<String, String>,
}

/// Clipboard service with per-context instances.
#[derive(Debug, Default)]
pub struct ClipboardService {
    state: Mutex<ClipState>,
}

impl ClipboardService {
    /// Creates an empty clipboard service.
    pub fn new() -> Self {
        ClipboardService::default()
    }

    /// Sets the clip for a caller in the given context.
    pub fn set(&self, ctx: &ExecContext, text: &str) {
        let mut st = self.state.lock();
        match ctx {
            ExecContext::Normal => st.global = Some(text.to_string()),
            ExecContext::OnBehalfOf(init) => {
                st.confined.insert(init.pkg().to_string(), text.to_string());
            }
        }
    }

    /// Gets the clip visible to a caller in the given context.
    ///
    /// Delegates see their confined instance if one exists, otherwise the
    /// global clip (initial state availability, U1 — data copied before
    /// confinement began remains usable).
    pub fn get(&self, ctx: &ExecContext) -> Option<String> {
        let st = self.state.lock();
        match ctx {
            ExecContext::Normal => st.global.clone(),
            ExecContext::OnBehalfOf(init) => {
                st.confined.get(init.pkg()).cloned().or_else(|| st.global.clone())
            }
        }
    }

    /// Discards the confined clipboard of an initiator (Clear-Vol).
    pub fn clear_confined(&self, init: &str) {
        self.state.lock().confined.remove(init);
    }
}

/// Bluetooth Manager Service: transmission policy only.
#[derive(Debug, Default)]
pub struct BluetoothService {
    sent: Mutex<Vec<Vec<u8>>>,
}

impl BluetoothService {
    /// Sends data over Bluetooth; denied for delegates.
    pub fn send(&self, ctx: &ExecContext, data: &[u8]) -> KernelResult<()> {
        if ctx.is_delegate() {
            return Err(KernelError::PermissionDenied);
        }
        self.sent.lock().push(data.to_vec());
        Ok(())
    }

    /// Payloads "sent" over Bluetooth so far (for tests).
    pub fn sent(&self) -> Vec<Vec<u8>> {
        self.sent.lock().clone()
    }
}

/// Telephony provider: SMS sending policy only.
#[derive(Debug, Default)]
pub struct SmsService {
    sent: Mutex<Vec<(String, String)>>,
}

impl SmsService {
    /// Sends an SMS; denied for delegates.
    pub fn send(&self, ctx: &ExecContext, to: &str, body: &str) -> KernelResult<()> {
        if ctx.is_delegate() {
            return Err(KernelError::PermissionDenied);
        }
        self.sent.lock().push((to.to_string(), body.to_string()));
        Ok(())
    }

    /// `(to, body)` messages "sent" so far (for tests).
    pub fn sent(&self) -> Vec<(String, String)> {
        self.sent.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid_kernel::AppId;

    fn delegate_of(init: &str) -> ExecContext {
        ExecContext::OnBehalfOf(AppId::new(init))
    }

    #[test]
    fn clipboard_is_confined_per_initiator() {
        let cb = ClipboardService::new();
        cb.set(&ExecContext::Normal, "global");
        // A delegate of email copies sensitive text.
        cb.set(&delegate_of("email"), "secret from Priv(email)");
        // The global clipboard is unchanged; normal apps cannot see it.
        assert_eq!(cb.get(&ExecContext::Normal).as_deref(), Some("global"));
        // The delegate (and co-delegates of email) read the confined clip.
        assert_eq!(cb.get(&delegate_of("email")).as_deref(), Some("secret from Priv(email)"));
        // Delegates of a different initiator see only the global clip.
        assert_eq!(cb.get(&delegate_of("dropbox")).as_deref(), Some("global"));
        cb.clear_confined("email");
        assert_eq!(cb.get(&delegate_of("email")).as_deref(), Some("global"));
    }

    #[test]
    fn delegates_inherit_global_clip_initially() {
        let cb = ClipboardService::new();
        cb.set(&ExecContext::Normal, "public text");
        assert_eq!(cb.get(&delegate_of("email")).as_deref(), Some("public text"));
    }

    #[test]
    fn bluetooth_denied_for_delegates() {
        let bt = BluetoothService::default();
        bt.send(&ExecContext::Normal, b"ok").unwrap();
        assert_eq!(
            bt.send(&delegate_of("email"), b"leak").unwrap_err(),
            KernelError::PermissionDenied
        );
        assert_eq!(bt.sent().len(), 1);
    }

    #[test]
    fn sms_denied_for_delegates() {
        let sms = SmsService::default();
        sms.send(&ExecContext::Normal, "+1555", "hi").unwrap();
        assert_eq!(
            sms.send(&delegate_of("email"), "+1555", "leak").unwrap_err(),
            KernelError::PermissionDenied
        );
        assert_eq!(sms.sent().len(), 1);
    }

    #[test]
    fn services_are_shared_across_threads() {
        let cb = ClipboardService::new();
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let cb = &cb;
                s.spawn(move |_| {
                    let ctx = delegate_of(&format!("init{t}"));
                    for i in 0..100 {
                        cb.set(&ctx, &format!("clip {t}.{i}"));
                        assert_eq!(cb.get(&ctx), Some(format!("clip {t}.{i}")));
                    }
                });
            }
        })
        .expect("threads join");
        // Each initiator kept its own confined instance.
        for t in 0..4 {
            assert_eq!(cb.get(&delegate_of(&format!("init{t}"))), Some(format!("clip {t}.99")));
        }
    }
}
