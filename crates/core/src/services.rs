//! Policy-enforcing system services (§6.2 item 5).
//!
//! Bluetooth Manager and Telephony (SMS) refuse to transmit for delegates
//! — both are network-equivalent exfiltration channels. The Clipboard
//! Service keeps **separate clipboard instances** per delegate context, so
//! a delegate cannot leak `Priv(A)`-derived text to the global clipboard
//! and neither can it read another initiator's confined clips.

use maxoid_kernel::{ExecContext, KernelError, KernelResult};
use std::collections::BTreeMap;

/// Clipboard service with per-context instances.
#[derive(Debug, Default)]
pub struct ClipboardService {
    global: Option<String>,
    /// Keyed by initiator: the clipboard shared by that initiator's
    /// delegates.
    confined: BTreeMap<String, String>,
}

impl ClipboardService {
    /// Creates an empty clipboard service.
    pub fn new() -> Self {
        ClipboardService::default()
    }

    /// Sets the clip for a caller in the given context.
    pub fn set(&mut self, ctx: &ExecContext, text: &str) {
        match ctx {
            ExecContext::Normal => self.global = Some(text.to_string()),
            ExecContext::OnBehalfOf(init) => {
                self.confined.insert(init.pkg().to_string(), text.to_string());
            }
        }
    }

    /// Gets the clip visible to a caller in the given context.
    ///
    /// Delegates see their confined instance if one exists, otherwise the
    /// global clip (initial state availability, U1 — data copied before
    /// confinement began remains usable).
    pub fn get(&self, ctx: &ExecContext) -> Option<&str> {
        match ctx {
            ExecContext::Normal => self.global.as_deref(),
            ExecContext::OnBehalfOf(init) => {
                self.confined.get(init.pkg()).map(String::as_str).or(self.global.as_deref())
            }
        }
    }

    /// Discards the confined clipboard of an initiator (Clear-Vol).
    pub fn clear_confined(&mut self, init: &str) {
        self.confined.remove(init);
    }
}

/// Bluetooth Manager Service: transmission policy only.
#[derive(Debug, Default)]
pub struct BluetoothService {
    /// Payloads "sent" over Bluetooth, for tests.
    pub sent: Vec<Vec<u8>>,
}

impl BluetoothService {
    /// Sends data over Bluetooth; denied for delegates.
    pub fn send(&mut self, ctx: &ExecContext, data: &[u8]) -> KernelResult<()> {
        if ctx.is_delegate() {
            return Err(KernelError::PermissionDenied);
        }
        self.sent.push(data.to_vec());
        Ok(())
    }
}

/// Telephony provider: SMS sending policy only.
#[derive(Debug, Default)]
pub struct SmsService {
    /// Messages "sent", for tests.
    pub sent: Vec<(String, String)>,
}

impl SmsService {
    /// Sends an SMS; denied for delegates.
    pub fn send(&mut self, ctx: &ExecContext, to: &str, body: &str) -> KernelResult<()> {
        if ctx.is_delegate() {
            return Err(KernelError::PermissionDenied);
        }
        self.sent.push((to.to_string(), body.to_string()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid_kernel::AppId;

    fn delegate_of(init: &str) -> ExecContext {
        ExecContext::OnBehalfOf(AppId::new(init))
    }

    #[test]
    fn clipboard_is_confined_per_initiator() {
        let mut cb = ClipboardService::new();
        cb.set(&ExecContext::Normal, "global");
        // A delegate of email copies sensitive text.
        cb.set(&delegate_of("email"), "secret from Priv(email)");
        // The global clipboard is unchanged; normal apps cannot see it.
        assert_eq!(cb.get(&ExecContext::Normal), Some("global"));
        // The delegate (and co-delegates of email) read the confined clip.
        assert_eq!(cb.get(&delegate_of("email")), Some("secret from Priv(email)"));
        // Delegates of a different initiator see only the global clip.
        assert_eq!(cb.get(&delegate_of("dropbox")), Some("global"));
        cb.clear_confined("email");
        assert_eq!(cb.get(&delegate_of("email")), Some("global"));
    }

    #[test]
    fn delegates_inherit_global_clip_initially() {
        let mut cb = ClipboardService::new();
        cb.set(&ExecContext::Normal, "public text");
        assert_eq!(cb.get(&delegate_of("email")), Some("public text"));
    }

    #[test]
    fn bluetooth_denied_for_delegates() {
        let mut bt = BluetoothService::default();
        bt.send(&ExecContext::Normal, b"ok").unwrap();
        assert_eq!(
            bt.send(&delegate_of("email"), b"leak").unwrap_err(),
            KernelError::PermissionDenied
        );
        assert_eq!(bt.sent.len(), 1);
    }

    #[test]
    fn sms_denied_for_delegates() {
        let mut sms = SmsService::default();
        sms.send(&ExecContext::Normal, "+1555", "hi").unwrap();
        assert_eq!(
            sms.send(&delegate_of("email"), "+1555", "leak").unwrap_err(),
            KernelError::PermissionDenied
        );
        assert_eq!(sms.sent.len(), 1);
    }
}
