//! The Maxoid manifest (§6.1).
//!
//! An app ships a manifest declaring, without code changes:
//!
//! 1. **Private directories on external storage** (§4.2): EXTDIR-relative
//!    directories that become part of the app's private state while other
//!    apps keep seeing (their own view of) the same path as public.
//! 2. **Intent filters for invokers**: a whitelist or blacklist deciding
//!    which outgoing intents invoke their target *as a delegate*, so
//!    legacy initiators get Maxoid protection without modification.

use crate::intent::Intent;

/// How manifest filters map onto the delegate decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterMode {
    /// Intents matching a filter invoke delegates; others are normal.
    #[default]
    Whitelist,
    /// Intents matching a filter are normal; all others invoke delegates.
    Blacklist,
}

/// One invocation filter: all present fields must match the intent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvocationFilter {
    /// Intent action to match (e.g. `android.intent.action.VIEW`).
    pub action: Option<String>,
    /// MIME type prefix to match (e.g. `application/`).
    pub mime_prefix: Option<String>,
}

impl InvocationFilter {
    /// A filter matching one action, any data type.
    pub fn action(action: &str) -> Self {
        InvocationFilter { action: Some(action.to_string()), mime_prefix: None }
    }

    /// Returns true if the intent matches this filter.
    pub fn matches(&self, intent: &Intent) -> bool {
        if let Some(a) = &self.action {
            if &intent.action != a {
                return false;
            }
        }
        if let Some(p) = &self.mime_prefix {
            match &intent.mime {
                Some(m) if m.starts_with(p.as_str()) => {}
                _ => return false,
            }
        }
        true
    }
}

/// An app's Maxoid manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaxoidManifest {
    /// EXTDIR-relative private directories (e.g. `data/com.dropbox`).
    pub private_ext_dirs: Vec<String>,
    /// Invocation filters.
    pub filters: Vec<InvocationFilter>,
    /// Whitelist or blacklist interpretation of `filters`.
    pub filter_mode: FilterMode,
}

impl MaxoidManifest {
    /// An empty manifest (stock Android behaviour).
    pub fn new() -> Self {
        MaxoidManifest::default()
    }

    /// Declares a private external directory (builder style).
    pub fn private_ext_dir(mut self, rel: &str) -> Self {
        self.private_ext_dirs.push(rel.trim_matches('/').to_string());
        self
    }

    /// Adds a filter (builder style).
    pub fn filter(mut self, f: InvocationFilter) -> Self {
        self.filters.push(f);
        self
    }

    /// Sets blacklist interpretation (builder style).
    pub fn blacklist(mut self) -> Self {
        self.filter_mode = FilterMode::Blacklist;
        self
    }

    /// Decides whether an outgoing intent should invoke a delegate, per
    /// the manifest filters. The intent's explicit Maxoid flag (checked by
    /// the Activity Manager) takes precedence over this.
    pub fn wants_delegate(&self, intent: &Intent) -> bool {
        if self.filters.is_empty() {
            return false;
        }
        let matched = self.filters.iter().any(|f| f.matches(intent));
        match self.filter_mode {
            FilterMode::Whitelist => matched,
            FilterMode::Blacklist => !matched,
        }
    }
}

/// Error from Maxoid-manifest XML parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError(pub String);

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed Maxoid manifest: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

impl MaxoidManifest {
    /// Parses the XML Maxoid manifest an app ships (§6.1):
    ///
    /// ```xml
    /// <maxoid-manifest>
    ///   <private-external-dir path="Dropbox"/>
    ///   <invocation-filters mode="whitelist">
    ///     <filter action="android.intent.action.VIEW" mime="application/"/>
    ///   </invocation-filters>
    /// </maxoid-manifest>
    /// ```
    ///
    /// The accepted grammar is deliberately small: empty-element tags with
    /// double-quoted attributes, comments ignored.
    pub fn from_xml(xml: &str) -> Result<MaxoidManifest, ManifestError> {
        let mut manifest = MaxoidManifest::new();
        let mut saw_root = false;
        for tag in iter_tags(xml) {
            let (name, attrs) = parse_tag(tag)?;
            match name.as_str() {
                "maxoid-manifest" | "/maxoid-manifest" | "/invocation-filters" => {
                    saw_root = true;
                }
                "private-external-dir" => {
                    let path = attr(&attrs, "path").ok_or_else(|| {
                        ManifestError("private-external-dir requires path".into())
                    })?;
                    manifest.private_ext_dirs.push(path.trim_matches('/').to_string());
                }
                "invocation-filters" => {
                    if let Some(mode) = attr(&attrs, "mode") {
                        manifest.filter_mode = match mode.as_str() {
                            "whitelist" => FilterMode::Whitelist,
                            "blacklist" => FilterMode::Blacklist,
                            other => {
                                return Err(ManifestError(format!("unknown filter mode {other:?}")))
                            }
                        };
                    }
                }
                "filter" => {
                    manifest.filters.push(InvocationFilter {
                        action: attr(&attrs, "action"),
                        mime_prefix: attr(&attrs, "mime"),
                    });
                }
                other => {
                    return Err(ManifestError(format!("unknown element <{other}>")));
                }
            }
        }
        if !saw_root {
            return Err(ManifestError("missing <maxoid-manifest> root".into()));
        }
        Ok(manifest)
    }
}

/// Yields the contents of each `<...>` tag, skipping comments.
fn iter_tags(xml: &str) -> impl Iterator<Item = &str> {
    let mut rest = xml;
    std::iter::from_fn(move || loop {
        let start = rest.find('<')?;
        let after = &rest[start + 1..];
        if let Some(comment) = after.strip_prefix("!--") {
            let end = comment.find("-->")?;
            rest = &comment[end + 3..];
            continue;
        }
        let end = after.find('>')?;
        let tag = &after[..end];
        rest = &after[end + 1..];
        return Some(tag.trim().trim_end_matches('/').trim_end());
    })
}

/// Splits a tag body into (name, attributes).
fn parse_tag(tag: &str) -> Result<(String, Vec<(String, String)>), ManifestError> {
    let mut parts = tag.splitn(2, char::is_whitespace);
    let name = parts.next().unwrap_or("").to_string();
    let mut attrs = Vec::new();
    if let Some(attr_str) = parts.next() {
        let mut rest = attr_str.trim();
        while !rest.is_empty() {
            let eq = rest
                .find('=')
                .ok_or_else(|| ManifestError(format!("attribute without value in <{tag}>")))?;
            let key = rest[..eq].trim().to_string();
            let after = rest[eq + 1..].trim_start();
            let quoted = after
                .strip_prefix('"')
                .ok_or_else(|| ManifestError(format!("unquoted attribute in <{tag}>")))?;
            let close = quoted
                .find('"')
                .ok_or_else(|| ManifestError(format!("unterminated attribute in <{tag}>")))?;
            attrs.push((key, quoted[..close].to_string()));
            rest = quoted[close + 1..].trim_start();
        }
    }
    Ok((name, attrs))
}

fn attr(attrs: &[(String, String)], key: &str) -> Option<String> {
    attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intent::Intent;

    fn view_pdf() -> Intent {
        Intent::new("android.intent.action.VIEW").with_mime("application/pdf")
    }

    #[test]
    fn whitelist_matches_invoke_delegates() {
        // The paper's Email case: "a filter saying that any intent from
        // Email with VIEW action ... is private".
        let m =
            MaxoidManifest::new().filter(InvocationFilter::action("android.intent.action.VIEW"));
        assert!(m.wants_delegate(&view_pdf()));
        assert!(!m.wants_delegate(&Intent::new("android.intent.action.SEND")));
    }

    #[test]
    fn blacklist_inverts() {
        let m = MaxoidManifest::new()
            .filter(InvocationFilter::action("android.intent.action.SEND"))
            .blacklist();
        assert!(!m.wants_delegate(&Intent::new("android.intent.action.SEND")));
        assert!(m.wants_delegate(&view_pdf()));
    }

    #[test]
    fn empty_manifest_never_delegates() {
        let m = MaxoidManifest::new();
        assert!(!m.wants_delegate(&view_pdf()));
        let m2 = MaxoidManifest::new().blacklist();
        assert!(!m2.wants_delegate(&view_pdf()));
    }

    #[test]
    fn mime_prefix_filters() {
        let f = InvocationFilter {
            action: Some("android.intent.action.VIEW".into()),
            mime_prefix: Some("application/".into()),
        };
        assert!(f.matches(&view_pdf()));
        let image = Intent::new("android.intent.action.VIEW").with_mime("image/png");
        assert!(!f.matches(&image));
        // Missing MIME never matches a MIME-constrained filter.
        assert!(!f.matches(&Intent::new("android.intent.action.VIEW")));
    }

    #[test]
    fn private_dirs_normalized() {
        let m = MaxoidManifest::new().private_ext_dir("/data/com.dropbox/");
        assert_eq!(m.private_ext_dirs, vec!["data/com.dropbox"]);
    }
    #[test]
    fn xml_manifest_dropbox_case() {
        // The §7.1 Dropbox manifest, as the paper describes it.
        let m = MaxoidManifest::from_xml(
            r#"<maxoid-manifest>
                 <!-- the sync directory is private -->
                 <private-external-dir path="/Dropbox/"/>
                 <invocation-filters mode="whitelist">
                   <filter action="android.intent.action.VIEW"/>
                 </invocation-filters>
               </maxoid-manifest>"#,
        )
        .unwrap();
        assert_eq!(m.private_ext_dirs, vec!["Dropbox"]);
        assert_eq!(m.filter_mode, FilterMode::Whitelist);
        assert!(m.wants_delegate(&Intent::new("android.intent.action.VIEW")));
        assert!(!m.wants_delegate(&Intent::new("android.intent.action.SEND")));
    }

    #[test]
    fn xml_manifest_blacklist_and_mime() {
        let m = MaxoidManifest::from_xml(
            r#"<maxoid-manifest>
                 <invocation-filters mode="blacklist">
                   <filter action="android.intent.action.SEND" mime="text/"/>
                 </invocation-filters>
               </maxoid-manifest>"#,
        )
        .unwrap();
        assert_eq!(m.filter_mode, FilterMode::Blacklist);
        let send_text = Intent::new("android.intent.action.SEND").with_mime("text/plain");
        assert!(!m.wants_delegate(&send_text));
        assert!(m.wants_delegate(&view_pdf()));
    }

    #[test]
    fn xml_manifest_rejects_garbage() {
        assert!(MaxoidManifest::from_xml("not xml at all").is_err());
        assert!(MaxoidManifest::from_xml("<maxoid-manifest><wat/></maxoid-manifest>").is_err());
        assert!(MaxoidManifest::from_xml(
            "<maxoid-manifest><private-external-dir/></maxoid-manifest>"
        )
        .is_err());
        assert!(MaxoidManifest::from_xml(
            r#"<maxoid-manifest><invocation-filters mode="sideways"/></maxoid-manifest>"#
        )
        .is_err());
    }

    #[test]
    fn xml_manifest_equivalent_to_builder() {
        let xml = MaxoidManifest::from_xml(
            r#"<maxoid-manifest>
                 <private-external-dir path="data/A"/>
                 <invocation-filters>
                   <filter action="VIEW"/>
                 </invocation-filters>
               </maxoid-manifest>"#,
        )
        .unwrap();
        let built = MaxoidManifest::new()
            .private_ext_dir("data/A")
            .filter(InvocationFilter::action("VIEW"));
        assert_eq!(xml, built);
    }
}
