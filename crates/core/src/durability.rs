//! Crash recovery: rebuilding the substrate from a journal.
//!
//! A journaled system ([`crate::MaxoidSystem::boot_journaled`]) logs two
//! kinds of state mutation:
//!
//! - **physical VFS records** under the [`VFS_COMPONENT`] component —
//!   every leaf store primitive (mkdir, write, unlink, ...) that
//!   succeeded on the live store;
//! - **logical SQL records** under `db.<authority>` components — the
//!   statement text and parameters of every successful mutating
//!   statement a provider database executed, which on replay rebuilds
//!   the full catalog (tables, indexes, views, triggers) and rows.
//!
//! [`recover`] replays the *committed* prefix of a log against a fresh
//! substrate. Records inside a journal transaction apply only if every
//! enclosing transaction committed before the crash, so a volatile-state
//! commit interrupted at any record boundary lands all-committed or
//! all-volatile — never between (the S2 invariant exercised by the crash
//! fault-injection tests). Snapshot records written by checkpointing
//! reset their component wholesale before later records re-apply.

use maxoid_journal::{committed_records, read_records, Record, TailState};
use maxoid_sqldb::{Database, FlattenPolicy};
use maxoid_vfs::Vfs;
use std::collections::BTreeMap;

/// Component name under which the VFS store journals itself.
pub const VFS_COMPONENT: &str = "vfs.store";

/// Prefix of provider-database component names (`db.<authority>`).
pub const DB_COMPONENT_PREFIX: &str = "db.";

/// Why replaying a log failed. A well-formed log produced by a journaled
/// system replays cleanly; these errors indicate a corrupted or
/// foreign log (torn tails are *not* errors — they truncate the log at
/// the last valid frame instead).
#[derive(Debug)]
pub enum RecoveryError {
    /// A VFS record failed to apply.
    Vfs(maxoid_vfs::VfsError),
    /// A SQL record failed to apply against the named component.
    Sql {
        /// The database component (`db.<authority>`).
        db: String,
        /// The underlying SQL error.
        error: maxoid_sqldb::SqlError,
    },
    /// A snapshot record named a component this version cannot restore.
    UnknownComponent(String),
    /// The log carries damage a torn write cannot explain (mid-log bit
    /// rot, bad magic, checksum failure on a complete frame). Committed
    /// history past `offset` may exist but cannot be trusted; recovering
    /// a silent prefix would violate S2, so recovery refuses.
    Corrupted {
        /// Byte offset of the damaged frame.
        offset: usize,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Vfs(e) => write!(f, "vfs replay: {e}"),
            RecoveryError::Sql { db, error } => write!(f, "sql replay into {db}: {error}"),
            RecoveryError::UnknownComponent(c) => write!(f, "unknown snapshot component: {c}"),
            RecoveryError::Corrupted { offset } => {
                write!(f, "journal corrupted at byte {offset}: committed history unrecoverable")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// The substrate rebuilt from a journal.
#[derive(Debug)]
pub struct RecoveredSubstrate {
    /// The file store, rebuilt record by record (or from a snapshot).
    pub vfs: Vfs,
    /// Provider databases keyed by full component name
    /// (`db.<authority>`).
    pub dbs: BTreeMap<String, Database>,
    /// Whether the log ended cleanly or with a torn (truncated) frame.
    pub tail: TailState,
    /// Number of committed records applied.
    pub applied: usize,
}

impl RecoveredSubstrate {
    /// Removes and returns the recovered database for a provider
    /// authority, or a fresh database if the journal never mentioned it
    /// (a crash before the provider's first flushed statement).
    pub fn take_db(&mut self, authority: &str) -> Database {
        self.dbs
            .remove(&format!("{DB_COMPONENT_PREFIX}{authority}"))
            .unwrap_or_else(|| Database::with_policy(FlattenPolicy::Sqlite386))
    }
}

/// Replays the committed prefix of `log_bytes` into a fresh substrate.
///
/// A *torn* tail — a truncated final frame, the only shape a crashed
/// append can leave — is tolerated: everything after it was never durable
/// and is discarded. Any other damage (bad magic, a checksum or decode
/// failure on a complete frame, valid frames beyond the bad region) is
/// corruption: committed history may lie past it, so recovery returns
/// [`RecoveryError::Corrupted`] instead of silently replaying a prefix.
/// Recovered databases use the default planner policy; the policy is an
/// execution-time setting, not journaled state.
pub fn recover(log_bytes: &[u8]) -> Result<RecoveredSubstrate, RecoveryError> {
    let log = read_records(log_bytes);
    if let TailState::Corrupted { offset } = log.tail {
        return Err(RecoveryError::Corrupted { offset });
    }
    let tail = log.tail.clone();
    let records = committed_records(&log);
    let vfs = Vfs::new();
    let mut dbs: BTreeMap<String, Database> = BTreeMap::new();
    let mut applied = 0;
    for rec in &records {
        match rec {
            Record::Vfs(v) => {
                vfs.with_store_mut(|s| s.apply_journal_record(v)).map_err(RecoveryError::Vfs)?;
            }
            Record::Sql { db, sql, params } => {
                let database = dbs
                    .entry(db.clone())
                    .or_insert_with(|| Database::with_policy(FlattenPolicy::Sqlite386));
                database
                    .apply_journal_sql(sql, params)
                    .map_err(|error| RecoveryError::Sql { db: db.clone(), error })?;
            }
            Record::Snapshot { component, payload } => {
                if component == VFS_COMPONENT {
                    vfs.with_store_mut(|s| s.restore_image(payload)).map_err(RecoveryError::Vfs)?;
                } else {
                    return Err(RecoveryError::UnknownComponent(component.clone()));
                }
            }
            // committed_records consumes transaction markers.
            Record::TxnBegin { .. } | Record::TxnCommit { .. } | Record::TxnRollback { .. } => {}
        }
        applied += 1;
    }
    Ok(RecoveredSubstrate { vfs, dbs, tail, applied })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid_journal::JournalHandle;
    use maxoid_vfs::{vpath, Mode, Uid};

    #[test]
    fn recover_rebuilds_vfs_and_db() {
        let j = JournalHandle::with_batch(1);
        let vfs = Vfs::new();
        vfs.attach_journal(j.sink());
        vfs.with_store_mut(|s| {
            s.mkdir_all(&vpath("/data"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(&vpath("/data/f"), b"hello", Uid(10_001), Mode::PRIVATE).unwrap();
        });
        let mut db = Database::new();
        db.set_journal(j.sink(), "db.test");
        db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT);").unwrap();
        db.execute("INSERT INTO t (v) VALUES (?)", &[maxoid_sqldb::Value::Text("x".into())])
            .unwrap();
        j.flush().unwrap();

        let mut rec = recover(&j.bytes()).unwrap();
        assert_eq!(rec.tail, TailState::Clean);
        let want = vfs.with_store(|s| s.dump_tree());
        let got = rec.vfs.with_store(|s| s.dump_tree());
        assert_eq!(want, got);
        let rdb = rec.take_db("test");
        let rs = rdb.query("SELECT v FROM t", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![maxoid_sqldb::Value::Text("x".into())]]);
        // An authority the log never mentioned comes back empty.
        assert!(rec.take_db("ghost").table_names().is_empty());
    }

    #[test]
    fn uncommitted_txn_is_discarded() {
        let j = JournalHandle::with_batch(1);
        let vfs = Vfs::new();
        vfs.attach_journal(j.sink());
        vfs.with_store_mut(|s| {
            s.write(&vpath("/keep"), b"k", Uid::ROOT, Mode::PUBLIC).unwrap();
        });
        let txn = j.begin_txn().unwrap();
        vfs.with_store_mut(|s| {
            s.write(&vpath("/lost"), b"l", Uid::ROOT, Mode::PUBLIC).unwrap();
        });
        // Crash before commit_txn: the flush makes TxnBegin + the write
        // durable, but without a commit record they must not replay.
        let _ = txn;
        j.flush().unwrap();
        let rec = recover(&j.bytes()).unwrap();
        rec.vfs.with_store(|s| {
            assert!(s.exists(&vpath("/keep")));
            assert!(!s.exists(&vpath("/lost")));
        });
    }
}
