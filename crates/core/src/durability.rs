//! Crash recovery: rebuilding the substrate from a journal.
//!
//! A journaled system ([`crate::MaxoidSystem::boot_journaled`]) logs two
//! kinds of state mutation:
//!
//! - **physical VFS records** under the [`VFS_COMPONENT`] component —
//!   every leaf store primitive (mkdir, write, unlink, ...) that
//!   succeeded on the live store;
//! - **logical SQL records** under `db.<authority>` components — the
//!   statement text and parameters of every successful mutating
//!   statement a provider database executed, which on replay rebuilds
//!   the full catalog (tables, indexes, views, triggers) and rows.
//!
//! [`recover`] replays the *committed* prefix of a log against a fresh
//! substrate. Records inside a journal transaction apply only if every
//! enclosing transaction committed before the crash, so a volatile-state
//! commit interrupted at any record boundary lands all-committed or
//! all-volatile — never between (the S2 invariant exercised by the crash
//! fault-injection tests). Snapshot records written by checkpointing
//! reset their component wholesale before later records re-apply.

use maxoid_journal::{committed_records, read_records, Record, TailState};
use maxoid_sqldb::{Database, FlattenPolicy};
use maxoid_vfs::Vfs;
use std::collections::BTreeMap;

/// Component name under which the VFS store journals itself.
pub const VFS_COMPONENT: &str = "vfs.store";

/// Prefix of provider-database component names (`db.<authority>`).
pub const DB_COMPONENT_PREFIX: &str = "db.";

/// Why replaying a log failed. A well-formed log produced by a journaled
/// system replays cleanly; these errors indicate a corrupted or
/// foreign log (torn tails are *not* errors — they truncate the log at
/// the last valid frame instead).
#[derive(Debug)]
pub enum RecoveryError {
    /// A VFS record failed to apply.
    Vfs(maxoid_vfs::VfsError),
    /// A SQL record failed to apply against the named component.
    Sql {
        /// The database component (`db.<authority>`).
        db: String,
        /// The underlying SQL error.
        error: maxoid_sqldb::SqlError,
    },
    /// A snapshot record named a component this version cannot restore.
    UnknownComponent(String),
    /// The log carries damage a torn write cannot explain (mid-log bit
    /// rot, bad magic, checksum failure on a complete frame). Committed
    /// history past `offset` may exist but cannot be trusted; recovering
    /// a silent prefix would violate S2, so recovery refuses.
    Corrupted {
        /// Byte offset of the damaged frame.
        offset: usize,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Vfs(e) => write!(f, "vfs replay: {e}"),
            RecoveryError::Sql { db, error } => write!(f, "sql replay into {db}: {error}"),
            RecoveryError::UnknownComponent(c) => write!(f, "unknown snapshot component: {c}"),
            RecoveryError::Corrupted { offset } => {
                write!(f, "journal corrupted at byte {offset}: committed history unrecoverable")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// The substrate rebuilt from a journal.
#[derive(Debug)]
pub struct RecoveredSubstrate {
    /// The file store, rebuilt record by record (or from a snapshot).
    pub vfs: Vfs,
    /// Provider databases keyed by full component name
    /// (`db.<authority>`).
    pub dbs: BTreeMap<String, Database>,
    /// Whether the log ended cleanly or with a torn (truncated) frame.
    pub tail: TailState,
    /// Number of committed records applied.
    pub applied: usize,
}

impl RecoveredSubstrate {
    /// Removes and returns the recovered database for a provider
    /// authority, or a fresh database if the journal never mentioned it
    /// (a crash before the provider's first flushed statement).
    pub fn take_db(&mut self, authority: &str) -> Database {
        self.dbs
            .remove(&format!("{DB_COMPONENT_PREFIX}{authority}"))
            .unwrap_or_else(|| Database::with_policy(FlattenPolicy::Sqlite386))
    }
}

/// Replays the committed prefix of `log_bytes` into a fresh substrate.
///
/// A *torn* tail — a truncated final frame, the only shape a crashed
/// append can leave — is tolerated: everything after it was never durable
/// and is discarded. Any other damage (bad magic, a checksum or decode
/// failure on a complete frame, valid frames beyond the bad region) is
/// corruption: committed history may lie past it, so recovery returns
/// [`RecoveryError::Corrupted`] instead of silently replaying a prefix.
/// Recovered databases use the default planner policy; the policy is an
/// execution-time setting, not journaled state.
pub fn recover(log_bytes: &[u8]) -> Result<RecoveredSubstrate, RecoveryError> {
    recover_into(log_bytes, Vfs::new())
}

/// Like [`recover`], but replays into a caller-provided (empty) VFS — the
/// cold-boot path hands in a block-backed store so recovered file payloads
/// spill to device pages instead of resident memory. The VFS must have no
/// journal sink attached yet; replay must not re-log itself.
pub fn recover_into(log_bytes: &[u8], vfs: Vfs) -> Result<RecoveredSubstrate, RecoveryError> {
    let log = read_records(log_bytes);
    if let TailState::Corrupted { offset } = log.tail {
        return Err(RecoveryError::Corrupted { offset });
    }
    let tail = log.tail.clone();
    let records = committed_records(&log);
    let mut dbs: BTreeMap<String, Database> = BTreeMap::new();
    let mut applied = 0;
    for rec in &records {
        match rec {
            Record::Vfs(v) => {
                vfs.with_store_mut(|s| s.apply_journal_record(v)).map_err(RecoveryError::Vfs)?;
            }
            Record::Sql { db, sql, params } => {
                let database = dbs
                    .entry(db.clone())
                    .or_insert_with(|| Database::with_policy(FlattenPolicy::Sqlite386));
                database
                    .apply_journal_sql(sql, params)
                    .map_err(|error| RecoveryError::Sql { db: db.clone(), error })?;
            }
            Record::Snapshot { component, payload } => {
                if component == VFS_COMPONENT {
                    vfs.with_store_mut(|s| s.restore_image(payload)).map_err(RecoveryError::Vfs)?;
                } else {
                    return Err(RecoveryError::UnknownComponent(component.clone()));
                }
            }
            Record::SnapshotDelta { component, payload } => {
                if component == VFS_COMPONENT {
                    vfs.with_store_mut(|s| s.apply_dirty_image(payload))
                        .map_err(RecoveryError::Vfs)?;
                } else {
                    return Err(RecoveryError::UnknownComponent(component.clone()));
                }
            }
            // A compaction marker records the LSN horizon the rewritten
            // log subsumes; the records that follow it *are* the state.
            Record::Compaction { .. } => {}
            // committed_records consumes transaction markers and path
            // dictionary definitions.
            Record::TxnBegin { .. }
            | Record::TxnCommit { .. }
            | Record::TxnRollback { .. }
            | Record::PathDef { .. } => {}
        }
        applied += 1;
    }
    Ok(RecoveredSubstrate { vfs, dbs, tail, applied })
}

/// Builds a compacted replacement for `log_bytes`: records that replay to
/// the *same* live state without the uptime history. Returns the records
/// plus the highest LSN they subsume (for the `Compaction` marker).
///
/// The rewrite is: one VFS snapshot of the recovered store; the committed
/// DDL statements in original order (CREATE/DROP/ALTER — catalog state
/// that rows alone cannot reproduce); then each database's row dump.
/// Row-churn history (INSERT/UPDATE/DELETE chains) collapses into the
/// final rows, which is what bounds recovery cost by live state.
pub fn compact_log(log_bytes: &[u8]) -> Result<(Vec<Record>, u64), RecoveryError> {
    let log = read_records(log_bytes);
    if let TailState::Corrupted { offset } = log.tail {
        return Err(RecoveryError::Corrupted { offset });
    }
    let upto = log.last_lsn();
    let sub = recover(log_bytes)?;
    let mut records = Vec::new();
    records.push(Record::Snapshot {
        component: VFS_COMPONENT.to_string(),
        payload: sub.vfs.with_store(|s| s.snapshot_image()),
    });
    for rec in committed_records(&log) {
        if let Record::Sql { ref sql, .. } = rec {
            if is_ddl(sql) {
                records.push(rec);
            }
        }
    }
    for (component, db) in &sub.dbs {
        for (sql, params) in db.dump_sql() {
            records.push(Record::Sql { db: component.clone(), sql, params });
        }
    }
    Ok((records, upto))
}

/// True for statements that define catalog state (tables, indexes, views,
/// triggers, rowid floors) rather than row contents. Compaction retains
/// these verbatim and re-derives everything else from live rows.
fn is_ddl(sql: &str) -> bool {
    let first = sql.trim_start().split_whitespace().next().unwrap_or("");
    first.eq_ignore_ascii_case("CREATE")
        || first.eq_ignore_ascii_case("DROP")
        || first.eq_ignore_ascii_case("ALTER")
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid_journal::JournalHandle;
    use maxoid_vfs::{vpath, Mode, Uid};

    #[test]
    fn recover_rebuilds_vfs_and_db() {
        let j = JournalHandle::with_batch(1);
        let vfs = Vfs::new();
        vfs.attach_journal(j.sink());
        vfs.with_store_mut(|s| {
            s.mkdir_all(&vpath("/data"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(&vpath("/data/f"), b"hello", Uid(10_001), Mode::PRIVATE).unwrap();
        });
        let mut db = Database::new();
        db.set_journal(j.sink(), "db.test");
        db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT);").unwrap();
        db.execute("INSERT INTO t (v) VALUES (?)", &[maxoid_sqldb::Value::Text("x".into())])
            .unwrap();
        j.flush().unwrap();

        let mut rec = recover(&j.bytes()).unwrap();
        assert_eq!(rec.tail, TailState::Clean);
        let want = vfs.with_store(|s| s.dump_tree());
        let got = rec.vfs.with_store(|s| s.dump_tree());
        assert_eq!(want, got);
        let rdb = rec.take_db("test");
        let rs = rdb.query("SELECT v FROM t", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![maxoid_sqldb::Value::Text("x".into())]]);
        // An authority the log never mentioned comes back empty.
        assert!(rec.take_db("ghost").table_names().is_empty());
    }

    #[test]
    fn compacted_log_recovers_identically() {
        let j = JournalHandle::with_batch(1);
        let vfs = Vfs::new();
        vfs.attach_journal(j.sink());
        vfs.with_store_mut(|s| {
            s.mkdir_all(&vpath("/a/b"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(&vpath("/a/b/f"), b"version 1", Uid(10_001), Mode::PRIVATE).unwrap();
            // Churn: overwrites and a delete, so history != live state.
            for i in 0..50 {
                let body = format!("version {i}, same file rewritten over and over");
                s.write(&vpath("/a/b/f"), body.as_bytes(), Uid(10_001), Mode::PRIVATE).unwrap();
            }
            s.write(&vpath("/a/tmp"), b"gone", Uid::ROOT, Mode::PUBLIC).unwrap();
            s.unlink(&vpath("/a/tmp")).unwrap();
        });
        let mut db = Database::new();
        db.set_journal(j.sink(), "db.contacts");
        db.execute_batch("CREATE TABLE t (_id INTEGER PRIMARY KEY, v TEXT);").unwrap();
        db.execute_batch("CREATE TABLE hid (v TEXT);").unwrap();
        for i in 0..10 {
            db.execute(
                "INSERT INTO t (v) VALUES (?)",
                &[maxoid_sqldb::Value::Text(format!("row{i}"))],
            )
            .unwrap();
            db.execute(
                "INSERT INTO hid (v) VALUES (?)",
                &[maxoid_sqldb::Value::Text(format!("h{i}"))],
            )
            .unwrap();
        }
        for i in 0..30 {
            db.execute(
                "UPDATE t SET v = ? WHERE _id = ?",
                &[
                    maxoid_sqldb::Value::Text(format!("rewrite{i}")),
                    maxoid_sqldb::Value::Integer(3),
                ],
            )
            .unwrap();
        }
        // Delete the max-rowid rows so compaction must reproduce the
        // allocation floor, not just the surviving keys.
        db.execute("DELETE FROM t WHERE _id > ?", &[maxoid_sqldb::Value::Integer(7)]).unwrap();
        db.execute("DELETE FROM hid WHERE v = ?", &[maxoid_sqldb::Value::Text("h9".into())])
            .unwrap();
        j.flush().unwrap();
        let full = j.bytes();

        let (records, upto) = compact_log(&full).unwrap();
        let j2 = JournalHandle::with_batch(1);
        j2.replace_with(&records, upto).unwrap();
        let compacted = j2.bytes();
        assert!(compacted.len() < full.len(), "compaction should shrink a churned log");

        let mut from_full = recover(&full).unwrap();
        let mut from_compacted = recover(&compacted).unwrap();
        assert_eq!(
            from_full.vfs.with_store(|s| s.dump_tree()),
            from_compacted.vfs.with_store(|s| s.dump_tree())
        );
        let (a, b) = (from_full.take_db("contacts"), from_compacted.take_db("contacts"));
        assert_eq!(a.table_names(), b.table_names());
        for table in ["t", "hid"] {
            let q = format!("SELECT * FROM {table}");
            assert_eq!(a.query(&q, &[]).unwrap().rows, b.query(&q, &[]).unwrap().rows);
        }
        // Allocation state survives: the dumps (rows + rowid floors)
        // agree, and fresh inserts pick the same keys.
        assert_eq!(a.dump_sql(), b.dump_sql());
        let mut a = a;
        let mut b = b;
        for db in [&mut a, &mut b] {
            db.execute("INSERT INTO t (v) VALUES (?)", &[maxoid_sqldb::Value::Text("new".into())])
                .unwrap();
        }
        let q = "SELECT _id FROM t WHERE v = 'new'";
        assert_eq!(a.query(q, &[]).unwrap().rows, b.query(q, &[]).unwrap().rows);
    }

    #[test]
    fn incremental_checkpoint_recovers() {
        let j = JournalHandle::with_batch(1);
        let vfs = Vfs::new();
        vfs.attach_journal(j.sink());
        vfs.with_store_mut(|s| {
            s.mkdir_all(&vpath("/data"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(&vpath("/data/a"), b"aaa", Uid(10_001), Mode::PRIVATE).unwrap();
        });
        // First delta covers everything dirty since boot.
        let d1 = vfs.with_store_mut(|s| s.take_dirty_image());
        j.checkpoint_delta(VFS_COMPONENT, d1).unwrap();
        vfs.with_store_mut(|s| {
            s.write(&vpath("/data/b"), b"bbb", Uid(10_001), Mode::PRIVATE).unwrap();
            s.write(&vpath("/data/a"), b"aaa2", Uid(10_001), Mode::PRIVATE).unwrap();
        });
        // Second delta covers only /data/b, /data/a and their parent.
        let d2 = vfs.with_store_mut(|s| s.take_dirty_image());
        j.checkpoint_delta(VFS_COMPONENT, d2).unwrap();
        // Tail records after the last checkpoint replay on top.
        vfs.with_store_mut(|s| {
            s.write(&vpath("/data/c"), b"ccc", Uid::ROOT, Mode::PUBLIC).unwrap();
        });
        j.flush().unwrap();

        let rec = recover(&j.bytes()).unwrap();
        assert_eq!(vfs.with_store(|s| s.dump_tree()), rec.vfs.with_store(|s| s.dump_tree()));
    }

    #[test]
    fn uncommitted_txn_is_discarded() {
        let j = JournalHandle::with_batch(1);
        let vfs = Vfs::new();
        vfs.attach_journal(j.sink());
        vfs.with_store_mut(|s| {
            s.write(&vpath("/keep"), b"k", Uid::ROOT, Mode::PUBLIC).unwrap();
        });
        let txn = j.begin_txn().unwrap();
        vfs.with_store_mut(|s| {
            s.write(&vpath("/lost"), b"l", Uid::ROOT, Mode::PUBLIC).unwrap();
        });
        // Crash before commit_txn: the flush makes TxnBegin + the write
        // durable, but without a commit record they must not replay.
        let _ = txn;
        j.flush().unwrap();
        let rec = recover(&j.bytes()).unwrap();
        rec.vfs.with_store(|s| {
            assert!(s.exists(&vpath("/keep")));
            assert!(!s.exists(&vpath("/lost")));
        });
    }
}
