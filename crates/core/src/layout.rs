//! Canonical storage layout: app-visible mount points and the
//! root-only backing-store locations that branches live in.
//!
//! App-visible paths (inside mount namespaces):
//!
//! - `/data/data/<pkg>` — internal private storage (Priv, or nPriv view).
//! - `/data/data/ppriv/<pkg>` — persistent private state (pPriv, §3.2).
//! - `/storage/sdcard` (`EXTDIR`) — external storage.
//! - `EXTDIR/tmp` — the initiator's view of its volatile files (Vol).
//!
//! Backing-store host paths (only root / Zygote's branch manager touches
//! these; apps cannot reach them because no mount exposes them):
//!
//! - `/backing/internal/<pkg>` — Priv(pkg).
//! - `/backing/internal_tmp/<init>` — volatile copies of Priv(init) made
//!   by its delegates.
//! - `/backing/npriv/<init>/<pkg>` — writable overlay of nPriv(pkg^init).
//! - `/backing/ppriv/<init>/<pkg>` — pPriv(pkg^init).
//! - `/backing/ext/pub` — the public external-storage branch.
//! - `/backing/ext/apps/<pkg>` — private external-storage branches.
//! - `/backing/ext/apps/<pkg>/tmp` — Vol(pkg) external files.
//! - `/backing/ext/deleg/<pkg>--<init>` — a delegate's writes to its own
//!   private external dirs (the paper's `B-A` branch).

use maxoid_vfs::{vpath, VPath, VfsResult};

/// The external storage mount point (the paper's `EXTDIR`).
pub fn extdir() -> VPath {
    vpath("/storage/sdcard")
}

/// App-visible internal private directory of `pkg`.
pub fn internal_dir(pkg: &str) -> VfsResult<VPath> {
    vpath("/data/data").join(pkg)
}

/// App-visible persistent private state directory of `pkg` (§6.1).
pub fn ppriv_dir(pkg: &str) -> VfsResult<VPath> {
    vpath("/data/data/ppriv").join(pkg)
}

/// App-visible volatile files directory for an initiator (`EXTDIR/tmp`).
pub fn ext_tmp_dir() -> VPath {
    vpath("/storage/sdcard/tmp")
}

/// Backing: Priv(pkg) internal storage.
pub fn back_internal(pkg: &str) -> VfsResult<VPath> {
    vpath("/backing/internal").join(pkg)
}

/// Backing: volatile copies of initiator-internal files written by
/// delegates (part of Vol(init)).
pub fn back_internal_tmp(init: &str) -> VfsResult<VPath> {
    vpath("/backing/internal_tmp").join(init)
}

/// Backing: writable overlay for nPriv(pkg^init).
pub fn back_npriv(init: &str, pkg: &str) -> VfsResult<VPath> {
    vpath("/backing/npriv").join(init)?.join(pkg)
}

/// Backing: pPriv(pkg^init).
pub fn back_ppriv(init: &str, pkg: &str) -> VfsResult<VPath> {
    vpath("/backing/ppriv").join(init)?.join(pkg)
}

/// Backing: the shared public external-storage branch.
pub fn back_ext_pub() -> VPath {
    vpath("/backing/ext/pub")
}

/// Backing: an app's private external-storage branch root. Its declared
/// private dirs live below it at their EXTDIR-relative paths.
pub fn back_ext_app(pkg: &str) -> VfsResult<VPath> {
    vpath("/backing/ext/apps").join(pkg)
}

/// Backing: Vol(init) external files (`init/tmp` in Table 2).
pub fn back_ext_tmp(init: &str) -> VfsResult<VPath> {
    back_ext_app(init)?.join("tmp")
}

/// Backing: the `B-A` branch — delegate `pkg` (running for `init`) writes
/// to its own private external dirs land here, visible to neither `init`
/// nor normal `pkg` (Table 2).
pub fn back_ext_delegate(pkg: &str, init: &str) -> VfsResult<VPath> {
    vpath("/backing/ext/deleg").join(&format!("{pkg}--{init}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_visible_paths() {
        assert_eq!(internal_dir("com.app").unwrap().as_str(), "/data/data/com.app");
        assert_eq!(ppriv_dir("com.app").unwrap().as_str(), "/data/data/ppriv/com.app");
        assert_eq!(ext_tmp_dir().as_str(), "/storage/sdcard/tmp");
        assert!(ext_tmp_dir().starts_with(&extdir()));
    }

    #[test]
    fn backing_paths_are_disjoint_per_principal() {
        let a = back_npriv("init", "app").unwrap();
        let b = back_npriv("other", "app").unwrap();
        assert_ne!(a, b);
        assert_ne!(back_ppriv("i", "x").unwrap(), back_npriv("i", "x").unwrap());
        assert_eq!(back_ext_delegate("B", "A").unwrap().as_str(), "/backing/ext/deleg/B--A");
        assert_eq!(back_ext_tmp("A").unwrap().as_str(), "/backing/ext/apps/A/tmp");
    }

    #[test]
    fn backing_is_not_under_app_visible_roots() {
        for p in [back_internal("x").unwrap(), back_ext_pub(), back_ext_tmp("x").unwrap()] {
            assert!(!p.starts_with(&extdir()));
            assert!(!p.starts_with(&vpath("/data/data")));
        }
    }
}
