//! Evolution of a delegate's private state over time (§3.2, Figure 2).
//!
//! When `B^A` starts, its normal private view `nPriv(B^A)` is a
//! copy-on-write fork of `Priv(B)` (the union mount's writable overlay).
//! When `B` later runs normally and updates `Priv(B)`, the fork and the
//! base diverge and cannot be merged; Maxoid chooses to **discard** the
//! old fork and re-fork from the fresh `Priv(B)` — the user's new
//! preferences win, and `Priv(B)` may contain data fetched from the
//! network that `B^A` could not obtain itself. Consecutive delegate runs
//! keep the fork.
//!
//! Persistent private state `pPriv(B^A)` survives regardless (until the
//! initiator clears it) and is isolated per initiator.
//!
//! Divergence detection: the fork records the maximum logical mtime of the
//! `Priv(B)` tree; a higher maximum at the next delegate start means `B`
//! wrote to its private state in between.

use crate::layout;
use maxoid_vfs::{VPath, Vfs, VfsResult};
use std::collections::BTreeMap;

/// One fork record: who forked from what, at which base version.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fork {
    /// Max mtime of Priv(pkg) at fork time.
    base_mark: u64,
}

/// Tracks nPriv forks and implements the discard-if-diverged policy.
#[derive(Debug, Default)]
pub struct PrivateStateManager {
    /// Keyed by (initiator, delegate app).
    forks: BTreeMap<(String, String), Fork>,
}

/// What happened to `nPriv(B^A)` when a delegate started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkOutcome {
    /// First delegate run for this (initiator, app): fresh fork.
    FreshFork,
    /// `Priv(B)` unchanged since the last delegate run: the old overlay
    /// is kept (consecutive invocations keep state).
    Kept,
    /// `Priv(B)` diverged: the old overlay was discarded and re-forked.
    DiscardedAndReforked,
}

impl PrivateStateManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        PrivateStateManager::default()
    }

    /// Computes the maximum logical mtime in a backing tree (0 when the
    /// tree does not exist or is empty).
    fn tree_mark(vfs: &Vfs, root: &VPath) -> u64 {
        fn walk(s: &maxoid_vfs::Store, p: &VPath, acc: &mut u64) {
            if let Ok(meta) = s.stat(p) {
                *acc = (*acc).max(meta.mtime);
                if meta.is_dir {
                    if let Ok(entries) = s.read_dir(p) {
                        for e in entries {
                            if let Ok(child) = p.join(&e.name) {
                                walk(s, &child, acc);
                            }
                        }
                    }
                }
            }
        }
        vfs.with_store(|s| {
            let mut acc = 0;
            walk(s, root, &mut acc);
            acc
        })
    }

    /// Called when `pkg` is about to start as a delegate of `init`:
    /// applies the Figure 2 policy to `nPriv(pkg^init)` and returns what
    /// happened. The overlay directory is wiped on discard.
    pub fn on_delegate_start(
        &mut self,
        vfs: &Vfs,
        init: &str,
        pkg: &str,
    ) -> VfsResult<ForkOutcome> {
        let base = layout::back_internal(pkg)?;
        let overlay = layout::back_npriv(init, pkg)?;
        let mark = Self::tree_mark(vfs, &base);
        let key = (init.to_string(), pkg.to_string());
        match self.forks.get(&key) {
            None => {
                self.forks.insert(key, Fork { base_mark: mark });
                Ok(ForkOutcome::FreshFork)
            }
            Some(f) if f.base_mark == mark => Ok(ForkOutcome::Kept),
            Some(_) => {
                // Priv(B) diverged: discard the overlay, re-fork.
                vfs.with_store_mut(|s| {
                    if s.exists(&overlay) {
                        s.remove_all(&overlay)?;
                    }
                    s.mkdir_all(&overlay, maxoid_vfs::Uid::ROOT, maxoid_vfs::Mode::PUBLIC)
                })?;
                self.forks.insert(key, Fork { base_mark: mark });
                Ok(ForkOutcome::DiscardedAndReforked)
            }
        }
    }

    /// Clears all private forks created on behalf of `init`: both nPriv
    /// overlays and pPriv directories of every app `x` (the launcher's
    /// Clear-Priv gesture, §6.3: "clear `Priv(x^A)` for all x").
    pub fn clear_initiator(&mut self, vfs: &Vfs, init: &str) -> VfsResult<usize> {
        let mut cleared = 0;
        for root in [
            maxoid_vfs::vpath("/backing/npriv").join(init)?,
            maxoid_vfs::vpath("/backing/ppriv").join(init)?,
        ] {
            vfs.with_store_mut(|s| -> VfsResult<()> {
                if s.exists(&root) {
                    s.remove_all(&root)?;
                }
                Ok(())
            })?;
        }
        let before = self.forks.len();
        self.forks.retain(|(i, _), _| i != init);
        cleared += before - self.forks.len();
        Ok(cleared)
    }

    /// Returns true if a fork is currently tracked for (init, pkg).
    pub fn has_fork(&self, init: &str, pkg: &str) -> bool {
        self.forks.contains_key(&(init.to_string(), pkg.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid_vfs::{vpath, Mode, Uid};

    fn setup(pkg: &str) -> Vfs {
        let vfs = Vfs::new();
        vfs.with_store_mut(|s| {
            s.mkdir_all(&layout::back_internal(pkg).unwrap(), Uid(10_001), Mode::PRIVATE).unwrap();
            s.write(
                &layout::back_internal(pkg).unwrap().join("db").unwrap(),
                b"v0",
                Uid(10_001),
                Mode::PRIVATE,
            )
            .unwrap();
        });
        vfs
    }

    /// Replays the Figure 2 sequence of invocations and checks the fork
    /// decisions at each step.
    #[test]
    fn figure2_sequence() {
        let vfs = setup("B");
        let mut mgr = PrivateStateManager::new();

        // B^A starts: fresh fork of nPriv.
        assert_eq!(mgr.on_delegate_start(&vfs, "A", "B").unwrap(), ForkOutcome::FreshFork);
        // B^A writes into its overlay.
        vfs.with_store_mut(|s| {
            s.mkdir_all(&vpath("/backing/npriv/A/B"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(&vpath("/backing/npriv/A/B/recent"), b"att1", Uid(10_001), Mode::PRIVATE)
                .unwrap();
        });

        // Consecutive delegate run with Priv(B) untouched: overlay kept.
        assert_eq!(mgr.on_delegate_start(&vfs, "A", "B").unwrap(), ForkOutcome::Kept);
        assert!(vfs.with_store(|s| s.exists(&vpath("/backing/npriv/A/B/recent"))));

        // B runs normally and updates Priv(B): divergence.
        vfs.with_store_mut(|s| {
            s.write(&vpath("/backing/internal/B/db"), b"v1", Uid(10_001), Mode::PRIVATE).unwrap();
        });

        // Next delegate run: old overlay discarded, re-forked.
        assert_eq!(
            mgr.on_delegate_start(&vfs, "A", "B").unwrap(),
            ForkOutcome::DiscardedAndReforked
        );
        assert!(!vfs.with_store(|s| s.exists(&vpath("/backing/npriv/A/B/recent"))));
    }

    #[test]
    fn forks_are_per_initiator() {
        let vfs = setup("B");
        let mut mgr = PrivateStateManager::new();
        assert_eq!(mgr.on_delegate_start(&vfs, "A", "B").unwrap(), ForkOutcome::FreshFork);
        assert_eq!(mgr.on_delegate_start(&vfs, "C", "B").unwrap(), ForkOutcome::FreshFork);
        assert!(mgr.has_fork("A", "B"));
        assert!(mgr.has_fork("C", "B"));
        // A divergence discards both independently at their next start.
        vfs.with_store_mut(|s| {
            s.write(&vpath("/backing/internal/B/db"), b"v1", Uid(10_001), Mode::PRIVATE).unwrap();
        });
        assert_eq!(
            mgr.on_delegate_start(&vfs, "A", "B").unwrap(),
            ForkOutcome::DiscardedAndReforked
        );
        assert_eq!(
            mgr.on_delegate_start(&vfs, "C", "B").unwrap(),
            ForkOutcome::DiscardedAndReforked
        );
    }

    #[test]
    fn clear_initiator_removes_npriv_and_ppriv() {
        let vfs = setup("B");
        let mut mgr = PrivateStateManager::new();
        mgr.on_delegate_start(&vfs, "A", "B").unwrap();
        vfs.with_store_mut(|s| {
            s.mkdir_all(&vpath("/backing/ppriv/A/B"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(&vpath("/backing/ppriv/A/B/bookmarks"), b"x", Uid(10_001), Mode::PRIVATE)
                .unwrap();
        });
        let n = mgr.clear_initiator(&vfs, "A").unwrap();
        assert_eq!(n, 1);
        assert!(!mgr.has_fork("A", "B"));
        assert!(!vfs.with_store(|s| s.exists(&vpath("/backing/ppriv/A/B/bookmarks"))));
    }

    #[test]
    fn overlay_writes_do_not_trigger_divergence() {
        // Only writes to Priv(B) itself cause a discard; the overlay's own
        // growth must not.
        let vfs = setup("B");
        let mut mgr = PrivateStateManager::new();
        mgr.on_delegate_start(&vfs, "A", "B").unwrap();
        vfs.with_store_mut(|s| {
            s.mkdir_all(&vpath("/backing/npriv/A/B"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(&vpath("/backing/npriv/A/B/x"), b"1", Uid(10_001), Mode::PRIVATE).unwrap();
        });
        assert_eq!(mgr.on_delegate_start(&vfs, "A", "B").unwrap(), ForkOutcome::Kept);
    }
}
