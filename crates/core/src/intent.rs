//! Intents: Android's high-level inter-app invocation messages (§3.4).

use maxoid_kernel::AppId;
use std::collections::BTreeMap;

/// Maxoid's new intent flag (§6.1): the invoked app becomes a delegate of
/// the sender.
pub const FLAG_START_AS_DELEGATE: u32 = 1 << 0;
/// Android's one-shot URI read grant.
pub const FLAG_GRANT_READ_URI_PERMISSION: u32 = 1 << 1;

/// An intent describing an invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Intent {
    /// The action, e.g. `android.intent.action.VIEW`.
    pub action: String,
    /// Data reference: a file path or a `content://` URI.
    pub data: Option<String>,
    /// MIME type of the data.
    pub mime: Option<String>,
    /// String extras.
    pub extras: BTreeMap<String, String>,
    /// Flags (see the `FLAG_*` constants).
    pub flags: u32,
    /// Explicit target component, when the sender names one.
    pub target: Option<AppId>,
}

impl Intent {
    /// Creates an intent with an action.
    pub fn new(action: &str) -> Self {
        Intent { action: action.to_string(), ..Default::default() }
    }

    /// Sets the data reference (builder style).
    pub fn with_data(mut self, data: &str) -> Self {
        self.data = Some(data.to_string());
        self
    }

    /// Sets the MIME type (builder style).
    pub fn with_mime(mut self, mime: &str) -> Self {
        self.mime = Some(mime.to_string());
        self
    }

    /// Adds an extra (builder style).
    pub fn with_extra(mut self, key: &str, value: &str) -> Self {
        self.extras.insert(key.to_string(), value.to_string());
        self
    }

    /// Sets an explicit target (builder style).
    pub fn with_target(mut self, app: &str) -> Self {
        self.target = Some(AppId::new(app));
        self
    }

    /// Sets the Maxoid delegate flag (builder style).
    pub fn as_delegate(mut self) -> Self {
        self.flags |= FLAG_START_AS_DELEGATE;
        self
    }

    /// Sets the read-grant flag (builder style).
    pub fn grant_read(mut self) -> Self {
        self.flags |= FLAG_GRANT_READ_URI_PERMISSION;
        self
    }

    /// True when the Maxoid delegate flag is set.
    pub fn delegate_requested(&self) -> bool {
        self.flags & FLAG_START_AS_DELEGATE != 0
    }

    /// True when the sender grants one-shot read on the data URI.
    pub fn read_granted(&self) -> bool {
        self.flags & FLAG_GRANT_READ_URI_PERMISSION != 0
    }
}

/// An intent filter an app registers at install time (for resolution; not
/// to be confused with the Maxoid manifest's invocation filters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppIntentFilter {
    /// Accepted action.
    pub action: String,
    /// Accepted MIME prefix; `None` accepts any.
    pub mime_prefix: Option<String>,
}

impl AppIntentFilter {
    /// Creates a filter for an action and optional MIME prefix.
    pub fn new(action: &str, mime_prefix: Option<&str>) -> Self {
        AppIntentFilter {
            action: action.to_string(),
            mime_prefix: mime_prefix.map(|s| s.to_string()),
        }
    }

    /// Returns true if this filter accepts the intent.
    pub fn accepts(&self, intent: &Intent) -> bool {
        if self.action != intent.action {
            return false;
        }
        match (&self.mime_prefix, &intent.mime) {
            (None, _) => true,
            (Some(p), Some(m)) => m.starts_with(p.as_str()),
            (Some(_), None) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_flags() {
        let i = Intent::new("android.intent.action.VIEW")
            .with_data("content://x/1")
            .with_mime("application/pdf")
            .with_extra("k", "v")
            .as_delegate()
            .grant_read();
        assert!(i.delegate_requested());
        assert!(i.read_granted());
        assert_eq!(i.extras.get("k").map(String::as_str), Some("v"));
        let plain = Intent::new("a");
        assert!(!plain.delegate_requested());
        assert!(!plain.read_granted());
    }

    #[test]
    fn filter_accepts_by_action_and_mime() {
        let f = AppIntentFilter::new("android.intent.action.VIEW", Some("application/"));
        assert!(f.accepts(&Intent::new("android.intent.action.VIEW").with_mime("application/pdf")));
        assert!(!f.accepts(&Intent::new("android.intent.action.VIEW").with_mime("image/png")));
        assert!(!f.accepts(&Intent::new("android.intent.action.VIEW")));
        let any = AppIntentFilter::new("android.intent.action.VIEW", None);
        assert!(any.accepts(&Intent::new("android.intent.action.VIEW")));
    }
}
