//! Volatile state management for files (§3.3).
//!
//! Everything an initiator's delegates write to their view of public state
//! lands in `Vol(A)`: the external tmp branch, the internal tmp branch,
//! and the providers' delta tables (handled by the resolver). This module
//! covers the file side: enumerating `Vol(A)`, selectively **committing**
//! a change (copying it to a non-volatile place), and **discarding** the
//! whole volatile state "conveniently because of the fixed naming
//! pattern".

use crate::layout;
use crate::manifest::MaxoidManifest;
use maxoid_vfs::{Mode, Uid, VPath, Vfs, VfsError, VfsResult};

/// A volatile file entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolatileEntry {
    /// Path relative to EXTDIR (external entries) or to the initiator's
    /// internal dir (internal entries).
    pub rel: String,
    /// True for internal-storage entries.
    pub internal: bool,
    /// Size in bytes.
    pub size: u64,
}

/// Manages the file portion of `Vol(A)`.
#[derive(Debug, Clone)]
pub struct VolatileState {
    vfs: Vfs,
}

impl VolatileState {
    /// Creates the manager over the shared VFS.
    pub fn new(vfs: Vfs) -> Self {
        VolatileState { vfs }
    }

    fn walk(
        vfs: &Vfs,
        root: &VPath,
        internal: bool,
        out: &mut Vec<VolatileEntry>,
    ) -> VfsResult<()> {
        fn rec(
            s: &maxoid_vfs::Store,
            root: &VPath,
            p: &VPath,
            internal: bool,
            out: &mut Vec<VolatileEntry>,
        ) -> VfsResult<()> {
            let meta = s.stat(p)?;
            if meta.is_dir {
                for e in s.read_dir(p)? {
                    let child = p.join(&e.name)?;
                    rec(s, root, &child, internal, out)?;
                }
            } else if let Some(rel) = p.strip_prefix(root) {
                out.push(VolatileEntry { rel: rel.to_string(), internal, size: meta.size });
            }
            Ok(())
        }
        vfs.with_store(|s| match s.stat(root) {
            // A tmp root that was never created is legitimately empty;
            // every other error (a file where a directory should be, a
            // vanished child mid-walk) must reach the caller rather than
            // silently shortening the Vol(A) listing.
            Err(VfsError::NotFound) => Ok(()),
            Err(e) => Err(e),
            Ok(_) => rec(s, root, root, internal, out),
        })
    }

    /// Enumerates all volatile files of `init`.
    pub fn list(&self, init: &str) -> VfsResult<Vec<VolatileEntry>> {
        let mut out = Vec::new();
        Self::walk(&self.vfs, &layout::back_ext_tmp(init)?, false, &mut out)?;
        Self::walk(&self.vfs, &layout::back_internal_tmp(init)?, true, &mut out)?;
        Ok(out)
    }

    /// Commits one external volatile file: copies it from `Vol(init)` to
    /// its non-volatile place — the initiator's private external branch
    /// when the path falls under a declared private dir, the public
    /// branch otherwise. The volatile copy is kept until Clear-Vol.
    pub fn commit_external(
        &self,
        init: &str,
        manifest: &MaxoidManifest,
        rel: &str,
    ) -> VfsResult<()> {
        let src = layout::back_ext_tmp(init)?.join(rel)?;
        let private = manifest
            .private_ext_dirs
            .iter()
            .any(|d| rel == d.as_str() || rel.starts_with(&format!("{d}/")));
        let dst = if private {
            layout::back_ext_app(init)?.join(rel)?
        } else {
            layout::back_ext_pub().join(rel)?
        };
        self.vfs.with_store_mut(|s| {
            if !s.exists(&src) {
                return Err(VfsError::NotFound);
            }
            if let Some(parent) = dst.parent() {
                s.mkdir_all(&parent, Uid::ROOT, Mode::PUBLIC)?;
            }
            s.copy_file(&src, &dst)
        })
    }

    /// Commits one internal volatile file into the initiator's private
    /// internal storage.
    pub fn commit_internal(&self, init: &str, rel: &str) -> VfsResult<()> {
        let src = layout::back_internal_tmp(init)?.join(rel)?;
        let dst = layout::back_internal(init)?.join(rel)?;
        self.vfs.with_store_mut(|s| {
            if !s.exists(&src) {
                return Err(VfsError::NotFound);
            }
            let owner = s.stat(&layout::back_internal(init)?)?.owner;
            if let Some(parent) = dst.parent() {
                s.mkdir_all(&parent, owner, Mode::PRIVATE)?;
            }
            let data = s.read(&src)?;
            s.write(&dst, &data, owner, Mode::PRIVATE)?;
            Ok(())
        })
    }

    /// Discards the entire file portion of `Vol(init)`.
    pub fn clear(&self, init: &str) -> VfsResult<usize> {
        let removed = self.list(init)?.len();
        for root in [layout::back_ext_tmp(init)?, layout::back_internal_tmp(init)?] {
            self.vfs.with_store_mut(|s| -> VfsResult<()> {
                if s.exists(&root) {
                    s.remove_all(&root)?;
                }
                s.mkdir_all(&root, Uid::ROOT, Mode::PUBLIC)
            })?;
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid_vfs::vpath;

    fn setup() -> (Vfs, VolatileState) {
        let vfs = Vfs::new();
        vfs.with_store_mut(|s| {
            for d in [
                "/backing/ext/pub",
                "/backing/ext/apps/A/tmp",
                "/backing/internal/A",
                "/backing/internal_tmp/A",
            ] {
                s.mkdir_all(&vpath(d), Uid::ROOT, Mode::PUBLIC).unwrap();
            }
            s.chown_chmod(&vpath("/backing/internal/A"), Uid(10_001), Mode::PRIVATE).unwrap();
        });
        let v = VolatileState::new(vfs.clone());
        (vfs, v)
    }

    fn seed_volatile(vfs: &Vfs) {
        vfs.with_store_mut(|s| {
            s.mkdir_all(&vpath("/backing/ext/apps/A/tmp/data/A"), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(
                &vpath("/backing/ext/apps/A/tmp/data/A/edited.txt"),
                b"edited",
                Uid(10_002),
                Mode::PUBLIC,
            )
            .unwrap();
            s.write(&vpath("/backing/ext/apps/A/tmp/side.log"), b"side", Uid(10_002), Mode::PUBLIC)
                .unwrap();
            s.write(
                &vpath("/backing/internal_tmp/A/att.pdf"),
                b"modified",
                Uid(10_002),
                Mode::PUBLIC,
            )
            .unwrap();
        });
    }

    #[test]
    fn lists_both_storages() {
        let (vfs, v) = setup();
        seed_volatile(&vfs);
        let mut entries = v.list("A").unwrap();
        entries.sort_by(|a, b| a.rel.cmp(&b.rel));
        let rels: Vec<(&str, bool)> =
            entries.iter().map(|e| (e.rel.as_str(), e.internal)).collect();
        assert_eq!(
            rels,
            vec![("att.pdf", true), ("data/A/edited.txt", false), ("side.log", false)]
        );
    }

    #[test]
    fn commit_routes_private_vs_public() {
        let (vfs, v) = setup();
        seed_volatile(&vfs);
        let manifest = MaxoidManifest::new().private_ext_dir("data/A");
        // A file under the declared private dir commits into A's branch.
        v.commit_external("A", &manifest, "data/A/edited.txt").unwrap();
        vfs.with_store(|s| {
            assert_eq!(s.read(&vpath("/backing/ext/apps/A/data/A/edited.txt")).unwrap(), b"edited");
            assert!(!s.exists(&vpath("/backing/ext/pub/data/A/edited.txt")));
        });
        // A file outside commits to public.
        v.commit_external("A", &manifest, "side.log").unwrap();
        vfs.with_store(|s| {
            assert_eq!(s.read(&vpath("/backing/ext/pub/side.log")).unwrap(), b"side");
        });
        // Missing files error.
        assert_eq!(v.commit_external("A", &manifest, "nope").err(), Some(VfsError::NotFound));
    }

    #[test]
    fn commit_internal_adopts_owner() {
        let (vfs, v) = setup();
        seed_volatile(&vfs);
        v.commit_internal("A", "att.pdf").unwrap();
        vfs.with_store(|s| {
            let meta = s.stat(&vpath("/backing/internal/A/att.pdf")).unwrap();
            assert_eq!(meta.owner, Uid(10_001));
            assert_eq!(meta.mode, Mode::PRIVATE);
            assert_eq!(s.read(&vpath("/backing/internal/A/att.pdf")).unwrap(), b"modified");
        });
    }

    #[test]
    fn clear_empties_volatile_state() {
        let (vfs, v) = setup();
        seed_volatile(&vfs);
        let n = v.clear("A").unwrap();
        assert_eq!(n, 3);
        assert!(v.list("A").unwrap().is_empty());
        // The tmp roots still exist (fresh and empty) for future runs.
        vfs.with_store(|s| {
            assert!(s.exists(&vpath("/backing/ext/apps/A/tmp")));
            assert!(s.exists(&vpath("/backing/internal_tmp/A")));
        });
    }
}
