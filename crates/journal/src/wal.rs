//! The write-ahead log: frame format, group commit, transactions, and the
//! `JournalSink` trait the rest of the stack emits through.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! +------+---------+---------+---------+------------------+
//! | 0xA7 | lsn u64 | len u32 | crc u32 | payload (len B)  |
//! +------+---------+---------+---------+------------------+
//! ```
//!
//! `crc` is the IEEE CRC-32 of `lsn || len || payload` (header fields in
//! their little-endian encoding), so a flipped bit anywhere in the frame —
//! including the LSN or length — fails verification instead of being
//! replayed with a wrong header. Records are buffered and
//! flushed to storage in groups of `batch` records (group commit);
//! transaction commit/rollback and snapshot records force a flush so the
//! commit decision is always durable. Only flushed bytes survive a crash —
//! [`Journal::bytes`] deliberately exposes the durable prefix, not the
//! pending buffer, which is what makes the group-commit batch size a real
//! durability/throughput trade-off in the `journal_overhead` ablation.

use crate::record::Record;
use crate::JournalResult;
use parking_lot::Mutex;
use std::sync::Arc;

/// Magic byte opening every frame.
pub const FRAME_MAGIC: u8 = 0xA7;

/// Fixed frame header size: magic + lsn + len + crc.
pub const FRAME_HEADER: usize = 1 + 8 + 4 + 4;

/// Default group-commit batch size (records per flush).
pub const DEFAULT_BATCH: usize = 16;

/// The frame checksum: CRC-32 over the `lsn` and `len` header fields (in
/// their little-endian wire encoding) followed by the payload. Covering
/// the header means a corrupted LSN or length is detected rather than
/// trusted during replay.
pub fn frame_crc(lsn: u64, len: u32, payload: &[u8]) -> u32 {
    crate::codec::crc32_parts(&[&lsn.to_le_bytes(), &len.to_le_bytes(), payload])
}

/// Byte-level log storage. The in-memory implementation stands in for an
/// append-only file; the fault harness wraps one to cut writes short.
pub trait Storage: Send {
    /// Appends bytes to the durable log.
    fn append(&mut self, bytes: &[u8]) -> JournalResult<()>;
    /// Returns the durable log contents.
    fn bytes(&self) -> &[u8];
    /// Truncates the log (used by checkpointing).
    fn reset(&mut self) -> JournalResult<()>;
}

/// Plain in-memory storage.
#[derive(Debug, Default)]
pub struct MemStorage {
    buf: Vec<u8>,
}

impl MemStorage {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> JournalResult<()> {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn bytes(&self) -> &[u8] {
        &self.buf
    }

    fn reset(&mut self) -> JournalResult<()> {
        self.buf.clear();
        Ok(())
    }
}

/// Counters exposed for tests and the overhead benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended (including buffered ones).
    pub records: u64,
    /// Group-commit flushes performed.
    pub flushes: u64,
    /// Bytes made durable.
    pub bytes_flushed: u64,
    /// Storage errors swallowed on emit (the op already happened in
    /// memory; we can only count the lost durability).
    pub io_errors: u64,
}

/// The write-ahead log.
pub struct Journal {
    storage: Box<dyn Storage>,
    next_lsn: u64,
    next_txn: u64,
    batch: usize,
    pending: Vec<u8>,
    pending_records: usize,
    stats: JournalStats,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("next_lsn", &self.next_lsn)
            .field("next_txn", &self.next_txn)
            .field("batch", &self.batch)
            .field("pending_records", &self.pending_records)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Journal {
    /// Creates a journal over the given storage with a group-commit batch
    /// size (records per flush; 1 = flush every record).
    pub fn new(storage: Box<dyn Storage>, batch: usize) -> Self {
        Journal {
            storage,
            next_lsn: 1,
            next_txn: 1,
            batch: batch.max(1),
            pending: Vec::new(),
            pending_records: 0,
            stats: JournalStats::default(),
        }
    }

    /// Creates an in-memory journal.
    pub fn in_memory(batch: usize) -> Self {
        Journal::new(Box::new(MemStorage::new()), batch)
    }

    /// Returns the configured group-commit batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Returns the emit/flush counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Appends a record, returning its LSN. Buffered until the batch fills
    /// or a flush-forcing record (commit/rollback/snapshot) arrives.
    pub fn append(&mut self, rec: &Record) -> JournalResult<u64> {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let payload = rec.encode();
        self.pending.push(FRAME_MAGIC);
        self.pending.extend_from_slice(&lsn.to_le_bytes());
        self.pending.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&frame_crc(lsn, payload.len() as u32, &payload).to_le_bytes());
        self.pending.extend_from_slice(&payload);
        self.pending_records += 1;
        self.stats.records += 1;
        maxoid_obs::counter_add("journal.records", 1);
        if rec.forces_flush() || self.pending_records >= self.batch {
            maxoid_obs::counter_add(
                if rec.forces_flush() { "journal.flushes_forced" } else { "journal.flushes_batch" },
                1,
            );
            self.flush()?;
        }
        Ok(lsn)
    }

    /// Forces buffered frames to storage.
    pub fn flush(&mut self) -> JournalResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut sp = maxoid_obs::span("journal.flush");
        let n = self.pending.len() as u64;
        if sp.is_active() {
            sp.field("bytes", n.to_string());
            sp.field("records", self.pending_records.to_string());
            maxoid_obs::observe("journal.flush_bytes", n);
            maxoid_obs::observe("journal.flush_records", self.pending_records as u64);
        }
        let res = self.storage.append(&self.pending);
        self.pending.clear();
        self.pending_records = 0;
        match res {
            Ok(()) => {
                self.stats.flushes += 1;
                self.stats.bytes_flushed += n;
                maxoid_obs::counter_add("journal.flushes", 1);
                maxoid_obs::counter_add("journal.bytes_flushed", n);
                Ok(())
            }
            Err(e) => {
                self.stats.io_errors += 1;
                maxoid_obs::counter_add("journal.io_errors", 1);
                Err(e)
            }
        }
    }

    /// Opens a journal transaction and returns its id.
    pub fn begin_txn(&mut self) -> JournalResult<u64> {
        let txn = self.next_txn;
        self.next_txn += 1;
        self.append(&Record::TxnBegin { txn })?;
        Ok(txn)
    }

    /// Commits a journal transaction (forces a flush).
    pub fn commit_txn(&mut self, txn: u64) -> JournalResult<()> {
        self.append(&Record::TxnCommit { txn })?;
        Ok(())
    }

    /// Rolls back a journal transaction (forces a flush).
    pub fn rollback_txn(&mut self, txn: u64) -> JournalResult<()> {
        self.append(&Record::TxnRollback { txn })?;
        Ok(())
    }

    /// Returns the durable log bytes (NOT including the pending buffer —
    /// what a crash right now would leave behind).
    pub fn bytes(&self) -> Vec<u8> {
        self.storage.bytes().to_vec()
    }

    /// Durable log size in bytes.
    pub fn len(&self) -> usize {
        self.storage.bytes().len()
    }

    /// True when nothing has been made durable yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compacts the log: replaces its contents with the given component
    /// snapshots plus the already-durable committed `Sql` records (logical
    /// SQL history is retained so databases replay from scratch; physical
    /// VFS records are subsumed by the store snapshot). Prior snapshots for
    /// components *not* being replaced are kept.
    pub fn checkpoint(&mut self, snapshots: &[(String, Vec<u8>)]) -> JournalResult<()> {
        self.flush()?;
        let log = crate::replay::read_records(self.storage.bytes());
        let committed = crate::replay::committed_records(&log);
        let mut retained: Vec<Record> = Vec::new();
        for rec in committed {
            match rec {
                Record::Snapshot { ref component, .. } => {
                    if !snapshots.iter().any(|(c, _)| c == component) {
                        retained.push(rec);
                    }
                }
                Record::Sql { .. } => retained.push(rec),
                _ => {}
            }
        }
        self.storage.reset()?;
        for (component, payload) in snapshots {
            self.append(&Record::Snapshot {
                component: component.clone(),
                payload: payload.clone(),
            })?;
        }
        for rec in &retained {
            self.append(rec)?;
        }
        self.flush()
    }
}

/// The trait the rest of the stack emits records through.
///
/// Emission is infallible by design: the in-memory mutation has already
/// happened when the record is emitted, so a storage failure can only be
/// counted (see [`JournalStats::io_errors`]), never unwound.
pub trait JournalSink: Send + Sync {
    /// Appends a record to the log.
    fn emit(&self, rec: Record);

    /// Allocates a transaction id and emits its `TxnBegin`. Emitters close
    /// the transaction with an explicit `TxnCommit`/`TxnRollback` record.
    fn begin_txn(&self) -> u64;
}

/// A cloneable, lockable handle to a shared journal.
#[derive(Debug, Clone)]
pub struct JournalHandle(Arc<Mutex<Journal>>);

impl JournalHandle {
    pub fn new(journal: Journal) -> Self {
        JournalHandle(Arc::new(Mutex::new(journal)))
    }

    /// In-memory journal with the default batch size.
    pub fn in_memory() -> Self {
        JournalHandle::new(Journal::in_memory(DEFAULT_BATCH))
    }

    /// In-memory journal with an explicit group-commit batch size.
    pub fn with_batch(batch: usize) -> Self {
        JournalHandle::new(Journal::in_memory(batch))
    }

    /// Runs `f` with the journal locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut Journal) -> R) -> R {
        f(&mut self.0.lock())
    }

    pub fn begin_txn(&self) -> JournalResult<u64> {
        self.with(|j| j.begin_txn())
    }

    pub fn commit_txn(&self, txn: u64) -> JournalResult<()> {
        self.with(|j| j.commit_txn(txn))
    }

    pub fn rollback_txn(&self, txn: u64) -> JournalResult<()> {
        self.with(|j| j.rollback_txn(txn))
    }

    pub fn flush(&self) -> JournalResult<()> {
        self.with(|j| j.flush())
    }

    /// Durable log bytes (a crash right now loses only the pending batch).
    pub fn bytes(&self) -> Vec<u8> {
        self.with(|j| j.bytes())
    }

    pub fn stats(&self) -> JournalStats {
        self.with(|j| j.stats())
    }

    pub fn checkpoint(&self, snapshots: &[(String, Vec<u8>)]) -> JournalResult<()> {
        self.with(|j| j.checkpoint(snapshots))
    }

    /// Wraps the handle as a [`SinkRef`] for embedding in other crates'
    /// structs.
    pub fn sink(&self) -> SinkRef {
        SinkRef::new(self.clone())
    }
}

impl JournalSink for JournalHandle {
    fn emit(&self, rec: Record) {
        // Storage errors are counted in stats by flush(); emit itself
        // cannot unwind the in-memory mutation it records.
        let _ = self.with(|j| j.append(&rec));
    }

    fn begin_txn(&self) -> u64 {
        self.with(|j| {
            let txn = j.next_txn;
            j.next_txn += 1;
            let _ = j.append(&Record::TxnBegin { txn });
            txn
        })
    }
}

/// A shared sink reference that keeps `#[derive(Debug)]` working on the
/// structs that embed it (a bare `Arc<dyn JournalSink>` would not).
#[derive(Clone)]
pub struct SinkRef(Arc<dyn JournalSink>);

impl SinkRef {
    pub fn new(sink: impl JournalSink + 'static) -> Self {
        SinkRef(Arc::new(sink))
    }

    pub fn emit(&self, rec: Record) {
        self.0.emit(rec);
    }

    pub fn begin_txn(&self) -> u64 {
        self.0.begin_txn()
    }
}

impl std::fmt::Debug for SinkRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkRef(..)")
    }
}

impl From<JournalHandle> for SinkRef {
    fn from(h: JournalHandle) -> Self {
        SinkRef::new(h)
    }
}

/// A sink that drops every record — the "logging off" arm of the
/// `journal_overhead` ablation, isolating the cost of record construction
/// from the cost of framing + flushing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl JournalSink for NullSink {
    fn emit(&self, _rec: Record) {}

    fn begin_txn(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::VfsRecord;
    use crate::replay::{read_records, TailState};

    fn rec(path: &str) -> Record {
        Record::Vfs(VfsRecord::Unlink { path: path.into() })
    }

    #[test]
    fn batch_buffers_until_full() {
        let mut j = Journal::in_memory(3);
        j.append(&rec("/a")).unwrap();
        j.append(&rec("/b")).unwrap();
        assert_eq!(j.stats().flushes, 0);
        assert!(j.bytes().is_empty(), "unflushed records are not durable");
        j.append(&rec("/c")).unwrap();
        assert_eq!(j.stats().flushes, 1);
        let log = read_records(&j.bytes());
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.tail, TailState::Clean);
    }

    #[test]
    fn commit_forces_flush() {
        let mut j = Journal::in_memory(100);
        let txn = j.begin_txn().unwrap();
        j.append(&rec("/a")).unwrap();
        assert_eq!(j.stats().flushes, 0);
        j.commit_txn(txn).unwrap();
        assert_eq!(j.stats().flushes, 1);
        assert_eq!(read_records(&j.bytes()).records.len(), 3);
    }

    #[test]
    fn lsns_are_monotonic_and_stamped() {
        let mut j = Journal::in_memory(1);
        let l1 = j.append(&rec("/a")).unwrap();
        let l2 = j.append(&rec("/b")).unwrap();
        assert!(l2 > l1);
        let log = read_records(&j.bytes());
        assert_eq!(log.records[0].0, l1);
        assert_eq!(log.records[1].0, l2);
    }

    #[test]
    fn checkpoint_keeps_sql_and_replaces_vfs() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        j.append(&Record::Sql { db: "d".into(), sql: "CREATE TABLE t (x)".into(), params: vec![] })
            .unwrap();
        j.checkpoint(&[("vfs.store".to_string(), vec![1, 2, 3])]).unwrap();
        let log = read_records(&j.bytes());
        let recs: Vec<&Record> = log.records.iter().map(|(_, r)| r).collect();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0], Record::Snapshot { component, payload }
            if component == "vfs.store" && payload == &vec![1, 2, 3]));
        assert!(matches!(recs[1], Record::Sql { .. }));
    }

    #[test]
    fn checkpoint_drops_uncommitted_sql() {
        let mut j = Journal::in_memory(1);
        let txn = j.begin_txn().unwrap();
        j.append(&Record::Sql { db: "d".into(), sql: "INSERT ...".into(), params: vec![] })
            .unwrap();
        j.rollback_txn(txn).unwrap();
        j.checkpoint(&[]).unwrap();
        assert_eq!(read_records(&j.bytes()).records.len(), 0);
    }

    #[test]
    fn null_sink_discards() {
        let s = NullSink;
        s.emit(rec("/a"));
    }

    #[test]
    fn handle_is_shared() {
        let h = JournalHandle::with_batch(1);
        let h2 = h.clone();
        h.emit(rec("/a"));
        h2.emit(rec("/b"));
        assert_eq!(read_records(&h.bytes()).records.len(), 2);
    }
}
