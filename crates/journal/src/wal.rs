//! The write-ahead log: frame format, group commit, transactions, and the
//! `JournalSink` trait the rest of the stack emits through.
//!
//! A v2 log opens with an 8-byte preamble (`MXWAL2\0\0`) followed by
//! frames (little-endian):
//!
//! ```text
//! +------+---------+---------+---------+------------------+
//! | 0xA7 | lsn u64 | len u32 | crc u32 | payload (len B)  |
//! +------+---------+---------+---------+------------------+
//! ```
//!
//! `crc` is the IEEE CRC-32 of `lsn || len || payload` (header fields in
//! their little-endian encoding), so a flipped bit anywhere in the frame —
//! including the LSN or length — fails verification instead of being
//! replayed with a wrong header. v1 logs (no preamble, frames from byte 0,
//! bare string paths) are still replayable; only v2 is ever written.
//!
//! The write path is pipelined: `append` interns paths and pushes the
//! *record* onto a pending queue under the journal-state lock — encoding
//! and checksumming happen later, outside that lock, when a flush trigger
//! (batch full, or a flush-forcing record) drives the whole queue through
//! one framed storage append using a reusable scratch buffer. Only flushed
//! bytes survive a crash — [`Journal::bytes`] deliberately exposes the
//! durable prefix, not the pending queue, which is what makes the
//! group-commit batch size a real durability/throughput trade-off in the
//! `journal_overhead` ablation.

use crate::codec::ByteWriter;
use crate::record::{Record, LITERAL_PATH};
use crate::JournalResult;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;

/// Magic byte opening every frame.
pub const FRAME_MAGIC: u8 = 0xA7;

/// Fixed frame header size: magic + lsn + len + crc.
pub const FRAME_HEADER: usize = 1 + 8 + 4 + 4;

/// The 8-byte preamble opening every format-v2 log. The first byte is
/// deliberately not [`FRAME_MAGIC`], so version detection is unambiguous.
pub const LOG_PREAMBLE: [u8; 8] = *b"MXWAL2\x00\x00";

/// Default group-commit batch size (records per flush).
pub const DEFAULT_BATCH: usize = 16;

/// The frame checksum: CRC-32 over the `lsn` and `len` header fields (in
/// their little-endian wire encoding) followed by the payload. Covering
/// the header means a corrupted LSN or length is detected rather than
/// trusted during replay.
pub fn frame_crc(lsn: u64, len: u32, payload: &[u8]) -> u32 {
    crate::codec::crc32_parts(&[&lsn.to_le_bytes(), &len.to_le_bytes(), payload])
}

/// Byte-level log storage. The in-memory implementation stands in for an
/// append-only file; the fault harness wraps one to cut writes short; the
/// block-backed implementation ([`crate::BlockStorage`]) keeps the log on
/// a [`maxoid_block::BlockDevice`] behind a page cache.
///
/// The durability contract: when `append` returns `Ok(())`, the appended
/// bytes are as durable as the backend makes them — block storage issues
/// its write-back + device flush barrier inside `append`, so the WAL's
/// group-commit acknowledgement means the same thing on every backend.
pub trait Storage: Send {
    /// Appends bytes to the durable log.
    fn append(&mut self, bytes: &[u8]) -> JournalResult<()>;
    /// Returns the durable log contents. Takes `&mut self` because
    /// device-backed implementations read through their page cache.
    fn bytes(&mut self) -> Vec<u8>;
    /// Durable log length in bytes.
    fn len(&self) -> usize;
    /// True when nothing has been made durable yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Truncates the log (used by checkpointing).
    fn reset(&mut self) -> JournalResult<()>;
}

/// Plain in-memory storage.
#[derive(Debug, Default)]
pub struct MemStorage {
    buf: Vec<u8>,
}

impl MemStorage {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> JournalResult<()> {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn bytes(&mut self) -> Vec<u8> {
        self.buf.clone()
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn reset(&mut self) -> JournalResult<()> {
        self.buf.clear();
        Ok(())
    }
}

/// Counters exposed for tests and the overhead benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended (including queued ones and `PathDef`s).
    pub records: u64,
    /// Group-commit flushes performed.
    pub flushes: u64,
    /// Bytes made durable.
    pub bytes_flushed: u64,
    /// Storage errors swallowed on emit (the op already happened in
    /// memory; we can only count the lost durability).
    pub io_errors: u64,
    /// Commit/rollback records routed through the leader/follower group
    /// commit protocol.
    pub group_commits: u64,
    /// Group commits that rode an in-flight leader's flush instead of
    /// performing their own (the batching the protocol exists for).
    pub group_follower_waits: u64,
}

/// A record waiting in the pending queue: encoding is deferred to the
/// flush, so the queue holds typed records plus the path-dictionary ids
/// resolved at enqueue time (interning must see paths in LSN order; the
/// encoder must not need the state lock).
struct Queued {
    lsn: u64,
    rec: Record,
    ids: [u32; 2],
}

/// The storage plus the flush-side scratch buffer, behind one mutex: a
/// flush encodes its whole batch into `scratch` (reused across flushes —
/// no per-record allocation) and hands storage exactly one append.
struct LogDevice {
    storage: Box<dyn Storage>,
    scratch: Vec<u8>,
}

impl LogDevice {
    /// Frames and appends a batch. Returns the append result and the
    /// number of bytes written. An empty batch touches nothing.
    fn write_batch(&mut self, batch: &[Queued]) -> (JournalResult<()>, u64) {
        if batch.is_empty() {
            return (Ok(()), 0);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        if self.storage.is_empty() {
            scratch.extend_from_slice(&LOG_PREAMBLE);
        }
        let mut w = ByteWriter::from_vec(scratch);
        for q in batch {
            encode_frame(&mut w, q);
        }
        let buf = w.into_bytes();
        let n = buf.len() as u64;
        let res = self.storage.append(&buf);
        self.scratch = buf;
        (res, n)
    }
}

/// Frames one queued record into the batch buffer: header with `len`/`crc`
/// backpatched once the payload length is known, payload encoded in place.
fn encode_frame(w: &mut ByteWriter, q: &Queued) {
    let start = w.len();
    w.put_u8(FRAME_MAGIC);
    w.put_u64(q.lsn);
    w.put_u32(0); // len, backpatched below
    w.put_u32(0); // crc, backpatched below
    q.rec.encode_v2_into(w, q.ids);
    let len = (w.len() - start - FRAME_HEADER) as u32;
    w.patch(start + 9, &len.to_le_bytes());
    let crc = frame_crc(q.lsn, len, &w.as_slice()[start + FRAME_HEADER..]);
    w.patch(start + 13, &crc.to_le_bytes());
}

/// In-log path dictionary state. A path is encoded literally on first use;
/// its second use emits a `PathDef` assigning a u32 id, and every use from
/// then on costs 4 bytes. (Interning on second rather than first use keeps
/// one-shot paths from bloating the dictionary and the log.)
#[derive(Default)]
struct PathInterner {
    map: HashMap<String, Option<u32>>,
    next_id: u32,
}

impl PathInterner {
    /// Returns `(newly_assigned_id, slot_encoding)` for one use of `path`:
    /// the id to define via `PathDef` (if this use triggers interning) and
    /// the id to encode the slot with (`LITERAL_PATH` for literal).
    fn use_path(&mut self, path: &str) -> (Option<u32>, u32) {
        match self.map.get_mut(path) {
            None => {
                self.map.insert(path.to_string(), None);
                (None, LITERAL_PATH)
            }
            Some(slot @ None) => {
                let id = self.next_id;
                self.next_id += 1;
                *slot = Some(id);
                (Some(id), id)
            }
            Some(Some(id)) => (None, *id),
        }
    }

    /// Forgets every assignment — called whenever the log is rewritten
    /// from scratch, since ids only mean anything within one log.
    fn reset(&mut self) {
        self.map.clear();
        self.next_id = 0;
    }
}

/// The write-ahead log.
///
/// Storage sits behind its own mutex (below the journal-state lock in the
/// global order) so a group-commit leader can release the state lock —
/// letting other threads keep enqueueing — while its batch is being
/// encoded, checksummed and written. Everything else is guarded by the
/// `Mutex<Journal>` inside [`JournalHandle`].
pub struct Journal {
    storage: Arc<Mutex<LogDevice>>,
    next_lsn: u64,
    next_txn: u64,
    batch: usize,
    queue: Vec<Queued>,
    interner: PathInterner,
    /// Highest LSN whose flush attempt has completed (successfully, or
    /// with a counted `io_errors` — matching emit's "durability loss is
    /// counted, not unwound" philosophy). Group-commit followers wait for
    /// this to pass their record's LSN.
    acked_lsn: u64,
    /// True while a group-commit leader's batch is in flight.
    group_leader: bool,
    stats: JournalStats,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("next_lsn", &self.next_lsn)
            .field("next_txn", &self.next_txn)
            .field("batch", &self.batch)
            .field("queued_records", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Journal {
    /// Creates a journal over the given storage with a group-commit batch
    /// size (records per flush; 1 = flush every record).
    ///
    /// Non-empty storage (a reopened device-backed log) is scanned once so
    /// LSNs continue past the existing history — replay rejects
    /// non-monotonic LSNs as corruption, so a reopened journal must never
    /// restart numbering at 1.
    pub fn new(storage: Box<dyn Storage>, batch: usize) -> Self {
        let mut dev = LogDevice { storage, scratch: Vec::new() };
        let last_lsn = if dev.storage.is_empty() {
            0
        } else {
            crate::replay::read_records(&dev.storage.bytes()).last_lsn()
        };
        Journal {
            storage: Arc::new(Mutex::new(dev)),
            next_lsn: last_lsn + 1,
            next_txn: 1,
            batch: batch.max(1),
            queue: Vec::new(),
            interner: PathInterner::default(),
            acked_lsn: last_lsn,
            group_leader: false,
            stats: JournalStats::default(),
        }
    }

    /// Creates an in-memory journal.
    pub fn in_memory(batch: usize) -> Self {
        Journal::new(Box::new(MemStorage::new()), batch)
    }

    /// Returns the configured group-commit batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Returns the emit/flush counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Interns the record's paths (possibly queueing `PathDef`s), assigns
    /// an LSN and pushes the record onto the pending queue. No encoding,
    /// no checksum, no storage — those are the flush's job.
    fn enqueue(&mut self, rec: Record) -> u64 {
        let mut ids = [LITERAL_PATH; 2];
        let mut defs: [Option<(u32, String)>; 2] = [None, None];
        for (k, path) in rec.vfs_paths().iter().enumerate() {
            if let Some(path) = path {
                let (newly, id) = self.interner.use_path(path);
                ids[k] = id;
                if let Some(newly) = newly {
                    defs[k] = Some((newly, path.to_string()));
                }
            }
        }
        for def in defs.iter_mut() {
            if let Some((id, path)) = def.take() {
                let lsn = self.next_lsn;
                self.next_lsn += 1;
                self.queue.push(Queued {
                    lsn,
                    rec: Record::PathDef { id, path },
                    ids: [LITERAL_PATH; 2],
                });
                self.stats.records += 1;
                maxoid_obs::counter_add("journal.records", 1);
            }
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.queue.push(Queued { lsn, rec, ids });
        self.stats.records += 1;
        maxoid_obs::counter_add("journal.records", 1);
        lsn
    }

    /// Appends an owned record, returning its LSN. Queued until the batch
    /// fills or a flush-forcing record (commit/rollback/snapshot) arrives.
    pub(crate) fn append_owned(&mut self, rec: Record) -> JournalResult<u64> {
        let force = rec.forces_flush();
        let lsn = self.enqueue(rec);
        if force || self.queue.len() >= self.batch {
            maxoid_obs::counter_add(
                if force { "journal.flushes_forced" } else { "journal.flushes_batch" },
                1,
            );
            self.flush()?;
        }
        Ok(lsn)
    }

    /// Appends a record by reference (cloning it into the queue). The
    /// zero-copy path is [`JournalSink::emit`], which owns its record.
    pub fn append(&mut self, rec: &Record) -> JournalResult<u64> {
        self.append_owned(rec.clone())
    }

    /// Forces queued records to storage. The storage lock is taken while
    /// the journal-state lock is held (state → storage, the documented
    /// order), which serializes this behind any group-commit batch already
    /// in flight.
    pub fn flush(&mut self) -> JournalResult<()> {
        if self.queue.is_empty() {
            // Nothing of ours to write. Don't acknowledge past a batch a
            // leader is still flushing — its outcome isn't known yet.
            if !self.group_leader {
                self.acked_lsn = self.next_lsn - 1;
            }
            return Ok(());
        }
        let batch = std::mem::take(&mut self.queue);
        let high = batch.last().map(|q| q.lsn).unwrap_or(self.acked_lsn);
        let mut sp = maxoid_obs::span("journal.flush");
        let storage = Arc::clone(&self.storage);
        let mut dev = storage.lock();
        let (result, bytes) = dev.write_batch(&batch);
        drop(dev);
        if sp.is_active() {
            sp.field("bytes", bytes.to_string());
            sp.field("records", batch.len().to_string());
            maxoid_obs::observe("journal.flush_bytes", bytes);
            maxoid_obs::observe("journal.flush_records", batch.len() as u64);
        }
        self.finish_group_flush(Some((bytes as usize, batch.len())), &result, high);
        result
    }

    /// Opens a journal transaction and returns its id.
    pub fn begin_txn(&mut self) -> JournalResult<u64> {
        let txn = self.alloc_txn();
        self.append_owned(Record::TxnBegin { txn })?;
        Ok(txn)
    }

    /// Commits a journal transaction (forces a flush).
    pub fn commit_txn(&mut self, txn: u64) -> JournalResult<()> {
        self.append_owned(Record::TxnCommit { txn })?;
        Ok(())
    }

    /// Rolls back a journal transaction (forces a flush).
    pub fn rollback_txn(&mut self, txn: u64) -> JournalResult<()> {
        self.append_owned(Record::TxnRollback { txn })?;
        Ok(())
    }

    /// Returns the durable log bytes (NOT including the pending queue —
    /// what a crash right now would leave behind).
    pub fn bytes(&self) -> Vec<u8> {
        self.storage.lock().storage.bytes()
    }

    /// Durable log size in bytes.
    pub fn len(&self) -> usize {
        self.storage.lock().storage.len()
    }

    /// True when nothing has been made durable yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Truncates storage and resets the path dictionary (ids only mean
    /// anything within one log). LSNs and txn ids keep rising.
    fn reset_log(&mut self) -> JournalResult<()> {
        self.storage.lock().storage.reset()?;
        self.interner.reset();
        Ok(())
    }

    /// Rewrites the log as the given component snapshots plus the
    /// already-durable committed `Sql` records (logical SQL history is
    /// retained so databases replay from scratch; physical VFS records are
    /// subsumed by the store snapshot). Prior snapshots and snapshot
    /// deltas for components *not* being replaced are kept.
    pub fn checkpoint(&mut self, snapshots: &[(String, Vec<u8>)]) -> JournalResult<()> {
        self.flush()?;
        let log = crate::replay::read_records(&self.bytes());
        let committed = crate::replay::committed_records(&log);
        let mut retained: Vec<Record> = Vec::new();
        for rec in committed {
            match rec {
                Record::Snapshot { ref component, .. }
                | Record::SnapshotDelta { ref component, .. } => {
                    if !snapshots.iter().any(|(c, _)| c == component) {
                        retained.push(rec);
                    }
                }
                Record::Sql { .. } => retained.push(rec),
                _ => {}
            }
        }
        self.reset_log()?;
        for (component, payload) in snapshots {
            self.append_owned(Record::Snapshot {
                component: component.clone(),
                payload: payload.clone(),
            })?;
        }
        for rec in retained {
            self.append_owned(rec)?;
        }
        self.flush()
    }

    /// Incremental checkpoint: rewrites the log as the *retained* prior
    /// snapshot chain (full snapshots and earlier deltas, every
    /// component), the committed SQL history, and a new `SnapshotDelta`
    /// carrying only the state dirtied since the last checkpoint. Replay
    /// rebuilds the chain in order; VFS physical records are dropped
    /// because the delta subsumes them.
    pub fn checkpoint_delta(&mut self, component: &str, delta: Vec<u8>) -> JournalResult<()> {
        self.flush()?;
        let log = crate::replay::read_records(&self.bytes());
        let committed = crate::replay::committed_records(&log);
        let mut retained: Vec<Record> = Vec::new();
        for rec in committed {
            match rec {
                Record::Snapshot { .. } | Record::SnapshotDelta { .. } | Record::Sql { .. } => {
                    retained.push(rec)
                }
                _ => {}
            }
        }
        self.reset_log()?;
        for rec in retained {
            self.append_owned(rec)?;
        }
        self.append_owned(Record::SnapshotDelta {
            component: component.to_string(),
            payload: delta,
        })?;
        self.flush()
    }

    /// Replaces the whole log with `records` — a compacted reconstruction
    /// of live state — preceded by a `Compaction` marker recording the LSN
    /// horizon the rewrite subsumes. Recovery over the new log replays
    /// live state, not uptime history.
    pub fn replace_with(&mut self, records: &[Record], upto_lsn: u64) -> JournalResult<()> {
        self.flush()?;
        self.reset_log()?;
        self.append_owned(Record::Compaction { upto_lsn })?;
        for rec in records {
            self.append(rec)?;
        }
        self.flush()
    }

    // -----------------------------------------------------------------
    // Group-commit plumbing, used by `JournalHandle`'s leader/follower
    // protocol. All of these run under the journal-state lock.
    // -----------------------------------------------------------------

    /// Highest LSN whose flush attempt has completed.
    pub(crate) fn acked_lsn(&self) -> u64 {
        self.acked_lsn
    }

    /// Whether a leader's batch is currently in flight.
    pub(crate) fn group_leader_active(&self) -> bool {
        self.group_leader
    }

    pub(crate) fn set_group_leader(&mut self, on: bool) {
        self.group_leader = on;
    }

    /// Allocates a transaction id without emitting anything.
    pub(crate) fn alloc_txn(&mut self) -> u64 {
        let txn = self.next_txn;
        self.next_txn += 1;
        txn
    }

    /// Detaches the pending queue (the leader's batch), leaving the
    /// journal accepting new appends into a fresh queue.
    fn take_queue(&mut self) -> Vec<Queued> {
        std::mem::take(&mut self.queue)
    }

    /// Shared handle to the storage lock, so the leader can hold storage
    /// across the journal-state unlock.
    fn storage_handle(&self) -> Arc<Mutex<LogDevice>> {
        self.storage.clone()
    }

    /// Books the outcome of a leader's batch write: counters on success,
    /// `io_errors` on failure, and in either case acknowledgement up to
    /// `high` (the batch is gone from the queue; a failed write is a
    /// counted durability loss, exactly like `emit`'s).
    pub(crate) fn finish_group_flush(
        &mut self,
        batch: Option<(usize, usize)>,
        result: &JournalResult<()>,
        high: u64,
    ) {
        match result {
            Ok(()) => {
                if let Some((bytes, _records)) = batch {
                    self.stats.flushes += 1;
                    self.stats.bytes_flushed += bytes as u64;
                    maxoid_obs::counter_add("journal.flushes", 1);
                    maxoid_obs::counter_add("journal.bytes_flushed", bytes as u64);
                }
            }
            Err(_) => {
                self.stats.io_errors += 1;
                maxoid_obs::counter_add("journal.io_errors", 1);
            }
        }
        self.acked_lsn = self.acked_lsn.max(high);
    }

    pub(crate) fn note_group_commit(&mut self) {
        self.stats.group_commits += 1;
    }

    pub(crate) fn note_follower_wait(&mut self) {
        self.stats.group_follower_waits += 1;
    }
}

/// The trait the rest of the stack emits records through.
///
/// Emission is infallible by design: the in-memory mutation has already
/// happened when the record is emitted, so a storage failure can only be
/// counted (see [`JournalStats::io_errors`]), never unwound.
pub trait JournalSink: Send + Sync {
    /// Appends a record to the log.
    fn emit(&self, rec: Record);

    /// Allocates a transaction id and emits its `TxnBegin`. Emitters close
    /// the transaction with an explicit `TxnCommit`/`TxnRollback` record.
    fn begin_txn(&self) -> u64;
}

/// Shared journal state plus the condition variable followers park on
/// while a leader's batch is in flight.
#[derive(Debug)]
struct JournalShared {
    journal: Mutex<Journal>,
    flushed: Condvar,
}

/// A cloneable, lockable handle to a shared journal.
///
/// Every append routes through the pipelined writer: the record is queued
/// under the state lock (paying interning + a vec push, not encoding), and
/// a flush trigger makes the first thread the **leader** — it pins the
/// storage lock (still under the state lock, preserving LSN order against
/// concurrent direct flushes), releases the state lock so other threads
/// can keep appending, then encodes + checksums + writes the whole batch
/// outside the state lock in one storage append. Flush-forcing records
/// wait for their LSN to be acknowledged — threads that commit while a
/// batch is in flight park on the condvar and usually discover their
/// record was made durable by the leader's flush: many commits, one
/// storage write, and the encoder never blocks enqueuers.
#[derive(Debug, Clone)]
pub struct JournalHandle {
    shared: Arc<JournalShared>,
}

impl JournalHandle {
    pub fn new(journal: Journal) -> Self {
        JournalHandle {
            shared: Arc::new(JournalShared {
                journal: Mutex::new(journal),
                flushed: Condvar::new(),
            }),
        }
    }

    /// In-memory journal with the default batch size.
    pub fn in_memory() -> Self {
        JournalHandle::new(Journal::in_memory(DEFAULT_BATCH))
    }

    /// In-memory journal with an explicit group-commit batch size.
    pub fn with_batch(batch: usize) -> Self {
        JournalHandle::new(Journal::in_memory(batch))
    }

    /// Journal over a caller-provided storage backend (e.g. a
    /// [`crate::BlockStorage`] over a file-backed device). If the storage
    /// already holds records, LSN numbering continues from the reopened
    /// log's tail.
    pub fn with_storage(storage: Box<dyn Storage>, batch: usize) -> Self {
        JournalHandle::new(Journal::new(storage, batch))
    }

    /// Runs `f` with the journal locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut Journal) -> R) -> R {
        f(&mut self.shared.journal.lock())
    }

    /// The pipelined append. Enqueues `rec`, then:
    ///
    /// * no trigger — returns immediately (encoding deferred);
    /// * batch full — flushes as leader if no batch is in flight,
    ///   otherwise returns (the queue rides a later trigger);
    /// * flush-forcing — waits until the record's LSN is acknowledged,
    ///   either by this thread's own leader flush or by riding another
    ///   thread's batch. Only a leader observes a storage error;
    ///   followers' durability loss is counted in `io_errors`.
    fn append_pipelined<'a>(
        &'a self,
        mut j: MutexGuard<'a, Journal>,
        rec: Record,
        group: bool,
    ) -> JournalResult<u64> {
        let force = rec.forces_flush();
        let lsn = j.enqueue(rec);
        if group {
            j.note_group_commit();
            maxoid_obs::counter_add("journal.group_commits", 1);
        }
        if !force && j.queue.len() < j.batch {
            return Ok(lsn);
        }
        maxoid_obs::counter_add(
            if force { "journal.flushes_forced" } else { "journal.flushes_batch" },
            1,
        );
        loop {
            if j.acked_lsn() >= lsn {
                return Ok(lsn);
            }
            if j.group_leader_active() {
                if !force {
                    // Batch trigger with a leader already in flight: the
                    // queued records ride a later flush.
                    return Ok(lsn);
                }
                j.note_follower_wait();
                maxoid_obs::counter_add("journal.group_follower_waits", 1);
                self.shared.flushed.wait(&mut j);
                continue;
            }
            // Become the leader. Pin the storage lock *before* releasing
            // the state lock so no concurrent direct flush can write later
            // LSNs underneath this batch (state → storage lock order).
            j.set_group_leader(true);
            let batch = j.take_queue();
            let high = batch.last().map(|q| q.lsn).unwrap_or_else(|| j.acked_lsn());
            let storage = j.storage_handle();
            let mut dev = storage.lock();
            drop(j);
            // Encode + CRC + append outside the journal-state lock: this
            // is the pipelining — enqueuers proceed while we do the work.
            let (result, bytes) = dev.write_batch(&batch);
            drop(dev);
            j = self.shared.journal.lock();
            let booked = if batch.is_empty() { None } else { Some((bytes as usize, batch.len())) };
            j.finish_group_flush(booked, &result, high);
            j.set_group_leader(false);
            self.shared.flushed.notify_all();
            result?;
            return Ok(lsn);
        }
    }

    pub fn begin_txn(&self) -> JournalResult<u64> {
        let mut j = self.shared.journal.lock();
        let txn = j.alloc_txn();
        self.append_pipelined(j, Record::TxnBegin { txn }, false)?;
        Ok(txn)
    }

    /// Commits a transaction through the group-commit protocol.
    pub fn commit_txn(&self, txn: u64) -> JournalResult<()> {
        let j = self.shared.journal.lock();
        self.append_pipelined(j, Record::TxnCommit { txn }, true).map(|_| ())
    }

    /// Rolls back a transaction through the group-commit protocol (the
    /// rollback decision must be as durable as a commit's).
    pub fn rollback_txn(&self, txn: u64) -> JournalResult<()> {
        let j = self.shared.journal.lock();
        self.append_pipelined(j, Record::TxnRollback { txn }, true).map(|_| ())
    }

    /// Flushes everything queued. Waits out any in-flight leader first so
    /// the acknowledgement covers a known storage outcome.
    pub fn flush(&self) -> JournalResult<()> {
        let mut j = self.shared.journal.lock();
        while j.group_leader_active() {
            self.shared.flushed.wait(&mut j);
        }
        j.flush()
    }

    /// Durable log bytes (a crash right now loses only the pending queue).
    pub fn bytes(&self) -> Vec<u8> {
        self.with(|j| j.bytes())
    }

    /// Durable log size in bytes, without copying the log out.
    pub fn len(&self) -> usize {
        self.with(|j| j.len())
    }

    /// True when nothing has been made durable yet — i.e. booting from
    /// this journal is a fresh boot, not a cold recovery.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> JournalStats {
        self.with(|j| j.stats())
    }

    pub fn checkpoint(&self, snapshots: &[(String, Vec<u8>)]) -> JournalResult<()> {
        self.with(|j| j.checkpoint(snapshots))
    }

    /// Incremental checkpoint: see [`Journal::checkpoint_delta`].
    pub fn checkpoint_delta(&self, component: &str, delta: Vec<u8>) -> JournalResult<()> {
        self.with(|j| j.checkpoint_delta(component, delta))
    }

    /// Log compaction: see [`Journal::replace_with`].
    pub fn replace_with(&self, records: &[Record], upto_lsn: u64) -> JournalResult<()> {
        self.with(|j| j.replace_with(records, upto_lsn))
    }

    /// Wraps the handle as a [`SinkRef`] for embedding in other crates'
    /// structs.
    pub fn sink(&self) -> SinkRef {
        SinkRef::new(self.clone())
    }
}

impl JournalSink for JournalHandle {
    fn emit(&self, rec: Record) {
        // Storage errors are counted in stats by the flush; emit itself
        // cannot unwind the in-memory mutation it records.
        let j = self.shared.journal.lock();
        let _ = self.append_pipelined(j, rec, false);
    }

    fn begin_txn(&self) -> u64 {
        let mut j = self.shared.journal.lock();
        let txn = j.alloc_txn();
        let _ = self.append_pipelined(j, Record::TxnBegin { txn }, false);
        txn
    }
}

/// A shared sink reference that keeps `#[derive(Debug)]` working on the
/// structs that embed it (a bare `Arc<dyn JournalSink>` would not).
#[derive(Clone)]
pub struct SinkRef(Arc<dyn JournalSink>);

impl SinkRef {
    pub fn new(sink: impl JournalSink + 'static) -> Self {
        SinkRef(Arc::new(sink))
    }

    pub fn emit(&self, rec: Record) {
        self.0.emit(rec);
    }

    pub fn begin_txn(&self) -> u64 {
        self.0.begin_txn()
    }
}

impl std::fmt::Debug for SinkRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkRef(..)")
    }
}

impl From<JournalHandle> for SinkRef {
    fn from(h: JournalHandle) -> Self {
        SinkRef::new(h)
    }
}

/// A sink that drops every record — the "logging off" arm of the
/// `journal_overhead` ablation, isolating the cost of record construction
/// from the cost of framing + flushing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl JournalSink for NullSink {
    fn emit(&self, _rec: Record) {}

    fn begin_txn(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::VfsRecord;
    use crate::replay::{read_records, TailState};

    fn rec(path: &str) -> Record {
        Record::Vfs(VfsRecord::Unlink { path: path.into() })
    }

    #[test]
    fn batch_buffers_until_full() {
        let mut j = Journal::in_memory(3);
        j.append(&rec("/a")).unwrap();
        j.append(&rec("/b")).unwrap();
        assert_eq!(j.stats().flushes, 0);
        assert!(j.bytes().is_empty(), "unflushed records are not durable");
        j.append(&rec("/c")).unwrap();
        assert_eq!(j.stats().flushes, 1);
        let log = read_records(&j.bytes());
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.tail, TailState::Clean);
    }

    #[test]
    fn commit_forces_flush() {
        let mut j = Journal::in_memory(100);
        let txn = j.begin_txn().unwrap();
        j.append(&rec("/a")).unwrap();
        assert_eq!(j.stats().flushes, 0);
        j.commit_txn(txn).unwrap();
        assert_eq!(j.stats().flushes, 1);
        assert_eq!(read_records(&j.bytes()).records.len(), 3);
    }

    #[test]
    fn lsns_are_monotonic_and_stamped() {
        let mut j = Journal::in_memory(1);
        let l1 = j.append(&rec("/a")).unwrap();
        let l2 = j.append(&rec("/b")).unwrap();
        assert!(l2 > l1);
        let log = read_records(&j.bytes());
        assert_eq!(log.records[0].0, l1);
        assert_eq!(log.records[1].0, l2);
    }

    #[test]
    fn logs_open_with_the_v2_preamble() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        let bytes = j.bytes();
        assert_eq!(&bytes[..LOG_PREAMBLE.len()], &LOG_PREAMBLE);
        assert_eq!(bytes[LOG_PREAMBLE.len()], FRAME_MAGIC);
    }

    #[test]
    fn repeated_paths_are_interned() {
        let mut j = Journal::in_memory(1);
        // First use: literal, no dictionary traffic.
        j.append(&rec("/hot")).unwrap();
        let one_use = j.len();
        // Second use: a PathDef is logged alongside the record.
        j.append(&rec("/hot")).unwrap();
        let log = read_records(&j.bytes());
        assert!(
            log.records.iter().any(|(_, r)| matches!(r, Record::PathDef { .. })),
            "second use must define the dictionary id"
        );
        // Third use onward: the path costs an id slot, much smaller than
        // the literal frame.
        let before = j.len();
        j.append(&rec("/hot")).unwrap();
        let id_frame = j.len() - before;
        assert!(
            id_frame < one_use - LOG_PREAMBLE.len(),
            "interned frame ({id_frame}B) should undercut the literal frame"
        );
        // Every record still decodes to the literal path.
        let log = read_records(&j.bytes());
        let unlinks: Vec<_> = log
            .records
            .iter()
            .filter(|(_, r)| matches!(r, Record::Vfs(VfsRecord::Unlink { path }) if path == "/hot"))
            .collect();
        assert_eq!(unlinks.len(), 3);
        assert_eq!(log.tail, TailState::Clean);
    }

    #[test]
    fn checkpoint_keeps_sql_and_replaces_vfs() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        j.append(&Record::Sql { db: "d".into(), sql: "CREATE TABLE t (x)".into(), params: vec![] })
            .unwrap();
        j.checkpoint(&[("vfs.store".to_string(), vec![1, 2, 3])]).unwrap();
        let log = read_records(&j.bytes());
        let recs: Vec<&Record> = log.records.iter().map(|(_, r)| r).collect();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0], Record::Snapshot { component, payload }
            if component == "vfs.store" && payload == &vec![1, 2, 3]));
        assert!(matches!(recs[1], Record::Sql { .. }));
    }

    #[test]
    fn checkpoint_drops_uncommitted_sql() {
        let mut j = Journal::in_memory(1);
        let txn = j.begin_txn().unwrap();
        j.append(&Record::Sql { db: "d".into(), sql: "INSERT ...".into(), params: vec![] })
            .unwrap();
        j.rollback_txn(txn).unwrap();
        j.checkpoint(&[]).unwrap();
        assert_eq!(read_records(&j.bytes()).records.len(), 0);
    }

    #[test]
    fn checkpoint_delta_retains_the_chain() {
        let mut j = Journal::in_memory(1);
        j.append(&Record::Snapshot { component: "vfs.store".into(), payload: vec![1] }).unwrap();
        j.append(&rec("/a")).unwrap();
        j.checkpoint_delta("vfs.store", vec![2]).unwrap();
        j.append(&rec("/b")).unwrap();
        j.checkpoint_delta("vfs.store", vec![3]).unwrap();
        let log = read_records(&j.bytes());
        let recs: Vec<&Record> = log.records.iter().map(|(_, r)| r).collect();
        // Chain order: full snapshot, then deltas oldest-first; the plain
        // vfs records were subsumed.
        assert_eq!(recs.len(), 3);
        assert!(matches!(recs[0], Record::Snapshot { .. }));
        assert!(matches!(recs[1], Record::SnapshotDelta { payload, .. } if payload == &vec![2]));
        assert!(matches!(recs[2], Record::SnapshotDelta { payload, .. } if payload == &vec![3]));
    }

    #[test]
    fn replace_with_rewrites_history_and_keeps_lsns_rising() {
        let mut j = Journal::in_memory(1);
        for i in 0..10 {
            j.append(&rec(&format!("/f{i}"))).unwrap();
        }
        let last = read_records(&j.bytes()).last_lsn();
        j.replace_with(
            &[Record::Snapshot { component: "vfs.store".into(), payload: vec![7] }],
            last,
        )
        .unwrap();
        let log = read_records(&j.bytes());
        assert_eq!(log.tail, TailState::Clean);
        assert_eq!(log.records.len(), 2);
        assert!(matches!(log.records[0].1, Record::Compaction { upto_lsn } if upto_lsn == last));
        assert!(log.records[0].0 > last, "new LSNs continue past the compacted horizon");
    }

    #[test]
    fn null_sink_discards() {
        let s = NullSink;
        s.emit(rec("/a"));
    }

    #[test]
    fn handle_is_shared() {
        let h = JournalHandle::with_batch(1);
        let h2 = h.clone();
        h.emit(rec("/a"));
        h2.emit(rec("/b"));
        assert_eq!(read_records(&h.bytes()).records.len(), 2);
    }
}
