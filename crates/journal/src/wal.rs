//! The write-ahead log: frame format, group commit, transactions, and the
//! `JournalSink` trait the rest of the stack emits through.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! +------+---------+---------+---------+------------------+
//! | 0xA7 | lsn u64 | len u32 | crc u32 | payload (len B)  |
//! +------+---------+---------+---------+------------------+
//! ```
//!
//! `crc` is the IEEE CRC-32 of `lsn || len || payload` (header fields in
//! their little-endian encoding), so a flipped bit anywhere in the frame —
//! including the LSN or length — fails verification instead of being
//! replayed with a wrong header. Records are buffered and
//! flushed to storage in groups of `batch` records (group commit);
//! transaction commit/rollback and snapshot records force a flush so the
//! commit decision is always durable. Only flushed bytes survive a crash —
//! [`Journal::bytes`] deliberately exposes the durable prefix, not the
//! pending buffer, which is what makes the group-commit batch size a real
//! durability/throughput trade-off in the `journal_overhead` ablation.

use crate::record::Record;
use crate::JournalResult;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Magic byte opening every frame.
pub const FRAME_MAGIC: u8 = 0xA7;

/// Fixed frame header size: magic + lsn + len + crc.
pub const FRAME_HEADER: usize = 1 + 8 + 4 + 4;

/// Default group-commit batch size (records per flush).
pub const DEFAULT_BATCH: usize = 16;

/// The frame checksum: CRC-32 over the `lsn` and `len` header fields (in
/// their little-endian wire encoding) followed by the payload. Covering
/// the header means a corrupted LSN or length is detected rather than
/// trusted during replay.
pub fn frame_crc(lsn: u64, len: u32, payload: &[u8]) -> u32 {
    crate::codec::crc32_parts(&[&lsn.to_le_bytes(), &len.to_le_bytes(), payload])
}

/// Byte-level log storage. The in-memory implementation stands in for an
/// append-only file; the fault harness wraps one to cut writes short.
pub trait Storage: Send {
    /// Appends bytes to the durable log.
    fn append(&mut self, bytes: &[u8]) -> JournalResult<()>;
    /// Returns the durable log contents.
    fn bytes(&self) -> &[u8];
    /// Truncates the log (used by checkpointing).
    fn reset(&mut self) -> JournalResult<()>;
}

/// Plain in-memory storage.
#[derive(Debug, Default)]
pub struct MemStorage {
    buf: Vec<u8>,
}

impl MemStorage {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> JournalResult<()> {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn bytes(&self) -> &[u8] {
        &self.buf
    }

    fn reset(&mut self) -> JournalResult<()> {
        self.buf.clear();
        Ok(())
    }
}

/// Counters exposed for tests and the overhead benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended (including buffered ones).
    pub records: u64,
    /// Group-commit flushes performed.
    pub flushes: u64,
    /// Bytes made durable.
    pub bytes_flushed: u64,
    /// Storage errors swallowed on emit (the op already happened in
    /// memory; we can only count the lost durability).
    pub io_errors: u64,
    /// Commit/rollback records routed through the leader/follower group
    /// commit protocol.
    pub group_commits: u64,
    /// Group commits that rode an in-flight leader's flush instead of
    /// performing their own (the batching the protocol exists for).
    pub group_follower_waits: u64,
}

/// The write-ahead log.
///
/// Storage sits behind its own mutex (below the journal-state lock in the
/// global order) so a group-commit leader can release the state lock —
/// letting followers append — while its batch is in flight. Everything
/// else is guarded by the `Mutex<Journal>` inside [`JournalHandle`].
pub struct Journal {
    storage: Arc<Mutex<Box<dyn Storage>>>,
    next_lsn: u64,
    next_txn: u64,
    batch: usize,
    pending: Vec<u8>,
    pending_records: usize,
    /// Highest LSN whose flush attempt has completed (successfully, or
    /// with a counted `io_errors` — matching emit's "durability loss is
    /// counted, not unwound" philosophy). Group-commit followers wait for
    /// this to pass their record's LSN.
    acked_lsn: u64,
    /// True while a group-commit leader's batch is in flight.
    group_leader: bool,
    stats: JournalStats,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("next_lsn", &self.next_lsn)
            .field("next_txn", &self.next_txn)
            .field("batch", &self.batch)
            .field("pending_records", &self.pending_records)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Journal {
    /// Creates a journal over the given storage with a group-commit batch
    /// size (records per flush; 1 = flush every record).
    pub fn new(storage: Box<dyn Storage>, batch: usize) -> Self {
        Journal {
            storage: Arc::new(Mutex::new(storage)),
            next_lsn: 1,
            next_txn: 1,
            batch: batch.max(1),
            pending: Vec::new(),
            pending_records: 0,
            acked_lsn: 0,
            group_leader: false,
            stats: JournalStats::default(),
        }
    }

    /// Creates an in-memory journal.
    pub fn in_memory(batch: usize) -> Self {
        Journal::new(Box::new(MemStorage::new()), batch)
    }

    /// Returns the configured group-commit batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Returns the emit/flush counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Frames a record into the pending buffer without flushing, returning
    /// its LSN. The group-commit protocol uses this directly so the leader
    /// controls when the batch hits storage.
    pub(crate) fn append_buffered(&mut self, rec: &Record) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let payload = rec.encode();
        self.pending.push(FRAME_MAGIC);
        self.pending.extend_from_slice(&lsn.to_le_bytes());
        self.pending.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&frame_crc(lsn, payload.len() as u32, &payload).to_le_bytes());
        self.pending.extend_from_slice(&payload);
        self.pending_records += 1;
        self.stats.records += 1;
        maxoid_obs::counter_add("journal.records", 1);
        lsn
    }

    /// Appends a record, returning its LSN. Buffered until the batch fills
    /// or a flush-forcing record (commit/rollback/snapshot) arrives.
    pub fn append(&mut self, rec: &Record) -> JournalResult<u64> {
        let lsn = self.append_buffered(rec);
        if rec.forces_flush() || self.pending_records >= self.batch {
            maxoid_obs::counter_add(
                if rec.forces_flush() { "journal.flushes_forced" } else { "journal.flushes_batch" },
                1,
            );
            self.flush()?;
        }
        Ok(lsn)
    }

    /// Forces buffered frames to storage. The storage lock is taken while
    /// the journal-state lock is held (state → storage, the documented
    /// order), which serializes this behind any group-commit batch already
    /// in flight.
    pub fn flush(&mut self) -> JournalResult<()> {
        if self.pending.is_empty() {
            self.acked_lsn = self.next_lsn - 1;
            return Ok(());
        }
        let mut sp = maxoid_obs::span("journal.flush");
        let n = self.pending.len() as u64;
        if sp.is_active() {
            sp.field("bytes", n.to_string());
            sp.field("records", self.pending_records.to_string());
            maxoid_obs::observe("journal.flush_bytes", n);
            maxoid_obs::observe("journal.flush_records", self.pending_records as u64);
        }
        let res = self.storage.lock().append(&self.pending);
        self.pending.clear();
        self.pending_records = 0;
        self.acked_lsn = self.next_lsn - 1;
        match res {
            Ok(()) => {
                self.stats.flushes += 1;
                self.stats.bytes_flushed += n;
                maxoid_obs::counter_add("journal.flushes", 1);
                maxoid_obs::counter_add("journal.bytes_flushed", n);
                Ok(())
            }
            Err(e) => {
                self.stats.io_errors += 1;
                maxoid_obs::counter_add("journal.io_errors", 1);
                Err(e)
            }
        }
    }

    /// Opens a journal transaction and returns its id.
    pub fn begin_txn(&mut self) -> JournalResult<u64> {
        let txn = self.next_txn;
        self.next_txn += 1;
        self.append(&Record::TxnBegin { txn })?;
        Ok(txn)
    }

    /// Commits a journal transaction (forces a flush).
    pub fn commit_txn(&mut self, txn: u64) -> JournalResult<()> {
        self.append(&Record::TxnCommit { txn })?;
        Ok(())
    }

    /// Rolls back a journal transaction (forces a flush).
    pub fn rollback_txn(&mut self, txn: u64) -> JournalResult<()> {
        self.append(&Record::TxnRollback { txn })?;
        Ok(())
    }

    /// Returns the durable log bytes (NOT including the pending buffer —
    /// what a crash right now would leave behind).
    pub fn bytes(&self) -> Vec<u8> {
        self.storage.lock().bytes().to_vec()
    }

    /// Durable log size in bytes.
    pub fn len(&self) -> usize {
        self.storage.lock().bytes().len()
    }

    /// True when nothing has been made durable yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compacts the log: replaces its contents with the given component
    /// snapshots plus the already-durable committed `Sql` records (logical
    /// SQL history is retained so databases replay from scratch; physical
    /// VFS records are subsumed by the store snapshot). Prior snapshots for
    /// components *not* being replaced are kept.
    pub fn checkpoint(&mut self, snapshots: &[(String, Vec<u8>)]) -> JournalResult<()> {
        self.flush()?;
        let log = crate::replay::read_records(self.storage.lock().bytes());
        let committed = crate::replay::committed_records(&log);
        let mut retained: Vec<Record> = Vec::new();
        for rec in committed {
            match rec {
                Record::Snapshot { ref component, .. } => {
                    if !snapshots.iter().any(|(c, _)| c == component) {
                        retained.push(rec);
                    }
                }
                Record::Sql { .. } => retained.push(rec),
                _ => {}
            }
        }
        self.storage.lock().reset()?;
        for (component, payload) in snapshots {
            self.append(&Record::Snapshot {
                component: component.clone(),
                payload: payload.clone(),
            })?;
        }
        for rec in &retained {
            self.append(rec)?;
        }
        self.flush()
    }

    // -----------------------------------------------------------------
    // Group-commit plumbing, used by `JournalHandle`'s leader/follower
    // protocol. All of these run under the journal-state lock.
    // -----------------------------------------------------------------

    /// Highest LSN whose flush attempt has completed.
    pub(crate) fn acked_lsn(&self) -> u64 {
        self.acked_lsn
    }

    /// Whether a leader's batch is currently in flight.
    pub(crate) fn group_leader_active(&self) -> bool {
        self.group_leader
    }

    pub(crate) fn set_group_leader(&mut self, on: bool) {
        self.group_leader = on;
    }

    /// LSN of the most recently appended record.
    pub(crate) fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Detaches the pending buffer (the leader's batch), leaving the
    /// journal accepting new appends into a fresh buffer.
    pub(crate) fn take_pending(&mut self) -> Option<(Vec<u8>, usize)> {
        if self.pending.is_empty() {
            return None;
        }
        let records = self.pending_records;
        self.pending_records = 0;
        Some((std::mem::take(&mut self.pending), records))
    }

    /// Shared handle to the storage lock, so the leader can hold storage
    /// across the journal-state unlock.
    pub(crate) fn storage_handle(&self) -> Arc<Mutex<Box<dyn Storage>>> {
        self.storage.clone()
    }

    /// Books the outcome of a leader's batch write: counters on success,
    /// `io_errors` on failure, and in either case acknowledgement up to
    /// `high` (the batch is gone from the buffer; a failed write is a
    /// counted durability loss, exactly like `emit`'s).
    pub(crate) fn finish_group_flush(
        &mut self,
        batch: Option<(usize, usize)>,
        result: &JournalResult<()>,
        high: u64,
    ) {
        match result {
            Ok(()) => {
                if let Some((bytes, _records)) = batch {
                    self.stats.flushes += 1;
                    self.stats.bytes_flushed += bytes as u64;
                    maxoid_obs::counter_add("journal.flushes", 1);
                    maxoid_obs::counter_add("journal.bytes_flushed", bytes as u64);
                }
            }
            Err(_) => {
                self.stats.io_errors += 1;
                maxoid_obs::counter_add("journal.io_errors", 1);
            }
        }
        self.acked_lsn = self.acked_lsn.max(high);
    }

    pub(crate) fn note_group_commit(&mut self) {
        self.stats.group_commits += 1;
    }

    pub(crate) fn note_follower_wait(&mut self) {
        self.stats.group_follower_waits += 1;
    }
}

/// The trait the rest of the stack emits records through.
///
/// Emission is infallible by design: the in-memory mutation has already
/// happened when the record is emitted, so a storage failure can only be
/// counted (see [`JournalStats::io_errors`]), never unwound.
pub trait JournalSink: Send + Sync {
    /// Appends a record to the log.
    fn emit(&self, rec: Record);

    /// Allocates a transaction id and emits its `TxnBegin`. Emitters close
    /// the transaction with an explicit `TxnCommit`/`TxnRollback` record.
    fn begin_txn(&self) -> u64;
}

/// Shared journal state plus the condition variable followers park on
/// while a leader's batch is in flight.
#[derive(Debug)]
struct JournalShared {
    journal: Mutex<Journal>,
    flushed: Condvar,
}

/// A cloneable, lockable handle to a shared journal.
///
/// Transaction commit and rollback route through a **leader/follower
/// group commit**: the record is buffered under the state lock, then the
/// first committer becomes the leader — it pins the storage lock (still
/// under the state lock, preserving LSN order against concurrent direct
/// flushes), releases the state lock so other threads can keep appending,
/// and writes the whole accumulated batch in one storage append. Threads
/// that committed while the batch was in flight find a leader active,
/// wait on the condvar, and usually discover their record was made
/// durable by the leader's flush — many commits, one storage write.
#[derive(Debug, Clone)]
pub struct JournalHandle {
    shared: Arc<JournalShared>,
}

impl JournalHandle {
    pub fn new(journal: Journal) -> Self {
        JournalHandle {
            shared: Arc::new(JournalShared {
                journal: Mutex::new(journal),
                flushed: Condvar::new(),
            }),
        }
    }

    /// In-memory journal with the default batch size.
    pub fn in_memory() -> Self {
        JournalHandle::new(Journal::in_memory(DEFAULT_BATCH))
    }

    /// In-memory journal with an explicit group-commit batch size.
    pub fn with_batch(batch: usize) -> Self {
        JournalHandle::new(Journal::in_memory(batch))
    }

    /// Runs `f` with the journal locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut Journal) -> R) -> R {
        f(&mut self.shared.journal.lock())
    }

    /// Appends `rec` and returns once its LSN is acknowledged — either by
    /// this thread's own leader flush or by riding another thread's batch.
    /// Only the leader observes a storage error; followers' durability
    /// loss is counted in `io_errors` (the emit philosophy: the in-memory
    /// commit already happened).
    fn group_commit(&self, rec: &Record) -> JournalResult<()> {
        let mut j = self.shared.journal.lock();
        let lsn = j.append_buffered(rec);
        j.note_group_commit();
        maxoid_obs::counter_add("journal.group_commits", 1);
        loop {
            if j.acked_lsn() >= lsn {
                return Ok(());
            }
            if j.group_leader_active() {
                // A leader's batch is in flight; ours will be in the next
                // one (or was in this one). Park until it reports.
                j.note_follower_wait();
                maxoid_obs::counter_add("journal.group_follower_waits", 1);
                self.shared.flushed.wait(&mut j);
                continue;
            }
            // Become the leader. Pin the storage lock *before* releasing
            // the state lock so no concurrent direct flush can write later
            // LSNs underneath this batch (state → storage lock order).
            j.set_group_leader(true);
            let batch = j.take_pending();
            let high = j.last_lsn();
            let storage = j.storage_handle();
            let mut sguard = storage.lock();
            drop(j);
            let result = match &batch {
                Some((buf, _)) => sguard.append(buf),
                None => Ok(()),
            };
            drop(sguard);
            j = self.shared.journal.lock();
            j.finish_group_flush(batch.map(|(buf, recs)| (buf.len(), recs)), &result, high);
            j.set_group_leader(false);
            self.shared.flushed.notify_all();
            return result;
        }
    }

    pub fn begin_txn(&self) -> JournalResult<u64> {
        self.with(|j| j.begin_txn())
    }

    /// Commits a transaction through the group-commit protocol.
    pub fn commit_txn(&self, txn: u64) -> JournalResult<()> {
        self.group_commit(&Record::TxnCommit { txn })
    }

    /// Rolls back a transaction through the group-commit protocol (the
    /// rollback decision must be as durable as a commit's).
    pub fn rollback_txn(&self, txn: u64) -> JournalResult<()> {
        self.group_commit(&Record::TxnRollback { txn })
    }

    pub fn flush(&self) -> JournalResult<()> {
        self.with(|j| j.flush())
    }

    /// Durable log bytes (a crash right now loses only the pending batch).
    pub fn bytes(&self) -> Vec<u8> {
        self.with(|j| j.bytes())
    }

    pub fn stats(&self) -> JournalStats {
        self.with(|j| j.stats())
    }

    pub fn checkpoint(&self, snapshots: &[(String, Vec<u8>)]) -> JournalResult<()> {
        self.with(|j| j.checkpoint(snapshots))
    }

    /// Wraps the handle as a [`SinkRef`] for embedding in other crates'
    /// structs.
    pub fn sink(&self) -> SinkRef {
        SinkRef::new(self.clone())
    }
}

impl JournalSink for JournalHandle {
    fn emit(&self, rec: Record) {
        // Storage errors are counted in stats by flush(); emit itself
        // cannot unwind the in-memory mutation it records.
        let _ = self.with(|j| j.append(&rec));
    }

    fn begin_txn(&self) -> u64 {
        self.with(|j| {
            let txn = j.next_txn;
            j.next_txn += 1;
            let _ = j.append(&Record::TxnBegin { txn });
            txn
        })
    }
}

/// A shared sink reference that keeps `#[derive(Debug)]` working on the
/// structs that embed it (a bare `Arc<dyn JournalSink>` would not).
#[derive(Clone)]
pub struct SinkRef(Arc<dyn JournalSink>);

impl SinkRef {
    pub fn new(sink: impl JournalSink + 'static) -> Self {
        SinkRef(Arc::new(sink))
    }

    pub fn emit(&self, rec: Record) {
        self.0.emit(rec);
    }

    pub fn begin_txn(&self) -> u64 {
        self.0.begin_txn()
    }
}

impl std::fmt::Debug for SinkRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkRef(..)")
    }
}

impl From<JournalHandle> for SinkRef {
    fn from(h: JournalHandle) -> Self {
        SinkRef::new(h)
    }
}

/// A sink that drops every record — the "logging off" arm of the
/// `journal_overhead` ablation, isolating the cost of record construction
/// from the cost of framing + flushing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl JournalSink for NullSink {
    fn emit(&self, _rec: Record) {}

    fn begin_txn(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::VfsRecord;
    use crate::replay::{read_records, TailState};

    fn rec(path: &str) -> Record {
        Record::Vfs(VfsRecord::Unlink { path: path.into() })
    }

    #[test]
    fn batch_buffers_until_full() {
        let mut j = Journal::in_memory(3);
        j.append(&rec("/a")).unwrap();
        j.append(&rec("/b")).unwrap();
        assert_eq!(j.stats().flushes, 0);
        assert!(j.bytes().is_empty(), "unflushed records are not durable");
        j.append(&rec("/c")).unwrap();
        assert_eq!(j.stats().flushes, 1);
        let log = read_records(&j.bytes());
        assert_eq!(log.records.len(), 3);
        assert_eq!(log.tail, TailState::Clean);
    }

    #[test]
    fn commit_forces_flush() {
        let mut j = Journal::in_memory(100);
        let txn = j.begin_txn().unwrap();
        j.append(&rec("/a")).unwrap();
        assert_eq!(j.stats().flushes, 0);
        j.commit_txn(txn).unwrap();
        assert_eq!(j.stats().flushes, 1);
        assert_eq!(read_records(&j.bytes()).records.len(), 3);
    }

    #[test]
    fn lsns_are_monotonic_and_stamped() {
        let mut j = Journal::in_memory(1);
        let l1 = j.append(&rec("/a")).unwrap();
        let l2 = j.append(&rec("/b")).unwrap();
        assert!(l2 > l1);
        let log = read_records(&j.bytes());
        assert_eq!(log.records[0].0, l1);
        assert_eq!(log.records[1].0, l2);
    }

    #[test]
    fn checkpoint_keeps_sql_and_replaces_vfs() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        j.append(&Record::Sql { db: "d".into(), sql: "CREATE TABLE t (x)".into(), params: vec![] })
            .unwrap();
        j.checkpoint(&[("vfs.store".to_string(), vec![1, 2, 3])]).unwrap();
        let log = read_records(&j.bytes());
        let recs: Vec<&Record> = log.records.iter().map(|(_, r)| r).collect();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0], Record::Snapshot { component, payload }
            if component == "vfs.store" && payload == &vec![1, 2, 3]));
        assert!(matches!(recs[1], Record::Sql { .. }));
    }

    #[test]
    fn checkpoint_drops_uncommitted_sql() {
        let mut j = Journal::in_memory(1);
        let txn = j.begin_txn().unwrap();
        j.append(&Record::Sql { db: "d".into(), sql: "INSERT ...".into(), params: vec![] })
            .unwrap();
        j.rollback_txn(txn).unwrap();
        j.checkpoint(&[]).unwrap();
        assert_eq!(read_records(&j.bytes()).records.len(), 0);
    }

    #[test]
    fn null_sink_discards() {
        let s = NullSink;
        s.emit(rec("/a"));
    }

    #[test]
    fn handle_is_shared() {
        let h = JournalHandle::with_batch(1);
        let h2 = h.clone();
        h.emit(rec("/a"));
        h2.emit(rec("/b"));
        assert_eq!(read_records(&h.bytes()).records.len(), 2);
    }
}
