//! Fault injection: crash the system at any record boundary, or mid-frame
//! for a torn tail.
//!
//! Two complementary tools:
//!
//! * post-hoc surgery on a captured log — [`record_boundaries`] +
//!   [`crash_prefix`] / [`torn_log`] build the byte image a crash at a
//!   chosen point would have left behind, which the crash-point sweep tests
//!   then feed to recovery;
//! * [`FaultStorage`], a [`Storage`] with a byte budget that cuts a live
//!   journal's writes short, modelling power loss during a group-commit
//!   flush itself.

use crate::wal::{Storage, FRAME_HEADER, FRAME_MAGIC, LOG_PREAMBLE};
use crate::{JournalError, JournalResult};

/// Returns every crash point of a log: byte offsets at record boundaries,
/// starting with 0 (crash before anything durable) and ending at
/// `bytes.len()` (no loss). A v2 log's preamble end is itself a boundary
/// (crash after the preamble, before any frame). Stops at the first
/// invalid frame.
pub fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut out = vec![0];
    let mut pos = 0usize;
    if bytes.len() >= LOG_PREAMBLE.len() && bytes[..LOG_PREAMBLE.len()] == LOG_PREAMBLE {
        pos = LOG_PREAMBLE.len();
        out.push(pos);
    }
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER || bytes[pos] != FRAME_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos + 9..pos + 13].try_into().unwrap()) as usize;
        if bytes.len() - pos - FRAME_HEADER < len {
            break;
        }
        pos += FRAME_HEADER + len;
        out.push(pos);
    }
    out
}

/// The log a crash at `boundary` bytes would leave: a clean prefix.
pub fn crash_prefix(bytes: &[u8], boundary: usize) -> Vec<u8> {
    bytes[..boundary.min(bytes.len())].to_vec()
}

/// The log a *torn* write would leave: everything up to `boundary` plus
/// `extra` bytes of the following frame. Recovery must treat the partial
/// frame as if it were never written.
pub fn torn_log(bytes: &[u8], boundary: usize, extra: usize) -> Vec<u8> {
    let end = (boundary + extra).min(bytes.len());
    bytes[..end].to_vec()
}

/// The log a media/bit-rot fault would leave: a copy with the byte at
/// `offset` XORed by `mask`. Unlike [`torn_log`], the damage can land
/// anywhere — including under committed history — which recovery must
/// report as `Corrupted`, never absorb as a shorter-but-plausible log.
pub fn flip_byte(bytes: &[u8], offset: usize, mask: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if let Some(b) = out.get_mut(offset) {
        *b ^= mask;
    }
    out
}

/// Storage that stops persisting after a byte budget is exhausted,
/// simulating a crash during a flush. The first write that would exceed
/// the budget is truncated at the budget (a torn write) and the storage
/// reports [`JournalError::Crashed`] for it and everything after.
#[derive(Debug)]
pub struct FaultStorage {
    buf: Vec<u8>,
    budget: usize,
    crashed: bool,
}

impl FaultStorage {
    /// Storage that accepts exactly `budget` bytes before "losing power".
    pub fn with_budget(budget: usize) -> Self {
        FaultStorage { buf: Vec::new(), budget, crashed: false }
    }

    /// True once the budget has been exceeded.
    pub fn crashed(&self) -> bool {
        self.crashed
    }
}

impl Storage for FaultStorage {
    fn append(&mut self, bytes: &[u8]) -> JournalResult<()> {
        if self.crashed {
            return Err(JournalError::Crashed);
        }
        let room = self.budget - self.buf.len();
        if bytes.len() <= room {
            self.buf.extend_from_slice(bytes);
            Ok(())
        } else {
            self.buf.extend_from_slice(&bytes[..room]);
            self.crashed = true;
            Err(JournalError::Crashed)
        }
    }

    fn bytes(&mut self) -> Vec<u8> {
        self.buf.clone()
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn reset(&mut self) -> JournalResult<()> {
        if self.crashed {
            return Err(JournalError::Crashed);
        }
        self.buf.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, VfsRecord};
    use crate::replay::{committed_records, read_records, TailState};
    use crate::wal::Journal;

    fn rec(path: &str) -> Record {
        Record::Vfs(VfsRecord::Unlink { path: path.into() })
    }

    fn sample_log(n: usize) -> Vec<u8> {
        let mut j = Journal::in_memory(1);
        for i in 0..n {
            j.append(&rec(&format!("/f{i}"))).unwrap();
        }
        j.bytes()
    }

    #[test]
    fn boundaries_cover_every_record() {
        let bytes = sample_log(4);
        let b = record_boundaries(&bytes);
        // 0, the preamble end, then one boundary per record.
        assert_eq!(b.len(), 6);
        assert_eq!(*b.last().unwrap(), bytes.len());
        let counts: Vec<usize> = b
            .iter()
            .map(|&off| {
                let log = read_records(&crash_prefix(&bytes, off));
                assert_eq!(log.tail, TailState::Clean, "boundary {off}");
                log.records.len()
            })
            .collect();
        assert_eq!(counts, vec![0, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn torn_log_recovers_prefix_only() {
        let bytes = sample_log(3);
        let b = record_boundaries(&bytes);
        // b[0] = 0, b[1] = preamble end; tear 5 bytes into the second record.
        let torn = torn_log(&bytes, b[2], 5);
        let log = read_records(&torn);
        assert_eq!(log.records.len(), 1);
        assert!(matches!(log.tail, TailState::Torn { offset } if offset == b[2]));
    }

    #[test]
    fn fault_storage_truncates_at_budget() {
        let full = sample_log(10);
        // Allow roughly half the log through.
        let budget = full.len() / 2;
        let mut j = Journal::new(Box::new(FaultStorage::with_budget(budget)), 1);
        for i in 0..10 {
            let _ = j.append(&rec(&format!("/f{i}")));
        }
        let bytes = j.bytes();
        assert!(bytes.len() <= budget);
        let log = read_records(&bytes);
        assert!(log.records.len() < 10);
        assert!(j.stats().io_errors > 0);
        // The surviving prefix still replays.
        let recs = committed_records(&log);
        assert_eq!(recs.len(), log.records.len());
    }

    #[test]
    fn flip_byte_sweep_never_shortens_history() {
        let bytes = sample_log(3);
        let clean = read_records(&bytes);
        for off in 0..bytes.len() {
            for mask in [0x01, 0x80, 0xFF] {
                let log = read_records(&flip_byte(&bytes, off, mask));
                match log.tail {
                    TailState::Clean => {
                        assert_eq!(log.records.len(), clean.records.len(), "flip {off}/{mask:#x}")
                    }
                    TailState::Corrupted { .. } => {}
                    TailState::Torn { offset } => {
                        panic!("flip {off}/{mask:#x} misread as torn at {offset}")
                    }
                }
            }
        }
    }

    #[test]
    fn fault_storage_loses_uncommitted_txn() {
        // Budget admits the begin + one record but not the commit.
        let mut probe = Journal::in_memory(1);
        let t = probe.begin_txn().unwrap();
        probe.append(&rec("/x")).unwrap();
        let before_commit = probe.bytes().len();
        probe.commit_txn(t).unwrap();

        let mut j = Journal::new(Box::new(FaultStorage::with_budget(before_commit)), 1);
        let t = j.begin_txn().unwrap();
        j.append(&rec("/x")).unwrap();
        assert!(j.commit_txn(t).is_err());
        let recs = committed_records(&read_records(&j.bytes()));
        assert!(recs.is_empty(), "uncommitted txn must not apply");
    }
}
