//! Block-backed log storage: the WAL on a [`maxoid_block::BlockDevice`]
//! behind a page cache, so the journal can outgrow process memory and a
//! system can cold-boot from a file.
//!
//! On-device layout:
//!
//! ```text
//! sector 0          sector 1          sector 2 ...
//! +-----------------+-----------------+---------------------------+
//! | superblock A    | superblock B    | log bytes, densely packed |
//! | magic  (8 B)    | magic  (8 B)    | (frame stream, exactly as |
//! | gen    u64      | gen    u64      |  MemStorage would hold    |
//! | len    u64      | len    u64      |  it)                      |
//! | crc    u32      | crc    u32      |                           |
//! +-----------------+-----------------+---------------------------+
//! ```
//!
//! The superblock's `len` is the number of durable log bytes. `append`
//! writes the new bytes through the cache, issues the flush barrier, then
//! commits the superblock and issues a second barrier — so `len` never
//! points past data that reached the device. A crash between the two
//! barriers leaves the old `len`: the new bytes exist on the device but
//! were never acknowledged, exactly the "lost tail" a torn append models.
//!
//! Superblock commits alternate between **two slots** (generation `g`
//! lands in sector `g % 2`), so the commit never overwrites the slot it
//! would fall back to: a torn write during commit `g+1` can only damage
//! the slot holding stale generation `g-1`, and reopen still finds the
//! acked state `g`. This is the page-level analogue of the WAL's own
//! no-overwrite discipline — an in-place single-slot superblock would
//! make every commit a bet that sector writes are atomic.
//!
//! Open takes the valid slot with the highest generation. A non-empty
//! device where *no* slot validates (bad magic, CRC failure, impossible
//! length) is reported loudly rather than treated as an empty log —
//! shortened history must never be silent.

use crate::wal::Storage;
use crate::{JournalError, JournalResult};
use maxoid_block::{BlockDevice, BlockError, PageCache};

/// Magic opening the superblock sector.
pub const SUPERBLOCK_MAGIC: [u8; 8] = *b"MXBLKSB\0";

/// Size of the meaningful superblock prefix: magic + gen + len + crc.
const SUPERBLOCK_LEN: usize = 8 + 8 + 8 + 4;

fn superblock_crc(gen: u64, len: u64) -> u32 {
    crate::codec::crc32_parts(&[&SUPERBLOCK_MAGIC, &gen.to_le_bytes(), &len.to_le_bytes()])
}

/// Parses one superblock slot; `None` if the slot doesn't validate.
fn parse_slot(sb: &[u8]) -> Option<(u64, u64)> {
    if sb[..8] != SUPERBLOCK_MAGIC {
        return None;
    }
    let gen = u64::from_le_bytes(sb[8..16].try_into().unwrap());
    let len = u64::from_le_bytes(sb[16..24].try_into().unwrap());
    let crc = u32::from_le_bytes(sb[24..28].try_into().unwrap());
    (crc == superblock_crc(gen, len)).then_some((gen, len))
}

fn block_err(e: BlockError) -> JournalError {
    match e {
        BlockError::Crashed => JournalError::Crashed,
        other => JournalError::Io(other.to_string()),
    }
}

/// [`Storage`] over a block device: a page cache plus the superblock
/// protocol described in the module docs.
pub struct BlockStorage {
    cache: PageCache,
    /// Durable log length in bytes (mirrors the newest superblock).
    len: u64,
    /// Generation of the newest committed superblock (0 = never written).
    gen: u64,
}

impl std::fmt::Debug for BlockStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStorage")
            .field("len", &self.len)
            .field("gen", &self.gen)
            .field("cache", &self.cache)
            .finish()
    }
}

impl BlockStorage {
    /// Opens (or initializes) a log on `dev` with a `pages`-page cache.
    ///
    /// * empty device → a fresh log (superblock written on first append);
    /// * valid superblock → the existing log, ready for cold-boot replay
    ///   and further appends;
    /// * anything else → [`JournalError::Io`], loudly.
    pub fn open(dev: Box<dyn BlockDevice>, pages: usize) -> JournalResult<Self> {
        let mut cache = PageCache::new(dev, pages.max(2));
        if cache.device().len_sectors() == 0 {
            return Ok(BlockStorage { cache, len: 0, gen: 0 });
        }
        let capacity = (cache.device().len_sectors() * cache.page_size() as u64)
            .saturating_sub(self::data_origin(&cache));
        let mut best: Option<(u64, u64)> = None;
        for slot in 0..2u64 {
            let mut sb = vec![0u8; SUPERBLOCK_LEN];
            cache.read_bytes(slot * cache.page_size() as u64, &mut sb).map_err(block_err)?;
            if let Some((gen, len)) = parse_slot(&sb) {
                // A length past the device end is damage even if the CRC
                // happened to survive.
                if len <= capacity && best.map_or(true, |(g, _)| gen > g) {
                    best = Some((gen, len));
                }
            }
        }
        let Some((gen, len)) = best else {
            return Err(JournalError::Io(
                "no valid block log superblock: not a journal device, or both slots damaged".into(),
            ));
        };
        Ok(BlockStorage { cache, len, gen })
    }

    /// Opens a log on an in-memory device (tests).
    pub fn in_memory(pages: usize) -> Self {
        Self::open(Box::new(maxoid_block::MemDevice::new()), pages)
            .expect("an empty mem device always opens")
    }

    /// Page-cache counters (hits/misses/evictions/writeback).
    pub fn cache_stats(&self) -> maxoid_block::CacheStats {
        self.cache.stats()
    }

    /// The underlying device (tests corrupt it; benches size it).
    pub fn device(&self) -> &dyn BlockDevice {
        self.cache.device()
    }

    /// Mutable device access for fault injection. Media damage does not
    /// invalidate resident pages by itself — pair with
    /// [`BlockStorage::drop_clean_pages`] or reopen the device.
    pub fn device_mut(&mut self) -> &mut dyn BlockDevice {
        self.cache.device_mut()
    }

    /// Drops clean resident pages so a test's out-of-band device
    /// corruption becomes visible to subsequent reads.
    pub fn drop_clean_pages(&mut self) {
        self.cache.drop_clean()
    }

    /// Byte offset where log data starts (after both superblock slots).
    fn origin(&self) -> u64 {
        data_origin(&self.cache)
    }

    /// Commits the current `len` to the next superblock slot and advances
    /// the generation — only after the flush barrier succeeds, so a
    /// failed commit leaves the previous slot as the durable truth.
    fn commit_superblock(&mut self) -> JournalResult<()> {
        let gen = self.gen + 1;
        let mut sb = Vec::with_capacity(SUPERBLOCK_LEN);
        sb.extend_from_slice(&SUPERBLOCK_MAGIC);
        sb.extend_from_slice(&gen.to_le_bytes());
        sb.extend_from_slice(&self.len.to_le_bytes());
        sb.extend_from_slice(&superblock_crc(gen, self.len).to_le_bytes());
        let slot = (gen % 2) * self.cache.page_size() as u64;
        self.cache.write_bytes(slot, &sb).map_err(block_err)?;
        self.cache.flush().map_err(block_err)?;
        self.gen = gen;
        Ok(())
    }
}

fn data_origin(cache: &PageCache) -> u64 {
    2 * cache.page_size() as u64
}

impl Storage for BlockStorage {
    fn append(&mut self, bytes: &[u8]) -> JournalResult<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        // Data first, barrier, then the length that makes it reachable,
        // barrier again: `len` can never run ahead of flushed data.
        let origin = self.origin();
        self.cache.write_bytes(origin + self.len, bytes).map_err(block_err)?;
        self.cache.flush().map_err(block_err)?;
        self.len += bytes.len() as u64;
        if let Err(e) = self.commit_superblock() {
            // The superblock commit failed: the appended bytes are
            // unreachable, so the in-memory length must not count them.
            self.len -= bytes.len() as u64;
            return Err(e);
        }
        Ok(())
    }

    fn bytes(&mut self) -> Vec<u8> {
        let mut out = vec![0u8; self.len as usize];
        let origin = self.origin();
        if self.cache.read_bytes(origin, &mut out).is_err() {
            // A read failure below the WAL is indistinguishable from a
            // missing tail; surface it as the shortest safe log.
            return Vec::new();
        }
        out
    }

    fn len(&self) -> usize {
        self.len as usize
    }

    fn reset(&mut self) -> JournalResult<()> {
        self.len = 0;
        self.commit_superblock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, VfsRecord};
    use crate::replay::{read_records, TailState};
    use crate::wal::Journal;
    use maxoid_block::{FaultDevice, FileDevice, MemDevice};

    fn rec(path: &str) -> Record {
        Record::Vfs(VfsRecord::Unlink { path: path.into() })
    }

    #[test]
    fn wal_over_blocks_roundtrips() {
        let mut j = Journal::new(Box::new(BlockStorage::in_memory(8)), 1);
        for i in 0..20 {
            j.append(&rec(&format!("/f{i}"))).unwrap();
        }
        let log = read_records(&j.bytes());
        assert_eq!(log.records.len(), 20);
        assert_eq!(log.tail, TailState::Clean);
    }

    #[test]
    fn log_survives_reopen() {
        let mut dev = FileDevice::temp("wal-reopen").unwrap();
        dev.set_delete_on_drop(false);
        let path = dev.path().to_path_buf();
        let mut j = Journal::new(Box::new(BlockStorage::open(Box::new(dev), 8).unwrap()), 1);
        for i in 0..5 {
            j.append(&rec(&format!("/f{i}"))).unwrap();
        }
        let want = j.bytes();
        drop(j);

        let mut reopened = FileDevice::open(&path).unwrap();
        reopened.set_delete_on_drop(true);
        let mut storage = BlockStorage::open(Box::new(reopened), 8).unwrap();
        assert_eq!(storage.bytes(), want, "cold reopen must see the identical log");
        // And the reopened storage keeps appending.
        let mut j2 = Journal::new(Box::new(storage), 1);
        j2.append(&rec("/post-reboot")).unwrap();
        assert_eq!(read_records(&j2.bytes()).records.len(), 6);
    }

    #[test]
    fn tiny_cache_still_serves_the_whole_log() {
        // 2 pages of 4096B cache a multi-sector log: every read_bytes
        // walk faults pages in and out, and the log is still exact.
        let mut j = Journal::new(Box::new(BlockStorage::in_memory(2)), 4);
        for i in 0..200 {
            j.append(&rec(&format!("/some/deeply/nested/path/file-{i}"))).unwrap();
        }
        j.flush().unwrap();
        let log = read_records(&j.bytes());
        assert_eq!(log.records.len(), 200);
        assert_eq!(log.tail, TailState::Clean);
    }

    #[test]
    fn reset_then_append_reuses_the_device() {
        let mut s = BlockStorage::in_memory(4);
        s.append(b"old history").unwrap();
        s.reset().unwrap();
        assert_eq!(s.len(), 0);
        assert!(s.bytes().is_empty());
        s.append(b"new").unwrap();
        assert_eq!(s.bytes(), b"new");
    }

    /// Clones the raw device image into a fresh `MemDevice`, exactly as a
    /// reboot sees the platter.
    fn image_of(s: &mut BlockStorage) -> MemDevice {
        let mut img = MemDevice::new();
        let ss = s.device().sector_size();
        let mut buf = vec![0u8; ss];
        for sec in 0..s.device().len_sectors() {
            s.device_mut().read_sector(sec, &mut buf).unwrap();
            img.write_sector(sec, &buf).unwrap();
        }
        img
    }

    #[test]
    fn superblock_corruption_is_loud() {
        let mut s = BlockStorage::in_memory(4);
        // One append: generation 1 lives in slot 1 (sector 1); slot 0 has
        // never been written. Damaging the only valid slot must refuse to
        // open rather than guess the log length.
        s.append(b"payload").unwrap();
        let mut img = image_of(&mut s);
        img.corrupt(4096 + 17, 0x40); // inside slot 1's len field
        let err = BlockStorage::open(Box::new(img), 4);
        assert!(matches!(err, Err(JournalError::Io(_))), "corrupt superblock must not open");
    }

    #[test]
    fn torn_superblock_commit_falls_back_to_the_acked_slot() {
        let mut s = BlockStorage::in_memory(4);
        s.append(b"first").unwrap(); // gen 1 → slot 1
        s.append(b"second").unwrap(); // gen 2 → slot 0
        let mut img = image_of(&mut s);
        // Simulate a torn commit of gen 3: it would target slot 1 (the
        // stale gen-1 slot), so shred that sector. Gen 2 — the newest
        // *acked* state — must still open with both appends readable.
        for off in 4096..(4096 + 28) {
            img.corrupt(off as u64, 0xA5);
        }
        let mut reopened = BlockStorage::open(Box::new(img), 4).expect("fallback slot must open");
        assert_eq!(reopened.bytes(), b"firstsecond");
    }

    #[test]
    fn non_journal_device_is_rejected() {
        let mut dev = MemDevice::new();
        dev.write_sector(0, &vec![0xAB; 4096]).unwrap();
        assert!(matches!(BlockStorage::open(Box::new(dev), 4), Err(JournalError::Io(_))));
    }

    #[test]
    fn power_loss_mid_append_never_acks() {
        // Budget: superblock + a couple of data sectors, then the cord.
        let inner = MemDevice::new();
        let fault = FaultDevice::with_write_budget(Box::new(inner), 3, 17);
        let storage = BlockStorage::open(Box::new(fault), 4).unwrap();
        let mut j = Journal::new(Box::new(storage), 1);
        let mut last_ok = 0;
        for i in 0..50 {
            if j.append(&rec(&format!("/f{i}"))).is_ok() && j.stats().io_errors == 0 {
                last_ok = i + 1;
            }
        }
        assert!(j.stats().io_errors > 0, "the cord was pulled");
        assert!(last_ok < 50);
    }
}
