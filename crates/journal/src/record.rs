//! Typed journal records and their binary encoding.
//!
//! The journal sits *below* every other crate, so records carry plain
//! strings and integers rather than `maxoid-vfs`/`maxoid-sqldb` types: the
//! emitting crate lowers its values into record form and the recovery code
//! raises them back. VFS mutations are logged physically (the eight leaf
//! store primitives, including full write payloads — composite operations
//! like `copy_all` decompose into these); SQL mutations are logged
//! logically (statement text plus bound parameters, replayed through the
//! parser so the rebuilt catalog includes views, triggers and indexes).

use crate::codec::{ByteReader, ByteWriter, CodecError};

/// A bound SQL parameter value, mirroring `maxoid_sqldb::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    Null,
    Int(i64),
    Real(f64),
    Text(String),
    Blob(Vec<u8>),
}

/// A physically-logged backing-store mutation.
///
/// `owner` is a raw uid and `mode` a 4-bit permission mask
/// (`owner_read | owner_write<<1 | world_read<<2 | world_write<<3`), so the
/// journal stays independent of `maxoid-vfs` types.
#[derive(Debug, Clone, PartialEq)]
pub enum VfsRecord {
    Mkdir {
        path: String,
        owner: u32,
        mode: u8,
    },
    Write {
        path: String,
        data: Vec<u8>,
        owner: u32,
        mode: u8,
    },
    Append {
        path: String,
        data: Vec<u8>,
    },
    /// Overwrite by inode id (open file handles). Valid to replay because
    /// inode allocation is deterministic given the same operation history.
    WriteInode {
        inode: u64,
        data: Vec<u8>,
    },
    Unlink {
        path: String,
    },
    Rmdir {
        path: String,
    },
    Rename {
        from: String,
        to: String,
    },
    ChownChmod {
        path: String,
        owner: u32,
        mode: u8,
    },
}

/// One typed journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Opens journal transaction `txn`. Transactions may nest; a record is
    /// effective on replay only if every enclosing transaction committed.
    TxnBegin { txn: u64 },
    /// Commits journal transaction `txn`. Forces a group-commit flush.
    TxnCommit { txn: u64 },
    /// Rolls back journal transaction `txn`; enclosed records are ignored
    /// on replay. Forces a flush.
    TxnRollback { txn: u64 },
    /// A logically-logged SQL mutation against database `db`.
    Sql { db: String, sql: String, params: Vec<ParamValue> },
    /// An opaque component snapshot (e.g. an exact VFS store image).
    /// Replay restores the snapshot, then applies later records.
    Snapshot { component: String, payload: Vec<u8> },
    /// A physically-logged backing-store mutation.
    Vfs(VfsRecord),
}

// Record tags.
const T_TXN_BEGIN: u8 = 1;
const T_TXN_COMMIT: u8 = 2;
const T_TXN_ROLLBACK: u8 = 3;
const T_SQL: u8 = 4;
const T_SNAPSHOT: u8 = 5;
const T_VFS: u8 = 6;

// VfsRecord tags.
const V_MKDIR: u8 = 1;
const V_WRITE: u8 = 2;
const V_APPEND: u8 = 3;
const V_WRITE_INODE: u8 = 4;
const V_UNLINK: u8 = 5;
const V_RMDIR: u8 = 6;
const V_RENAME: u8 = 7;
const V_CHOWN_CHMOD: u8 = 8;

// ParamValue tags.
const P_NULL: u8 = 0;
const P_INT: u8 = 1;
const P_REAL: u8 = 2;
const P_TEXT: u8 = 3;
const P_BLOB: u8 = 4;

impl ParamValue {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            ParamValue::Null => w.put_u8(P_NULL),
            ParamValue::Int(v) => {
                w.put_u8(P_INT);
                w.put_i64(*v);
            }
            ParamValue::Real(v) => {
                w.put_u8(P_REAL);
                w.put_f64(*v);
            }
            ParamValue::Text(v) => {
                w.put_u8(P_TEXT);
                w.put_str(v);
            }
            ParamValue::Blob(v) => {
                w.put_u8(P_BLOB);
                w.put_bytes(v);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            P_NULL => ParamValue::Null,
            P_INT => ParamValue::Int(r.get_i64()?),
            P_REAL => ParamValue::Real(r.get_f64()?),
            P_TEXT => ParamValue::Text(r.get_str()?),
            P_BLOB => ParamValue::Blob(r.get_bytes()?),
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

impl VfsRecord {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            VfsRecord::Mkdir { path, owner, mode } => {
                w.put_u8(V_MKDIR);
                w.put_str(path);
                w.put_u32(*owner);
                w.put_u8(*mode);
            }
            VfsRecord::Write { path, data, owner, mode } => {
                w.put_u8(V_WRITE);
                w.put_str(path);
                w.put_bytes(data);
                w.put_u32(*owner);
                w.put_u8(*mode);
            }
            VfsRecord::Append { path, data } => {
                w.put_u8(V_APPEND);
                w.put_str(path);
                w.put_bytes(data);
            }
            VfsRecord::WriteInode { inode, data } => {
                w.put_u8(V_WRITE_INODE);
                w.put_u64(*inode);
                w.put_bytes(data);
            }
            VfsRecord::Unlink { path } => {
                w.put_u8(V_UNLINK);
                w.put_str(path);
            }
            VfsRecord::Rmdir { path } => {
                w.put_u8(V_RMDIR);
                w.put_str(path);
            }
            VfsRecord::Rename { from, to } => {
                w.put_u8(V_RENAME);
                w.put_str(from);
                w.put_str(to);
            }
            VfsRecord::ChownChmod { path, owner, mode } => {
                w.put_u8(V_CHOWN_CHMOD);
                w.put_str(path);
                w.put_u32(*owner);
                w.put_u8(*mode);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            V_MKDIR => {
                VfsRecord::Mkdir { path: r.get_str()?, owner: r.get_u32()?, mode: r.get_u8()? }
            }
            V_WRITE => VfsRecord::Write {
                path: r.get_str()?,
                data: r.get_bytes()?,
                owner: r.get_u32()?,
                mode: r.get_u8()?,
            },
            V_APPEND => VfsRecord::Append { path: r.get_str()?, data: r.get_bytes()? },
            V_WRITE_INODE => VfsRecord::WriteInode { inode: r.get_u64()?, data: r.get_bytes()? },
            V_UNLINK => VfsRecord::Unlink { path: r.get_str()? },
            V_RMDIR => VfsRecord::Rmdir { path: r.get_str()? },
            V_RENAME => VfsRecord::Rename { from: r.get_str()?, to: r.get_str()? },
            V_CHOWN_CHMOD => {
                VfsRecord::ChownChmod { path: r.get_str()?, owner: r.get_u32()?, mode: r.get_u8()? }
            }
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

impl Record {
    /// Encodes the record into a standalone payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Record::TxnBegin { txn } => {
                w.put_u8(T_TXN_BEGIN);
                w.put_u64(*txn);
            }
            Record::TxnCommit { txn } => {
                w.put_u8(T_TXN_COMMIT);
                w.put_u64(*txn);
            }
            Record::TxnRollback { txn } => {
                w.put_u8(T_TXN_ROLLBACK);
                w.put_u64(*txn);
            }
            Record::Sql { db, sql, params } => {
                w.put_u8(T_SQL);
                w.put_str(db);
                w.put_str(sql);
                w.put_u32(params.len() as u32);
                for p in params {
                    p.encode(&mut w);
                }
            }
            Record::Snapshot { component, payload } => {
                w.put_u8(T_SNAPSHOT);
                w.put_str(component);
                w.put_bytes(payload);
            }
            Record::Vfs(v) => {
                w.put_u8(T_VFS);
                v.encode(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Decodes a record from a payload produced by [`Record::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(payload);
        let rec = match r.get_u8()? {
            T_TXN_BEGIN => Record::TxnBegin { txn: r.get_u64()? },
            T_TXN_COMMIT => Record::TxnCommit { txn: r.get_u64()? },
            T_TXN_ROLLBACK => Record::TxnRollback { txn: r.get_u64()? },
            T_SQL => {
                let db = r.get_str()?;
                let sql = r.get_str()?;
                let n = r.get_u32()? as usize;
                let mut params = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    params.push(ParamValue::decode(&mut r)?);
                }
                Record::Sql { db, sql, params }
            }
            T_SNAPSHOT => Record::Snapshot { component: r.get_str()?, payload: r.get_bytes()? },
            T_VFS => Record::Vfs(VfsRecord::decode(&mut r)?),
            t => return Err(CodecError::BadTag(t)),
        };
        Ok(rec)
    }

    /// True for records that must force a group-commit flush: transaction
    /// boundaries (durability of the commit decision) and snapshots.
    pub fn forces_flush(&self) -> bool {
        matches!(
            self,
            Record::TxnCommit { .. } | Record::TxnRollback { .. } | Record::Snapshot { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: Record) {
        let bytes = rec.encode();
        assert_eq!(Record::decode(&bytes).unwrap(), rec);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Record::TxnBegin { txn: 7 });
        roundtrip(Record::TxnCommit { txn: 7 });
        roundtrip(Record::TxnRollback { txn: u64::MAX });
        roundtrip(Record::Sql {
            db: "db.media".into(),
            sql: "INSERT INTO files (path) VALUES (?1)".into(),
            params: vec![
                ParamValue::Null,
                ParamValue::Int(-3),
                ParamValue::Real(1.25),
                ParamValue::Text("x".into()),
                ParamValue::Blob(vec![0, 255]),
            ],
        });
        roundtrip(Record::Snapshot { component: "vfs.store".into(), payload: vec![9; 100] });
        roundtrip(Record::Vfs(VfsRecord::Mkdir {
            path: "/a/b".into(),
            owner: 10001,
            mode: 0b1111,
        }));
        roundtrip(Record::Vfs(VfsRecord::Write {
            path: "/a/b/f".into(),
            data: b"hello".to_vec(),
            owner: 0,
            mode: 0b0011,
        }));
        roundtrip(Record::Vfs(VfsRecord::Append { path: "/f".into(), data: vec![] }));
        roundtrip(Record::Vfs(VfsRecord::WriteInode { inode: 42, data: b"z".to_vec() }));
        roundtrip(Record::Vfs(VfsRecord::Unlink { path: "/f".into() }));
        roundtrip(Record::Vfs(VfsRecord::Rmdir { path: "/d".into() }));
        roundtrip(Record::Vfs(VfsRecord::Rename { from: "/a".into(), to: "/b".into() }));
        roundtrip(Record::Vfs(VfsRecord::ChownChmod { path: "/p".into(), owner: 1000, mode: 1 }));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert!(matches!(Record::decode(&[200]), Err(CodecError::BadTag(200))));
    }

    #[test]
    fn flush_forcing_records() {
        assert!(Record::TxnCommit { txn: 1 }.forces_flush());
        assert!(Record::TxnRollback { txn: 1 }.forces_flush());
        assert!(Record::Snapshot { component: "c".into(), payload: vec![] }.forces_flush());
        assert!(!Record::TxnBegin { txn: 1 }.forces_flush());
        assert!(!Record::Vfs(VfsRecord::Unlink { path: "/f".into() }).forces_flush());
    }
}
