//! Typed journal records and their binary encoding.
//!
//! The journal sits *below* every other crate, so records carry plain
//! strings and integers rather than `maxoid-vfs`/`maxoid-sqldb` types: the
//! emitting crate lowers its values into record form and the recovery code
//! raises them back. VFS mutations are logged physically (the eight leaf
//! store primitives, including full write payloads — composite operations
//! like `copy_all` decompose into these); SQL mutations are logged
//! logically (statement text plus bound parameters, replayed through the
//! parser so the rebuilt catalog includes views, triggers and indexes).

use crate::codec::{ByteReader, ByteWriter, CodecError};
use std::collections::HashMap;

/// Sentinel meaning "encode this path literally" in a v2 path slot.
pub(crate) const LITERAL_PATH: u32 = u32::MAX;

// v2 path-field tags: a path slot is either the string itself or a
// dictionary id defined by an earlier `PathDef` record.
const PATH_LITERAL: u8 = 0;
const PATH_ID: u8 = 1;

/// A bound SQL parameter value, mirroring `maxoid_sqldb::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    Null,
    Int(i64),
    Real(f64),
    Text(String),
    Blob(Vec<u8>),
}

/// A physically-logged backing-store mutation.
///
/// `owner` is a raw uid and `mode` a 4-bit permission mask
/// (`owner_read | owner_write<<1 | world_read<<2 | world_write<<3`), so the
/// journal stays independent of `maxoid-vfs` types.
#[derive(Debug, Clone, PartialEq)]
pub enum VfsRecord {
    Mkdir {
        path: String,
        owner: u32,
        mode: u8,
    },
    Write {
        path: String,
        data: Vec<u8>,
        owner: u32,
        mode: u8,
    },
    Append {
        path: String,
        data: Vec<u8>,
    },
    /// Overwrite by inode id (open file handles). Valid to replay because
    /// inode allocation is deterministic given the same operation history.
    WriteInode {
        inode: u64,
        data: Vec<u8>,
    },
    Unlink {
        path: String,
    },
    Rmdir {
        path: String,
    },
    Rename {
        from: String,
        to: String,
    },
    ChownChmod {
        path: String,
        owner: u32,
        mode: u8,
    },
    /// Overwrite logged as a delta against the file's previous contents:
    /// the new payload is `old[..prefix] ++ data ++ old[old_len-suffix..]`.
    /// Emitted instead of a full `Write` when the changed span is small
    /// relative to the new length; owner/mode are unchanged by an
    /// overwrite, so they are not logged.
    WriteDelta {
        path: String,
        prefix: u32,
        suffix: u32,
        data: Vec<u8>,
    },
    /// [`VfsRecord::WriteDelta`] addressed by inode id (open handles).
    WriteInodeDelta {
        inode: u64,
        prefix: u32,
        suffix: u32,
        data: Vec<u8>,
    },
}

/// One typed journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Opens journal transaction `txn`. Transactions may nest; a record is
    /// effective on replay only if every enclosing transaction committed.
    TxnBegin { txn: u64 },
    /// Commits journal transaction `txn`. Forces a group-commit flush.
    TxnCommit { txn: u64 },
    /// Rolls back journal transaction `txn`; enclosed records are ignored
    /// on replay. Forces a flush.
    TxnRollback { txn: u64 },
    /// A logically-logged SQL mutation against database `db`.
    Sql { db: String, sql: String, params: Vec<ParamValue> },
    /// An opaque component snapshot (e.g. an exact VFS store image).
    /// Replay restores the snapshot, then applies later records.
    Snapshot { component: String, payload: Vec<u8> },
    /// A physically-logged backing-store mutation.
    Vfs(VfsRecord),
    /// Defines path-dictionary id `id` as `path` for every later record in
    /// the log. Pure framing metadata: it carries no state and is skipped
    /// by the redo filter.
    PathDef { id: u32, path: String },
    /// An incremental component snapshot: only the state dirtied since the
    /// previous `Snapshot`/`SnapshotDelta` for this component. Replay
    /// merges it over whatever those earlier records rebuilt.
    SnapshotDelta { component: String, payload: Vec<u8> },
    /// Marks a log produced by compaction: the records that follow
    /// reconstruct the live state that history up to `upto_lsn` had built.
    /// Informational on replay.
    Compaction { upto_lsn: u64 },
}

// Record tags.
const T_TXN_BEGIN: u8 = 1;
const T_TXN_COMMIT: u8 = 2;
const T_TXN_ROLLBACK: u8 = 3;
const T_SQL: u8 = 4;
const T_SNAPSHOT: u8 = 5;
const T_VFS: u8 = 6;
const T_PATH_DEF: u8 = 7;
const T_SNAPSHOT_DELTA: u8 = 8;
const T_COMPACTION: u8 = 9;

// VfsRecord tags.
const V_MKDIR: u8 = 1;
const V_WRITE: u8 = 2;
const V_APPEND: u8 = 3;
const V_WRITE_INODE: u8 = 4;
const V_UNLINK: u8 = 5;
const V_RMDIR: u8 = 6;
const V_RENAME: u8 = 7;
const V_CHOWN_CHMOD: u8 = 8;
const V_WRITE_DELTA: u8 = 9;
const V_WRITE_INODE_DELTA: u8 = 10;

// ParamValue tags.
const P_NULL: u8 = 0;
const P_INT: u8 = 1;
const P_REAL: u8 = 2;
const P_TEXT: u8 = 3;
const P_BLOB: u8 = 4;

impl ParamValue {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            ParamValue::Null => w.put_u8(P_NULL),
            ParamValue::Int(v) => {
                w.put_u8(P_INT);
                w.put_i64(*v);
            }
            ParamValue::Real(v) => {
                w.put_u8(P_REAL);
                w.put_f64(*v);
            }
            ParamValue::Text(v) => {
                w.put_u8(P_TEXT);
                w.put_str(v);
            }
            ParamValue::Blob(v) => {
                w.put_u8(P_BLOB);
                w.put_bytes(v);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            P_NULL => ParamValue::Null,
            P_INT => ParamValue::Int(r.get_i64()?),
            P_REAL => ParamValue::Real(r.get_f64()?),
            P_TEXT => ParamValue::Text(r.get_str()?),
            P_BLOB => ParamValue::Blob(r.get_bytes()?),
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

impl VfsRecord {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            VfsRecord::Mkdir { path, owner, mode } => {
                w.put_u8(V_MKDIR);
                w.put_str(path);
                w.put_u32(*owner);
                w.put_u8(*mode);
            }
            VfsRecord::Write { path, data, owner, mode } => {
                w.put_u8(V_WRITE);
                w.put_str(path);
                w.put_bytes(data);
                w.put_u32(*owner);
                w.put_u8(*mode);
            }
            VfsRecord::Append { path, data } => {
                w.put_u8(V_APPEND);
                w.put_str(path);
                w.put_bytes(data);
            }
            VfsRecord::WriteInode { inode, data } => {
                w.put_u8(V_WRITE_INODE);
                w.put_u64(*inode);
                w.put_bytes(data);
            }
            VfsRecord::Unlink { path } => {
                w.put_u8(V_UNLINK);
                w.put_str(path);
            }
            VfsRecord::Rmdir { path } => {
                w.put_u8(V_RMDIR);
                w.put_str(path);
            }
            VfsRecord::Rename { from, to } => {
                w.put_u8(V_RENAME);
                w.put_str(from);
                w.put_str(to);
            }
            VfsRecord::ChownChmod { path, owner, mode } => {
                w.put_u8(V_CHOWN_CHMOD);
                w.put_str(path);
                w.put_u32(*owner);
                w.put_u8(*mode);
            }
            VfsRecord::WriteDelta { path, prefix, suffix, data } => {
                w.put_u8(V_WRITE_DELTA);
                w.put_str(path);
                w.put_u32(*prefix);
                w.put_u32(*suffix);
                w.put_bytes(data);
            }
            VfsRecord::WriteInodeDelta { inode, prefix, suffix, data } => {
                w.put_u8(V_WRITE_INODE_DELTA);
                w.put_u64(*inode);
                w.put_u32(*prefix);
                w.put_u32(*suffix);
                w.put_bytes(data);
            }
        }
    }

    /// The record's path fields (rename is the only two-path record), in
    /// a fixed slot order matching the id array of the v2 encoder.
    pub(crate) fn paths(&self) -> [Option<&str>; 2] {
        match self {
            VfsRecord::Mkdir { path, .. }
            | VfsRecord::Write { path, .. }
            | VfsRecord::Append { path, .. }
            | VfsRecord::Unlink { path }
            | VfsRecord::Rmdir { path }
            | VfsRecord::ChownChmod { path, .. }
            | VfsRecord::WriteDelta { path, .. } => [Some(path), None],
            VfsRecord::Rename { from, to } => [Some(from), Some(to)],
            VfsRecord::WriteInode { .. } | VfsRecord::WriteInodeDelta { .. } => [None, None],
        }
    }

    /// v2 encoding: identical to v1 except every path field becomes a
    /// tagged slot — the literal string, or a u32 dictionary id assigned
    /// by an earlier `PathDef` (4 bytes however long the path is).
    fn encode_v2(&self, w: &mut ByteWriter, ids: [u32; 2]) {
        match self {
            VfsRecord::Mkdir { path, owner, mode } => {
                w.put_u8(V_MKDIR);
                put_path(w, path, ids[0]);
                w.put_u32(*owner);
                w.put_u8(*mode);
            }
            VfsRecord::Write { path, data, owner, mode } => {
                w.put_u8(V_WRITE);
                put_path(w, path, ids[0]);
                w.put_bytes(data);
                w.put_u32(*owner);
                w.put_u8(*mode);
            }
            VfsRecord::Append { path, data } => {
                w.put_u8(V_APPEND);
                put_path(w, path, ids[0]);
                w.put_bytes(data);
            }
            VfsRecord::WriteInode { inode, data } => {
                w.put_u8(V_WRITE_INODE);
                w.put_u64(*inode);
                w.put_bytes(data);
            }
            VfsRecord::Unlink { path } => {
                w.put_u8(V_UNLINK);
                put_path(w, path, ids[0]);
            }
            VfsRecord::Rmdir { path } => {
                w.put_u8(V_RMDIR);
                put_path(w, path, ids[0]);
            }
            VfsRecord::Rename { from, to } => {
                w.put_u8(V_RENAME);
                put_path(w, from, ids[0]);
                put_path(w, to, ids[1]);
            }
            VfsRecord::ChownChmod { path, owner, mode } => {
                w.put_u8(V_CHOWN_CHMOD);
                put_path(w, path, ids[0]);
                w.put_u32(*owner);
                w.put_u8(*mode);
            }
            VfsRecord::WriteDelta { path, prefix, suffix, data } => {
                w.put_u8(V_WRITE_DELTA);
                put_path(w, path, ids[0]);
                w.put_u32(*prefix);
                w.put_u32(*suffix);
                w.put_bytes(data);
            }
            VfsRecord::WriteInodeDelta { inode, prefix, suffix, data } => {
                w.put_u8(V_WRITE_INODE_DELTA);
                w.put_u64(*inode);
                w.put_u32(*prefix);
                w.put_u32(*suffix);
                w.put_bytes(data);
            }
        }
    }

    fn decode_v2(
        r: &mut ByteReader<'_>,
        dict: Option<&HashMap<u32, String>>,
    ) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            V_MKDIR => VfsRecord::Mkdir {
                path: get_path(r, dict)?,
                owner: r.get_u32()?,
                mode: r.get_u8()?,
            },
            V_WRITE => VfsRecord::Write {
                path: get_path(r, dict)?,
                data: r.get_bytes()?,
                owner: r.get_u32()?,
                mode: r.get_u8()?,
            },
            V_APPEND => VfsRecord::Append { path: get_path(r, dict)?, data: r.get_bytes()? },
            V_WRITE_INODE => VfsRecord::WriteInode { inode: r.get_u64()?, data: r.get_bytes()? },
            V_UNLINK => VfsRecord::Unlink { path: get_path(r, dict)? },
            V_RMDIR => VfsRecord::Rmdir { path: get_path(r, dict)? },
            V_RENAME => VfsRecord::Rename { from: get_path(r, dict)?, to: get_path(r, dict)? },
            V_CHOWN_CHMOD => VfsRecord::ChownChmod {
                path: get_path(r, dict)?,
                owner: r.get_u32()?,
                mode: r.get_u8()?,
            },
            V_WRITE_DELTA => VfsRecord::WriteDelta {
                path: get_path(r, dict)?,
                prefix: r.get_u32()?,
                suffix: r.get_u32()?,
                data: r.get_bytes()?,
            },
            V_WRITE_INODE_DELTA => VfsRecord::WriteInodeDelta {
                inode: r.get_u64()?,
                prefix: r.get_u32()?,
                suffix: r.get_u32()?,
                data: r.get_bytes()?,
            },
            t => return Err(CodecError::BadTag(t)),
        })
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            V_MKDIR => {
                VfsRecord::Mkdir { path: r.get_str()?, owner: r.get_u32()?, mode: r.get_u8()? }
            }
            V_WRITE => VfsRecord::Write {
                path: r.get_str()?,
                data: r.get_bytes()?,
                owner: r.get_u32()?,
                mode: r.get_u8()?,
            },
            V_APPEND => VfsRecord::Append { path: r.get_str()?, data: r.get_bytes()? },
            V_WRITE_INODE => VfsRecord::WriteInode { inode: r.get_u64()?, data: r.get_bytes()? },
            V_UNLINK => VfsRecord::Unlink { path: r.get_str()? },
            V_RMDIR => VfsRecord::Rmdir { path: r.get_str()? },
            V_RENAME => VfsRecord::Rename { from: r.get_str()?, to: r.get_str()? },
            V_CHOWN_CHMOD => {
                VfsRecord::ChownChmod { path: r.get_str()?, owner: r.get_u32()?, mode: r.get_u8()? }
            }
            V_WRITE_DELTA => VfsRecord::WriteDelta {
                path: r.get_str()?,
                prefix: r.get_u32()?,
                suffix: r.get_u32()?,
                data: r.get_bytes()?,
            },
            V_WRITE_INODE_DELTA => VfsRecord::WriteInodeDelta {
                inode: r.get_u64()?,
                prefix: r.get_u32()?,
                suffix: r.get_u32()?,
                data: r.get_bytes()?,
            },
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

/// Encodes one v2 path slot: the literal string, or a dictionary id.
fn put_path(w: &mut ByteWriter, path: &str, id: u32) {
    if id == LITERAL_PATH {
        w.put_u8(PATH_LITERAL);
        w.put_str(path);
    } else {
        w.put_u8(PATH_ID);
        w.put_u32(id);
    }
}

/// Decodes one v2 path slot. With `dict` the id must resolve; without it
/// (the torn/corrupt resync scan, which has no reliable dictionary) an id
/// slot resolves to a placeholder so structural validity can still be
/// judged.
fn get_path(
    r: &mut ByteReader<'_>,
    dict: Option<&HashMap<u32, String>>,
) -> Result<String, CodecError> {
    match r.get_u8()? {
        PATH_LITERAL => r.get_str(),
        PATH_ID => {
            let id = r.get_u32()?;
            match dict {
                Some(d) => d.get(&id).cloned().ok_or(CodecError::UnknownPathId(id)),
                None => Ok(String::new()),
            }
        }
        t => Err(CodecError::BadTag(t)),
    }
}

impl Record {
    /// Encodes the record into a standalone v1 payload (no frame header).
    /// Only VFS records differ between v1 and v2 (path fields are bare
    /// strings here, tagged literal/id slots there); everything else
    /// shares the v2 encoder.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Record::Vfs(v) => {
                w.put_u8(T_VFS);
                v.encode(&mut w);
            }
            other => other.encode_v2_into(&mut w, [LITERAL_PATH; 2]),
        }
        w.into_bytes()
    }

    /// Encodes the record in format v2 into an existing buffer. Identical
    /// to v1 except VFS path fields become tagged literal/id slots
    /// (`ids[k]` is the dictionary id of path slot `k`, or
    /// `LITERAL_PATH`). Writing into a caller-supplied writer lets the
    /// pipelined flush frame a whole batch into one reusable scratch
    /// allocation instead of a `Vec` per record.
    pub(crate) fn encode_v2_into(&self, w: &mut ByteWriter, ids: [u32; 2]) {
        match self {
            Record::TxnBegin { txn } => {
                w.put_u8(T_TXN_BEGIN);
                w.put_u64(*txn);
            }
            Record::TxnCommit { txn } => {
                w.put_u8(T_TXN_COMMIT);
                w.put_u64(*txn);
            }
            Record::TxnRollback { txn } => {
                w.put_u8(T_TXN_ROLLBACK);
                w.put_u64(*txn);
            }
            Record::Sql { db, sql, params } => {
                w.put_u8(T_SQL);
                w.put_str(db);
                w.put_str(sql);
                w.put_u32(params.len() as u32);
                for p in params {
                    p.encode(w);
                }
            }
            Record::Snapshot { component, payload } => {
                w.put_u8(T_SNAPSHOT);
                w.put_str(component);
                w.put_bytes(payload);
            }
            Record::Vfs(v) => {
                w.put_u8(T_VFS);
                v.encode_v2(w, ids);
            }
            Record::PathDef { id, path } => {
                w.put_u8(T_PATH_DEF);
                w.put_u32(*id);
                w.put_str(path);
            }
            Record::SnapshotDelta { component, payload } => {
                w.put_u8(T_SNAPSHOT_DELTA);
                w.put_str(component);
                w.put_bytes(payload);
            }
            Record::Compaction { upto_lsn } => {
                w.put_u8(T_COMPACTION);
                w.put_u64(*upto_lsn);
            }
        }
    }

    /// Decodes a v2 payload. `dict` maps path-dictionary ids to paths;
    /// pass `None` only for structural validation (resync scans), where
    /// unknown ids resolve to placeholders instead of failing.
    pub(crate) fn decode_v2(
        payload: &[u8],
        dict: Option<&HashMap<u32, String>>,
    ) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(payload);
        match r.get_u8()? {
            T_VFS => Ok(Record::Vfs(VfsRecord::decode_v2(&mut r, dict)?)),
            _ => Record::decode(payload),
        }
    }

    /// The record's VFS path fields (empty for non-VFS records).
    pub(crate) fn vfs_paths(&self) -> [Option<&str>; 2] {
        match self {
            Record::Vfs(v) => v.paths(),
            _ => [None, None],
        }
    }

    /// Decodes a record from a payload produced by [`Record::encode`].
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(payload);
        let rec = match r.get_u8()? {
            T_TXN_BEGIN => Record::TxnBegin { txn: r.get_u64()? },
            T_TXN_COMMIT => Record::TxnCommit { txn: r.get_u64()? },
            T_TXN_ROLLBACK => Record::TxnRollback { txn: r.get_u64()? },
            T_SQL => {
                let db = r.get_str()?;
                let sql = r.get_str()?;
                let n = r.get_u32()? as usize;
                let mut params = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    params.push(ParamValue::decode(&mut r)?);
                }
                Record::Sql { db, sql, params }
            }
            T_SNAPSHOT => Record::Snapshot { component: r.get_str()?, payload: r.get_bytes()? },
            T_VFS => Record::Vfs(VfsRecord::decode(&mut r)?),
            T_PATH_DEF => Record::PathDef { id: r.get_u32()?, path: r.get_str()? },
            T_SNAPSHOT_DELTA => {
                Record::SnapshotDelta { component: r.get_str()?, payload: r.get_bytes()? }
            }
            T_COMPACTION => Record::Compaction { upto_lsn: r.get_u64()? },
            t => return Err(CodecError::BadTag(t)),
        };
        Ok(rec)
    }

    /// True for records that must force a group-commit flush: transaction
    /// boundaries (durability of the commit decision) and snapshots.
    pub fn forces_flush(&self) -> bool {
        matches!(
            self,
            Record::TxnCommit { .. }
                | Record::TxnRollback { .. }
                | Record::Snapshot { .. }
                | Record::SnapshotDelta { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: Record) {
        let bytes = rec.encode();
        assert_eq!(Record::decode(&bytes).unwrap(), rec);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Record::TxnBegin { txn: 7 });
        roundtrip(Record::TxnCommit { txn: 7 });
        roundtrip(Record::TxnRollback { txn: u64::MAX });
        roundtrip(Record::Sql {
            db: "db.media".into(),
            sql: "INSERT INTO files (path) VALUES (?1)".into(),
            params: vec![
                ParamValue::Null,
                ParamValue::Int(-3),
                ParamValue::Real(1.25),
                ParamValue::Text("x".into()),
                ParamValue::Blob(vec![0, 255]),
            ],
        });
        roundtrip(Record::Snapshot { component: "vfs.store".into(), payload: vec![9; 100] });
        roundtrip(Record::Vfs(VfsRecord::Mkdir {
            path: "/a/b".into(),
            owner: 10001,
            mode: 0b1111,
        }));
        roundtrip(Record::Vfs(VfsRecord::Write {
            path: "/a/b/f".into(),
            data: b"hello".to_vec(),
            owner: 0,
            mode: 0b0011,
        }));
        roundtrip(Record::Vfs(VfsRecord::Append { path: "/f".into(), data: vec![] }));
        roundtrip(Record::Vfs(VfsRecord::WriteInode { inode: 42, data: b"z".to_vec() }));
        roundtrip(Record::Vfs(VfsRecord::Unlink { path: "/f".into() }));
        roundtrip(Record::Vfs(VfsRecord::Rmdir { path: "/d".into() }));
        roundtrip(Record::Vfs(VfsRecord::Rename { from: "/a".into(), to: "/b".into() }));
        roundtrip(Record::Vfs(VfsRecord::ChownChmod { path: "/p".into(), owner: 1000, mode: 1 }));
    }

    #[test]
    fn v2_only_variants_roundtrip() {
        roundtrip(Record::PathDef { id: 3, path: "/a/b".into() });
        roundtrip(Record::SnapshotDelta { component: "vfs.store".into(), payload: vec![1, 2] });
        roundtrip(Record::Compaction { upto_lsn: 900 });
        roundtrip(Record::Vfs(VfsRecord::WriteDelta {
            path: "/f".into(),
            prefix: 3,
            suffix: 9,
            data: b"mid".to_vec(),
        }));
        roundtrip(Record::Vfs(VfsRecord::WriteInodeDelta {
            inode: 7,
            prefix: 0,
            suffix: 0,
            data: vec![],
        }));
    }

    #[test]
    fn v2_interned_paths_roundtrip() {
        let rec = Record::Vfs(VfsRecord::Rename { from: "/a".into(), to: "/b".into() });
        let mut w = ByteWriter::new();
        rec.encode_v2_into(&mut w, [4, LITERAL_PATH]);
        let bytes = w.into_bytes();
        let mut dict = HashMap::new();
        dict.insert(4u32, "/a".to_string());
        assert_eq!(Record::decode_v2(&bytes, Some(&dict)).unwrap(), rec);
        // An unresolvable id fails strict decode but passes the permissive
        // structural check the resync scan uses.
        assert!(matches!(
            Record::decode_v2(&bytes, Some(&HashMap::new())),
            Err(CodecError::UnknownPathId(4))
        ));
        assert!(Record::decode_v2(&bytes, None).is_ok());
    }

    #[test]
    fn v2_literal_paths_match_v1_for_non_vfs() {
        // Non-VFS records share one encoding across versions.
        let rec = Record::Sql { db: "d".into(), sql: "CREATE TABLE t (x)".into(), params: vec![] };
        let mut w = ByteWriter::new();
        rec.encode_v2_into(&mut w, [LITERAL_PATH; 2]);
        assert_eq!(w.as_slice(), rec.encode().as_slice());
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert!(matches!(Record::decode(&[200]), Err(CodecError::BadTag(200))));
    }

    #[test]
    fn flush_forcing_records() {
        assert!(Record::TxnCommit { txn: 1 }.forces_flush());
        assert!(Record::TxnRollback { txn: 1 }.forces_flush());
        assert!(Record::Snapshot { component: "c".into(), payload: vec![] }.forces_flush());
        assert!(!Record::TxnBegin { txn: 1 }.forces_flush());
        assert!(!Record::Vfs(VfsRecord::Unlink { path: "/f".into() }).forces_flush());
    }
}
