//! Reading a log back: frame parsing with torn-tail tolerance, and the
//! redo filter that decides which records take effect.
//!
//! Recovery is redo-only: a record inside a journal transaction applies iff
//! *every* enclosing transaction has a durable `TxnCommit`. Transactions
//! left open at end-of-log (the crash window of a two-phase `Vol(A)`
//! commit) are discarded wholesale, which is exactly the "all-volatile"
//! half of the S2 atomicity argument — the delegate's output stays in
//! `Vol(A)` until the commit record itself is durable.

use crate::record::Record;
use crate::wal::{frame_crc, FRAME_HEADER, FRAME_MAGIC, LOG_PREAMBLE};
use std::collections::HashMap;

/// How the log ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// The last frame was complete and valid.
    Clean,
    /// The log ends in a truncated frame at `offset`: the crash signature
    /// of a torn group-commit write. Everything before `offset` was
    /// intact, and nothing after it was ever durable, so recovering the
    /// prefix loses no committed history.
    Torn { offset: usize },
    /// The frame at `offset` is damaged but the log does NOT end there —
    /// bad magic, a failed checksum or decode on a fully-present frame, a
    /// non-monotonic LSN, or valid frames found past the bad region. A
    /// torn write cannot produce this shape; it means committed history
    /// after `offset` may exist but cannot be trusted, so recovery must
    /// fail loudly instead of silently replaying a shortened prefix.
    Corrupted { offset: usize },
}

/// A parsed log: LSN-stamped records plus the tail verdict.
#[derive(Debug, Clone)]
pub struct ReadLog {
    pub records: Vec<(u64, Record)>,
    pub tail: TailState,
}

impl ReadLog {
    /// Highest LSN seen, or 0 for an empty log.
    pub fn last_lsn(&self) -> u64 {
        self.records.last().map(|(l, _)| *l).unwrap_or(0)
    }
}

/// Parses frames until end-of-log or the first invalid frame, classifying
/// the invalid frame as [`TailState::Torn`] (a truncated final frame — the
/// only shape a torn append can leave) or [`TailState::Corrupted`]
/// (anything a truncation cannot explain). Valid prefix records are
/// returned either way; on `Corrupted` the caller must not treat them as
/// the whole history.
///
/// Classification at the first bad frame:
///
/// * wrong magic byte — `Corrupted`. Torn writes truncate; they never
///   rewrite the byte at a frame boundary.
/// * header runs past end-of-log — `Torn` (truncated header).
/// * payload runs past end-of-log — usually `Torn`, with two exceptions
///   that prove the frame was fully written: the stored CRC matches the
///   bytes actually present (so the `len` field itself is what got
///   corrupted), or a fully valid frame exists later in the log (resync
///   scan) — both are `Corrupted`.
/// * complete frame failing its CRC, failing decode, or carrying a
///   non-monotonic LSN — `Corrupted`. A fully-present frame cannot be a
///   truncation artifact.
pub fn read_records(bytes: &[u8]) -> ReadLog {
    let mut records = Vec::new();
    let (mut pos, v2) = match detect_version(bytes) {
        Ok(x) => x,
        Err(tail) => return ReadLog { records, tail },
    };
    // v2 path dictionary, built as `PathDef` records stream past. Records
    // are returned with literal paths either way — interning is a wire
    // format concern, invisible above this function.
    let mut dict: HashMap<u32, String> = HashMap::new();
    let mut last_lsn = 0u64;
    while pos < bytes.len() {
        let rem = bytes.len() - pos;
        if bytes[pos] != FRAME_MAGIC {
            return ReadLog { records, tail: TailState::Corrupted { offset: pos } };
        }
        if rem < FRAME_HEADER {
            return ReadLog { records, tail: TailState::Torn { offset: pos } };
        }
        let lsn = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[pos + 9..pos + 13].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 13..pos + 17].try_into().unwrap());
        let start = pos + FRAME_HEADER;
        let avail = bytes.len() - start;
        if avail < len {
            let frame_was_complete = frame_crc(lsn, avail as u32, &bytes[start..]) == crc;
            let tail = if frame_was_complete || any_valid_frame_after(bytes, pos + 1, v2) {
                TailState::Corrupted { offset: pos }
            } else {
                TailState::Torn { offset: pos }
            };
            return ReadLog { records, tail };
        }
        let payload = &bytes[start..start + len];
        if frame_crc(lsn, len as u32, payload) != crc || lsn <= last_lsn {
            return ReadLog { records, tail: TailState::Corrupted { offset: pos } };
        }
        let decoded =
            if v2 { Record::decode_v2(payload, Some(&dict)) } else { Record::decode(payload) };
        match decoded {
            Ok(rec) => {
                if let Record::PathDef { id, path } = &rec {
                    dict.insert(*id, path.clone());
                }
                records.push((lsn, rec));
            }
            Err(_) => return ReadLog { records, tail: TailState::Corrupted { offset: pos } },
        }
        last_lsn = lsn;
        pos = start + len;
    }
    ReadLog { records, tail: TailState::Clean }
}

/// Sniffs the log format. An empty log is trivially clean; a full v2
/// preamble starts frame parsing after it; a leading [`FRAME_MAGIC`] is a
/// v1 log. A short log that is a proper prefix of the preamble is a torn
/// first write; anything else never came from this journal.
fn detect_version(bytes: &[u8]) -> Result<(usize, bool), TailState> {
    if bytes.is_empty() {
        return Ok((0, false));
    }
    if bytes.len() >= LOG_PREAMBLE.len() && bytes[..LOG_PREAMBLE.len()] == LOG_PREAMBLE {
        return Ok((LOG_PREAMBLE.len(), true));
    }
    if bytes[0] == FRAME_MAGIC {
        return Ok((0, false));
    }
    if bytes.len() < LOG_PREAMBLE.len() && LOG_PREAMBLE.starts_with(bytes) {
        return Err(TailState::Torn { offset: 0 });
    }
    Err(TailState::Corrupted { offset: 0 })
}

/// Resync scan: does any byte position at or after `from` start a fully
/// valid frame (magic, complete header, in-bounds payload, matching CRC,
/// decodable record)? Used to tell a corrupted length field mid-log apart
/// from a genuinely torn final frame.
fn any_valid_frame_after(bytes: &[u8], from: usize, v2: bool) -> bool {
    let mut q = from;
    while q + FRAME_HEADER <= bytes.len() {
        if bytes[q] == FRAME_MAGIC {
            let lsn = u64::from_le_bytes(bytes[q + 1..q + 9].try_into().unwrap());
            let len = u32::from_le_bytes(bytes[q + 9..q + 13].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[q + 13..q + 17].try_into().unwrap());
            let start = q + FRAME_HEADER;
            if bytes.len() - start >= len {
                let payload = &bytes[start..start + len];
                // Structural validity only: a v2 decode runs without a
                // path dictionary (unknown ids resolve to a placeholder),
                // since the question is whether a whole frame exists here,
                // not whether its paths resolve.
                let decodes = if v2 {
                    Record::decode_v2(payload, None).is_ok()
                } else {
                    Record::decode(payload).is_ok()
                };
                if frame_crc(lsn, len as u32, payload) == crc && decodes {
                    return true;
                }
            }
        }
        q += 1;
    }
    false
}

/// Applies the redo filter: returns the records that take effect, in log
/// order, with transaction markers stripped.
///
/// Nested transactions are handled with a frame stack — a record applies
/// only if all enclosing transactions committed. A rollback or an open
/// transaction at end-of-log discards its records (and any committed inner
/// transactions, which is the correct nesting semantics: an inner commit
/// is provisional until the outermost transaction commits).
pub fn committed_records(log: &ReadLog) -> Vec<Record> {
    let mut out: Vec<Record> = Vec::new();
    // Stack of (txn id, buffered records) for open transactions.
    let mut open: Vec<(u64, Vec<Record>)> = Vec::new();
    for (_, rec) in &log.records {
        match rec {
            Record::TxnBegin { txn } => open.push((*txn, Vec::new())),
            Record::TxnCommit { txn } => {
                // Pop the matching frame; tolerate a stray commit by
                // ignoring it (nothing was buffered under it).
                if open.last().map(|(t, _)| *t == *txn).unwrap_or(false) {
                    let (_, recs) = open.pop().unwrap();
                    match open.last_mut() {
                        Some((_, parent)) => parent.extend(recs),
                        None => out.extend(recs),
                    }
                }
            }
            Record::TxnRollback { txn } => {
                if open.last().map(|(t, _)| *t == *txn).unwrap_or(false) {
                    open.pop();
                }
            }
            // Path-dictionary definitions are wire-format metadata, already
            // consumed by `read_records` (which returns literal paths).
            Record::PathDef { .. } => {}
            other => match open.last_mut() {
                Some((_, buf)) => buf.push(other.clone()),
                None => out.push(other.clone()),
            },
        }
    }
    // Transactions still open at end-of-log are discarded: the crash
    // happened before their commit record was durable.
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::VfsRecord;
    use crate::wal::Journal;

    fn rec(path: &str) -> Record {
        Record::Vfs(VfsRecord::Unlink { path: path.into() })
    }

    fn paths(recs: &[Record]) -> Vec<String> {
        recs.iter()
            .filter_map(|r| match r {
                Record::Vfs(VfsRecord::Unlink { path }) => Some(path.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn empty_log_is_clean() {
        let log = read_records(&[]);
        assert!(log.records.is_empty());
        assert_eq!(log.tail, TailState::Clean);
        assert_eq!(log.last_lsn(), 0);
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        j.append(&rec("/b")).unwrap();
        let mut bytes = j.bytes();
        let cut = bytes.len() - 3;
        bytes.truncate(cut);
        let log = read_records(&bytes);
        assert_eq!(log.records.len(), 1);
        assert!(matches!(log.tail, TailState::Torn { .. }));
    }

    #[test]
    fn crc_corruption_is_not_torn() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        j.append(&rec("/b")).unwrap();
        let mut bytes = j.bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload byte of the second frame
        let log = read_records(&bytes);
        assert_eq!(log.records.len(), 1);
        // The frame is fully present, so this cannot be a torn write.
        assert!(matches!(log.tail, TailState::Corrupted { .. }));
    }

    #[test]
    fn bad_magic_is_corrupted() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        let mut bytes = j.bytes();
        bytes.push(0x00); // garbage after a valid frame
        let log = read_records(&bytes);
        assert_eq!(log.records.len(), 1);
        // Truncation never rewrites a boundary byte: wrong magic means
        // corruption, not a torn append.
        assert!(matches!(log.tail, TailState::Corrupted { .. }));
    }

    #[test]
    fn mid_log_corruption_is_flagged_not_swallowed() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        j.append(&rec("/b")).unwrap();
        j.append(&rec("/c")).unwrap();
        let bytes = j.bytes();
        let b = crate::fault::record_boundaries(&bytes);
        let (second, third) = (b[b.len() - 3], b[b.len() - 2]);
        // Flip one byte in every position of the middle frame: committed
        // history (/c) follows, so every flip must read as Corrupted at
        // the middle frame's offset — never Torn, never Clean.
        for i in second..third {
            let mut dmg = bytes.clone();
            dmg[i] ^= 0x01;
            let log = read_records(&dmg);
            assert_eq!(
                log.tail,
                TailState::Corrupted { offset: second },
                "flip at byte {i} must corrupt the middle frame"
            );
            assert_eq!(log.records.len(), 1, "only the first record precedes the damage");
        }
    }

    #[test]
    fn corrupted_len_field_on_final_frame_is_detected() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        j.append(&rec("/b")).unwrap();
        let bytes = j.bytes();
        let b = crate::fault::record_boundaries(&bytes);
        let second = b[b.len() - 2];
        // Grow the final frame's len field so the payload appears short.
        // The frame is fully present (its CRC proves it), so this is
        // corruption, not a torn tail.
        let len_byte = second + 9;
        let mut dmg = bytes.clone();
        dmg[len_byte] = dmg[len_byte].wrapping_add(3);
        let log = read_records(&dmg);
        assert_eq!(log.tail, TailState::Corrupted { offset: second });
    }

    #[test]
    fn non_monotonic_lsn_is_corrupted() {
        use crate::wal::LOG_PREAMBLE;
        let mut a = Journal::in_memory(1);
        a.append(&rec("/a")).unwrap();
        a.append(&rec("/b")).unwrap();
        let two = a.bytes();
        let mut b = Journal::in_memory(1);
        b.append(&rec("/c")).unwrap();
        // Splice a frame with lsn=1 (preamble stripped) after frames with
        // lsn=1,2: valid CRC, but the LSN sequence goes backwards.
        let mut spliced = two.clone();
        spliced.extend_from_slice(&b.bytes()[LOG_PREAMBLE.len()..]);
        let log = read_records(&spliced);
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.tail, TailState::Corrupted { offset: two.len() });
    }

    #[test]
    fn genuine_truncations_stay_torn() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        j.append(&rec("/b")).unwrap();
        let bytes = j.bytes();
        let b = crate::fault::record_boundaries(&bytes);
        let second = b[b.len() - 2];
        // Every proper prefix cut inside the second frame is a torn tail,
        // not corruption: nothing durable follows the cut.
        for cut in second + 1..bytes.len() {
            let log = read_records(&bytes[..cut]);
            assert_eq!(log.records.len(), 1);
            assert_eq!(
                log.tail,
                TailState::Torn { offset: second },
                "cut at {cut} is a truncation and must stay Torn"
            );
        }
    }

    #[test]
    fn torn_preamble_is_torn_not_corrupted() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        let bytes = j.bytes();
        // A crash during the very first flush can leave any prefix of the
        // preamble: torn, with nothing recoverable — but never Corrupted.
        for cut in 1..8 {
            let log = read_records(&bytes[..cut]);
            assert!(log.records.is_empty());
            assert_eq!(log.tail, TailState::Torn { offset: 0 }, "cut at {cut}");
        }
    }

    #[test]
    fn committed_filter_basic() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/outside")).unwrap();
        let t = j.begin_txn().unwrap();
        j.append(&rec("/in-committed")).unwrap();
        j.commit_txn(t).unwrap();
        let t2 = j.begin_txn().unwrap();
        j.append(&rec("/in-rolled-back")).unwrap();
        j.rollback_txn(t2).unwrap();
        j.begin_txn().unwrap();
        j.append(&rec("/in-open")).unwrap();
        j.flush().unwrap();
        let recs = committed_records(&read_records(&j.bytes()));
        assert_eq!(paths(&recs), vec!["/outside", "/in-committed"]);
    }

    #[test]
    fn nested_inner_commit_is_provisional() {
        let mut j = Journal::in_memory(1);
        let outer = j.begin_txn().unwrap();
        let inner = j.begin_txn().unwrap();
        j.append(&rec("/inner")).unwrap();
        j.commit_txn(inner).unwrap();
        j.append(&rec("/outer")).unwrap();
        // Crash before outer commit: nothing applies.
        let recs = committed_records(&read_records(&j.bytes()));
        assert!(paths(&recs).is_empty());
        // Outer commit lands: both apply, in order.
        j.commit_txn(outer).unwrap();
        let recs = committed_records(&read_records(&j.bytes()));
        assert_eq!(paths(&recs), vec!["/inner", "/outer"]);
    }
}
