//! Reading a log back: frame parsing with torn-tail tolerance, and the
//! redo filter that decides which records take effect.
//!
//! Recovery is redo-only: a record inside a journal transaction applies iff
//! *every* enclosing transaction has a durable `TxnCommit`. Transactions
//! left open at end-of-log (the crash window of a two-phase `Vol(A)`
//! commit) are discarded wholesale, which is exactly the "all-volatile"
//! half of the S2 atomicity argument — the delegate's output stays in
//! `Vol(A)` until the commit record itself is durable.

use crate::codec::crc32;
use crate::record::Record;
use crate::wal::{FRAME_HEADER, FRAME_MAGIC};

/// How the log ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// The last frame was complete and valid.
    Clean,
    /// Trailing bytes at `offset` did not form a valid frame (torn write,
    /// bad magic, or CRC mismatch). Everything before `offset` was intact.
    Torn { offset: usize },
}

/// A parsed log: LSN-stamped records plus the tail verdict.
#[derive(Debug, Clone)]
pub struct ReadLog {
    pub records: Vec<(u64, Record)>,
    pub tail: TailState,
}

impl ReadLog {
    /// Highest LSN seen, or 0 for an empty log.
    pub fn last_lsn(&self) -> u64 {
        self.records.last().map(|(l, _)| *l).unwrap_or(0)
    }
}

/// Parses frames until end-of-log or the first invalid frame. An invalid
/// frame (short header, wrong magic, short payload, or CRC mismatch) marks
/// the tail as torn; valid prefix records are still returned.
pub fn read_records(bytes: &[u8]) -> ReadLog {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER || bytes[pos] != FRAME_MAGIC {
            return ReadLog { records, tail: TailState::Torn { offset: pos } };
        }
        let lsn = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[pos + 9..pos + 13].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 13..pos + 17].try_into().unwrap());
        let start = pos + FRAME_HEADER;
        if bytes.len() - start < len {
            return ReadLog { records, tail: TailState::Torn { offset: pos } };
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            return ReadLog { records, tail: TailState::Torn { offset: pos } };
        }
        match Record::decode(payload) {
            Ok(rec) => records.push((lsn, rec)),
            Err(_) => return ReadLog { records, tail: TailState::Torn { offset: pos } },
        }
        pos = start + len;
    }
    ReadLog { records, tail: TailState::Clean }
}

/// Applies the redo filter: returns the records that take effect, in log
/// order, with transaction markers stripped.
///
/// Nested transactions are handled with a frame stack — a record applies
/// only if all enclosing transactions committed. A rollback or an open
/// transaction at end-of-log discards its records (and any committed inner
/// transactions, which is the correct nesting semantics: an inner commit
/// is provisional until the outermost transaction commits).
pub fn committed_records(log: &ReadLog) -> Vec<Record> {
    let mut out: Vec<Record> = Vec::new();
    // Stack of (txn id, buffered records) for open transactions.
    let mut open: Vec<(u64, Vec<Record>)> = Vec::new();
    for (_, rec) in &log.records {
        match rec {
            Record::TxnBegin { txn } => open.push((*txn, Vec::new())),
            Record::TxnCommit { txn } => {
                // Pop the matching frame; tolerate a stray commit by
                // ignoring it (nothing was buffered under it).
                if open.last().map(|(t, _)| *t == *txn).unwrap_or(false) {
                    let (_, recs) = open.pop().unwrap();
                    match open.last_mut() {
                        Some((_, parent)) => parent.extend(recs),
                        None => out.extend(recs),
                    }
                }
            }
            Record::TxnRollback { txn } => {
                if open.last().map(|(t, _)| *t == *txn).unwrap_or(false) {
                    open.pop();
                }
            }
            other => match open.last_mut() {
                Some((_, buf)) => buf.push(other.clone()),
                None => out.push(other.clone()),
            },
        }
    }
    // Transactions still open at end-of-log are discarded: the crash
    // happened before their commit record was durable.
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::VfsRecord;
    use crate::wal::Journal;

    fn rec(path: &str) -> Record {
        Record::Vfs(VfsRecord::Unlink { path: path.into() })
    }

    fn paths(recs: &[Record]) -> Vec<String> {
        recs.iter()
            .filter_map(|r| match r {
                Record::Vfs(VfsRecord::Unlink { path }) => Some(path.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn empty_log_is_clean() {
        let log = read_records(&[]);
        assert!(log.records.is_empty());
        assert_eq!(log.tail, TailState::Clean);
        assert_eq!(log.last_lsn(), 0);
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        j.append(&rec("/b")).unwrap();
        let mut bytes = j.bytes();
        let cut = bytes.len() - 3;
        bytes.truncate(cut);
        let log = read_records(&bytes);
        assert_eq!(log.records.len(), 1);
        assert!(matches!(log.tail, TailState::Torn { .. }));
    }

    #[test]
    fn crc_corruption_stops_parse() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        j.append(&rec("/b")).unwrap();
        let mut bytes = j.bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload byte of the second frame
        let log = read_records(&bytes);
        assert_eq!(log.records.len(), 1);
        assert!(matches!(log.tail, TailState::Torn { .. }));
    }

    #[test]
    fn bad_magic_is_torn() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/a")).unwrap();
        let mut bytes = j.bytes();
        bytes.push(0x00); // garbage after a valid frame
        let log = read_records(&bytes);
        assert_eq!(log.records.len(), 1);
        assert!(matches!(log.tail, TailState::Torn { .. }));
    }

    #[test]
    fn committed_filter_basic() {
        let mut j = Journal::in_memory(1);
        j.append(&rec("/outside")).unwrap();
        let t = j.begin_txn().unwrap();
        j.append(&rec("/in-committed")).unwrap();
        j.commit_txn(t).unwrap();
        let t2 = j.begin_txn().unwrap();
        j.append(&rec("/in-rolled-back")).unwrap();
        j.rollback_txn(t2).unwrap();
        j.begin_txn().unwrap();
        j.append(&rec("/in-open")).unwrap();
        j.flush().unwrap();
        let recs = committed_records(&read_records(&j.bytes()));
        assert_eq!(paths(&recs), vec!["/outside", "/in-committed"]);
    }

    #[test]
    fn nested_inner_commit_is_provisional() {
        let mut j = Journal::in_memory(1);
        let outer = j.begin_txn().unwrap();
        let inner = j.begin_txn().unwrap();
        j.append(&rec("/inner")).unwrap();
        j.commit_txn(inner).unwrap();
        j.append(&rec("/outer")).unwrap();
        // Crash before outer commit: nothing applies.
        let recs = committed_records(&read_records(&j.bytes()));
        assert!(paths(&recs).is_empty());
        // Outer commit lands: both apply, in order.
        j.commit_txn(outer).unwrap();
        let recs = committed_records(&read_records(&j.bytes()));
        assert_eq!(paths(&recs), vec!["/inner", "/outer"]);
    }
}
