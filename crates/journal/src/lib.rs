//! maxoid-journal: write-ahead logging, snapshots, and crash recovery for
//! the Maxoid substrate.
//!
//! Everything above this crate is in-memory; this crate is the durability
//! layer underneath it. `maxoid-vfs` emits physical store-mutation records,
//! `maxoid-sqldb` emits logical SQL records, and the two-phase `Vol(A)`
//! commit in `maxoid` core brackets both inside a single journal
//! transaction, so recovery after a crash at *any* record boundary (or a
//! torn tail) lands in either the all-committed or the all-volatile state
//! — never in between (invariant S2).
//!
//! Layout:
//!
//! * [`codec`] — little-endian byte writer/reader + CRC-32;
//! * [`record`] — typed records and their binary encoding;
//! * [`wal`] — frames, group commit, transactions, [`JournalSink`];
//! * [`replay`] — torn-tail-tolerant parsing + the redo filter;
//! * [`fault`] — crash-point surgery and a byte-budget fault storage;
//! * [`blockstore`] — the log on a `maxoid-block` device behind a page
//!   cache, for logs that outgrow memory and cold boots from a file.

pub mod blockstore;
pub mod codec;
pub mod fault;
pub mod record;
pub mod replay;
pub mod wal;

pub use blockstore::BlockStorage;
pub use codec::CodecError;
pub use fault::{crash_prefix, flip_byte, record_boundaries, torn_log, FaultStorage};
pub use record::{ParamValue, Record, VfsRecord};
pub use replay::{committed_records, read_records, ReadLog, TailState};
pub use wal::{
    Journal, JournalHandle, JournalSink, JournalStats, MemStorage, NullSink, SinkRef, Storage,
    DEFAULT_BATCH, LOG_PREAMBLE,
};

/// Errors raised by journal operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The fault-injection storage hit its byte budget ("power loss").
    Crashed,
    /// Underlying storage failed.
    Io(String),
    /// The log could not be decoded.
    Codec(CodecError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Crashed => write!(f, "journal storage crashed (fault injection)"),
            JournalError::Io(m) => write!(f, "journal io error: {m}"),
            JournalError::Codec(e) => write!(f, "journal codec error: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<CodecError> for JournalError {
    fn from(e: CodecError) -> Self {
        JournalError::Codec(e)
    }
}

/// Result alias for journal operations.
pub type JournalResult<T> = Result<T, JournalError>;
