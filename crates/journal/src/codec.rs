//! Byte-level encoding primitives shared by the WAL frame format and the
//! typed record payloads: a little-endian writer/reader pair and the IEEE
//! CRC-32 used to checksum every frame.

use std::sync::OnceLock;

/// Errors raised while decoding journal bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A tag byte did not name a known variant.
    BadTag(u8),
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A v2 path field referenced a dictionary id with no `PathDef`.
    UnknownPathId(u32),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated payload"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            CodecError::UnknownPathId(id) => write!(f, "undefined path dictionary id {id}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing buffer, appending after its current contents.
    /// The WAL's pipelined writer uses this to frame a whole batch into
    /// one reusable scratch allocation.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        ByteWriter { buf }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Overwrites `n` previously written bytes at `offset` (used to
    /// backpatch frame `len`/`crc` fields once the payload is encoded).
    pub fn patch(&mut self, offset: usize, bytes: &[u8]) {
        self.buf[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed (u32) raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-based little-endian reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.get_u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let raw = self.get_bytes()?;
        String::from_utf8(raw).map_err(|_| CodecError::BadUtf8)
    }
}

/// Eight CRC-32 lookup tables for the slicing-by-8 kernel. Table 0 is the
/// classic byte-at-a-time table; table `k` advances a byte's contribution
/// by `k` further positions, letting the hot loop fold 8 input bytes per
/// iteration instead of 1 — the difference between the checksum dominating
/// a 4KB journaled write and it costing well under the write itself.
fn crc_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256usize {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            t[0][i] = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

fn crc_update(mut crc: u32, mut data: &[u8]) -> u32 {
    let t = crc_tables();
    while data.len() >= 8 {
        let lo = u32::from_le_bytes(data[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(data[4..8].try_into().unwrap());
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
        data = &data[8..];
    }
    for &b in data {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// IEEE CRC-32 (the polynomial used by zlib/ethernet), slicing-by-8.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_parts(&[data])
}

/// CRC-32 over the concatenation of `parts` without materialising it —
/// used by the WAL to checksum header fields together with the payload.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut crc = !0u32;
    for part in parts {
        crc = crc_update(crc, part);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_strings() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(3.5);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u32(), Err(CodecError::Truncated));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_slicing_matches_bitwise_reference() {
        // Data long enough to cover the 8-byte kernel plus an unaligned
        // tail, checked against a bit-at-a-time reference implementation.
        let data: Vec<u8> = (0..1021u32).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        let mut crc = !0u32;
        for &b in &data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
            }
        }
        assert_eq!(crc32(&data), !crc);
    }

    #[test]
    fn crc32_parts_matches_concatenation() {
        assert_eq!(crc32_parts(&[b"1234", b"56789"]), crc32(b"123456789"));
        assert_eq!(crc32_parts(&[b"", b"abc", b""]), crc32(b"abc"));
        assert_eq!(crc32_parts(&[]), 0);
    }
}
