//! Byte-level encoding primitives shared by the WAL frame format and the
//! typed record payloads: a little-endian writer/reader pair and the IEEE
//! CRC-32 used to checksum every frame.

use std::sync::OnceLock;

/// Errors raised while decoding journal bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A tag byte did not name a known variant.
    BadTag(u8),
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated payload"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed (u32) raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-based little-endian reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.get_u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let raw = self.get_bytes()?;
        String::from_utf8(raw).map_err(|_| CodecError::BadUtf8)
    }
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// IEEE CRC-32 (the polynomial used by zlib/ethernet), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_parts(&[data])
}

/// CRC-32 over the concatenation of `parts` without materialising it —
/// used by the WAL to checksum header fields together with the payload.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let table = crc_table();
    let mut crc = !0u32;
    for part in parts {
        for &b in *part {
            crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_strings() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(3.5);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.get_u32(), Err(CodecError::Truncated));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_parts_matches_concatenation() {
        assert_eq!(crc32_parts(&[b"1234", b"56789"]), crc32(b"123456789"));
        assert_eq!(crc32_parts(&[b"", b"abc", b""]), crc32(b"abc"));
        assert_eq!(crc32_parts(&[]), 0);
    }
}
