//! Metrics registry: named counters and log2-bucket histograms.
//!
//! Like spans, every mutation checks [`enabled`](crate::enabled) first and
//! is free when tracing is off. Names are `&'static str` dot-namespaced by
//! layer (`journal.flushes`, `vfs.union.copy_up_bytes`, ...).

use std::collections::BTreeMap;
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::span::enabled;

/// Number of histogram buckets: one for zero plus one per bit of a u64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram. `buckets[0]` counts zeros; `buckets[k]` for
/// `k >= 1` counts values in `[2^(k-1), 2^k - 1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, otherwise `64 - leading_zeros`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

struct Registry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry { counters: BTreeMap::new(), histograms: BTreeMap::new() })
    })
}

/// Adds `delta` to the named counter. Free when tracing is disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    *registry().lock().counters.entry(name).or_insert(0) += delta;
}

/// Records one observation into the named histogram. Free when disabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    registry().lock().histograms.entry(name).or_default().record(value);
}

/// Current value of a counter (0 when absent).
pub fn counter(name: &str) -> u64 {
    registry().lock().counters.get(name).copied().unwrap_or(0)
}

/// Copy of a histogram, if it has any observations.
pub fn histogram(name: &str) -> Option<Histogram> {
    registry().lock().histograms.get(name).cloned()
}

pub(crate) fn counters() -> BTreeMap<String, u64> {
    registry().lock().counters.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

pub(crate) fn histograms() -> BTreeMap<String, Histogram> {
    registry().lock().histograms.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

pub(crate) fn drain_counters() -> BTreeMap<String, u64> {
    let mut reg = registry().lock();
    let out = reg.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect();
    reg.counters.clear();
    out
}

pub(crate) fn drain_histograms() -> BTreeMap<String, Histogram> {
    let mut reg = registry().lock();
    let out = reg.histograms.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
    reg.histograms.clear();
    out
}
