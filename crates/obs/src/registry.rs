//! Metrics registry: named counters and log2-bucket histograms.
//!
//! Like spans, every mutation checks [`enabled`](crate::enabled) first and
//! is free when tracing is off. Names are `&'static str` dot-namespaced by
//! layer (`journal.flushes`, `vfs.union.copy_up_bytes`, ...).
//!
//! # Concurrency
//!
//! The registry is lock-free on the hot path: each counter is an
//! `Arc<AtomicU64>` and each histogram stripes its state across one
//! atomic per bucket (plus atomic count/sum/min/max), so concurrent
//! benchmark threads never serialize on a shared mutex just to bump a
//! metric. The name→cell maps sit behind an `RwLock` that is write-locked
//! only the first time a name appears; steady-state updates take a read
//! lock and a `fetch_add(Relaxed)`. Relaxed ordering suffices because
//! metrics are only aggregated after worker threads are joined (or from
//! snapshots where exact interleaving is immaterial).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::span::enabled;

/// Number of histogram buckets: one for zero plus one per bit of a u64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram. `buckets[0]` counts zeros; `buckets[k]` for
/// `k >= 1` counts values in `[2^(k-1), 2^k - 1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, otherwise `64 - leading_zeros`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Striped histogram cell: independent atomics per bucket so concurrent
/// observers touching different value ranges don't contend at all, and
/// same-bucket observers contend only on one cache line's worth of state.
struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[Histogram::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        let mut h = Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        };
        for (dst, src) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h
    }
}

struct Registry {
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<AtomicHistogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: RwLock::new(BTreeMap::new()),
        histograms: RwLock::new(BTreeMap::new()),
    })
}

/// Fetches (or lazily creates) the atomic cell for `name` out of one of
/// the registry maps. The fast path is a shared read lock plus an `Arc`
/// clone; the write lock is taken only on first use of a name.
fn cell<V>(
    map: &RwLock<BTreeMap<&'static str, Arc<V>>>,
    name: &'static str,
    new: fn() -> V,
) -> Arc<V> {
    if let Some(c) = map.read().get(name) {
        return c.clone();
    }
    map.write().entry(name).or_insert_with(|| Arc::new(new())).clone()
}

/// Adds `delta` to the named counter. Free when tracing is disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    cell(&registry().counters, name, || AtomicU64::new(0)).fetch_add(delta, Ordering::Relaxed);
}

/// Records one observation into the named histogram. Free when disabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    cell(&registry().histograms, name, AtomicHistogram::new).record(value);
}

/// Current value of a counter (0 when absent).
pub fn counter(name: &str) -> u64 {
    registry().counters.read().get(name).map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
}

/// Copy of a histogram, if it has any observations.
pub fn histogram(name: &str) -> Option<Histogram> {
    registry().histograms.read().get(name).map(|h| h.snapshot())
}

pub(crate) fn counters() -> BTreeMap<String, u64> {
    registry()
        .counters
        .read()
        .iter()
        .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect()
}

pub(crate) fn histograms() -> BTreeMap<String, Histogram> {
    registry().histograms.read().iter().map(|(k, v)| (k.to_string(), v.snapshot())).collect()
}

pub(crate) fn drain_counters() -> BTreeMap<String, u64> {
    let mut map = registry().counters.write();
    let out = map.iter().map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed))).collect();
    map.clear();
    out
}

pub(crate) fn drain_histograms() -> BTreeMap<String, Histogram> {
    let mut map = registry().histograms.write();
    let out = map.iter().map(|(k, v)| (k.to_string(), v.snapshot())).collect();
    map.clear();
    out
}
