//! Export formats: JSON-lines for tooling, an indented span tree for
//! humans. JSON is hand-rolled (the workspace carries no serde) with the
//! same escaping rules as `maxoid-bench`'s report writer.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Snapshot, SpanRecord};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Renders the snapshot as JSON-lines: one object per span, counter
    /// and histogram. Span fields become a nested `"fields"` object.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            let parent = match span.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            let mut fields = String::new();
            for (i, (k, v)) in span.fields.iter().enumerate() {
                if i > 0 {
                    fields.push(',');
                }
                let _ = write!(fields, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"fields\":{{{}}}}}",
                span.id,
                parent,
                json_escape(span.name),
                span.start_ns,
                span.dur_ns,
                fields,
            );
        }
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(name),
                value,
            );
        }
        for (name, h) in &self.histograms {
            // Sparse bucket encoding: only non-empty buckets.
            let mut buckets = String::new();
            for (idx, n) in h.buckets.iter().enumerate().filter(|(_, n)| **n > 0) {
                if !buckets.is_empty() {
                    buckets.push(',');
                }
                let _ = write!(buckets, "\"{idx}\":{n}");
            }
            let min = if h.count == 0 { 0 } else { h.min };
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{{}}}}}",
                json_escape(name),
                h.count,
                h.sum,
                min,
                h.max,
                buckets,
            );
        }
        out
    }

    /// Renders collected spans as an indented tree, children under their
    /// parents in start order, with durations and fields inline.
    pub fn render_span_tree(&self) -> String {
        let mut children: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
        let mut ids: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for span in &self.spans {
            ids.insert(span.id);
        }
        for span in &self.spans {
            // A span whose parent was dropped before collection (or opened
            // before tracing was enabled) renders as a root.
            let key = span.parent.filter(|p| ids.contains(p));
            children.entry(key).or_default().push(span);
        }
        for list in children.values_mut() {
            list.sort_by_key(|s| (s.start_ns, s.id));
        }
        let mut out = String::new();
        fn render(
            out: &mut String,
            children: &BTreeMap<Option<u64>, Vec<&SpanRecord>>,
            parent: Option<u64>,
            depth: usize,
        ) {
            let Some(list) = children.get(&parent) else { return };
            for span in list {
                let _ = write!(
                    out,
                    "{}{} ({:.1}us)",
                    "  ".repeat(depth),
                    span.name,
                    span.dur_ns as f64 / 1000.0
                );
                for (k, v) in &span.fields {
                    let _ = write!(out, " {k}={v}");
                }
                out.push('\n');
                render(out, children, Some(span.id), depth + 1);
            }
        }
        render(&mut out, &children, None, 0);
        out
    }
}
