//! Hierarchical spans with a per-thread parent stack.
//!
//! A [`span`] call when tracing is disabled costs one relaxed atomic load
//! and constructs an inert guard — no clock read, no allocation, no lock.
//! When enabled, the guard pushes itself onto a thread-local stack (which
//! is how children discover their parent) and on drop appends a finished
//! [`SpanRecord`] to the global collector.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Process epoch all span timestamps are relative to. Anchored on first
/// use so `start_ns` values are small and monotonically comparable.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static SPANS: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// Stack of active spans on this thread: (id, fields accumulated so far).
    static STACK: RefCell<Vec<(u64, Vec<(&'static str, String)>)>> = RefCell::new(Vec::new());
}

/// Turns tracing on. Spans, counters and histograms start recording.
pub fn enable() {
    // Anchor the epoch before any span reads it so timestamps stay small.
    let _ = epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns tracing off. Already-collected data is retained.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether tracing is currently on. The single relaxed load every
/// instrumentation point pays when observability is disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A finished span as stored in the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (process-wide, never reused).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name, dot-namespaced by layer (e.g. `vfs.union.append`).
    pub name: &'static str,
    /// Nanoseconds since the obs epoch at span entry.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// `key=value` annotations attached while the span was open.
    pub fields: Vec<(&'static str, String)>,
}

/// RAII guard returned by [`span`]; records the span on drop.
pub struct SpanGuard {
    /// `None` when tracing was disabled at construction.
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_ns: u64,
}

/// Opens a span. Inert (and free) when tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().map(|(pid, _)| *pid);
        s.push((id, Vec::new()));
        parent
    });
    let start = Instant::now();
    let start_ns = start.duration_since(epoch()).as_nanos() as u64;
    SpanGuard { active: Some(ActiveSpan { id, parent, name, start, start_ns }) }
}

impl SpanGuard {
    /// True when this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a `key=value` field to this span.
    pub fn field(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(active) = &self.active {
            push_field(active.id, key, value.into());
        }
    }

    /// Like [`SpanGuard::field`] but the value closure only runs when the
    /// span is recording — use for values that are costly to format.
    pub fn field_with(&mut self, key: &'static str, value: impl FnOnce() -> String) {
        if let Some(active) = &self.active {
            push_field(active.id, key, value());
        }
    }
}

/// Attaches a field to the innermost open span on this thread, if any.
/// Lets deep callees annotate their caller's span without plumbing the
/// guard through.
pub fn annotate(key: &'static str, value: String) {
    if !enabled() {
        return;
    }
    STACK.with(|s| {
        if let Some((_, fields)) = s.borrow_mut().last_mut() {
            fields.push((key, value));
        }
    });
}

fn push_field(id: u64, key: &'static str, value: String) {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        // The guard's span is almost always the top of the stack, but a
        // caller may hold the guard while children are open.
        if let Some((_, fields)) = s.iter_mut().rev().find(|(sid, _)| *sid == id) {
            fields.push((key, value));
        }
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        let fields = STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own entry; tolerate out-of-order drops by searching.
            match s.iter().rposition(|(sid, _)| *sid == active.id) {
                Some(pos) => s.remove(pos).1,
                None => Vec::new(),
            }
        });
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            start_ns: active.start_ns,
            dur_ns,
            fields,
        };
        collector().lock().push(record);
    }
}

pub(crate) fn collected_spans() -> Vec<SpanRecord> {
    collector().lock().clone()
}

pub(crate) fn drain_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *collector().lock())
}
