//! maxoid-obs: structured tracing and metrics for the delegation stack.
//!
//! Every layer of the substrate — kernel syscalls/Binder, vfs union ops,
//! sqldb parse/plan/exec, the COW proxy's view rewrites, journal group
//! commit, and the core delegation lifecycle — emits into one global
//! collector through three primitives:
//!
//! * **spans** ([`span`]) — hierarchical enter/exit records with wall
//!   time, parent links (per-thread stack) and `key=value` fields;
//! * **counters** ([`counter_add`]) — monotonically increasing `u64`s;
//! * **histograms** ([`observe`]) — log2-bucketed value distributions.
//!
//! Observability is **off by default** and zero-overhead when disabled:
//! every entry point checks one relaxed atomic load and returns before
//! allocating, locking or reading the clock. Tests and benches assert on
//! the in-memory [`Snapshot`]; tooling consumes [`Snapshot::to_jsonl`];
//! humans read [`Snapshot::render_span_tree`].
//!
//! The collector is process-global on purpose: the instrumented layers
//! (union FS internals, planner, WAL flush) have no channel to thread a
//! handle through without distorting the APIs under observation — the
//! same reason `log`/`tracing` use global dispatchers.

mod export;
mod registry;
mod span;

pub use registry::{counter, counter_add, histogram, observe, Histogram};
pub use span::{annotate, disable, enable, enabled, span, SpanGuard, SpanRecord};

use std::collections::BTreeMap;

/// A point-in-time copy of everything the collector holds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Finished spans in completion order.
    pub spans: Vec<SpanRecord>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Copies the current collector contents without draining them.
pub fn snapshot() -> Snapshot {
    Snapshot {
        spans: span::collected_spans(),
        counters: registry::counters(),
        histograms: registry::histograms(),
    }
}

/// Drains the collector: returns everything gathered so far and resets
/// spans, counters and histograms to empty.
pub fn take_snapshot() -> Snapshot {
    Snapshot {
        spans: span::drain_spans(),
        counters: registry::drain_counters(),
        histograms: registry::drain_histograms(),
    }
}

/// Clears all collected data (the enabled flag is left as-is).
pub fn reset() {
    let _ = take_snapshot();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that toggle the global enabled flag.
    static GATE: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_is_inert() {
        let _g = locked();
        disable();
        reset();
        {
            let mut sp = span("noop");
            sp.field("k", "v");
            counter_add("c", 5);
            observe("h", 9);
            annotate("a", "b".into());
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn spans_nest_and_carry_fields() {
        let _g = locked();
        enable();
        reset();
        {
            let mut outer = span("outer");
            outer.field("who", "test");
            {
                let _inner = span("inner");
                annotate("note", "from annotate".to_string());
            }
        }
        disable();
        let snap = take_snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Completion order: inner finishes first.
        let inner = &snap.spans[0];
        let outer = &snap.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(outer.fields.iter().any(|(k, v)| *k == "who" && v == "test"));
        assert!(inner.fields.iter().any(|(k, v)| *k == "note" && v == "from annotate"));
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let _g = locked();
        enable();
        reset();
        counter_add("x", 2);
        counter_add("x", 3);
        observe("sizes", 0);
        observe("sizes", 1);
        observe("sizes", 1000);
        disable();
        let snap = take_snapshot();
        assert_eq!(snap.counters.get("x"), Some(&5));
        let h = snap.histograms.get("sizes").expect("histogram");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1001);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // 0 -> bucket 0, 1 -> bucket 1, 1000 -> bucket 10 (512..1023).
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[10], 1);
    }

    #[test]
    fn convenience_readers() {
        let _g = locked();
        enable();
        reset();
        counter_add("reads", 7);
        observe("lat", 4);
        assert_eq!(counter("reads"), 7);
        assert_eq!(counter("absent"), 0);
        assert_eq!(histogram("lat").map(|h| h.count), Some(1));
        disable();
        reset();
    }

    #[test]
    fn concurrent_counter_adds_are_lossless() {
        let _g = locked();
        enable();
        reset();
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        counter_add("test.registry.concurrent", 1);
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(counter("test.registry.concurrent"), 8000);
        disable();
        reset();
    }

    #[test]
    fn concurrent_observations_keep_totals_consistent() {
        let _g = locked();
        enable();
        reset();
        crossbeam::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move |_| {
                    for i in 0..500u64 {
                        observe("test.registry.hist", t * 1000 + i);
                    }
                });
            }
        })
        .expect("threads join");
        let h = histogram("test.registry.hist").expect("recorded");
        assert_eq!(h.count, 2000);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2000);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 3499);
        disable();
        reset();
    }

    #[test]
    fn jsonl_and_tree_render() {
        let _g = locked();
        enable();
        reset();
        {
            let mut a = span("delegation.commit");
            a.field("init", "com.dropbox");
            let _b = span("journal.flush");
        }
        counter_add("journal.flushes", 1);
        observe("journal.flush_bytes", 4096);
        disable();
        let snap = take_snapshot();
        let jsonl = snap.to_jsonl();
        assert!(jsonl.lines().count() >= 4);
        assert!(jsonl.contains("\"type\":\"span\""));
        assert!(jsonl.contains("\"type\":\"counter\""));
        assert!(jsonl.contains("\"type\":\"histogram\""));
        assert!(jsonl.contains("\"init\":\"com.dropbox\""));
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        }
        let tree = snap.render_span_tree();
        assert!(tree.contains("delegation.commit"));
        // The child is indented under its parent.
        let child_line = tree.lines().find(|l| l.contains("journal.flush")).unwrap();
        assert!(child_line.starts_with("  "), "child must be indented: {child_line:?}");
    }
}
