//! The kernel: process table, Zygote forking, syscall surface.
//!
//! # Concurrency
//!
//! The kernel is shared by every thread in the system, so all of its
//! state is interior, and the two hot structures are sharded so tenants
//! on different shards never contend (DESIGN.md §4.14):
//!
//! * **Process table** — [`PROC_SHARDS`] pid-hashed shards, each its own
//!   `RwLock<BTreeMap<Pid, Arc<Process>>>`. A syscall or Binder check
//!   locks exactly one shard (`pid % PROC_SHARDS`), clones the
//!   `Arc<Process>` out, releases the shard and runs the actual
//!   VFS/network work in parallel. Pids come from a global `AtomicU64`,
//!   so allocation never takes any lock. Sweeps (`processes`,
//!   `find_processes`) visit shards one at a time in index order — they
//!   see a per-shard-consistent snapshot, which is all the callers need.
//! * **App registry** — read-mostly, so it is an `Arc`-swapped immutable
//!   snapshot: readers briefly read-lock only to clone the `Arc` (no
//!   contention with other readers, and the guard never spans a map
//!   walk); `install_app` builds a new map and swaps the `Arc` under the
//!   write lock. Uid assignment happens under the same write lock, so
//!   uids are dense and reinstalls are idempotent.
//!
//! In the global lock order these locks rank above the VFS store shards:
//! a thread may acquire store shards while holding a process-table shard,
//! never the reverse (see DESIGN.md §4.10, §4.14). No kernel path ever
//! holds two process-table shards at once.

use crate::binder::{binder_allowed, BinderEndpoint};
use crate::error::{KernelError, KernelResult};
use crate::net::Network;
use crate::process::{AppId, ExecContext, Pid, Process};
use maxoid_vfs::{Cred, FileHandle, Metadata, Mode, MountNamespace, OpenMode, Uid, VPath, Vfs};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of pid-hashed process-table shards.
pub const PROC_SHARDS: usize = 16;

/// The process-table shard a pid lives in.
pub fn proc_shard_of(pid: Pid) -> usize {
    (pid.0 as usize) % PROC_SHARDS
}

/// The app registry: an immutable snapshot behind an `Arc`, swapped
/// wholesale on install. `next_uid` rides in the same writer-locked cell
/// so uid assignment is atomic with registry publication.
#[derive(Debug)]
struct AppRegistry {
    snap: Arc<BTreeMap<AppId, Uid>>,
    next_uid: u32,
}

/// The simulated kernel: owns the VFS, the network device, the app
/// registry (installed packages and their UIDs) and the process table.
#[derive(Debug)]
pub struct Kernel {
    vfs: Vfs,
    /// The simulated network device.
    pub net: Network,
    apps: RwLock<AppRegistry>,
    procs: Vec<RwLock<BTreeMap<Pid, Arc<Process>>>>,
    next_pid: AtomicU64,
    /// The πBox-style trusted-cloud extension (paper §2.4): when enabled,
    /// delegates may connect to hosts on this list instead of losing the
    /// network entirely. Empty + disabled by default (the paper's actual
    /// design cuts all delegate network).
    trusted_cloud: RwLock<Option<std::collections::BTreeSet<String>>>,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Boots a kernel with an empty VFS and network.
    pub fn new() -> Self {
        Self::with_vfs(Vfs::new())
    }

    /// Boots a kernel around a caller-provided VFS. Used by cold boot,
    /// where the filesystem has already been recovered from a journal
    /// (possibly into a block-device-backed store) before the kernel's
    /// process table exists.
    pub fn with_vfs(vfs: Vfs) -> Self {
        Kernel {
            vfs,
            net: Network::new(),
            apps: RwLock::new(AppRegistry {
                snap: Arc::new(BTreeMap::new()),
                next_uid: Uid::FIRST_APP,
            }),
            procs: (0..PROC_SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
            next_pid: AtomicU64::new(1),
            trusted_cloud: RwLock::new(None),
        }
    }

    /// The current app-registry snapshot (brief read-lock, then lock-free).
    fn apps_snapshot(&self) -> Arc<BTreeMap<AppId, Uid>> {
        self.apps.read().snap.clone()
    }

    /// Enables the πBox-style trusted-cloud extension (§2.4): delegates
    /// may reach the listed hosts, on the assumption that those backends
    /// are themselves confined (as in πBox). Everything else stays
    /// `ENETUNREACH`.
    pub fn enable_trusted_cloud(&self, hosts: impl IntoIterator<Item = String>) {
        *self.trusted_cloud.write() = Some(hosts.into_iter().collect());
    }

    /// Disables the trusted-cloud extension (back to the paper's default).
    pub fn disable_trusted_cloud(&self) {
        *self.trusted_cloud.write() = None;
    }

    /// Returns the kernel's VFS (shared handle).
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Installs an app, assigning it a dedicated uid (Android's app
    /// sandbox model, §2.1). Reinstalling returns the existing uid.
    pub fn install_app(&self, app: &AppId) -> Uid {
        let mut reg = self.apps.write();
        if let Some(uid) = reg.snap.get(app) {
            return *uid;
        }
        let uid = Uid(reg.next_uid);
        reg.next_uid += 1;
        let mut next = BTreeMap::clone(&reg.snap);
        next.insert(app.clone(), uid);
        reg.snap = Arc::new(next);
        uid
    }

    /// Returns the uid of an installed app.
    pub fn uid_of(&self, app: &AppId) -> KernelResult<Uid> {
        self.apps_snapshot().get(app).copied().ok_or_else(|| KernelError::NoSuchApp(app.0.clone()))
    }

    /// Returns true if the app is installed.
    pub fn is_installed(&self, app: &AppId) -> bool {
        self.apps_snapshot().contains_key(app)
    }

    /// Lists installed apps.
    pub fn installed_apps(&self) -> Vec<AppId> {
        self.apps_snapshot().keys().cloned().collect()
    }

    /// Zygote fork: creates a process for `app` with the given execution
    /// context and mount namespace (prepared by the branch manager).
    ///
    /// The (app, initiator) pair is recorded in the task struct exactly as
    /// Zygote passes it to the kernel through sysfs in the paper (§6.2).
    pub fn spawn(&self, app: &AppId, ctx: ExecContext, ns: MountNamespace) -> KernelResult<Pid> {
        let mut sp = maxoid_obs::span("kernel.spawn");
        sp.field_with("app", || app.0.clone());
        sp.field_with("ctx", || format!("{ctx:?}"));
        let uid =
            *self.apps_snapshot().get(app).ok_or_else(|| KernelError::NoSuchApp(app.0.clone()))?;
        let pid = Pid(self.next_pid.fetch_add(1, Ordering::Relaxed));
        maxoid_obs::counter_add("kernel.spawns", 1);
        self.procs[proc_shard_of(pid)]
            .write()
            .insert(pid, Arc::new(Process { pid, app: app.clone(), uid, ctx, ns }));
        Ok(pid)
    }

    /// Terminates a process.
    pub fn kill(&self, pid: Pid) -> KernelResult<()> {
        let _sp = maxoid_obs::span("kernel.kill");
        self.procs[proc_shard_of(pid)]
            .write()
            .remove(&pid)
            .map(|_| ())
            .ok_or(KernelError::NoSuchProcess)
    }

    /// Returns a process' task struct (a shared snapshot handle: the
    /// process table's read lock is released before this returns, so the
    /// caller can do arbitrary work against the task without blocking
    /// spawns or kills).
    pub fn process(&self, pid: Pid) -> KernelResult<Arc<Process>> {
        self.procs[proc_shard_of(pid)].read().get(&pid).cloned().ok_or(KernelError::NoSuchProcess)
    }

    /// Enables or disables the union-mount path-resolution caches of a
    /// process' namespace (bench and diagnostics hook; resolution results
    /// are unaffected either way).
    pub fn set_resolve_caches(&self, pid: Pid, on: bool) -> KernelResult<()> {
        self.process(pid)?.ns.set_resolve_caches(on);
        Ok(())
    }

    /// Aggregate `(hits, misses)` of the resolution caches across a
    /// process' union mounts.
    pub fn resolve_cache_stats(&self, pid: Pid) -> KernelResult<(u64, u64)> {
        Ok(self.process(pid)?.ns.resolve_cache_stats())
    }

    /// Snapshot of all live processes at the time of the call. Shards are
    /// visited one at a time in index order (never two shard locks held
    /// together), so the result is per-shard consistent; the list is
    /// sorted by pid to keep callers order-independent of sharding.
    pub fn processes(&self) -> Vec<Arc<Process>> {
        let mut out: Vec<Arc<Process>> = Vec::new();
        for shard in &self.procs {
            out.extend(shard.read().values().cloned());
        }
        out.sort_by_key(|p| p.pid);
        out
    }

    /// Finds live processes of an app, optionally filtered by context.
    pub fn find_processes(&self, app: &AppId) -> Vec<Pid> {
        let mut out: Vec<Pid> = Vec::new();
        for shard in &self.procs {
            out.extend(shard.read().values().filter(|p| &p.app == app).map(|p| p.pid));
        }
        out.sort();
        out
    }

    // -----------------------------------------------------------------
    // Syscall surface (all namespace- and uid-checked through the VFS).
    // -----------------------------------------------------------------

    fn task(&self, pid: Pid) -> KernelResult<(Cred, Arc<Process>)> {
        let p = self.process(pid)?;
        Ok((p.cred(), p))
    }

    /// Opens a syscall span tagged with the syscall name and path.
    fn syscall_span(name: &'static str, path: &VPath) -> maxoid_obs::SpanGuard {
        let mut sp = maxoid_obs::span(name);
        sp.field_with("path", || path.to_string());
        sp
    }

    /// `read()`: reads a whole file.
    pub fn read(&self, pid: Pid, path: &VPath) -> KernelResult<Vec<u8>> {
        let _sp = Self::syscall_span("kernel.read", path);
        let (cred, p) = self.task(pid)?;
        Ok(self.vfs.read(cred, &p.ns, path)?)
    }

    /// `write()`: creates or truncates a file.
    pub fn write(&self, pid: Pid, path: &VPath, data: &[u8], mode: Mode) -> KernelResult<()> {
        let _sp = Self::syscall_span("kernel.write", path);
        let (cred, p) = self.task(pid)?;
        Ok(self.vfs.write(cred, &p.ns, path, data, mode)?)
    }

    /// `write()` with `O_APPEND`.
    pub fn append(&self, pid: Pid, path: &VPath, data: &[u8]) -> KernelResult<()> {
        let _sp = Self::syscall_span("kernel.append", path);
        let (cred, p) = self.task(pid)?;
        Ok(self.vfs.append(cred, &p.ns, path, data)?)
    }

    /// `unlink()`.
    pub fn unlink(&self, pid: Pid, path: &VPath) -> KernelResult<()> {
        let _sp = Self::syscall_span("kernel.unlink", path);
        let (cred, p) = self.task(pid)?;
        Ok(self.vfs.unlink(cred, &p.ns, path)?)
    }

    /// `mkdir -p`.
    pub fn mkdir_all(&self, pid: Pid, path: &VPath, mode: Mode) -> KernelResult<()> {
        let _sp = Self::syscall_span("kernel.mkdir_all", path);
        let (cred, p) = self.task(pid)?;
        Ok(self.vfs.mkdir_all(cred, &p.ns, path, mode)?)
    }

    /// `readdir()`.
    pub fn read_dir(&self, pid: Pid, path: &VPath) -> KernelResult<Vec<maxoid_vfs::DirEntry>> {
        let _sp = Self::syscall_span("kernel.read_dir", path);
        let (cred, p) = self.task(pid)?;
        Ok(self.vfs.read_dir(cred, &p.ns, path)?)
    }

    /// `stat()`.
    pub fn stat(&self, pid: Pid, path: &VPath) -> KernelResult<Metadata> {
        let _sp = Self::syscall_span("kernel.stat", path);
        let (cred, p) = self.task(pid)?;
        Ok(self.vfs.stat(cred, &p.ns, path)?)
    }

    /// Returns true when the path is visible to the process.
    pub fn exists(&self, pid: Pid, path: &VPath) -> bool {
        self.task(pid).map(|(cred, p)| self.vfs.exists(cred, &p.ns, path)).unwrap_or(false)
    }

    /// `rename()` within a mount.
    pub fn rename(&self, pid: Pid, from: &VPath, to: &VPath) -> KernelResult<()> {
        let mut sp = Self::syscall_span("kernel.rename", from);
        sp.field_with("to", || to.to_string());
        let (cred, p) = self.task(pid)?;
        Ok(self.vfs.rename(cred, &p.ns, from, to)?)
    }

    /// `open()`: returns a handle that can be passed across processes
    /// (the ParcelFileDescriptor mechanism).
    pub fn open(&self, pid: Pid, path: &VPath, mode: OpenMode) -> KernelResult<FileHandle> {
        let _sp = Self::syscall_span("kernel.open", path);
        let (cred, p) = self.task(pid)?;
        Ok(self.vfs.open(cred, &p.ns, path, mode)?)
    }

    /// Reads through an open handle.
    pub fn read_handle(&self, handle: FileHandle) -> KernelResult<Vec<u8>> {
        Ok(self.vfs.read_handle(handle)?)
    }

    /// Writes through an open handle.
    pub fn write_handle(&self, handle: FileHandle, data: &[u8]) -> KernelResult<()> {
        Ok(self.vfs.write_handle(handle, data)?)
    }

    /// `connect()`: Maxoid emulates loss of network connection for
    /// delegates by returning `ENETUNREACH` (§6.2 item 3.2).
    pub fn connect(&self, pid: Pid, host: &str) -> KernelResult<()> {
        let mut sp = maxoid_obs::span("kernel.connect");
        sp.field_with("host", || host.to_string());
        let p = self.process(pid)?;
        if p.ctx.is_delegate() {
            let trusted = self
                .trusted_cloud
                .read()
                .as_ref()
                .map(|hosts| hosts.contains(host))
                .unwrap_or(false);
            if !trusted {
                maxoid_obs::counter_add("kernel.net_denied", 1);
                sp.field("outcome", "ENETUNREACH");
                return Err(KernelError::NetworkUnreachable);
            }
        }
        if !self.net.has_host(host) {
            return Err(KernelError::NoSuchHost);
        }
        Ok(())
    }

    /// Fetches a URL: `connect()` check plus transfer.
    pub fn http_get(&self, pid: Pid, url: &str) -> KernelResult<Vec<u8>> {
        let mut sp = maxoid_obs::span("kernel.http_get");
        sp.field_with("url", || url.to_string());
        let (host, path) = Network::split_url(url)?;
        self.connect(pid, host)?;
        self.net.fetch(host, path)
    }

    /// Binder transaction check (§3.4): delegates may only reach system
    /// services, their initiator, and co-delegates of the same initiator.
    pub fn binder_check(&self, from: Pid, to: &BinderEndpoint) -> KernelResult<()> {
        let mut sp = maxoid_obs::span("kernel.binder_check");
        sp.field_with("to", || format!("{to:?}"));
        let p = self.process(from)?;
        if binder_allowed(&p, to) {
            maxoid_obs::counter_add("kernel.binder_allowed", 1);
            Ok(())
        } else {
            maxoid_obs::counter_add("kernel.binder_denied", 1);
            sp.field("outcome", "EPERM");
            Err(KernelError::PermissionDenied)
        }
    }

    /// Binder transaction check between two live processes.
    pub fn binder_check_pid(&self, from: Pid, to: Pid) -> KernelResult<()> {
        let target = self.process(to)?;
        let endpoint = BinderEndpoint::App { ctx: target.ctx.clone(), app: target.app.clone() };
        self.binder_check(from, &endpoint)
    }
}

// The whole kernel must be shareable across worker threads behind an
// `Arc` (or plain `&Kernel` from scoped threads).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Kernel>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use maxoid_vfs::{vpath, Mount};

    fn kernel_with_app(pkg: &str) -> (Kernel, AppId, Pid) {
        let k = Kernel::new();
        let app = AppId::new(pkg);
        k.install_app(&app);
        k.vfs()
            .with_store_mut(|s| s.mkdir_all(&vpath("/back/pub"), Uid::ROOT, Mode::PUBLIC).unwrap());
        let mut ns = MountNamespace::new();
        ns.add(Mount::bind(vpath("/sdcard"), vpath("/back/pub")).with_forced_mode(Mode::PUBLIC));
        let pid = k.spawn(&app, ExecContext::Normal, ns).unwrap();
        (k, app, pid)
    }

    #[test]
    fn uid_assignment_is_stable() {
        let k = Kernel::new();
        let a = AppId::new("a");
        let uid1 = k.install_app(&a);
        let uid2 = k.install_app(&a);
        assert_eq!(uid1, uid2);
        assert!(uid1.0 >= Uid::FIRST_APP);
        let b = k.install_app(&AppId::new("b"));
        assert_ne!(uid1, b);
    }

    #[test]
    fn spawn_requires_installed_app() {
        let k = Kernel::new();
        let err =
            k.spawn(&AppId::new("ghost"), ExecContext::Normal, MountNamespace::new()).unwrap_err();
        assert!(matches!(err, KernelError::NoSuchApp(_)));
    }

    #[test]
    fn syscalls_round_trip() {
        let (k, _, pid) = kernel_with_app("com.test");
        k.write(pid, &vpath("/sdcard/f.txt"), b"data", Mode::PUBLIC).unwrap();
        assert_eq!(k.read(pid, &vpath("/sdcard/f.txt")).unwrap(), b"data");
        assert!(k.exists(pid, &vpath("/sdcard/f.txt")));
        k.unlink(pid, &vpath("/sdcard/f.txt")).unwrap();
        assert!(!k.exists(pid, &vpath("/sdcard/f.txt")));
    }

    #[test]
    fn delegate_connect_is_enetunreach() {
        let (k, app, _) = kernel_with_app("com.viewer");
        k.net.publish("files.example", "x", b"data".to_vec());
        let email = AppId::new("com.email");
        k.install_app(&email);
        let del = k.spawn(&app, ExecContext::OnBehalfOf(email), MountNamespace::new()).unwrap();
        assert_eq!(k.connect(del, "files.example").err(), Some(KernelError::NetworkUnreachable));
        assert!(k.http_get(del, "files.example/x").is_err());
    }

    #[test]
    fn initiator_network_works() {
        let (k, _, pid) = kernel_with_app("com.browser");
        k.net.publish("files.example", "x", b"data".to_vec());
        assert_eq!(k.http_get(pid, "files.example/x").unwrap(), b"data");
        assert_eq!(k.connect(pid, "unknown.host").err(), Some(KernelError::NoSuchHost));
    }

    #[test]
    fn kill_removes_process() {
        let (k, _, pid) = kernel_with_app("com.test");
        k.kill(pid).unwrap();
        assert_eq!(k.kill(pid).err(), Some(KernelError::NoSuchProcess));
        assert!(k.process(pid).is_err());
    }

    #[test]
    fn trusted_cloud_extension_scopes_delegate_network() {
        let (k, app, _) = kernel_with_app("com.viewer");
        k.net.publish("trusted.cloud", "api", b"ok".to_vec());
        k.net.publish("evil.example", "exfil", b"".to_vec());
        let email = AppId::new("com.email");
        k.install_app(&email);
        let del = k.spawn(&app, ExecContext::OnBehalfOf(email), MountNamespace::new()).unwrap();
        // Default: everything unreachable.
        assert_eq!(k.connect(del, "trusted.cloud").err(), Some(KernelError::NetworkUnreachable));
        // With the extension, only the trusted host opens up.
        k.enable_trusted_cloud(["trusted.cloud".to_string()]);
        assert_eq!(k.http_get(del, "trusted.cloud/api").unwrap(), b"ok");
        assert_eq!(k.connect(del, "evil.example").err(), Some(KernelError::NetworkUnreachable));
        // Disabling restores the paper's default.
        k.disable_trusted_cloud();
        assert_eq!(k.connect(del, "trusted.cloud").err(), Some(KernelError::NetworkUnreachable));
    }

    #[test]
    fn binder_check_between_pids() {
        let (k, viewer, _) = kernel_with_app("com.viewer");
        let email = AppId::new("com.email");
        k.install_app(&email);
        let email_pid = k.spawn(&email, ExecContext::Normal, MountNamespace::new()).unwrap();
        let del = k
            .spawn(&viewer, ExecContext::OnBehalfOf(email.clone()), MountNamespace::new())
            .unwrap();
        // Delegate -> its initiator: allowed.
        k.binder_check_pid(del, email_pid).unwrap();
        // Delegate -> unrelated normal app: denied.
        let other = AppId::new("com.other");
        k.install_app(&other);
        let other_pid = k.spawn(&other, ExecContext::Normal, MountNamespace::new()).unwrap();
        assert_eq!(k.binder_check_pid(del, other_pid).err(), Some(KernelError::PermissionDenied));
        // Unrelated app -> delegate: the *sender* is unrestricted at the
        // Binder layer (AMS-level rules prevent invoking B^A; see core).
        k.binder_check_pid(other_pid, del).unwrap();
    }

    #[test]
    fn parallel_syscalls_and_spawns_share_the_kernel() {
        let (k, app, pid) = kernel_with_app("com.par");
        k.write(pid, &vpath("/sdcard/shared.txt"), b"seed", Mode::PUBLIC).unwrap();
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..50 {
                        assert_eq!(k.read(pid, &vpath("/sdcard/shared.txt")).unwrap(), b"seed");
                    }
                });
            }
            // A writer thread churns the process table concurrently.
            s.spawn(|_| {
                for _ in 0..50 {
                    let p = k.spawn(&app, ExecContext::Normal, MountNamespace::new()).unwrap();
                    k.kill(p).unwrap();
                }
            });
        })
        .expect("threads join");
        assert_eq!(k.find_processes(&app), vec![pid]);
    }
}
