//! Simulated network.
//!
//! The paper's prototype ran against real servers; the reproduction uses a
//! deterministic in-process network so the Downloads provider and the
//! delegate network cut-off can be exercised on a laptop. Hosts map URLs
//! to byte payloads; a configurable per-kilobyte latency knob lets benches
//! model transfer time without real sockets.
//!
//! The device is shared by every process, so all state is interior. The
//! host table is hashed into [`NET_SHARDS`] independently locked shards
//! (same shape as the kernel's process table, DESIGN.md §4.14): the
//! delegate `ENETUNREACH` check path and concurrent fetches to different
//! hosts never touch the same lock. `fetch` clones the resource out and
//! releases its shard lock *before* doing any transfer work, so the lock
//! is never held across simulated I/O. The traffic counter is atomic.

use crate::error::{KernelError, KernelResult};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of host-hashed shards in the network's host table.
pub const NET_SHARDS: usize = 16;

fn host_shard(host: &str) -> usize {
    // djb2 — same cheap string hash the VFS store uses for path shards.
    let mut h: u64 = 5381;
    for b in host.as_bytes() {
        h = h.wrapping_mul(33) ^ u64::from(*b);
    }
    (h as usize) % NET_SHARDS
}

/// An in-process network of named hosts serving static resources.
#[derive(Debug)]
pub struct Network {
    shards: Vec<RwLock<BTreeMap<String, BTreeMap<String, Vec<u8>>>>>,
    /// Count of successful fetches (for tests asserting traffic).
    fetch_count: AtomicU64,
}

impl Default for Network {
    fn default() -> Self {
        Network {
            shards: (0..NET_SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
            fetch_count: AtomicU64::new(0),
        }
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Publishes a resource at `host` / `path`.
    pub fn publish(&self, host: &str, path: &str, data: Vec<u8>) {
        self.shards[host_shard(host)]
            .write()
            .entry(host.to_string())
            .or_default()
            .insert(path.to_string(), data);
    }

    /// Returns true if the host exists.
    pub fn has_host(&self, host: &str) -> bool {
        self.shards[host_shard(host)].read().contains_key(host)
    }

    /// Number of successful fetches so far.
    pub fn fetch_count(&self) -> u64 {
        self.fetch_count.load(Ordering::Relaxed)
    }

    /// Fetches a resource. The caller must have passed the kernel's
    /// `connect()` check first.
    pub fn fetch(&self, host: &str, path: &str) -> KernelResult<Vec<u8>> {
        // Clone the payload and drop the shard guard before "transfer":
        // the lock bounds only the table lookup, never the I/O.
        let data = {
            let shard = self.shards[host_shard(host)].read();
            let h = shard.get(host).ok_or(KernelError::NoSuchHost)?;
            h.get(path).ok_or(KernelError::NoSuchResource)?.clone()
        };
        self.fetch_count.fetch_add(1, Ordering::Relaxed);
        Ok(data)
    }

    /// Parses a `host/path` URL into its components.
    pub fn split_url(url: &str) -> KernelResult<(&str, &str)> {
        let trimmed = url.strip_prefix("http://").unwrap_or(url);
        let trimmed = trimmed.strip_prefix("https://").unwrap_or(trimmed);
        match trimmed.split_once('/') {
            Some((host, path)) if !host.is_empty() => Ok((host, path)),
            _ => Err(KernelError::NoSuchHost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_fetch() {
        let net = Network::new();
        net.publish("files.example.com", "a.txt", b"hello".to_vec());
        assert_eq!(net.fetch("files.example.com", "a.txt").unwrap(), b"hello");
        assert_eq!(net.fetch_count(), 1);
        assert_eq!(
            net.fetch("files.example.com", "missing").err(),
            Some(KernelError::NoSuchResource)
        );
        assert_eq!(net.fetch("nope", "a").err(), Some(KernelError::NoSuchHost));
    }

    #[test]
    fn url_splitting() {
        assert_eq!(
            Network::split_url("http://h.example/a/b.pdf").unwrap(),
            ("h.example", "a/b.pdf")
        );
        assert_eq!(Network::split_url("h/x").unwrap(), ("h", "x"));
        assert!(Network::split_url("nohost").is_err());
        assert!(Network::split_url("/abs").is_err());
    }

    #[test]
    fn concurrent_fetches_share_read_locks() {
        let net = Network::new();
        net.publish("cdn.example", "blob", vec![1u8; 64]);
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..100 {
                        net.fetch("cdn.example", "blob").unwrap();
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(net.fetch_count(), 400);
    }

    #[test]
    fn hosts_land_in_stable_shards_and_all_remain_reachable() {
        let net = Network::new();
        for i in 0..64 {
            let host = format!("host{i}.example");
            net.publish(&host, "r", vec![i as u8]);
        }
        for i in 0..64 {
            let host = format!("host{i}.example");
            assert!(net.has_host(&host));
            assert_eq!(net.fetch(&host, "r").unwrap(), vec![i as u8]);
        }
        // The hash must spread hosts over more than one shard.
        let shards: std::collections::BTreeSet<usize> =
            (0..64).map(|i| host_shard(&format!("host{i}.example"))).collect();
        assert!(shards.len() > 1, "64 hosts all hashed to one shard");
    }
}
