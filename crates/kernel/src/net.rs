//! Simulated network.
//!
//! The paper's prototype ran against real servers; the reproduction uses a
//! deterministic in-process network so the Downloads provider and the
//! delegate network cut-off can be exercised on a laptop. Hosts map URLs
//! to byte payloads; a configurable per-kilobyte latency knob lets benches
//! model transfer time without real sockets.

use crate::error::{KernelError, KernelResult};
use std::collections::BTreeMap;

/// An in-process network of named hosts serving static resources.
#[derive(Debug, Default)]
pub struct Network {
    hosts: BTreeMap<String, BTreeMap<String, Vec<u8>>>,
    /// Count of successful fetches (for tests asserting traffic).
    pub fetch_count: u64,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Publishes a resource at `host` / `path`.
    pub fn publish(&mut self, host: &str, path: &str, data: Vec<u8>) {
        self.hosts.entry(host.to_string()).or_default().insert(path.to_string(), data);
    }

    /// Returns true if the host exists.
    pub fn has_host(&self, host: &str) -> bool {
        self.hosts.contains_key(host)
    }

    /// Fetches a resource. The caller must have passed the kernel's
    /// `connect()` check first.
    pub fn fetch(&mut self, host: &str, path: &str) -> KernelResult<Vec<u8>> {
        let h = self.hosts.get(host).ok_or(KernelError::NoSuchHost)?;
        let data = h.get(path).ok_or(KernelError::NoSuchResource)?.clone();
        self.fetch_count += 1;
        Ok(data)
    }

    /// Parses a `host/path` URL into its components.
    pub fn split_url(url: &str) -> KernelResult<(&str, &str)> {
        let trimmed = url.strip_prefix("http://").unwrap_or(url);
        let trimmed = trimmed.strip_prefix("https://").unwrap_or(trimmed);
        match trimmed.split_once('/') {
            Some((host, path)) if !host.is_empty() => Ok((host, path)),
            _ => Err(KernelError::NoSuchHost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_fetch() {
        let mut net = Network::new();
        net.publish("files.example.com", "a.txt", b"hello".to_vec());
        assert_eq!(net.fetch("files.example.com", "a.txt").unwrap(), b"hello");
        assert_eq!(net.fetch_count, 1);
        assert_eq!(
            net.fetch("files.example.com", "missing").err(),
            Some(KernelError::NoSuchResource)
        );
        assert_eq!(net.fetch("nope", "a").err(), Some(KernelError::NoSuchHost));
    }

    #[test]
    fn url_splitting() {
        assert_eq!(
            Network::split_url("http://h.example/a/b.pdf").unwrap(),
            ("h.example", "a/b.pdf")
        );
        assert_eq!(Network::split_url("h/x").unwrap(), ("h", "x"));
        assert!(Network::split_url("nohost").is_err());
        assert!(Network::split_url("/abs").is_err());
    }
}
