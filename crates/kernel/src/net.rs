//! Simulated network.
//!
//! The paper's prototype ran against real servers; the reproduction uses a
//! deterministic in-process network so the Downloads provider and the
//! delegate network cut-off can be exercised on a laptop. Hosts map URLs
//! to byte payloads; a configurable per-kilobyte latency knob lets benches
//! model transfer time without real sockets.
//!
//! The device is shared by every process, so all state is interior: the
//! host table sits behind an `RwLock` (fetches take read locks and run in
//! parallel) and the traffic counter is atomic.

use crate::error::{KernelError, KernelResult};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// An in-process network of named hosts serving static resources.
#[derive(Debug, Default)]
pub struct Network {
    hosts: RwLock<BTreeMap<String, BTreeMap<String, Vec<u8>>>>,
    /// Count of successful fetches (for tests asserting traffic).
    fetch_count: AtomicU64,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Publishes a resource at `host` / `path`.
    pub fn publish(&self, host: &str, path: &str, data: Vec<u8>) {
        self.hosts.write().entry(host.to_string()).or_default().insert(path.to_string(), data);
    }

    /// Returns true if the host exists.
    pub fn has_host(&self, host: &str) -> bool {
        self.hosts.read().contains_key(host)
    }

    /// Number of successful fetches so far.
    pub fn fetch_count(&self) -> u64 {
        self.fetch_count.load(Ordering::Relaxed)
    }

    /// Fetches a resource. The caller must have passed the kernel's
    /// `connect()` check first.
    pub fn fetch(&self, host: &str, path: &str) -> KernelResult<Vec<u8>> {
        let hosts = self.hosts.read();
        let h = hosts.get(host).ok_or(KernelError::NoSuchHost)?;
        let data = h.get(path).ok_or(KernelError::NoSuchResource)?.clone();
        self.fetch_count.fetch_add(1, Ordering::Relaxed);
        Ok(data)
    }

    /// Parses a `host/path` URL into its components.
    pub fn split_url(url: &str) -> KernelResult<(&str, &str)> {
        let trimmed = url.strip_prefix("http://").unwrap_or(url);
        let trimmed = trimmed.strip_prefix("https://").unwrap_or(trimmed);
        match trimmed.split_once('/') {
            Some((host, path)) if !host.is_empty() => Ok((host, path)),
            _ => Err(KernelError::NoSuchHost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_fetch() {
        let net = Network::new();
        net.publish("files.example.com", "a.txt", b"hello".to_vec());
        assert_eq!(net.fetch("files.example.com", "a.txt").unwrap(), b"hello");
        assert_eq!(net.fetch_count(), 1);
        assert_eq!(
            net.fetch("files.example.com", "missing").err(),
            Some(KernelError::NoSuchResource)
        );
        assert_eq!(net.fetch("nope", "a").err(), Some(KernelError::NoSuchHost));
    }

    #[test]
    fn url_splitting() {
        assert_eq!(
            Network::split_url("http://h.example/a/b.pdf").unwrap(),
            ("h.example", "a/b.pdf")
        );
        assert_eq!(Network::split_url("h/x").unwrap(), ("h", "x"));
        assert!(Network::split_url("nohost").is_err());
        assert!(Network::split_url("/abs").is_err());
    }

    #[test]
    fn concurrent_fetches_share_read_locks() {
        let net = Network::new();
        net.publish("cdn.example", "blob", vec![1u8; 64]);
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..100 {
                        net.fetch("cdn.example", "blob").unwrap();
                    }
                });
            }
        })
        .expect("threads join");
        assert_eq!(net.fetch_count(), 400);
    }
}
