//! The process model: apps, execution contexts and task structs.

use maxoid_vfs::{Cred, MountNamespace, Uid};
use std::fmt;

/// An installed application, identified by its package name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub String);

impl AppId {
    /// Creates an app id from a package name.
    pub fn new(pkg: &str) -> Self {
        AppId(pkg.to_string())
    }

    /// Returns the package name.
    pub fn pkg(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AppId {
    fn from(s: &str) -> Self {
        AppId::new(s)
    }
}

/// The Maxoid execution context stored in each task struct (§6.2).
///
/// This is the piece of state Zygote communicates to the kernel through
/// the sysfs interface when forking an app process: whether the app runs
/// normally (as an initiator / on behalf of itself) or on behalf of
/// another app.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExecContext {
    /// The app runs on behalf of itself; identical to stock Android.
    Normal,
    /// The app is a delegate of the named initiator (`B^A`).
    OnBehalfOf(AppId),
}

impl ExecContext {
    /// Returns the initiator if this is a delegate context.
    pub fn initiator(&self) -> Option<&AppId> {
        match self {
            ExecContext::Normal => None,
            ExecContext::OnBehalfOf(a) => Some(a),
        }
    }

    /// Returns true for delegate contexts.
    pub fn is_delegate(&self) -> bool {
        matches!(self, ExecContext::OnBehalfOf(_))
    }
}

impl fmt::Display for ExecContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecContext::Normal => f.write_str("normal"),
            ExecContext::OnBehalfOf(a) => write!(f, "on behalf of {a}"),
        }
    }
}

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// A running app process (the kernel's task struct).
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// The app this process belongs to.
    pub app: AppId,
    /// The app's Unix uid.
    pub uid: Uid,
    /// Maxoid execution context (set via the sysfs interface at fork).
    pub ctx: ExecContext,
    /// The process' private mount namespace (built by Zygote's branch
    /// manager before dropping root).
    pub ns: MountNamespace,
}

impl Process {
    /// Returns the credentials syscalls run with.
    pub fn cred(&self) -> Cred {
        Cred::new(self.uid)
    }

    /// Returns true when this process is a delegate of `initiator`.
    pub fn is_delegate_of(&self, initiator: &AppId) -> bool {
        self.ctx.initiator() == Some(initiator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_accessors() {
        let normal = ExecContext::Normal;
        assert!(!normal.is_delegate());
        assert_eq!(normal.initiator(), None);
        let del = ExecContext::OnBehalfOf(AppId::new("com.email"));
        assert!(del.is_delegate());
        assert_eq!(del.initiator().unwrap().pkg(), "com.email");
        assert_eq!(del.to_string(), "on behalf of com.email");
    }

    #[test]
    fn delegate_of_checks_initiator() {
        let p = Process {
            pid: Pid(7),
            app: AppId::new("com.viewer"),
            uid: Uid(10_002),
            ctx: ExecContext::OnBehalfOf(AppId::new("com.email")),
            ns: MountNamespace::new(),
        };
        assert!(p.is_delegate_of(&AppId::new("com.email")));
        assert!(!p.is_delegate_of(&AppId::new("com.other")));
    }
}
