//! The simulated kernel substrate for the Maxoid reproduction.
//!
//! Plays the role of the Linux kernel pieces the paper modifies (§6.2):
//! per-task Maxoid contexts communicated by Zygote through a sysfs-like
//! interface, `connect()` returning `ENETUNREACH` for delegates, and
//! Binder IPC endpoint restrictions. It also owns the VFS and a
//! deterministic in-process network.
//!
//! # Examples
//!
//! ```
//! use maxoid_kernel::{AppId, ExecContext, Kernel, KernelError};
//! use maxoid_vfs::MountNamespace;
//!
//! let mut kernel = Kernel::new();
//! let viewer = AppId::new("com.viewer");
//! let email = AppId::new("com.email");
//! kernel.install_app(&viewer);
//! kernel.install_app(&email);
//! kernel.net.publish("evil.example", "exfil", vec![]);
//!
//! // A delegate of email cannot reach the network.
//! let pid = kernel
//!     .spawn(&viewer, ExecContext::OnBehalfOf(email), MountNamespace::new())
//!     .unwrap();
//! assert_eq!(kernel.connect(pid, "evil.example"), Err(KernelError::NetworkUnreachable));
//! ```

#![warn(missing_docs)]

pub mod binder;
pub mod error;
#[allow(clippy::module_inception)]
pub mod kernel;
pub mod net;
pub mod process;

pub use binder::{binder_allowed, BinderEndpoint};
pub use error::{KernelError, KernelResult};
pub use kernel::{proc_shard_of, Kernel, PROC_SHARDS};
pub use net::{Network, NET_SHARDS};
pub use process::{AppId, ExecContext, Pid, Process};
