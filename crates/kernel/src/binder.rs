//! Binder IPC endpoint checks (paper §3.4, §6.2 item 3).
//!
//! Maxoid restricts *direct* Binder IPC for delegates: a delegate may only
//! talk to trusted system services (including system content providers),
//! its initiator, and other delegates of the same initiator. Initiators
//! keep stock Android behaviour. Higher-level intent routing (invocation
//! transitivity) is enforced separately in the Activity Manager; this
//! module is the kernel's last line of defence under it.

use crate::process::{ExecContext, Process};

/// The destination of a Binder transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinderEndpoint {
    /// A trusted system service or system content provider.
    SystemService,
    /// Another app process.
    App {
        /// The destination's execution context.
        ctx: ExecContext,
        /// The destination's package.
        app: crate::process::AppId,
    },
}

/// Decides whether a Binder transaction from `from` to `to` is permitted.
pub fn binder_allowed(from: &Process, to: &BinderEndpoint) -> bool {
    match &from.ctx {
        // Initiators keep stock Android behaviour.
        ExecContext::Normal => true,
        ExecContext::OnBehalfOf(initiator) => match to {
            BinderEndpoint::SystemService => true,
            BinderEndpoint::App { ctx, app } => match ctx {
                // The initiator itself, running normally.
                ExecContext::Normal => app == initiator,
                // A co-delegate of the same initiator (including another
                // process of this very app).
                ExecContext::OnBehalfOf(other) => other == initiator,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{AppId, Pid};
    use maxoid_vfs::{MountNamespace, Uid};

    fn proc(app: &str, ctx: ExecContext) -> Process {
        Process {
            pid: Pid(1),
            app: AppId::new(app),
            uid: Uid(10_001),
            ctx,
            ns: MountNamespace::new(),
        }
    }

    #[test]
    fn initiators_are_unrestricted() {
        let p = proc("any", ExecContext::Normal);
        assert!(binder_allowed(&p, &BinderEndpoint::SystemService));
        assert!(binder_allowed(
            &p,
            &BinderEndpoint::App { ctx: ExecContext::Normal, app: AppId::new("x") }
        ));
    }

    #[test]
    fn delegate_may_reach_system_initiator_and_codelegates() {
        let d = proc("viewer", ExecContext::OnBehalfOf(AppId::new("email")));
        assert!(binder_allowed(&d, &BinderEndpoint::SystemService));
        // Its initiator.
        assert!(binder_allowed(
            &d,
            &BinderEndpoint::App { ctx: ExecContext::Normal, app: AppId::new("email") }
        ));
        // A co-delegate of the same initiator.
        assert!(binder_allowed(
            &d,
            &BinderEndpoint::App {
                ctx: ExecContext::OnBehalfOf(AppId::new("email")),
                app: AppId::new("scanner"),
            }
        ));
    }

    #[test]
    fn delegate_cannot_reach_outsiders() {
        let d = proc("viewer", ExecContext::OnBehalfOf(AppId::new("email")));
        // A normal app that is not the initiator: S1 would be violated.
        assert!(!binder_allowed(
            &d,
            &BinderEndpoint::App { ctx: ExecContext::Normal, app: AppId::new("evil") }
        ));
        // A delegate of a different initiator.
        assert!(!binder_allowed(
            &d,
            &BinderEndpoint::App {
                ctx: ExecContext::OnBehalfOf(AppId::new("dropbox")),
                app: AppId::new("viewer"),
            }
        ));
        // Even a normal instance of itself (it could leak to Priv(B)).
        assert!(!binder_allowed(
            &d,
            &BinderEndpoint::App { ctx: ExecContext::Normal, app: AppId::new("viewer") }
        ));
    }
}
