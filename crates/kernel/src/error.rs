//! Kernel error codes.

use std::fmt;

/// Errors surfaced by kernel operations, errno-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// `ESRCH`: no such process.
    NoSuchProcess,
    /// `ENETUNREACH`: the network is unreachable. This is exactly the code
    /// Maxoid returns from `connect()` for delegates (§6.2), chosen because
    /// apps already tolerate it as ordinary mobile-network loss.
    NetworkUnreachable,
    /// `EPERM`: the operation is not permitted (Binder endpoint denied,
    /// service policy).
    PermissionDenied,
    /// `EHOSTUNREACH`: the remote host does not exist in the simulated
    /// network.
    NoSuchHost,
    /// `ENOENT`: the remote resource does not exist.
    NoSuchResource,
    /// The referenced app package is not installed.
    NoSuchApp(String),
    /// A filesystem error propagated through a syscall.
    Fs(maxoid_vfs::VfsError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchProcess => f.write_str("ESRCH"),
            KernelError::NetworkUnreachable => f.write_str("ENETUNREACH"),
            KernelError::PermissionDenied => f.write_str("EPERM"),
            KernelError::NoSuchHost => f.write_str("EHOSTUNREACH"),
            KernelError::NoSuchResource => f.write_str("ENOENT (remote)"),
            KernelError::NoSuchApp(a) => write!(f, "no such app: {a}"),
            KernelError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<maxoid_vfs::VfsError> for KernelError {
    fn from(e: maxoid_vfs::VfsError) -> Self {
        KernelError::Fs(e)
    }
}

/// Result alias for kernel operations.
pub type KernelResult<T> = Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_errno_names() {
        assert_eq!(KernelError::NetworkUnreachable.to_string(), "ENETUNREACH");
        assert_eq!(KernelError::Fs(maxoid_vfs::VfsError::NotFound).to_string(), "ENOENT");
    }
}
