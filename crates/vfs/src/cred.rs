//! Credentials and permission bits.
//!
//! Android assigns every installed app a dedicated Unix UID; the VFS checks
//! accesses against a simplified mode model (owner and world read/write
//! bits). This is the mechanism Maxoid relies on to keep `Priv(A)` private:
//! files under an app's internal data directory are owned by the app's UID
//! with no world bits set.

/// A Unix-style user id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u32);

impl Uid {
    /// The superuser id; bypasses all permission checks.
    pub const ROOT: Uid = Uid(0);

    /// The system server uid (Android's `system`, 1000).
    pub const SYSTEM: Uid = Uid(1000);

    /// The first uid assigned to installed apps (Android's
    /// `FIRST_APPLICATION_UID`).
    pub const FIRST_APP: u32 = 10_000;

    /// Returns true for the superuser.
    pub fn is_root(self) -> bool {
        self == Uid::ROOT
    }
}

/// Simplified permission bits for a node.
///
/// Only owner and world read/write are modelled; Android's app sandboxes
/// never rely on the group triad for the state Maxoid cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mode {
    /// Owner may read.
    pub owner_read: bool,
    /// Owner may write.
    pub owner_write: bool,
    /// Any uid may read.
    pub world_read: bool,
    /// Any uid may write.
    pub world_write: bool,
}

impl Mode {
    /// Owner read/write only (`0600`/`0700`) — app-private data.
    pub const PRIVATE: Mode =
        Mode { owner_read: true, owner_write: true, world_read: false, world_write: false };

    /// Owner read/write, world read (`0644`) — world-readable files like
    /// Google Drive's disclosed cache entries.
    pub const WORLD_READABLE: Mode =
        Mode { owner_read: true, owner_write: true, world_read: true, world_write: false };

    /// World read/write (`0666`/`0777`) — external storage semantics.
    pub const PUBLIC: Mode =
        Mode { owner_read: true, owner_write: true, world_read: true, world_write: true };

    /// Packs the four permission bits into a byte for journal records.
    pub fn to_bits(self) -> u8 {
        (self.owner_read as u8)
            | (self.owner_write as u8) << 1
            | (self.world_read as u8) << 2
            | (self.world_write as u8) << 3
    }

    /// Unpacks a journal-record permission byte.
    pub fn from_bits(bits: u8) -> Mode {
        Mode {
            owner_read: bits & 1 != 0,
            owner_write: bits & 2 != 0,
            world_read: bits & 4 != 0,
            world_write: bits & 8 != 0,
        }
    }

    /// Returns true if `uid` may read under this mode for a node owned by
    /// `owner`.
    pub fn allows_read(self, owner: Uid, uid: Uid) -> bool {
        uid.is_root() || self.world_read || (uid == owner && self.owner_read)
    }

    /// Returns true if `uid` may write under this mode for a node owned by
    /// `owner`.
    pub fn allows_write(self, owner: Uid, uid: Uid) -> bool {
        uid.is_root() || self.world_write || (uid == owner && self.owner_write)
    }
}

/// The credentials a VFS operation runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cred {
    /// The effective uid of the calling process.
    pub uid: Uid,
}

impl Cred {
    /// Credentials for the superuser.
    pub const ROOT: Cred = Cred { uid: Uid::ROOT };

    /// Credentials for the system server.
    pub const SYSTEM: Cred = Cred { uid: Uid::SYSTEM };

    /// Creates credentials for an arbitrary uid.
    pub fn new(uid: Uid) -> Self {
        Cred { uid }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_mode_excludes_others() {
        let owner = Uid(10_001);
        let other = Uid(10_002);
        assert!(Mode::PRIVATE.allows_read(owner, owner));
        assert!(!Mode::PRIVATE.allows_read(owner, other));
        assert!(Mode::PRIVATE.allows_read(owner, Uid::ROOT));
        assert!(!Mode::PRIVATE.allows_write(owner, other));
    }

    #[test]
    fn world_readable_mode() {
        let owner = Uid(10_001);
        let other = Uid(10_002);
        assert!(Mode::WORLD_READABLE.allows_read(owner, other));
        assert!(!Mode::WORLD_READABLE.allows_write(owner, other));
    }

    #[test]
    fn public_mode_allows_all() {
        let owner = Uid(10_001);
        let other = Uid(10_002);
        assert!(Mode::PUBLIC.allows_write(owner, other));
    }
}
