//! The backing store: a sharded in-memory inode tree playing the role of
//! the device's flash storage.
//!
//! The store knows nothing about mounts, namespaces, or union views — it is
//! the "raw disk" that branches and bind mounts reference by *host path*.
//! All higher-level policy (Maxoid views, permissions at the app-facing
//! layer) is built on top in [`crate::union`] and [`crate::fs`].
//!
//! # Sharding
//!
//! The inode table is split into [`STORE_SHARDS`] shards, each behind its
//! own `RwLock`, so file operations on different tenants' branch trees
//! proceed without contending on one global store lock. An inode id maps to
//! its shard by `id % STORE_SHARDS`; the slot within the shard is
//! `id / STORE_SHARDS`. Every method takes `&self` — interior mutability
//! replaced the old `&mut Store` facade.
//!
//! **Deterministic allocation.** Journal replay addresses inodes by id
//! (`WriteInode` records), so a replayed store must reproduce the exact ids
//! the live store handed out. Creations therefore allocate in the shard
//! chosen by a *hash of the full path being created* — a pure function of
//! the operation, not of thread timing — and each shard's free list is
//! LIFO. Because the journal record is emitted while the operation still
//! holds its shard write guards, the journal's per-shard record order
//! equals the per-shard allocation order, and sequential replay reproduces
//! identical ids.
//!
//! **Lock protocol.** Multi-shard operations (create, unlink, rename,
//! copy-up targets) resolve their paths optimistically under transient
//! per-step read locks, compute the involved shard set, then acquire the
//! write guards in ascending shard order ([`Store::lock_shards`]). Under
//! the guards the operation re-validates what it resolved (parent still a
//! live directory, entry still maps to the expected id); on mismatch it
//! drops the guards and retries. No lock is ever acquired after the shard
//! set is taken, which is what makes the ascending order deadlock-free.
//!
//! **Sharded visibility generations.** Union resolution caches used to
//! validate against one global generation counter, which a sharded store
//! would turn into a false-sharing hot spot — and a single counter
//! invalidates *every* tenant's cache on *any* namespace change. Instead
//! the store keeps [`VIS_SHARDS`] generation counters keyed by a hash of
//! the first [`VIS_PREFIX_COMPONENTS`] path components. A namespace
//! mutation at `p` bumps the counters for each prefix of `p` up to that
//! depth; a union branch rooted at host `h` validates against the single
//! counter for `h`'s prefix ([`Store::vis_branch_shard`] +
//! [`Store::vis_stamp`]). The one operation that can move a whole subtree
//! *across* prefixes — renaming a directory — bumps every counter.

use crate::cred::{Mode, Uid};
use crate::error::{VfsError, VfsResult};
use crate::path::VPath;
use maxoid_block::{BlockDevice, CacheStats, ExtentAllocator, PageCache};
use maxoid_journal::codec::{ByteReader, ByteWriter};
use maxoid_journal::{Record, SinkRef, VfsRecord};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of inode-table shards. A power of two so `id % STORE_SHARDS`
/// compiles to a mask; 16 keeps per-shard contention negligible for the
/// fleet sizes the `fleet` bench drives while the all-shard operations
/// (snapshots, restores) stay cheap.
pub const STORE_SHARDS: usize = 16;

/// Number of namespace-visibility generation counters.
pub const VIS_SHARDS: usize = 64;

/// Path-prefix depth the visibility counters are keyed on. Union branch
/// hosts in this system live at depths 2–5; the deepest per-tenant
/// discriminator sits at component 4 (`/backing/ext/apps/<init>/tmp`,
/// `/backing/npriv/<init>/<pkg>`), so four components is the shallowest
/// keying at which distinct tenants' branches map to distinct counters —
/// at three, every tenant's external branches collapse onto the one
/// `backing/ext/apps` counter and any tenant's volatile write
/// invalidates the whole fleet's resolution caches.
pub const VIS_PREFIX_COMPONENTS: usize = 4;

/// Identifier of an inode within the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeId(pub u64);

/// The shard an inode id lives in.
pub fn shard_of(id: InodeId) -> usize {
    (id.0 as usize) % STORE_SHARDS
}

/// The slot index of an inode id within its shard.
fn local_of(id: InodeId) -> usize {
    (id.0 / STORE_SHARDS as u64) as usize
}

/// Reassembles a global inode id from (shard, local slot).
fn global_id(shard: usize, local: usize) -> InodeId {
    InodeId((local * STORE_SHARDS + shard) as u64)
}

fn djb2(bytes: &[u8]) -> u64 {
    bytes.iter().fold(5381u64, |h, &b| h.wrapping_mul(33) ^ b as u64)
}

/// The shard a *creation at this path* allocates its inode in. A pure
/// function of the path so journal replay allocates identically.
pub fn shard_of_path(path: &VPath) -> usize {
    (djb2(path.as_str().as_bytes()) % STORE_SHARDS as u64) as usize
}

/// Metadata common to files and directories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// Owning uid.
    pub owner: Uid,
    /// Permission bits.
    pub mode: Mode,
    /// Logical modification counter (monotonic store-wide clock).
    pub mtime: u64,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// True when the node is a directory.
    pub is_dir: bool,
}

/// Where a file's bytes live: inline in the inode, or spilled to sectors
/// of the store's block device.
///
/// Small payloads (at or below the store's spill threshold) and every
/// payload of a device-less store stay [`FileData::Resident`]. Larger
/// payloads on a block-backed store are written to an extent of device
/// sectors behind the page cache, keeping the inode table itself small
/// while content competes for the fixed page budget.
///
/// Cloning a `Paged` value aliases its sectors; the clone is only for
/// read-side materialization and must never be handed back to a store
/// that will later free both copies.
#[derive(Debug, Clone)]
pub enum FileData {
    /// Bytes held inline.
    Resident(Vec<u8>),
    /// Bytes spilled to device sectors (one page each, last one partial).
    Paged {
        /// The sectors holding the content, in order.
        sectors: Vec<u64>,
        /// Content length in bytes.
        len: u64,
    },
}

impl FileData {
    /// Content length in bytes, without touching the device.
    pub fn len(&self) -> u64 {
        match self {
            FileData::Resident(d) => d.len() as u64,
            FileData::Paged { len, .. } => *len,
        }
    }

    /// True when the content is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A node in the backing store.
#[derive(Debug, Clone)]
pub enum Inode {
    /// A regular file with its contents.
    File {
        /// File bytes (inline or spilled to the block device).
        data: FileData,
        /// Owner uid.
        owner: Uid,
        /// Permission bits.
        mode: Mode,
        /// Logical mtime.
        mtime: u64,
    },
    /// A directory mapping names to child inodes.
    Dir {
        /// Sorted child map.
        entries: BTreeMap<String, InodeId>,
        /// Owner uid.
        owner: Uid,
        /// Permission bits.
        mode: Mode,
        /// Logical mtime.
        mtime: u64,
    },
}

impl Inode {
    fn meta(&self) -> Metadata {
        match self {
            Inode::File { data, owner, mode, mtime } => Metadata {
                owner: *owner,
                mode: *mode,
                mtime: *mtime,
                size: data.len(),
                is_dir: false,
            },
            Inode::Dir { owner, mode, mtime, .. } => {
                Metadata { owner: *owner, mode: *mode, mtime: *mtime, size: 0, is_dir: true }
            }
        }
    }
}

/// A directory entry returned by [`Store::read_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name within its directory.
    pub name: String,
    /// True when the entry is a directory.
    pub is_dir: bool,
}

/// The block-device tier behind a paged store: a page cache plus a simple
/// sector allocator (free list + high-water mark).
///
/// Lives behind a [`Mutex`] because content reads come through `&Store`
/// while faulting a page in needs `&mut` access to the cache. The mutex is
/// a leaf in the global lock order: it is only taken while a shard lock is
/// already held, and nothing else is acquired under it.
struct PagedBacking {
    cache: PageCache,
    /// Sector allocator: free runs kept sorted and coalesced, so a spill
    /// gets an ascending contiguous extent whenever one exists instead
    /// of LIFO-scattered singles.
    alloc: ExtentAllocator,
}

/// Point-in-time store composition counters (see [`Store::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Files whose bytes are inline in the inode table.
    pub resident_files: u64,
    /// Total bytes held inline.
    pub resident_bytes: u64,
    /// Files spilled to the block device.
    pub spilled_files: u64,
    /// Total logical bytes spilled (device usage is this, page-rounded).
    pub spilled_bytes: u64,
    /// Page-cache counters, when a block device is attached.
    pub cache: Option<CacheStats>,
    /// Fixed page-cache budget in bytes (memory bound for spilled content).
    pub cache_budget_bytes: u64,
}

/// Materializes file content regardless of representation. Device I/O
/// failure on the spill tier is fatal: the device is process-lifetime
/// scratch (content is rebuilt from the WAL on recovery), so losing it
/// mid-run is equivalent to losing RAM.
fn fd_load(paged: &Option<Mutex<PagedBacking>>, data: &FileData) -> Vec<u8> {
    match data {
        FileData::Resident(d) => d.clone(),
        FileData::Paged { sectors, len } => {
            let p = paged.as_ref().expect("paged file data in a store with no block device");
            let mut p = p.lock();
            let ps = p.cache.page_size();
            let mut out = vec![0u8; *len as usize];
            for (i, &sec) in sectors.iter().enumerate() {
                let start = i * ps;
                let end = ((i + 1) * ps).min(out.len());
                let page = p.cache.read(sec).expect("vfs spill device read failed");
                out[start..end].copy_from_slice(&page.data()[..end - start]);
            }
            out
        }
    }
}

/// Chooses a representation for `bytes` and stores it: inline when small
/// (or when the store has no device), spilled to freshly allocated sectors
/// otherwise.
fn fd_store(paged: &Option<Mutex<PagedBacking>>, threshold: usize, bytes: &[u8]) -> FileData {
    let Some(p) = paged else { return FileData::Resident(bytes.to_vec()) };
    if bytes.len() <= threshold {
        return FileData::Resident(bytes.to_vec());
    }
    let mut p = p.lock();
    let ps = p.cache.page_size();
    let sectors = p.alloc.alloc(bytes.len().div_ceil(ps));
    for (i, &sec) in sectors.iter().enumerate() {
        let chunk = &bytes[i * ps..((i + 1) * ps).min(bytes.len())];
        if chunk.len() == ps {
            p.cache.write_full(sec, chunk).expect("vfs spill device write failed");
        } else {
            // Ragged tail: the freshly allocated sector's old bytes are
            // dead, so skip the load and zero-pad past `len` instead of
            // leaving stale prior-file bytes in the frame.
            p.cache.write_padded(sec, chunk).expect("vfs spill device write failed");
        }
    }
    FileData::Paged { sectors, len: bytes.len() as u64 }
}

/// Releases a value's sectors (if any) back to the allocator, discarding
/// their cached pages without write-back.
fn fd_free(paged: &Option<Mutex<PagedBacking>>, data: &FileData) {
    if let FileData::Paged { sectors, .. } = data {
        let p = paged.as_ref().expect("paged file data in a store with no block device");
        let mut p = p.lock();
        for &sec in sectors {
            p.cache.discard(sec);
        }
        p.alloc.free_sectors(sectors);
    }
}

/// One shard of the inode table: the slots whose global ids are congruent
/// to this shard's index, a LIFO free list of those ids, and the dirty set
/// incremental checkpoints drain.
struct Shard {
    /// Slot `l` holds the inode with global id `l * STORE_SHARDS + idx`.
    slots: Vec<Option<Inode>>,
    /// Freed ids available for reuse, LIFO (global ids, all in this shard).
    free: Vec<InodeId>,
    /// Global ids mutated since the last [`Store::take_dirty_image`].
    /// Deallocated slots stay in the set (the delta must record the
    /// tombstone).
    dirty: BTreeSet<u64>,
}

impl Shard {
    fn empty() -> Self {
        Shard { slots: Vec::new(), free: Vec::new(), dirty: BTreeSet::new() }
    }

    fn get(&self, id: InodeId) -> Option<&Inode> {
        self.slots.get(local_of(id)).and_then(|s| s.as_ref())
    }

    fn get_mut(&mut self, id: InodeId) -> Option<&mut Inode> {
        self.slots.get_mut(local_of(id)).and_then(|s| s.as_mut())
    }

    fn alloc(&mut self, idx: usize, inode: Inode) -> InodeId {
        let id = if let Some(id) = self.free.pop() {
            self.slots[local_of(id)] = Some(inode);
            id
        } else {
            let id = global_id(idx, self.slots.len());
            self.slots.push(Some(inode));
            id
        };
        self.dirty.insert(id.0);
        id
    }

    fn dealloc(&mut self, paged: &Option<Mutex<PagedBacking>>, id: InodeId) {
        if let Some(slot) = self.slots.get_mut(local_of(id)) {
            if let Some(Inode::File { data, .. }) = slot.take() {
                fd_free(paged, &data);
            }
            self.free.push(id);
            self.dirty.insert(id.0);
        }
    }
}

/// Write guards over the shard set one multi-shard operation touches,
/// acquired in ascending shard order by [`Store::lock_shards`]. All inode
/// access during the mutation goes through this, which statically rules
/// out touching a shard the operation did not declare.
struct Locked<'a> {
    guards: Vec<(usize, RwLockWriteGuard<'a, Shard>)>,
}

impl Locked<'_> {
    fn shard(&self, idx: usize) -> &Shard {
        &self.guards.iter().find(|(i, _)| *i == idx).expect("shard not in lock set").1
    }

    fn shard_mut(&mut self, idx: usize) -> &mut Shard {
        &mut self.guards.iter_mut().find(|(i, _)| *i == idx).expect("shard not in lock set").1
    }

    fn get(&self, id: InodeId) -> VfsResult<&Inode> {
        self.shard(shard_of(id)).get(id).ok_or(VfsError::NotFound)
    }

    fn get_mut(&mut self, id: InodeId) -> VfsResult<&mut Inode> {
        self.shard_mut(shard_of(id)).get_mut(id).ok_or(VfsError::NotFound)
    }

    fn alloc_in(&mut self, idx: usize, inode: Inode) -> InodeId {
        self.shard_mut(idx).alloc(idx, inode)
    }

    fn dealloc(&mut self, paged: &Option<Mutex<PagedBacking>>, id: InodeId) {
        self.shard_mut(shard_of(id)).dealloc(paged, id);
    }

    fn touch(&mut self, id: InodeId) {
        self.shard_mut(shard_of(id)).dirty.insert(id.0);
    }

    /// Looks up `name` under a parent that must be a live directory.
    /// `Err(NotFound)` means the parent vanished (caller retries);
    /// `Err(NotADirectory)` means it is a file.
    fn entry(&self, parent: InodeId, name: &str) -> VfsResult<Option<InodeId>> {
        match self.get(parent)? {
            Inode::Dir { entries, .. } => Ok(entries.get(name).copied()),
            Inode::File { .. } => Err(VfsError::NotADirectory),
        }
    }

    /// Inserts (or replaces) `name -> child` in a parent directory and
    /// stamps the parent's mtime. The parent must be a live directory.
    fn link(&mut self, parent: InodeId, name: String, child: InodeId, mtime: u64) {
        match self.get_mut(parent).expect("parent validated before link") {
            Inode::Dir { entries, mtime: pm, .. } => {
                entries.insert(name, child);
                *pm = mtime;
            }
            Inode::File { .. } => unreachable!("parent validated to be a directory"),
        }
        self.touch(parent);
    }

    /// Removes `name` from a parent directory and stamps its mtime.
    fn unlink_entry(&mut self, parent: InodeId, name: &str, mtime: u64) {
        match self.get_mut(parent).expect("parent validated before unlink") {
            Inode::Dir { entries, mtime: pm, .. } => {
                entries.remove(name);
                *pm = mtime;
            }
            Inode::File { .. } => unreachable!("parent validated to be a directory"),
        }
        self.touch(parent);
    }
}

/// The in-memory backing store, sharded for concurrent access.
///
/// Host paths are plain [`VPath`]s resolved from the store root; the store
/// performs **no permission checks** — it is below the layer where Android
/// UIDs matter. Callers that need checks use [`crate::fs::Vfs`].
pub struct Store {
    shards: Vec<RwLock<Shard>>,
    /// Root inode id (always 0 in practice; atomic only so image restore
    /// can adopt the image's value through `&self`).
    root: AtomicU64,
    /// Logical store-wide clock.
    clock: AtomicU64,
    /// Optional journal sink; when attached, every successful leaf
    /// mutation emits a physical [`VfsRecord`]. Behind its own `RwLock`
    /// (taken *after* shard guards, before the sink) so attach/detach work
    /// through `&self`.
    journal: RwLock<Option<SinkRef>>,
    /// Namespace-visibility generations, sharded by path prefix: advanced
    /// by every mutation that can change *which* paths exist (create,
    /// unlink, rmdir, rename, image restore) but not by content-only
    /// writes or appends. Union path-resolution caches validate against
    /// the counters for their branch hosts' prefixes, so one tenant's
    /// namespace changes no longer invalidate every other tenant's cache.
    vis: Vec<AtomicU64>,
    /// Optional block-device tier for large file payloads. See
    /// [`PagedBacking`] for why it sits behind its own (leaf) mutex.
    paged: Option<Mutex<PagedBacking>>,
    /// Payloads strictly larger than this spill to the device. Irrelevant
    /// when `paged` is `None` (everything stays resident).
    spill_threshold: usize,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("shards", &self.shards.len())
            .field("inodes", &self.inode_count())
            .field("clock", &self.clock.load(Ordering::Relaxed))
            .field("paged", &self.paged.is_some())
            .field("spill_threshold", &self.spill_threshold)
            .finish()
    }
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

/// Default spill threshold for block-backed stores: payloads up to this
/// size stay inline; anything larger goes to device pages.
pub const DEFAULT_SPILL_THRESHOLD: usize = 1024;

impl Store {
    /// Creates a store containing only an empty root directory.
    pub fn new() -> Self {
        let shards: Vec<RwLock<Shard>> =
            (0..STORE_SHARDS).map(|_| RwLock::new(Shard::empty())).collect();
        {
            let mut s0 = shards[0].write();
            s0.slots.push(Some(Inode::Dir {
                entries: BTreeMap::new(),
                owner: Uid::ROOT,
                mode: Mode::PUBLIC,
                mtime: 0,
            }));
            s0.dirty.insert(0);
        }
        Store {
            shards,
            root: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            journal: RwLock::new(None),
            vis: (0..VIS_SHARDS).map(|_| AtomicU64::new(0)).collect(),
            paged: None,
            spill_threshold: usize::MAX,
        }
    }

    /// Creates a store that spills file payloads larger than `threshold`
    /// bytes to `dev` behind a `pages`-page cache. The device is volatile
    /// scratch for the live tree — durability still comes from the journal
    /// — so page-resident memory for content is bounded by the cache
    /// budget no matter how large the working set grows.
    pub fn with_block_device(dev: Box<dyn BlockDevice>, pages: usize, threshold: usize) -> Self {
        let mut s = Store::new();
        s.paged = Some(Mutex::new(PagedBacking {
            cache: PageCache::new(dev, pages),
            alloc: ExtentAllocator::new(),
        }));
        s.spill_threshold = threshold;
        s
    }

    /// Point-in-time composition counters: how many files (and bytes) are
    /// inline vs spilled, plus the page-cache counters when a device is
    /// attached. The mirror of `db.stats` for the storage tier.
    pub fn stats(&self) -> StoreStats {
        let mut st = StoreStats::default();
        for shard in &self.shards {
            let sh = shard.read();
            for slot in sh.slots.iter().flatten() {
                if let Inode::File { data, .. } = slot {
                    match data {
                        FileData::Resident(d) => {
                            st.resident_files += 1;
                            st.resident_bytes += d.len() as u64;
                        }
                        FileData::Paged { len, .. } => {
                            st.spilled_files += 1;
                            st.spilled_bytes += len;
                        }
                    }
                }
            }
        }
        if let Some(p) = &self.paged {
            let p = p.lock();
            st.cache = Some(p.cache.stats());
            st.cache_budget_bytes = p.cache.budget_bytes() as u64;
        }
        st
    }

    /// Writes every dirty cached page back to the block device and issues
    /// its flush barrier. A no-op for device-less stores.
    pub fn flush_pages(&self) {
        if let Some(p) = &self.paged {
            p.lock().cache.flush().expect("vfs spill device flush failed");
        }
    }

    // ----- visibility generations -----

    fn vis_prefix_shard(path: &VPath, depth: usize) -> usize {
        let mut h = 5381u64;
        for (i, comp) in path.components().take(depth).enumerate() {
            if i > 0 {
                h = h.wrapping_mul(33) ^ b'/' as u64;
            }
            for &b in comp.as_bytes() {
                h = h.wrapping_mul(33) ^ b as u64;
            }
        }
        (h % VIS_SHARDS as u64) as usize
    }

    /// The visibility counter a union branch rooted at `host` should
    /// validate against, or `None` for a root-level host (which must fall
    /// back to stamping every counter).
    pub fn vis_branch_shard(host: &VPath) -> Option<usize> {
        let n = host.components().count();
        if n == 0 {
            return None;
        }
        Some(Self::vis_prefix_shard(host, n.min(VIS_PREFIX_COMPONENTS)))
    }

    /// Sums the named visibility counters into one validation stamp.
    pub fn vis_stamp(&self, shards: &[usize]) -> u64 {
        shards.iter().map(|&i| self.vis[i].load(Ordering::Acquire)).fold(0u64, u64::wrapping_add)
    }

    /// Bumps the counters covering every branch whose host is a prefix of
    /// `path` (or contains it): each prefix of `path` up to
    /// [`VIS_PREFIX_COMPONENTS`] components. A branch host deeper than
    /// that is keyed on its first `VIS_PREFIX_COMPONENTS` components, so
    /// the deepest bump covers it too.
    fn bump_path(&self, path: &VPath) {
        let n = path.components().count();
        if n == 0 {
            return self.bump_all();
        }
        for depth in 1..=n.min(VIS_PREFIX_COMPONENTS) {
            self.vis[Self::vis_prefix_shard(path, depth)].fetch_add(1, Ordering::Release);
        }
    }

    fn bump_all(&self) {
        for v in &self.vis {
            v.fetch_add(1, Ordering::Release);
        }
    }

    /// The current global visibility generation: the wrapping sum of every
    /// per-prefix counter. Changes whenever *any* namespace-visible
    /// mutation lands; kept for callers that do not track a branch set.
    pub fn visibility_gen(&self) -> u64 {
        self.vis.iter().map(|v| v.load(Ordering::Acquire)).fold(0u64, u64::wrapping_add)
    }

    /// Explicitly advances every visibility counter, invalidating every
    /// union resolution cache validated against this store. The leaf
    /// mutations below bump their path prefixes automatically; this hook
    /// exists for coarse-grained events (volatile commit/clear) that want
    /// a belt-and-braces invalidation on top.
    pub fn bump_visibility(&self) {
        self.bump_all();
    }

    /// Advances only the visibility counters covering `path` (every
    /// prefix up to [`VIS_PREFIX_COMPONENTS`] components): the targeted
    /// form of [`Store::bump_visibility`] for coarse events whose blast
    /// radius is one subtree — unions whose branch hosts share no prefix
    /// with `path` keep their resolution caches.
    pub fn bump_visibility_under(&self, path: &VPath) {
        self.bump_path(path);
    }

    // ----- journal plumbing -----

    /// Attaches a journal sink; subsequent successful mutations are logged.
    pub fn set_journal(&self, sink: SinkRef) {
        *self.journal.write() = Some(sink);
    }

    /// Detaches the journal sink, returning it if one was attached.
    pub fn take_journal(&self) -> Option<SinkRef> {
        self.journal.write().take()
    }

    fn journaled(&self) -> bool {
        self.journal.read().is_some()
    }

    fn emit(&self, rec: VfsRecord) {
        if let Some(j) = &*self.journal.read() {
            j.emit(Record::Vfs(rec));
        }
    }

    /// Returns the root inode id.
    pub fn root(&self) -> InodeId {
        InodeId(self.root.load(Ordering::Relaxed))
    }

    /// Advances and returns the logical clock.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Returns the current logical clock without advancing it.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    // ----- locking -----

    /// Acquires write guards for the given shard set in ascending index
    /// order (sorted + deduped), the store's only multi-shard lock path.
    fn lock_shards(&self, mut idxs: Vec<usize>) -> Locked<'_> {
        idxs.sort_unstable();
        idxs.dedup();
        Locked { guards: idxs.into_iter().map(|i| (i, self.shards[i].write())).collect() }
    }

    fn note_retry(&self) {
        maxoid_obs::counter_add("vfs.store.lock_retries", 1);
    }

    /// Runs `f` over a live inode under its shard's read lock.
    fn with_inode<R>(&self, id: InodeId, f: impl FnOnce(&Inode) -> R) -> VfsResult<R> {
        let sh = self.shards[shard_of(id)].read();
        sh.get(id).map(f).ok_or(VfsError::NotFound)
    }

    // ----- reads -----

    /// Resolves a host path to an inode id, taking each step's shard read
    /// lock transiently (never two at once).
    pub fn resolve(&self, path: &VPath) -> VfsResult<InodeId> {
        let mut cur = self.root();
        for comp in path.components() {
            let sh = self.shards[shard_of(cur)].read();
            match sh.get(cur) {
                None => return Err(VfsError::NotFound),
                Some(Inode::Dir { entries, .. }) => {
                    cur = *entries.get(comp).ok_or(VfsError::NotFound)?;
                }
                Some(Inode::File { .. }) => return Err(VfsError::NotADirectory),
            }
        }
        Ok(cur)
    }

    /// Returns true if the host path exists.
    pub fn exists(&self, path: &VPath) -> bool {
        self.resolve(path).is_ok()
    }

    /// Returns metadata for a host path.
    pub fn stat(&self, path: &VPath) -> VfsResult<Metadata> {
        let id = self.resolve(path)?;
        self.with_inode(id, |ino| ino.meta())
    }

    /// Returns metadata for an inode id (used by open file handles).
    pub fn stat_inode(&self, id: InodeId) -> VfsResult<Metadata> {
        self.with_inode(id, |ino| ino.meta())
    }

    /// Reads the full contents of a file.
    pub fn read(&self, path: &VPath) -> VfsResult<Vec<u8>> {
        let id = self.resolve(path)?;
        self.read_inode(id)
    }

    /// Reads a file by inode id, materializing spilled content through the
    /// page cache (under the inode's shard read lock, so the sectors
    /// cannot be freed out from under the load).
    pub fn read_inode(&self, id: InodeId) -> VfsResult<Vec<u8>> {
        self.with_inode(id, |ino| match ino {
            Inode::File { data, .. } => Ok(fd_load(&self.paged, data)),
            Inode::Dir { .. } => Err(VfsError::IsADirectory),
        })?
    }

    /// Lists a directory's entries in name order. Children are stat'ed
    /// with brief per-child locks after the directory lock is dropped;
    /// entries unlinked mid-listing are skipped rather than erroring.
    pub fn read_dir(&self, path: &VPath) -> VfsResult<Vec<DirEntry>> {
        let id = self.resolve(path)?;
        let entries: Vec<(String, InodeId)> = self.with_inode(id, |ino| match ino {
            Inode::Dir { entries, .. } => {
                Ok(entries.iter().map(|(n, i)| (n.clone(), *i)).collect())
            }
            Inode::File { .. } => Err(VfsError::NotADirectory),
        })??;
        let mut out = Vec::with_capacity(entries.len());
        for (name, child) in entries {
            if let Ok(is_dir) = self.with_inode(child, |ino| ino.meta().is_dir) {
                out.push(DirEntry { name, is_dir });
            }
        }
        Ok(out)
    }

    // ----- mutations -----

    /// Creates a directory; parent must exist.
    pub fn mkdir(&self, path: &VPath, owner: Uid, mode: Mode) -> VfsResult<InodeId> {
        let parent_path = path.parent().ok_or(VfsError::AlreadyExists)?;
        let name = path.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        let alloc_shard = shard_of_path(path);
        loop {
            let parent = self.resolve(&parent_path)?;
            let mut locked = self.lock_shards(vec![shard_of(parent), alloc_shard]);
            let existing = match locked.entry(parent, &name) {
                Ok(e) => e,
                Err(VfsError::NotFound) => {
                    // Parent vanished between resolve and lock: retry.
                    drop(locked);
                    self.note_retry();
                    continue;
                }
                Err(e) => {
                    self.tick();
                    return Err(e);
                }
            };
            let mtime = self.tick();
            if existing.is_some() {
                return Err(VfsError::AlreadyExists);
            }
            let child = locked.alloc_in(
                alloc_shard,
                Inode::Dir { entries: BTreeMap::new(), owner, mode, mtime },
            );
            locked.link(parent, name, child, mtime);
            self.bump_path(path);
            self.emit(VfsRecord::Mkdir {
                path: path.as_str().to_string(),
                owner: owner.0,
                mode: mode.to_bits(),
            });
            return Ok(child);
        }
    }

    /// Creates all missing ancestors of `path` and `path` itself as
    /// directories. Existing directories are left untouched; losing a
    /// creation race to a concurrent `mkdir_all` of the same directory is
    /// absorbed (the component exists either way).
    pub fn mkdir_all(&self, path: &VPath, owner: Uid, mode: Mode) -> VfsResult<()> {
        let mut cur = VPath::root();
        for comp in path.components() {
            cur = cur.join(comp)?;
            match self.stat(&cur) {
                Ok(meta) if meta.is_dir => {}
                Ok(_) => return Err(VfsError::NotADirectory),
                Err(VfsError::NotFound) => match self.mkdir(&cur, owner, mode) {
                    Ok(_) => {}
                    Err(VfsError::AlreadyExists) => match self.stat(&cur) {
                        Ok(meta) if meta.is_dir => {}
                        Ok(_) => return Err(VfsError::NotADirectory),
                        Err(e) => return Err(e),
                    },
                    Err(e) => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Creates or truncates a file with the given contents.
    pub fn write(&self, path: &VPath, data: &[u8], owner: Uid, mode: Mode) -> VfsResult<InodeId> {
        let parent_path = path.parent().ok_or(VfsError::IsADirectory)?;
        let name = path.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        let alloc_shard = shard_of_path(path);
        loop {
            let parent = self.resolve(&parent_path)?;
            // Peek the existing entry to learn which shards the op needs.
            let peek = match self.with_inode(parent, |ino| match ino {
                Inode::Dir { entries, .. } => Ok(entries.get(&name).copied()),
                Inode::File { .. } => Err(VfsError::NotADirectory),
            }) {
                Ok(Ok(peek)) => peek,
                Ok(Err(e)) => {
                    self.tick();
                    return Err(e);
                }
                Err(_) => {
                    self.note_retry();
                    continue;
                }
            };
            let mut shards = vec![shard_of(parent)];
            match peek {
                Some(id) => shards.push(shard_of(id)),
                None => shards.push(alloc_shard),
            }
            let mut locked = self.lock_shards(shards);
            let existing = match locked.entry(parent, &name) {
                Ok(e) => e,
                Err(VfsError::NotFound) => {
                    drop(locked);
                    self.note_retry();
                    continue;
                }
                Err(e) => {
                    self.tick();
                    return Err(e);
                }
            };
            if existing != peek {
                // The entry changed between peek and lock; the shard set
                // may be wrong. Retry from resolution.
                drop(locked);
                self.note_retry();
                continue;
            }
            let mtime = self.tick();
            let journaled = self.journaled();
            let mut delta: Option<(usize, usize)> = None;
            let id = if let Some(id) = existing {
                match locked.get(id)? {
                    Inode::File { data: d, .. } => {
                        if journaled {
                            let old = fd_load(&self.paged, d);
                            delta = delta_bounds(&old, data);
                        }
                    }
                    Inode::Dir { .. } => return Err(VfsError::IsADirectory),
                }
                let new_fd = fd_store(&self.paged, self.spill_threshold, data);
                match locked.get_mut(id)? {
                    Inode::File { data: d, mtime: m, .. } => {
                        fd_free(&self.paged, d);
                        *d = new_fd;
                        *m = mtime;
                    }
                    _ => unreachable!("checked to be a file above"),
                }
                id
            } else {
                let new_fd = fd_store(&self.paged, self.spill_threshold, data);
                let id = locked
                    .alloc_in(alloc_shard, Inode::File { data: new_fd, owner, mode, mtime });
                locked.link(parent, name, id, mtime);
                // Creation (not overwrite) makes a new path visible.
                self.bump_path(path);
                id
            };
            locked.touch(id);
            if let Some((prefix, suffix)) = delta {
                // Overwrite sharing most bytes with the old contents: log
                // only the changed middle. (Owner/mode are untouched by
                // overwrite, so the delta record carries neither.)
                self.emit(VfsRecord::WriteDelta {
                    path: path.as_str().to_string(),
                    prefix: prefix as u32,
                    suffix: suffix as u32,
                    data: data[prefix..data.len() - suffix].to_vec(),
                });
            } else {
                self.emit(VfsRecord::Write {
                    path: path.as_str().to_string(),
                    data: data.to_vec(),
                    owner: owner.0,
                    mode: mode.to_bits(),
                });
            }
            return Ok(id);
        }
    }

    /// Appends bytes to an existing file. Resident files that stay under
    /// the spill threshold extend in place; anything else (already spilled,
    /// or crossing the threshold) re-stores the whole payload, which may
    /// migrate it to device pages.
    pub fn append(&self, path: &VPath, data: &[u8]) -> VfsResult<()> {
        loop {
            let id = self.resolve(path)?;
            let mut locked = self.lock_shards(vec![shard_of(id)]);
            if locked.get(id).is_err() {
                drop(locked);
                self.note_retry();
                continue;
            }
            let mtime = self.tick();
            let in_place = match locked.get(id)? {
                Inode::File { data: FileData::Resident(d), .. } => {
                    self.paged.is_none() || d.len() + data.len() <= self.spill_threshold
                }
                Inode::File { .. } => false,
                Inode::Dir { .. } => return Err(VfsError::IsADirectory),
            };
            if in_place {
                match locked.get_mut(id)? {
                    Inode::File { data: FileData::Resident(d), mtime: m, .. } => {
                        d.extend_from_slice(data);
                        *m = mtime;
                    }
                    _ => unreachable!("checked resident file above"),
                }
            } else {
                let mut content = match locked.get(id)? {
                    Inode::File { data: d, .. } => fd_load(&self.paged, d),
                    Inode::Dir { .. } => unreachable!("checked to be a file above"),
                };
                content.extend_from_slice(data);
                let new_fd = fd_store(&self.paged, self.spill_threshold, &content);
                match locked.get_mut(id)? {
                    Inode::File { data: d, mtime: m, .. } => {
                        fd_free(&self.paged, d);
                        *d = new_fd;
                        *m = mtime;
                    }
                    _ => unreachable!("checked to be a file above"),
                }
            }
            locked.touch(id);
            self.emit(VfsRecord::Append { path: path.as_str().to_string(), data: data.to_vec() });
            return Ok(());
        }
    }

    /// Overwrites a file's contents by inode id (used by file handles).
    pub fn write_inode(&self, id: InodeId, data: &[u8]) -> VfsResult<()> {
        let journaled = self.journaled();
        let mut delta: Option<(usize, usize)> = None;
        let mut locked = self.lock_shards(vec![shard_of(id)]);
        let mtime = self.tick();
        match locked.get(id)? {
            Inode::File { data: d, .. } => {
                if journaled {
                    let old = fd_load(&self.paged, d);
                    delta = delta_bounds(&old, data);
                }
            }
            Inode::Dir { .. } => return Err(VfsError::IsADirectory),
        }
        let new_fd = fd_store(&self.paged, self.spill_threshold, data);
        match locked.get_mut(id)? {
            Inode::File { data: d, mtime: m, .. } => {
                fd_free(&self.paged, d);
                *d = new_fd;
                *m = mtime;
            }
            _ => unreachable!("checked to be a file above"),
        }
        locked.touch(id);
        if let Some((prefix, suffix)) = delta {
            self.emit(VfsRecord::WriteInodeDelta {
                inode: id.0,
                prefix: prefix as u32,
                suffix: suffix as u32,
                data: data[prefix..data.len() - suffix].to_vec(),
            });
        } else {
            self.emit(VfsRecord::WriteInode { inode: id.0, data: data.to_vec() });
        }
        Ok(())
    }

    /// Removes a file.
    pub fn unlink(&self, path: &VPath) -> VfsResult<()> {
        let parent_path = path.parent().ok_or(VfsError::IsADirectory)?;
        let name = path.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        loop {
            let parent = self.resolve(&parent_path)?;
            let child = self.resolve(path)?;
            let mut locked = self.lock_shards(vec![shard_of(parent), shard_of(child)]);
            match locked.get(child) {
                Err(_) => {
                    drop(locked);
                    self.note_retry();
                    continue;
                }
                Ok(ino) if ino.meta().is_dir => return Err(VfsError::IsADirectory),
                Ok(_) => {}
            }
            match locked.entry(parent, &name) {
                Ok(Some(id)) if id == child => {}
                Err(VfsError::NotADirectory) => {
                    self.tick();
                    return Err(VfsError::NotADirectory);
                }
                _ => {
                    // Parent vanished or the entry moved on: retry.
                    drop(locked);
                    self.note_retry();
                    continue;
                }
            }
            let mtime = self.tick();
            locked.unlink_entry(parent, &name, mtime);
            locked.dealloc(&self.paged, child);
            self.bump_path(path);
            self.emit(VfsRecord::Unlink { path: path.as_str().to_string() });
            return Ok(());
        }
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, path: &VPath) -> VfsResult<()> {
        let parent_path = path.parent().ok_or(VfsError::InvalidArgument)?;
        let name = path.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        loop {
            let child = self.resolve(path)?;
            let parent = self.resolve(&parent_path)?;
            let mut locked = self.lock_shards(vec![shard_of(parent), shard_of(child)]);
            // Emptiness is re-checked under the child's shard lock: adding
            // an entry to this directory requires that same lock, so the
            // check cannot go stale before the removal below.
            match locked.get(child) {
                Err(_) => {
                    drop(locked);
                    self.note_retry();
                    continue;
                }
                Ok(Inode::Dir { entries, .. }) if entries.is_empty() => {}
                Ok(Inode::Dir { .. }) => return Err(VfsError::NotEmpty),
                Ok(Inode::File { .. }) => return Err(VfsError::NotADirectory),
            }
            match locked.entry(parent, &name) {
                Ok(Some(id)) if id == child => {}
                Err(VfsError::NotADirectory) => {
                    self.tick();
                    return Err(VfsError::NotADirectory);
                }
                _ => {
                    drop(locked);
                    self.note_retry();
                    continue;
                }
            }
            let mtime = self.tick();
            locked.unlink_entry(parent, &name, mtime);
            locked.dealloc(&self.paged, child);
            self.bump_path(path);
            self.emit(VfsRecord::Rmdir { path: path.as_str().to_string() });
            return Ok(());
        }
    }

    /// Recursively removes a directory tree (or a single file). Children
    /// unlinked by concurrent activity mid-walk are tolerated; the named
    /// top-level path itself must exist.
    pub fn remove_all(&self, path: &VPath) -> VfsResult<()> {
        let meta = self.stat(path)?;
        if !meta.is_dir {
            return self.unlink(path);
        }
        let names: Vec<String> = self.read_dir(path)?.into_iter().map(|e| e.name).collect();
        for name in names {
            match self.remove_all(&path.join(&name)?) {
                Ok(()) | Err(VfsError::NotFound) => {}
                Err(e) => return Err(e),
            }
        }
        if path.is_root() {
            Ok(())
        } else {
            self.rmdir(path)
        }
    }

    /// Renames a file or directory within the store. Replacing an existing
    /// file target emits the same two records (Unlink then Rename) the
    /// pre-sharded store produced, so replay formats are unchanged.
    pub fn rename(&self, from: &VPath, to: &VPath) -> VfsResult<()> {
        if to.starts_with(from) && from != to {
            return Err(VfsError::InvalidArgument);
        }
        let from_name = from.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        let to_name = to.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        let from_parent_path = from.parent().ok_or(VfsError::InvalidArgument)?;
        let to_parent_path = to.parent().ok_or(VfsError::InvalidArgument)?;
        loop {
            let from_parent = self.resolve(&from_parent_path)?;
            let to_parent = self.resolve(&to_parent_path)?;
            let moved = self.resolve(from)?;
            let replaced = self.resolve(to).ok();
            // The moved inode's shard is in the lock set so its type (file
            // vs directory, for the visibility bump) can be read without
            // acquiring anything after the set is taken.
            let mut shards =
                vec![shard_of(from_parent), shard_of(to_parent), shard_of(moved)];
            if let Some(r) = replaced {
                shards.push(shard_of(r));
            }
            let mut locked = self.lock_shards(shards);
            let moved_is_dir = match locked.get(moved) {
                Ok(ino) => ino.meta().is_dir,
                Err(_) => {
                    drop(locked);
                    self.note_retry();
                    continue;
                }
            };
            match locked.entry(from_parent, &from_name) {
                Ok(Some(id)) if id == moved => {}
                Err(VfsError::NotADirectory) => {
                    self.tick();
                    return Err(VfsError::NotADirectory);
                }
                _ => {
                    drop(locked);
                    self.note_retry();
                    continue;
                }
            }
            match locked.entry(to_parent, &to_name) {
                Ok(e) if e == replaced => {}
                Err(VfsError::NotADirectory) => {
                    self.tick();
                    return Err(VfsError::NotADirectory);
                }
                _ => {
                    drop(locked);
                    self.note_retry();
                    continue;
                }
            }
            if let Some(rep) = replaced {
                if locked.get(rep)?.meta().is_dir {
                    return Err(VfsError::IsADirectory);
                }
                // Inline unlink of the replaced target: its own tick and
                // journal record, exactly as the nested `unlink` call in
                // the pre-sharded store produced.
                let t = self.tick();
                locked.unlink_entry(to_parent, &to_name, t);
                locked.dealloc(&self.paged, rep);
                self.emit(VfsRecord::Unlink { path: to.as_str().to_string() });
            }
            let mtime = self.tick();
            locked.unlink_entry(from_parent, &from_name, mtime);
            locked.link(to_parent, to_name, moved, mtime);
            if moved_is_dir {
                // A directory rename moves a whole subtree across path
                // prefixes; prefix-keyed bumps cannot cover branches
                // rooted below the old location, so invalidate globally.
                self.bump_all();
            } else {
                self.bump_path(from);
                self.bump_path(to);
            }
            self.emit(VfsRecord::Rename {
                from: from.as_str().to_string(),
                to: to.as_str().to_string(),
            });
            return Ok(());
        }
    }

    /// Copies a single file, preserving owner and mode.
    pub fn copy_file(&self, from: &VPath, to: &VPath) -> VfsResult<()> {
        let meta = self.stat(from)?;
        if meta.is_dir {
            return Err(VfsError::IsADirectory);
        }
        let data = self.read(from)?;
        self.write(to, &data, meta.owner, meta.mode)?;
        Ok(())
    }

    /// Recursively copies a tree, creating `to` and all descendants.
    pub fn copy_all(&self, from: &VPath, to: &VPath) -> VfsResult<()> {
        let meta = self.stat(from)?;
        if !meta.is_dir {
            if let Some(parent) = to.parent() {
                self.mkdir_all(&parent, meta.owner, Mode::PUBLIC)?;
            }
            return self.copy_file(from, to);
        }
        self.mkdir_all(to, meta.owner, meta.mode)?;
        for entry in self.read_dir(from)? {
            self.copy_all(&from.join(&entry.name)?, &to.join(&entry.name)?)?;
        }
        Ok(())
    }

    /// Changes owner and mode of a node.
    pub fn chown_chmod(&self, path: &VPath, owner: Uid, mode: Mode) -> VfsResult<()> {
        loop {
            let id = self.resolve(path)?;
            let mut locked = self.lock_shards(vec![shard_of(id)]);
            match locked.get_mut(id) {
                Err(_) => {
                    drop(locked);
                    self.note_retry();
                    continue;
                }
                Ok(Inode::File { owner: o, mode: m, .. })
                | Ok(Inode::Dir { owner: o, mode: m, .. }) => {
                    *o = owner;
                    *m = mode;
                }
            }
            locked.touch(id);
            self.emit(VfsRecord::ChownChmod {
                path: path.as_str().to_string(),
                owner: owner.0,
                mode: mode.to_bits(),
            });
            return Ok(());
        }
    }

    /// Returns the total number of live inodes (for leak tests).
    pub fn inode_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().slots.iter().filter(|x| x.is_some()).count()).sum()
    }
}

impl Store {
    /// Applies a journal record during recovery by routing it through the
    /// same leaf primitives that produced it. The journal sink is detached
    /// for the duration so replay does not re-log. Recovery is exclusive:
    /// no concurrent mutators run while records are being applied.
    pub fn apply_journal_record(&self, rec: &VfsRecord) -> VfsResult<()> {
        let saved = self.journal.write().take();
        let res = self.apply_inner(rec);
        *self.journal.write() = saved;
        res
    }

    fn apply_inner(&self, rec: &VfsRecord) -> VfsResult<()> {
        match rec {
            VfsRecord::Mkdir { path, owner, mode } => {
                self.mkdir(&VPath::new(path)?, Uid(*owner), Mode::from_bits(*mode))?;
            }
            VfsRecord::Write { path, data, owner, mode } => {
                self.write(&VPath::new(path)?, data, Uid(*owner), Mode::from_bits(*mode))?;
            }
            VfsRecord::Append { path, data } => self.append(&VPath::new(path)?, data)?,
            VfsRecord::WriteInode { inode, data } => self.write_inode(InodeId(*inode), data)?,
            VfsRecord::WriteDelta { path, prefix, suffix, data } => {
                let id = self.resolve(&VPath::new(path)?)?;
                self.apply_delta(id, *prefix, *suffix, data)?;
            }
            VfsRecord::WriteInodeDelta { inode, prefix, suffix, data } => {
                self.apply_delta(InodeId(*inode), *prefix, *suffix, data)?;
            }
            VfsRecord::Unlink { path } => self.unlink(&VPath::new(path)?)?,
            VfsRecord::Rmdir { path } => self.rmdir(&VPath::new(path)?)?,
            VfsRecord::Rename { from, to } => self.rename(&VPath::new(from)?, &VPath::new(to)?)?,
            VfsRecord::ChownChmod { path, owner, mode } => {
                self.chown_chmod(&VPath::new(path)?, Uid(*owner), Mode::from_bits(*mode))?
            }
        }
        Ok(())
    }

    /// Replays a delta record: `new = old[..prefix] ++ mid ++
    /// old[len-suffix..]`, owner and mode untouched (an overwrite never
    /// changes them).
    fn apply_delta(&self, id: InodeId, prefix: u32, suffix: u32, mid: &[u8]) -> VfsResult<()> {
        let (prefix, suffix) = (prefix as usize, suffix as usize);
        let mut locked = self.lock_shards(vec![shard_of(id)]);
        let mtime = self.tick();
        let old = match locked.get(id)? {
            Inode::File { data: d, .. } => {
                if prefix + suffix > d.len() as usize {
                    return Err(VfsError::InvalidArgument);
                }
                fd_load(&self.paged, d)
            }
            Inode::Dir { .. } => return Err(VfsError::IsADirectory),
        };
        let mut new = Vec::with_capacity(prefix + mid.len() + suffix);
        new.extend_from_slice(&old[..prefix]);
        new.extend_from_slice(mid);
        new.extend_from_slice(&old[old.len() - suffix..]);
        let new_fd = fd_store(&self.paged, self.spill_threshold, &new);
        match locked.get_mut(id)? {
            Inode::File { data: d, mtime: m, .. } => {
                fd_free(&self.paged, d);
                *d = new_fd;
                *m = mtime;
            }
            _ => unreachable!("checked to be a file above"),
        }
        locked.touch(id);
        Ok(())
    }

    /// Serializes the exact store image — every shard's slot table
    /// (including free slots), free list, plus root id and clock — for a
    /// journal snapshot record. Exactness matters: replayed `WriteInode`
    /// records address inodes by id, so the image must preserve
    /// allocation state. All shard read guards are held for the duration,
    /// making the image a consistent point-in-time cut.
    pub fn snapshot_image(&self) -> Vec<u8> {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut w = ByteWriter::new();
        w.put_u64(self.root.load(Ordering::Relaxed));
        w.put_u64(self.clock.load(Ordering::Relaxed));
        w.put_u32(STORE_SHARDS as u32);
        for sh in &guards {
            w.put_u32(sh.slots.len() as u32);
            for slot in &sh.slots {
                write_slot(&mut w, &self.paged, slot.as_ref());
            }
            w.put_u32(sh.free.len() as u32);
            for id in &sh.free {
                w.put_u64(id.0);
            }
        }
        w.into_bytes()
    }

    /// Serializes an *incremental* image — root, clock, and for each shard
    /// with a non-empty dirty set: its slot count, the dirtied slots
    /// (id-tagged, tombstones included) and its full free list — then
    /// clears every dirty set. Shards without dirty slots are omitted
    /// entirely; that is sound because alloc and dealloc always dirty the
    /// slot they touch, so a free list can never change without its shard
    /// appearing in the delta. Applying the resulting deltas in take order
    /// on top of the base snapshot reproduces the exact store.
    pub fn take_dirty_image(&self) -> Vec<u8> {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        let mut w = ByteWriter::new();
        w.put_u64(self.root.load(Ordering::Relaxed));
        w.put_u64(self.clock.load(Ordering::Relaxed));
        w.put_u32(STORE_SHARDS as u32);
        let n_dirty = guards.iter().filter(|sh| !sh.dirty.is_empty()).count();
        w.put_u32(n_dirty as u32);
        for (idx, sh) in guards.iter().enumerate() {
            if sh.dirty.is_empty() {
                continue;
            }
            w.put_u32(idx as u32);
            w.put_u32(sh.slots.len() as u32);
            w.put_u32(sh.dirty.len() as u32);
            for &id in &sh.dirty {
                w.put_u64(id);
                let slot = sh.slots.get(local_of(InodeId(id))).and_then(|s| s.as_ref());
                write_slot(&mut w, &self.paged, slot);
            }
            w.put_u32(sh.free.len() as u32);
            for id in &sh.free {
                w.put_u64(id.0);
            }
        }
        for sh in &mut guards {
            sh.dirty.clear();
        }
        w.into_bytes()
    }

    /// Applies a [`Store::take_dirty_image`] payload on top of the current
    /// contents: listed slots are replaced (or tombstoned), listed shards'
    /// free lists are overwritten, root and clock adopt the delta's
    /// values. Slot tables grow as needed; they never shrink, matching the
    /// live store.
    pub fn apply_dirty_image(&self, image: &[u8]) -> VfsResult<()> {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        let mut r = ByteReader::new(image);
        let bad = |_| VfsError::InvalidArgument;
        let root = r.get_u64().map_err(bad)?;
        let clock = r.get_u64().map_err(bad)?;
        if r.get_u32().map_err(bad)? as usize != STORE_SHARDS {
            return Err(VfsError::InvalidArgument);
        }
        let n_dirty = r.get_u32().map_err(bad)? as usize;
        for _ in 0..n_dirty {
            let idx = r.get_u32().map_err(bad)? as usize;
            if idx >= STORE_SHARDS {
                return Err(VfsError::InvalidArgument);
            }
            let slots_len = r.get_u32().map_err(bad)? as usize;
            let dirty_len = r.get_u32().map_err(bad)? as usize;
            let sh = &mut guards[idx];
            if sh.slots.len() < slots_len {
                sh.slots.resize(slots_len, None);
            }
            for _ in 0..dirty_len {
                let id = r.get_u64().map_err(bad)?;
                let slot = read_slot(&mut r, &self.paged, self.spill_threshold)?;
                let local = local_of(InodeId(id));
                if local >= sh.slots.len() {
                    sh.slots.resize(local + 1, None);
                }
                // Release any extents the replaced slot held.
                if let Some(Inode::File { data, .. }) = &sh.slots[local] {
                    fd_free(&self.paged, data);
                }
                sh.slots[local] = slot;
                sh.dirty.insert(id);
            }
            let fcount = r.get_u32().map_err(bad)? as usize;
            let mut free = Vec::with_capacity(fcount);
            for _ in 0..fcount {
                free.push(InodeId(r.get_u64().map_err(bad)?));
            }
            sh.free = free;
        }
        self.root.store(root, Ordering::Relaxed);
        self.clock.store(clock, Ordering::Relaxed);
        drop(guards);
        self.bump_all();
        Ok(())
    }

    /// Restores the store from a [`Store::snapshot_image`] payload,
    /// replacing all current contents. The journal sink is preserved.
    pub fn restore_image(&self, image: &[u8]) -> VfsResult<()> {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        let mut r = ByteReader::new(image);
        let bad = |_| VfsError::InvalidArgument;
        let root = r.get_u64().map_err(bad)?;
        let clock = r.get_u64().map_err(bad)?;
        if r.get_u32().map_err(bad)? as usize != STORE_SHARDS {
            return Err(VfsError::InvalidArgument);
        }
        let mut parsed: Vec<Shard> = Vec::with_capacity(STORE_SHARDS);
        for idx in 0..STORE_SHARDS {
            let n = r.get_u32().map_err(bad)? as usize;
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                slots.push(read_slot(&mut r, &self.paged, self.spill_threshold)?);
            }
            let fcount = r.get_u32().map_err(bad)? as usize;
            let mut free = Vec::with_capacity(fcount);
            for _ in 0..fcount {
                free.push(InodeId(r.get_u64().map_err(bad)?));
            }
            // Wholesale replacement: every slot is "dirty" relative to any
            // delta taken earlier.
            let dirty = (0..slots.len()).map(|l| global_id(idx, l).0).collect();
            parsed.push(Shard { slots, free, dirty });
        }
        // The old tree is being replaced wholesale: release its extents.
        for sh in guards.iter() {
            for slot in sh.slots.iter().flatten() {
                if let Inode::File { data, .. } = slot {
                    fd_free(&self.paged, data);
                }
            }
        }
        for (sh, new) in guards.iter_mut().zip(parsed) {
            **sh = new;
        }
        self.root.store(root, Ordering::Relaxed);
        self.clock.store(clock, Ordering::Relaxed);
        drop(guards);
        self.bump_all();
        Ok(())
    }

    /// Dumps the whole tree as `path -> (is_dir, data, owner, mode bits)`
    /// for state-equivalence checks. Mtimes are deliberately excluded:
    /// failed operations advance the clock but are not journaled, so a
    /// replayed store matches on contents and metadata, not on clock.
    pub fn dump_tree(&self) -> BTreeMap<String, (bool, Vec<u8>, u32, u8)> {
        let mut out = BTreeMap::new();
        self.dump_into(self.root(), &VPath::root(), &mut out);
        out
    }

    fn dump_into(
        &self,
        id: InodeId,
        path: &VPath,
        out: &mut BTreeMap<String, (bool, Vec<u8>, u32, u8)>,
    ) {
        enum Node {
            File(Vec<u8>, u32, u8),
            Dir(Vec<(String, InodeId)>, u32, u8),
        }
        let node = match self.with_inode(id, |ino| match ino {
            Inode::File { data, owner, mode, .. } => {
                Node::File(fd_load(&self.paged, data), owner.0, mode.to_bits())
            }
            Inode::Dir { entries, owner, mode, .. } => Node::Dir(
                entries.iter().map(|(n, i)| (n.clone(), *i)).collect(),
                owner.0,
                mode.to_bits(),
            ),
        }) {
            Ok(n) => n,
            Err(_) => return,
        };
        match node {
            Node::File(data, owner, mode) => {
                out.insert(path.as_str().to_string(), (false, data, owner, mode));
            }
            Node::Dir(children, owner, mode) => {
                out.insert(path.as_str().to_string(), (true, Vec::new(), owner, mode));
                for (name, child) in children {
                    if let Ok(p) = path.join(&name) {
                        self.dump_into(child, &p, out);
                    }
                }
            }
        }
    }
}

/// Serializes one inode slot: 0 = empty, 1 = file, 2 = directory. Shared
/// by full snapshots and incremental dirty images so the two formats can
/// never drift apart. File content is always materialized, so the image
/// bytes are identical whether payloads were resident or spilled — backend
/// equivalence at the serialization boundary.
fn write_slot(w: &mut ByteWriter, paged: &Option<Mutex<PagedBacking>>, slot: Option<&Inode>) {
    match slot {
        None => w.put_u8(0),
        Some(Inode::File { data, owner, mode, mtime }) => {
            w.put_u8(1);
            w.put_bytes(&fd_load(paged, data));
            w.put_u32(owner.0);
            w.put_u8(mode.to_bits());
            w.put_u64(*mtime);
        }
        Some(Inode::Dir { entries, owner, mode, mtime }) => {
            w.put_u8(2);
            w.put_u32(entries.len() as u32);
            for (name, id) in entries {
                w.put_str(name);
                w.put_u64(id.0);
            }
            w.put_u32(owner.0);
            w.put_u8(mode.to_bits());
            w.put_u64(*mtime);
        }
    }
}

fn read_slot(
    r: &mut ByteReader<'_>,
    paged: &Option<Mutex<PagedBacking>>,
    threshold: usize,
) -> VfsResult<Option<Inode>> {
    let bad = |_| VfsError::InvalidArgument;
    match r.get_u8().map_err(bad)? {
        0 => Ok(None),
        1 => {
            let data = r.get_bytes().map_err(bad)?;
            let owner = Uid(r.get_u32().map_err(bad)?);
            let mode = Mode::from_bits(r.get_u8().map_err(bad)?);
            let mtime = r.get_u64().map_err(bad)?;
            let data = fd_store(paged, threshold, &data);
            Ok(Some(Inode::File { data, owner, mode, mtime }))
        }
        2 => {
            let count = r.get_u32().map_err(bad)? as usize;
            let mut entries = BTreeMap::new();
            for _ in 0..count {
                let name = r.get_str().map_err(bad)?;
                let id = InodeId(r.get_u64().map_err(bad)?);
                entries.insert(name, id);
            }
            let owner = Uid(r.get_u32().map_err(bad)?);
            let mode = Mode::from_bits(r.get_u8().map_err(bad)?);
            let mtime = r.get_u64().map_err(bad)?;
            Ok(Some(Inode::Dir { entries, owner, mode, mtime }))
        }
        _ => Err(VfsError::InvalidArgument),
    }
}

/// Decides whether an overwrite should be delta-logged: returns the
/// (prefix, suffix) byte counts shared with the old contents when the
/// changed middle is at most half the new payload, `None` when a full
/// image is cheaper (or as cheap — the fallback keeps pathological
/// rewrites from paying delta overhead on top of full size).
fn delta_bounds(old: &[u8], new: &[u8]) -> Option<(usize, usize)> {
    let prefix = old.iter().zip(new.iter()).take_while(|(a, b)| a == b).count();
    let overlap = old.len().min(new.len()) - prefix;
    let suffix =
        old.iter().rev().zip(new.iter().rev()).take_while(|(a, b)| a == b).count().min(overlap);
    let mid = new.len() - prefix - suffix;
    if mid * 2 <= new.len() {
        Some((prefix, suffix))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::vpath;

    fn store_with(paths: &[(&str, &str)]) -> Store {
        let s = Store::new();
        for (p, content) in paths {
            let vp = vpath(p);
            s.mkdir_all(&vp.parent().unwrap(), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(&vp, content.as_bytes(), Uid::ROOT, Mode::PUBLIC).unwrap();
        }
        s
    }

    #[test]
    fn write_read_roundtrip() {
        let s = store_with(&[("/a/b/c.txt", "hello")]);
        assert_eq!(s.read(&vpath("/a/b/c.txt")).unwrap(), b"hello");
        assert_eq!(s.read(&vpath("/a/b/missing")).err(), Some(VfsError::NotFound));
    }

    #[test]
    fn append_extends() {
        let s = store_with(&[("/f", "ab")]);
        s.append(&vpath("/f"), b"cd").unwrap();
        assert_eq!(s.read(&vpath("/f")).unwrap(), b"abcd");
        assert_eq!(s.append(&vpath("/g"), b"x").err(), Some(VfsError::NotFound));
    }

    #[test]
    fn mkdir_semantics() {
        let s = Store::new();
        s.mkdir(&vpath("/d"), Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(
            s.mkdir(&vpath("/d"), Uid::ROOT, Mode::PUBLIC).err(),
            Some(VfsError::AlreadyExists)
        );
        assert_eq!(
            s.mkdir(&vpath("/x/y"), Uid::ROOT, Mode::PUBLIC).err(),
            Some(VfsError::NotFound)
        );
        s.mkdir_all(&vpath("/x/y/z"), Uid::ROOT, Mode::PUBLIC).unwrap();
        assert!(s.stat(&vpath("/x/y/z")).unwrap().is_dir);
    }

    #[test]
    fn unlink_and_rmdir() {
        let s = store_with(&[("/d/f", "x")]);
        assert_eq!(s.rmdir(&vpath("/d")).err(), Some(VfsError::NotEmpty));
        assert_eq!(s.unlink(&vpath("/d")).err(), Some(VfsError::IsADirectory));
        s.unlink(&vpath("/d/f")).unwrap();
        s.rmdir(&vpath("/d")).unwrap();
        assert!(!s.exists(&vpath("/d")));
    }

    #[test]
    fn remove_all_recurses() {
        let s = store_with(&[("/t/a/f1", "1"), ("/t/a/b/f2", "2"), ("/t/f3", "3")]);
        let before = s.inode_count();
        s.remove_all(&vpath("/t")).unwrap();
        assert!(!s.exists(&vpath("/t")));
        assert!(s.inode_count() < before);
    }

    #[test]
    fn rename_moves_and_replaces() {
        let s = store_with(&[("/a/f", "new"), ("/b/g", "old")]);
        s.rename(&vpath("/a/f"), &vpath("/b/g")).unwrap();
        assert_eq!(s.read(&vpath("/b/g")).unwrap(), b"new");
        assert!(!s.exists(&vpath("/a/f")));
        // Renaming a directory into itself is rejected.
        assert_eq!(s.rename(&vpath("/b"), &vpath("/b/sub")).err(), Some(VfsError::InvalidArgument));
    }

    #[test]
    fn copy_all_preserves_tree() {
        let s = store_with(&[("/src/a/f", "1"), ("/src/g", "2")]);
        s.copy_all(&vpath("/src"), &vpath("/dst")).unwrap();
        assert_eq!(s.read(&vpath("/dst/a/f")).unwrap(), b"1");
        assert_eq!(s.read(&vpath("/dst/g")).unwrap(), b"2");
        // Source unchanged.
        assert_eq!(s.read(&vpath("/src/a/f")).unwrap(), b"1");
    }

    #[test]
    fn stat_reports_size_and_mtime_order() {
        let s = Store::new();
        s.write(&vpath("/f"), b"abc", Uid::ROOT, Mode::PUBLIC).unwrap();
        let m1 = s.stat(&vpath("/f")).unwrap();
        assert_eq!(m1.size, 3);
        s.append(&vpath("/f"), b"d").unwrap();
        let m2 = s.stat(&vpath("/f")).unwrap();
        assert_eq!(m2.size, 4);
        assert!(m2.mtime > m1.mtime);
    }

    #[test]
    fn journal_replay_rebuilds_identical_tree() {
        use maxoid_journal::{committed_records, read_records, JournalHandle, Record};
        let h = JournalHandle::with_batch(1);
        let s = Store::new();
        s.set_journal(h.sink());
        s.mkdir_all(&vpath("/data/app"), Uid(10_001), Mode::PRIVATE).unwrap();
        s.write(&vpath("/data/app/f"), b"v1", Uid(10_001), Mode::PRIVATE).unwrap();
        s.append(&vpath("/data/app/f"), b"+2").unwrap();
        let id = s.resolve(&vpath("/data/app/f")).unwrap();
        s.write_inode(id, b"handle-write").unwrap();
        s.write(&vpath("/data/app/g"), b"x", Uid(10_001), Mode::PRIVATE).unwrap();
        s.rename(&vpath("/data/app/g"), &vpath("/data/app/h")).unwrap();
        s.chown_chmod(&vpath("/data/app/h"), Uid::SYSTEM, Mode::WORLD_READABLE).unwrap();
        s.unlink(&vpath("/data/app/h")).unwrap();
        // Failed ops advance the clock but must not be journaled.
        assert!(s.mkdir(&vpath("/data/app"), Uid::ROOT, Mode::PUBLIC).is_err());

        let replayed = Store::new();
        for rec in committed_records(&read_records(&h.bytes())) {
            if let Record::Vfs(v) = rec {
                replayed.apply_journal_record(&v).unwrap();
            }
        }
        assert_eq!(replayed.dump_tree(), s.dump_tree());
        assert_eq!(replayed.inode_count(), s.inode_count());
    }

    #[test]
    fn snapshot_image_roundtrip_is_exact() {
        let s = store_with(&[("/a/f", "1"), ("/b/g", "2")]);
        s.unlink(&vpath("/a/f")).unwrap(); // leave a hole in the inode table
        let image = s.snapshot_image();
        let restored = Store::new();
        restored.restore_image(&image).unwrap();
        assert_eq!(restored.dump_tree(), s.dump_tree());
        // Allocation state is preserved: the next alloc reuses the hole in
        // both stores, keeping later WriteInode replay valid.
        let a = s.write(&vpath("/n"), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        let b = restored.write(&vpath("/n"), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(a, b);
        assert_eq!(restored.now(), s.now());
    }

    #[test]
    fn overwrites_are_delta_logged_and_replay_exactly() {
        use maxoid_journal::{committed_records, read_records, JournalHandle, Record};
        let h = JournalHandle::with_batch(1);
        let s = Store::new();
        s.set_journal(h.sink());
        let mut base = vec![0u8; 4096];
        s.write(&vpath("/f"), &base, Uid::ROOT, Mode::PUBLIC).unwrap();
        // Small in-place change: must log a delta, not the whole 4KB.
        base[100..108].copy_from_slice(b"CHANGED!");
        s.write(&vpath("/f"), &base, Uid::ROOT, Mode::PUBLIC).unwrap();
        // Majority rewrite: must fall back to a full image.
        let rewrite = vec![9u8; 4096];
        s.write(&vpath("/f"), &rewrite, Uid::ROOT, Mode::PUBLIC).unwrap();
        // Inode-handle path gets the same treatment.
        let id = s.resolve(&vpath("/f")).unwrap();
        let mut v = rewrite.clone();
        v[0] = 1;
        s.write_inode(id, &v).unwrap();

        let recs = committed_records(&read_records(&h.bytes()));
        let kinds: Vec<&'static str> = recs
            .iter()
            .filter_map(|r| match r {
                Record::Vfs(VfsRecord::Write { .. }) => Some("write"),
                Record::Vfs(VfsRecord::WriteDelta { data, .. }) => {
                    assert!(data.len() < 64, "delta logs only the changed middle");
                    Some("delta")
                }
                Record::Vfs(VfsRecord::WriteInodeDelta { data, .. }) => {
                    assert!(data.len() < 64);
                    Some("inode-delta")
                }
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec!["write", "delta", "write", "inode-delta"]);

        let replayed = Store::new();
        for rec in recs {
            if let Record::Vfs(v) = rec {
                replayed.apply_journal_record(&v).unwrap();
            }
        }
        assert_eq!(replayed.dump_tree(), s.dump_tree());
    }

    #[test]
    fn dirty_image_chain_matches_full_snapshot() {
        let s = store_with(&[("/a/f", "1"), ("/b/g", "2")]);
        let shadow = Store::new();
        shadow.apply_dirty_image(&s.take_dirty_image()).unwrap();
        assert_eq!(shadow.dump_tree(), s.dump_tree());
        // Mutations between takes produce a small delta that catches the
        // shadow up — including tombstones for freed slots.
        s.write(&vpath("/a/f"), b"updated", Uid::ROOT, Mode::PUBLIC).unwrap();
        s.unlink(&vpath("/b/g")).unwrap();
        s.rename(&vpath("/a/f"), &vpath("/b/h")).unwrap();
        let delta = s.take_dirty_image();
        assert!(delta.len() < s.snapshot_image().len());
        shadow.apply_dirty_image(&delta).unwrap();
        assert_eq!(shadow.dump_tree(), s.dump_tree());
        // Allocation state converged too: next writes allocate identically.
        let a = s.write(&vpath("/n"), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        let b = shadow.write(&vpath("/n"), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(a, b);
        assert_eq!(shadow.now(), s.now());
    }

    #[test]
    fn restore_image_rejects_garbage() {
        let s = Store::new();
        assert_eq!(s.restore_image(&[1, 2, 3]).err(), Some(VfsError::InvalidArgument));
    }

    fn paged_store(pages: usize, threshold: usize) -> Store {
        Store::with_block_device(Box::new(maxoid_block::MemDevice::new()), pages, threshold)
    }

    #[test]
    fn paged_store_spills_and_reads_back() {
        let s = paged_store(8, 64);
        let small = vec![1u8; 64];
        let big = vec![2u8; 10_000];
        s.write(&vpath("/small"), &small, Uid::ROOT, Mode::PUBLIC).unwrap();
        s.write(&vpath("/big"), &big, Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(s.read(&vpath("/small")).unwrap(), small);
        assert_eq!(s.read(&vpath("/big")).unwrap(), big);
        let st = s.stats();
        assert_eq!(st.resident_files, 1);
        assert_eq!(st.spilled_files, 1);
        assert_eq!(st.spilled_bytes, 10_000);
        assert!(st.cache.is_some());
    }

    #[test]
    fn paged_append_migrates_across_threshold() {
        let s = paged_store(8, 100);
        s.write(&vpath("/f"), &[7u8; 90], Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(s.stats().resident_files, 1);
        s.append(&vpath("/f"), &[8u8; 90]).unwrap();
        let st = s.stats();
        assert_eq!(st.resident_files, 0);
        assert_eq!(st.spilled_files, 1);
        let mut want = vec![7u8; 90];
        want.extend_from_slice(&[8u8; 90]);
        assert_eq!(s.read(&vpath("/f")).unwrap(), want);
    }

    #[test]
    fn unlink_releases_sectors_for_reuse() {
        let s = paged_store(4, 0);
        let payload = vec![3u8; 4096 * 3];
        s.write(&vpath("/a"), &payload, Uid::ROOT, Mode::PUBLIC).unwrap();
        s.unlink(&vpath("/a")).unwrap();
        s.write(&vpath("/b"), &payload, Uid::ROOT, Mode::PUBLIC).unwrap();
        // The second file reuses the first one's sectors: the device never
        // grew past one extent (3 data sectors).
        let p = s.paged.as_ref().unwrap().lock();
        assert_eq!(p.alloc.next_sector(), 3);
    }

    #[test]
    fn spill_after_churn_gets_contiguous_run() {
        let s = paged_store(4, 0);
        // Six one-page files take sectors 0..6; unlinking f1, f2, f4
        // fragments the free list into runs {1..3} and {4..5}.
        for i in 0..6u8 {
            s.write(&vpath(&format!("/f{i}")), &vec![i; 4096], Uid::ROOT, Mode::PUBLIC).unwrap();
        }
        for i in [1u8, 2, 4] {
            s.unlink(&vpath(&format!("/f{i}"))).unwrap();
        }
        {
            let p = s.paged.as_ref().unwrap().lock();
            assert_eq!(p.alloc.free_runs(), vec![(1, 2), (4, 1)]);
        }
        // A two-page spill must take the contiguous [1, 2] run — not
        // scatter LIFO across the fragments — and not grow the device.
        s.write(&vpath("/big"), &vec![9u8; 8192], Uid::ROOT, Mode::PUBLIC).unwrap();
        let p = s.paged.as_ref().unwrap().lock();
        assert_eq!(p.alloc.free_runs(), vec![(4, 1)]);
        assert_eq!(p.alloc.next_sector(), 6);
        drop(p);
        assert_eq!(s.read(&vpath("/big")).unwrap(), vec![9u8; 8192]);
    }

    #[test]
    fn working_set_beyond_cache_stays_exact_and_bounded() {
        // 4 pages of cache, 32 spilled files of a page each: 8x the
        // budget. Every file reads back exactly; memory for content is
        // the 4-page budget plus the tiny inode table.
        let s = paged_store(4, 0);
        for i in 0..32 {
            let body = vec![i as u8; 4096];
            s.write(&vpath(&format!("/f{i}")), &body, Uid::ROOT, Mode::PUBLIC).unwrap();
        }
        for i in 0..32 {
            assert_eq!(s.read(&vpath(&format!("/f{i}"))).unwrap(), vec![i as u8; 4096]);
        }
        let st = s.stats();
        assert_eq!(st.spilled_files, 32);
        assert_eq!(st.resident_bytes, 0);
        assert_eq!(st.cache_budget_bytes, 4 * 4096);
        let cache = st.cache.unwrap();
        assert!(cache.evictions > 0, "working set must have churned the cache");
    }

    #[test]
    fn snapshot_images_identical_across_backends() {
        let script: &[(&str, &[u8])] =
            &[("/a/f", &[1u8; 5000]), ("/a/g", b"tiny"), ("/b/h", &[9u8; 12_345])];
        let resident = Store::new();
        let paged = paged_store(8, 64);
        for s in [&resident, &paged] {
            for (p, body) in script {
                let vp = vpath(p);
                s.mkdir_all(&vp.parent().unwrap(), Uid::ROOT, Mode::PUBLIC).unwrap();
                s.write(&vp, body, Uid::ROOT, Mode::PUBLIC).unwrap();
            }
        }
        assert_eq!(resident.snapshot_image(), paged.snapshot_image());
        assert_eq!(resident.dump_tree(), paged.dump_tree());
        // Restoring a resident image into a paged store spills by
        // threshold and still reads back identically.
        let restored = paged_store(8, 64);
        restored.restore_image(&resident.snapshot_image()).unwrap();
        assert_eq!(restored.dump_tree(), resident.dump_tree());
        assert!(restored.stats().spilled_files >= 2);
    }

    #[test]
    fn inode_reuse_after_dealloc() {
        let s = Store::new();
        s.write(&vpath("/f"), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        let count = s.inode_count();
        s.unlink(&vpath("/f")).unwrap();
        s.write(&vpath("/g"), b"y", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(s.inode_count(), count);
    }

    // ----- sharding-specific coverage -----

    #[test]
    fn allocation_is_deterministic_across_stores() {
        // Two stores running the same op sequence hand out identical
        // inode ids — the property journal replay depends on.
        let run = |s: &Store| -> Vec<InodeId> {
            let mut ids = Vec::new();
            s.mkdir_all(&vpath("/data/app/pkg"), Uid::ROOT, Mode::PUBLIC).unwrap();
            for i in 0..32 {
                let p = vpath(&format!("/data/app/pkg/f{i}"));
                ids.push(s.write(&p, b"x", Uid::ROOT, Mode::PUBLIC).unwrap());
            }
            for i in (0..32).step_by(3) {
                s.unlink(&vpath(&format!("/data/app/pkg/f{i}"))).unwrap();
            }
            for i in 0..16 {
                let p = vpath(&format!("/data/app/pkg/g{i}"));
                ids.push(s.write(&p, b"y", Uid::ROOT, Mode::PUBLIC).unwrap());
            }
            ids
        };
        let (a, b) = (Store::new(), Store::new());
        assert_eq!(run(&a), run(&b));
        assert_eq!(a.dump_tree(), b.dump_tree());
    }

    #[test]
    fn creations_allocate_in_their_path_shard() {
        let s = Store::new();
        let p = vpath("/file-abc");
        let id = s.write(&p, b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(shard_of(id), shard_of_path(&p));
        let d = vpath("/dir-q");
        let id = s.mkdir(&d, Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(shard_of(id), shard_of_path(&d));
    }

    #[test]
    fn vis_stamps_are_prefix_local() {
        let s = Store::new();
        // Pick two top-level trees whose visibility shards differ (and
        // whose depth-2 creation paths do not collide with the other's
        // branch shard), so the isolation assertion is meaningful.
        let mut pair = None;
        'outer: for i in 0..64 {
            for j in 0..64 {
                if i == j {
                    continue;
                }
                let (pa, pb) = (vpath(&format!("/t{i}")), vpath(&format!("/t{j}")));
                let (sa, sb) = (
                    Store::vis_branch_shard(&pa).unwrap(),
                    Store::vis_branch_shard(&pb).unwrap(),
                );
                let deep = Store::vis_branch_shard(&pa.join("f").unwrap()).unwrap();
                if sa != sb && deep != sb {
                    pair = Some((pa, pb, sa, sb));
                    break 'outer;
                }
            }
        }
        let (pa, pb, sa, sb) = pair.expect("some pair of paths must land in distinct vis shards");
        s.mkdir(&pa, Uid::ROOT, Mode::PUBLIC).unwrap();
        s.mkdir(&pb, Uid::ROOT, Mode::PUBLIC).unwrap();
        let (stamp_a, stamp_b) = (s.vis_stamp(&[sa]), s.vis_stamp(&[sb]));
        // A creation under pa bumps pa's branch counter but not pb's.
        s.write(&pa.join("f").unwrap(), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_ne!(s.vis_stamp(&[sa]), stamp_a, "own branch stamp must advance");
        assert_eq!(s.vis_stamp(&[sb]), stamp_b, "unrelated branch stamp must not move");
        // Content-only writes never bump any stamp.
        let quiet = s.vis_stamp(&[sa]);
        s.write(&pa.join("f").unwrap(), b"y", Uid::ROOT, Mode::PUBLIC).unwrap();
        s.append(&pa.join("f").unwrap(), b"z").unwrap();
        assert_eq!(s.vis_stamp(&[sa]), quiet);
    }

    #[test]
    fn dir_rename_bumps_every_vis_shard() {
        let s = Store::new();
        s.mkdir_all(&vpath("/a/sub"), Uid::ROOT, Mode::PUBLIC).unwrap();
        s.mkdir(&vpath("/b"), Uid::ROOT, Mode::PUBLIC).unwrap();
        let before: Vec<u64> = (0..VIS_SHARDS).map(|i| s.vis_stamp(&[i])).collect();
        s.rename(&vpath("/a/sub"), &vpath("/b/sub")).unwrap();
        for (i, b) in before.iter().enumerate() {
            assert_ne!(s.vis_stamp(&[i]), *b, "dir rename must invalidate every prefix shard");
        }
    }

    #[test]
    fn concurrent_writers_in_disjoint_trees() {
        use std::sync::Arc;
        let s = Arc::new(Store::new());
        for t in 0..8 {
            s.mkdir_all(&vpath(&format!("/tenant{t}")), Uid::ROOT, Mode::PUBLIC).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let p = vpath(&format!("/tenant{t}/f{i}"));
                    s.write(&p, format!("{t}:{i}").as_bytes(), Uid(t), Mode::PUBLIC).unwrap();
                    if i % 5 == 0 {
                        s.unlink(&p).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u32 {
            for i in 0..50 {
                let p = vpath(&format!("/tenant{t}/f{i}"));
                if i % 5 == 0 {
                    assert!(!s.exists(&p));
                } else {
                    assert_eq!(s.read(&p).unwrap(), format!("{t}:{i}").as_bytes());
                }
            }
        }
    }
}


