//! The backing store: a single in-memory inode tree playing the role of the
//! device's flash storage.
//!
//! The store knows nothing about mounts, namespaces, or union views — it is
//! the "raw disk" that branches and bind mounts reference by *host path*.
//! All higher-level policy (Maxoid views, permissions at the app-facing
//! layer) is built on top in [`crate::union`] and [`crate::fs`].

use crate::cred::{Mode, Uid};
use crate::error::{VfsError, VfsResult};
use crate::path::VPath;
use maxoid_block::{BlockDevice, CacheStats, ExtentAllocator, PageCache};
use maxoid_journal::codec::{ByteReader, ByteWriter};
use maxoid_journal::{Record, SinkRef, VfsRecord};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of an inode within the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeId(pub u64);

/// Metadata common to files and directories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// Owning uid.
    pub owner: Uid,
    /// Permission bits.
    pub mode: Mode,
    /// Logical modification counter (monotonic store-wide clock).
    pub mtime: u64,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// True when the node is a directory.
    pub is_dir: bool,
}

/// Where a file's bytes live: inline in the inode, or spilled to sectors
/// of the store's block device.
///
/// Small payloads (at or below the store's spill threshold) and every
/// payload of a device-less store stay [`FileData::Resident`]. Larger
/// payloads on a block-backed store are written to an extent of device
/// sectors behind the page cache, keeping the inode table itself small
/// while content competes for the fixed page budget.
///
/// Cloning a `Paged` value aliases its sectors; the clone is only for
/// read-side materialization and must never be handed back to a store
/// that will later free both copies.
#[derive(Debug, Clone)]
pub enum FileData {
    /// Bytes held inline.
    Resident(Vec<u8>),
    /// Bytes spilled to device sectors (one page each, last one partial).
    Paged {
        /// The sectors holding the content, in order.
        sectors: Vec<u64>,
        /// Content length in bytes.
        len: u64,
    },
}

impl FileData {
    /// Content length in bytes, without touching the device.
    pub fn len(&self) -> u64 {
        match self {
            FileData::Resident(d) => d.len() as u64,
            FileData::Paged { len, .. } => *len,
        }
    }

    /// True when the content is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A node in the backing store.
#[derive(Debug, Clone)]
pub enum Inode {
    /// A regular file with its contents.
    File {
        /// File bytes (inline or spilled to the block device).
        data: FileData,
        /// Owner uid.
        owner: Uid,
        /// Permission bits.
        mode: Mode,
        /// Logical mtime.
        mtime: u64,
    },
    /// A directory mapping names to child inodes.
    Dir {
        /// Sorted child map.
        entries: BTreeMap<String, InodeId>,
        /// Owner uid.
        owner: Uid,
        /// Permission bits.
        mode: Mode,
        /// Logical mtime.
        mtime: u64,
    },
}

impl Inode {
    fn meta(&self) -> Metadata {
        match self {
            Inode::File { data, owner, mode, mtime } => Metadata {
                owner: *owner,
                mode: *mode,
                mtime: *mtime,
                size: data.len(),
                is_dir: false,
            },
            Inode::Dir { owner, mode, mtime, .. } => {
                Metadata { owner: *owner, mode: *mode, mtime: *mtime, size: 0, is_dir: true }
            }
        }
    }
}

/// A directory entry returned by [`Store::read_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name within its directory.
    pub name: String,
    /// True when the entry is a directory.
    pub is_dir: bool,
}

/// The block-device tier behind a paged store: a page cache plus a simple
/// sector allocator (free list + high-water mark).
///
/// Lives behind a [`Mutex`] *inside* the store because content reads come
/// through `&Store` (the `Vfs` facade holds a shared `RwLock` read guard)
/// while faulting a page in needs `&mut` access to the cache. The mutex is
/// a leaf in the global lock order: it is only taken while the store lock
/// is already held, and nothing else is acquired under it.
struct PagedBacking {
    cache: PageCache,
    /// Sector allocator: free runs kept sorted and coalesced, so a spill
    /// gets an ascending contiguous extent whenever one exists instead
    /// of LIFO-scattered singles.
    alloc: ExtentAllocator,
}

/// Point-in-time store composition counters (see [`Store::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Files whose bytes are inline in the inode table.
    pub resident_files: u64,
    /// Total bytes held inline.
    pub resident_bytes: u64,
    /// Files spilled to the block device.
    pub spilled_files: u64,
    /// Total logical bytes spilled (device usage is this, page-rounded).
    pub spilled_bytes: u64,
    /// Page-cache counters, when a block device is attached.
    pub cache: Option<CacheStats>,
    /// Fixed page-cache budget in bytes (memory bound for spilled content).
    pub cache_budget_bytes: u64,
}

/// Materializes file content regardless of representation. Device I/O
/// failure on the spill tier is fatal: the device is process-lifetime
/// scratch (content is rebuilt from the WAL on recovery), so losing it
/// mid-run is equivalent to losing RAM.
fn fd_load(paged: &Option<Mutex<PagedBacking>>, data: &FileData) -> Vec<u8> {
    match data {
        FileData::Resident(d) => d.clone(),
        FileData::Paged { sectors, len } => {
            let p = paged.as_ref().expect("paged file data in a store with no block device");
            let mut p = p.lock();
            let ps = p.cache.page_size();
            let mut out = vec![0u8; *len as usize];
            for (i, &sec) in sectors.iter().enumerate() {
                let start = i * ps;
                let end = ((i + 1) * ps).min(out.len());
                let page = p.cache.read(sec).expect("vfs spill device read failed");
                out[start..end].copy_from_slice(&page.data()[..end - start]);
            }
            out
        }
    }
}

/// Chooses a representation for `bytes` and stores it: inline when small
/// (or when the store has no device), spilled to freshly allocated sectors
/// otherwise.
fn fd_store(paged: &Option<Mutex<PagedBacking>>, threshold: usize, bytes: &[u8]) -> FileData {
    let Some(p) = paged else { return FileData::Resident(bytes.to_vec()) };
    if bytes.len() <= threshold {
        return FileData::Resident(bytes.to_vec());
    }
    let mut p = p.lock();
    let ps = p.cache.page_size();
    let sectors = p.alloc.alloc(bytes.len().div_ceil(ps));
    for (i, &sec) in sectors.iter().enumerate() {
        let chunk = &bytes[i * ps..((i + 1) * ps).min(bytes.len())];
        if chunk.len() == ps {
            p.cache.write_full(sec, chunk).expect("vfs spill device write failed");
        } else {
            // Ragged tail: the freshly allocated sector's old bytes are
            // dead, so skip the load and zero-pad past `len` instead of
            // leaving stale prior-file bytes in the frame.
            p.cache.write_padded(sec, chunk).expect("vfs spill device write failed");
        }
    }
    FileData::Paged { sectors, len: bytes.len() as u64 }
}

/// Releases a value's sectors (if any) back to the allocator, discarding
/// their cached pages without write-back.
fn fd_free(paged: &Option<Mutex<PagedBacking>>, data: &FileData) {
    if let FileData::Paged { sectors, .. } = data {
        let p = paged.as_ref().expect("paged file data in a store with no block device");
        let mut p = p.lock();
        for &sec in sectors {
            p.cache.discard(sec);
        }
        p.alloc.free_sectors(sectors);
    }
}

/// The in-memory backing store.
///
/// Host paths are plain [`VPath`]s resolved from the store root; the store
/// performs **no permission checks** — it is below the layer where Android
/// UIDs matter. Callers that need checks use [`crate::fs::Vfs`].
pub struct Store {
    inodes: Vec<Option<Inode>>,
    free: Vec<InodeId>,
    root: InodeId,
    clock: u64,
    /// Optional journal sink; when attached, every successful leaf
    /// mutation emits a physical [`VfsRecord`].
    journal: Option<SinkRef>,
    /// Namespace-visibility generation: advanced by every mutation that
    /// can change *which* paths exist (create, unlink, rmdir, rename,
    /// image restore) but not by content-only writes or appends. Union
    /// path-resolution caches validate against it, so appends to an
    /// already-copied-up file stay cache hits while a copy-up, whiteout
    /// or rename invalidates stale resolutions immediately.
    visibility_gen: u64,
    /// Inode slots mutated since the last [`Store::take_dirty_image`] —
    /// the working set an incremental checkpoint serializes instead of the
    /// whole inode table. Deallocated slots stay in the set (the delta
    /// must record the tombstone).
    dirty: BTreeSet<u64>,
    /// Optional block-device tier for large file payloads. See
    /// [`PagedBacking`] for why it sits behind its own (leaf) mutex.
    paged: Option<Mutex<PagedBacking>>,
    /// Payloads strictly larger than this spill to the device. Irrelevant
    /// when `paged` is `None` (everything stays resident).
    spill_threshold: usize,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("inodes", &self.inodes.len())
            .field("free", &self.free.len())
            .field("clock", &self.clock)
            .field("paged", &self.paged.is_some())
            .field("spill_threshold", &self.spill_threshold)
            .finish()
    }
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

/// Default spill threshold for block-backed stores: payloads up to this
/// size stay inline; anything larger goes to device pages.
pub const DEFAULT_SPILL_THRESHOLD: usize = 1024;

impl Store {
    /// Creates a store containing only an empty root directory.
    pub fn new() -> Self {
        let root =
            Inode::Dir { entries: BTreeMap::new(), owner: Uid::ROOT, mode: Mode::PUBLIC, mtime: 0 };
        Store {
            inodes: vec![Some(root)],
            free: Vec::new(),
            root: InodeId(0),
            clock: 0,
            journal: None,
            visibility_gen: 0,
            dirty: BTreeSet::from([0]),
            paged: None,
            spill_threshold: usize::MAX,
        }
    }

    /// Creates a store that spills file payloads larger than `threshold`
    /// bytes to `dev` behind a `pages`-page cache. The device is volatile
    /// scratch for the live tree — durability still comes from the journal
    /// — so page-resident memory for content is bounded by the cache
    /// budget no matter how large the working set grows.
    pub fn with_block_device(dev: Box<dyn BlockDevice>, pages: usize, threshold: usize) -> Self {
        let mut s = Store::new();
        s.paged = Some(Mutex::new(PagedBacking {
            cache: PageCache::new(dev, pages),
            alloc: ExtentAllocator::new(),
        }));
        s.spill_threshold = threshold;
        s
    }

    /// Point-in-time composition counters: how many files (and bytes) are
    /// inline vs spilled, plus the page-cache counters when a device is
    /// attached. The mirror of `db.stats` for the storage tier.
    pub fn stats(&self) -> StoreStats {
        let mut st = StoreStats::default();
        for slot in self.inodes.iter().flatten() {
            if let Inode::File { data, .. } = slot {
                match data {
                    FileData::Resident(d) => {
                        st.resident_files += 1;
                        st.resident_bytes += d.len() as u64;
                    }
                    FileData::Paged { len, .. } => {
                        st.spilled_files += 1;
                        st.spilled_bytes += len;
                    }
                }
            }
        }
        if let Some(p) = &self.paged {
            let p = p.lock();
            st.cache = Some(p.cache.stats());
            st.cache_budget_bytes = p.cache.budget_bytes() as u64;
        }
        st
    }

    /// Writes every dirty cached page back to the block device and issues
    /// its flush barrier. A no-op for device-less stores.
    pub fn flush_pages(&self) {
        if let Some(p) = &self.paged {
            p.lock().cache.flush().expect("vfs spill device flush failed");
        }
    }

    /// Marks an inode slot as mutated since the last dirty-image take.
    fn touch(&mut self, id: InodeId) {
        self.dirty.insert(id.0);
    }

    /// The current namespace-visibility generation (see the field docs).
    pub fn visibility_gen(&self) -> u64 {
        self.visibility_gen
    }

    /// Explicitly advances the visibility generation, invalidating every
    /// union resolution cache validated against this store. The leaf
    /// mutations below bump it automatically; this hook exists for
    /// coarse-grained events (volatile commit/clear) that want a
    /// belt-and-braces invalidation on top.
    pub fn bump_visibility(&mut self) {
        self.visibility_gen = self.visibility_gen.wrapping_add(1);
    }

    /// Attaches a journal sink; subsequent successful mutations are logged.
    pub fn set_journal(&mut self, sink: SinkRef) {
        self.journal = Some(sink);
    }

    /// Detaches the journal sink, returning it if one was attached.
    pub fn take_journal(&mut self) -> Option<SinkRef> {
        self.journal.take()
    }

    fn emit(&self, rec: VfsRecord) {
        if let Some(j) = &self.journal {
            j.emit(Record::Vfs(rec));
        }
    }

    /// Returns the root inode id.
    pub fn root(&self) -> InodeId {
        self.root
    }

    /// Advances and returns the logical clock.
    pub fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Returns the current logical clock without advancing it.
    pub fn now(&self) -> u64 {
        self.clock
    }

    fn get(&self, id: InodeId) -> VfsResult<&Inode> {
        self.inodes.get(id.0 as usize).and_then(|slot| slot.as_ref()).ok_or(VfsError::NotFound)
    }

    fn get_mut(&mut self, id: InodeId) -> VfsResult<&mut Inode> {
        self.inodes.get_mut(id.0 as usize).and_then(|slot| slot.as_mut()).ok_or(VfsError::NotFound)
    }

    fn alloc(&mut self, inode: Inode) -> InodeId {
        if let Some(id) = self.free.pop() {
            self.inodes[id.0 as usize] = Some(inode);
            id
        } else {
            let id = InodeId(self.inodes.len() as u64);
            self.inodes.push(Some(inode));
            id
        }
    }

    fn dealloc(&mut self, id: InodeId) {
        if let Some(slot) = self.inodes.get_mut(id.0 as usize) {
            if let Some(Inode::File { data, .. }) = slot.take() {
                fd_free(&self.paged, &data);
            }
            self.free.push(id);
        }
    }

    /// Resolves a host path to an inode id.
    pub fn resolve(&self, path: &VPath) -> VfsResult<InodeId> {
        let mut cur = self.root;
        for comp in path.components() {
            match self.get(cur)? {
                Inode::Dir { entries, .. } => {
                    cur = *entries.get(comp).ok_or(VfsError::NotFound)?;
                }
                Inode::File { .. } => return Err(VfsError::NotADirectory),
            }
        }
        Ok(cur)
    }

    /// Returns true if the host path exists.
    pub fn exists(&self, path: &VPath) -> bool {
        self.resolve(path).is_ok()
    }

    /// Returns metadata for a host path.
    pub fn stat(&self, path: &VPath) -> VfsResult<Metadata> {
        let id = self.resolve(path)?;
        Ok(self.get(id)?.meta())
    }

    /// Returns metadata for an inode id (used by open file handles).
    pub fn stat_inode(&self, id: InodeId) -> VfsResult<Metadata> {
        Ok(self.get(id)?.meta())
    }

    /// Reads the full contents of a file.
    pub fn read(&self, path: &VPath) -> VfsResult<Vec<u8>> {
        let id = self.resolve(path)?;
        self.read_inode(id)
    }

    /// Reads a file by inode id, materializing spilled content through the
    /// page cache.
    pub fn read_inode(&self, id: InodeId) -> VfsResult<Vec<u8>> {
        match self.get(id)? {
            Inode::File { data, .. } => Ok(fd_load(&self.paged, data)),
            Inode::Dir { .. } => Err(VfsError::IsADirectory),
        }
    }

    /// Creates a directory; parent must exist.
    pub fn mkdir(&mut self, path: &VPath, owner: Uid, mode: Mode) -> VfsResult<InodeId> {
        let parent_path = path.parent().ok_or(VfsError::AlreadyExists)?;
        let name = path.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        let parent = self.resolve(&parent_path)?;
        let mtime = self.tick();
        let existing = match self.get(parent)? {
            Inode::Dir { entries, .. } => entries.get(&name).copied(),
            Inode::File { .. } => return Err(VfsError::NotADirectory),
        };
        if existing.is_some() {
            return Err(VfsError::AlreadyExists);
        }
        let child = self.alloc(Inode::Dir { entries: BTreeMap::new(), owner, mode, mtime });
        match self.get_mut(parent)? {
            Inode::Dir { entries, mtime: pm, .. } => {
                entries.insert(name, child);
                *pm = mtime;
            }
            Inode::File { .. } => unreachable!("parent checked to be a directory"),
        }
        self.touch(child);
        self.touch(parent);
        self.bump_visibility();
        self.emit(VfsRecord::Mkdir {
            path: path.as_str().to_string(),
            owner: owner.0,
            mode: mode.to_bits(),
        });
        Ok(child)
    }

    /// Creates all missing ancestors of `path` and `path` itself as
    /// directories. Existing directories are left untouched.
    pub fn mkdir_all(&mut self, path: &VPath, owner: Uid, mode: Mode) -> VfsResult<()> {
        let mut cur = VPath::root();
        for comp in path.components() {
            cur = cur.join(comp)?;
            match self.stat(&cur) {
                Ok(meta) if meta.is_dir => {}
                Ok(_) => return Err(VfsError::NotADirectory),
                Err(VfsError::NotFound) => {
                    self.mkdir(&cur, owner, mode)?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Creates or truncates a file with the given contents.
    pub fn write(
        &mut self,
        path: &VPath,
        data: &[u8],
        owner: Uid,
        mode: Mode,
    ) -> VfsResult<InodeId> {
        let parent_path = path.parent().ok_or(VfsError::IsADirectory)?;
        let name = path.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        let parent = self.resolve(&parent_path)?;
        let mtime = self.tick();
        let existing = match self.get(parent)? {
            Inode::Dir { entries, .. } => entries.get(&name).copied(),
            Inode::File { .. } => return Err(VfsError::NotADirectory),
        };
        let journaled = self.journal.is_some();
        let mut delta: Option<(usize, usize)> = None;
        let id = if let Some(id) = existing {
            match self.get(id)? {
                Inode::File { data: d, .. } => {
                    if journaled {
                        let old = fd_load(&self.paged, d);
                        delta = delta_bounds(&old, data);
                    }
                }
                Inode::Dir { .. } => return Err(VfsError::IsADirectory),
            }
            let new_fd = fd_store(&self.paged, self.spill_threshold, data);
            let paged = &self.paged;
            match self.inodes.get_mut(id.0 as usize).and_then(|s| s.as_mut()) {
                Some(Inode::File { data: d, mtime: m, .. }) => {
                    fd_free(paged, d);
                    *d = new_fd;
                    *m = mtime;
                }
                _ => unreachable!("checked to be a file above"),
            }
            id
        } else {
            let new_fd = fd_store(&self.paged, self.spill_threshold, data);
            let id = self.alloc(Inode::File { data: new_fd, owner, mode, mtime });
            match self.get_mut(parent)? {
                Inode::Dir { entries, mtime: pm, .. } => {
                    entries.insert(name, id);
                    *pm = mtime;
                }
                Inode::File { .. } => unreachable!("parent checked to be a directory"),
            }
            self.touch(parent);
            // Creation (not overwrite) makes a new path visible.
            self.bump_visibility();
            id
        };
        self.touch(id);
        if let Some((prefix, suffix)) = delta {
            // Overwrite sharing most bytes with the old contents: log only
            // the changed middle. (Owner/mode are untouched by overwrite,
            // so the delta record carries neither.)
            self.emit(VfsRecord::WriteDelta {
                path: path.as_str().to_string(),
                prefix: prefix as u32,
                suffix: suffix as u32,
                data: data[prefix..data.len() - suffix].to_vec(),
            });
        } else {
            self.emit(VfsRecord::Write {
                path: path.as_str().to_string(),
                data: data.to_vec(),
                owner: owner.0,
                mode: mode.to_bits(),
            });
        }
        Ok(id)
    }

    /// Appends bytes to an existing file. Resident files that stay under
    /// the spill threshold extend in place; anything else (already spilled,
    /// or crossing the threshold) re-stores the whole payload, which may
    /// migrate it to device pages.
    pub fn append(&mut self, path: &VPath, data: &[u8]) -> VfsResult<()> {
        let id = self.resolve(path)?;
        let mtime = self.tick();
        let in_place = match self.get(id)? {
            Inode::File { data: FileData::Resident(d), .. } => {
                self.paged.is_none() || d.len() + data.len() <= self.spill_threshold
            }
            Inode::File { .. } => false,
            Inode::Dir { .. } => return Err(VfsError::IsADirectory),
        };
        if in_place {
            match self.get_mut(id)? {
                Inode::File { data: FileData::Resident(d), mtime: m, .. } => {
                    d.extend_from_slice(data);
                    *m = mtime;
                }
                _ => unreachable!("checked resident file above"),
            }
        } else {
            let mut content = match self.get(id)? {
                Inode::File { data: d, .. } => fd_load(&self.paged, d),
                Inode::Dir { .. } => unreachable!("checked to be a file above"),
            };
            content.extend_from_slice(data);
            let new_fd = fd_store(&self.paged, self.spill_threshold, &content);
            let paged = &self.paged;
            match self.inodes.get_mut(id.0 as usize).and_then(|s| s.as_mut()) {
                Some(Inode::File { data: d, mtime: m, .. }) => {
                    fd_free(paged, d);
                    *d = new_fd;
                    *m = mtime;
                }
                _ => unreachable!("checked to be a file above"),
            }
        }
        self.touch(id);
        self.emit(VfsRecord::Append { path: path.as_str().to_string(), data: data.to_vec() });
        Ok(())
    }

    /// Overwrites a file's contents by inode id (used by file handles).
    pub fn write_inode(&mut self, id: InodeId, data: &[u8]) -> VfsResult<()> {
        let journaled = self.journal.is_some();
        let mut delta: Option<(usize, usize)> = None;
        let mtime = self.tick();
        match self.get(id)? {
            Inode::File { data: d, .. } => {
                if journaled {
                    let old = fd_load(&self.paged, d);
                    delta = delta_bounds(&old, data);
                }
            }
            Inode::Dir { .. } => return Err(VfsError::IsADirectory),
        }
        let new_fd = fd_store(&self.paged, self.spill_threshold, data);
        let paged = &self.paged;
        match self.inodes.get_mut(id.0 as usize).and_then(|s| s.as_mut()) {
            Some(Inode::File { data: d, mtime: m, .. }) => {
                fd_free(paged, d);
                *d = new_fd;
                *m = mtime;
            }
            _ => unreachable!("checked to be a file above"),
        }
        self.touch(id);
        if let Some((prefix, suffix)) = delta {
            self.emit(VfsRecord::WriteInodeDelta {
                inode: id.0,
                prefix: prefix as u32,
                suffix: suffix as u32,
                data: data[prefix..data.len() - suffix].to_vec(),
            });
        } else {
            self.emit(VfsRecord::WriteInode { inode: id.0, data: data.to_vec() });
        }
        Ok(())
    }

    /// Removes a file.
    pub fn unlink(&mut self, path: &VPath) -> VfsResult<()> {
        let parent_path = path.parent().ok_or(VfsError::IsADirectory)?;
        let name = path.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        let parent = self.resolve(&parent_path)?;
        let child = self.resolve(path)?;
        if self.get(child)?.meta().is_dir {
            return Err(VfsError::IsADirectory);
        }
        let mtime = self.tick();
        match self.get_mut(parent)? {
            Inode::Dir { entries, mtime: pm, .. } => {
                entries.remove(&name);
                *pm = mtime;
            }
            Inode::File { .. } => return Err(VfsError::NotADirectory),
        }
        self.dealloc(child);
        self.touch(parent);
        self.touch(child);
        self.bump_visibility();
        self.emit(VfsRecord::Unlink { path: path.as_str().to_string() });
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &VPath) -> VfsResult<()> {
        let parent_path = path.parent().ok_or(VfsError::InvalidArgument)?;
        let name = path.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        let child = self.resolve(path)?;
        match self.get(child)? {
            Inode::Dir { entries, .. } if entries.is_empty() => {}
            Inode::Dir { .. } => return Err(VfsError::NotEmpty),
            Inode::File { .. } => return Err(VfsError::NotADirectory),
        }
        let parent = self.resolve(&parent_path)?;
        let mtime = self.tick();
        match self.get_mut(parent)? {
            Inode::Dir { entries, mtime: pm, .. } => {
                entries.remove(&name);
                *pm = mtime;
            }
            Inode::File { .. } => return Err(VfsError::NotADirectory),
        }
        self.dealloc(child);
        self.touch(parent);
        self.touch(child);
        self.bump_visibility();
        self.emit(VfsRecord::Rmdir { path: path.as_str().to_string() });
        Ok(())
    }

    /// Recursively removes a directory tree (or a single file).
    pub fn remove_all(&mut self, path: &VPath) -> VfsResult<()> {
        let id = self.resolve(path)?;
        let is_dir = self.get(id)?.meta().is_dir;
        if !is_dir {
            return self.unlink(path);
        }
        let names: Vec<String> = match self.get(id)? {
            Inode::Dir { entries, .. } => entries.keys().cloned().collect(),
            Inode::File { .. } => unreachable!("checked is_dir above"),
        };
        for name in names {
            self.remove_all(&path.join(&name)?)?;
        }
        if path.is_root() {
            Ok(())
        } else {
            self.rmdir(path)
        }
    }

    /// Lists a directory's entries in name order.
    pub fn read_dir(&self, path: &VPath) -> VfsResult<Vec<DirEntry>> {
        let id = self.resolve(path)?;
        match self.get(id)? {
            Inode::Dir { entries, .. } => entries
                .iter()
                .map(|(name, id)| {
                    Ok(DirEntry { name: name.clone(), is_dir: self.get(*id)?.meta().is_dir })
                })
                .collect(),
            Inode::File { .. } => Err(VfsError::NotADirectory),
        }
    }

    /// Renames a file or directory within the store.
    pub fn rename(&mut self, from: &VPath, to: &VPath) -> VfsResult<()> {
        if to.starts_with(from) && from != to {
            return Err(VfsError::InvalidArgument);
        }
        let from_parent = self.resolve(&from.parent().ok_or(VfsError::InvalidArgument)?)?;
        let to_parent = self.resolve(&to.parent().ok_or(VfsError::InvalidArgument)?)?;
        let from_name = from.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        let to_name = to.file_name().ok_or(VfsError::InvalidArgument)?.to_string();
        let moved = self.resolve(from)?;
        if let Ok(existing) = self.resolve(to) {
            if self.get(existing)?.meta().is_dir {
                return Err(VfsError::IsADirectory);
            }
            self.unlink(to)?;
        }
        let mtime = self.tick();
        match self.get_mut(from_parent)? {
            Inode::Dir { entries, mtime: pm, .. } => {
                entries.remove(&from_name);
                *pm = mtime;
            }
            Inode::File { .. } => return Err(VfsError::NotADirectory),
        }
        match self.get_mut(to_parent)? {
            Inode::Dir { entries, mtime: pm, .. } => {
                entries.insert(to_name, moved);
                *pm = mtime;
            }
            Inode::File { .. } => return Err(VfsError::NotADirectory),
        }
        self.touch(from_parent);
        self.touch(to_parent);
        self.bump_visibility();
        self.emit(VfsRecord::Rename {
            from: from.as_str().to_string(),
            to: to.as_str().to_string(),
        });
        Ok(())
    }

    /// Copies a single file, preserving owner and mode.
    pub fn copy_file(&mut self, from: &VPath, to: &VPath) -> VfsResult<()> {
        let meta = self.stat(from)?;
        if meta.is_dir {
            return Err(VfsError::IsADirectory);
        }
        let data = self.read(from)?;
        self.write(to, &data, meta.owner, meta.mode)?;
        Ok(())
    }

    /// Recursively copies a tree, creating `to` and all descendants.
    pub fn copy_all(&mut self, from: &VPath, to: &VPath) -> VfsResult<()> {
        let meta = self.stat(from)?;
        if !meta.is_dir {
            if let Some(parent) = to.parent() {
                self.mkdir_all(&parent, meta.owner, Mode::PUBLIC)?;
            }
            return self.copy_file(from, to);
        }
        self.mkdir_all(to, meta.owner, meta.mode)?;
        for entry in self.read_dir(from)? {
            self.copy_all(&from.join(&entry.name)?, &to.join(&entry.name)?)?;
        }
        Ok(())
    }

    /// Changes owner and mode of a node.
    pub fn chown_chmod(&mut self, path: &VPath, owner: Uid, mode: Mode) -> VfsResult<()> {
        let id = self.resolve(path)?;
        match self.get_mut(id)? {
            Inode::File { owner: o, mode: m, .. } | Inode::Dir { owner: o, mode: m, .. } => {
                *o = owner;
                *m = mode;
            }
        }
        self.touch(id);
        self.emit(VfsRecord::ChownChmod {
            path: path.as_str().to_string(),
            owner: owner.0,
            mode: mode.to_bits(),
        });
        Ok(())
    }

    /// Returns the total number of live inodes (for leak tests).
    pub fn inode_count(&self) -> usize {
        self.inodes.iter().filter(|s| s.is_some()).count()
    }

    /// Applies a journal record during recovery by routing it through the
    /// same leaf primitives that produced it. The journal sink is detached
    /// for the duration so replay does not re-log.
    pub fn apply_journal_record(&mut self, rec: &VfsRecord) -> VfsResult<()> {
        let saved = self.journal.take();
        let res = self.apply_inner(rec);
        self.journal = saved;
        res
    }

    fn apply_inner(&mut self, rec: &VfsRecord) -> VfsResult<()> {
        match rec {
            VfsRecord::Mkdir { path, owner, mode } => {
                self.mkdir(&VPath::new(path)?, Uid(*owner), Mode::from_bits(*mode))?;
            }
            VfsRecord::Write { path, data, owner, mode } => {
                self.write(&VPath::new(path)?, data, Uid(*owner), Mode::from_bits(*mode))?;
            }
            VfsRecord::Append { path, data } => self.append(&VPath::new(path)?, data)?,
            VfsRecord::WriteInode { inode, data } => self.write_inode(InodeId(*inode), data)?,
            VfsRecord::WriteDelta { path, prefix, suffix, data } => {
                let id = self.resolve(&VPath::new(path)?)?;
                self.apply_delta(id, *prefix, *suffix, data)?;
            }
            VfsRecord::WriteInodeDelta { inode, prefix, suffix, data } => {
                self.apply_delta(InodeId(*inode), *prefix, *suffix, data)?;
            }
            VfsRecord::Unlink { path } => self.unlink(&VPath::new(path)?)?,
            VfsRecord::Rmdir { path } => self.rmdir(&VPath::new(path)?)?,
            VfsRecord::Rename { from, to } => self.rename(&VPath::new(from)?, &VPath::new(to)?)?,
            VfsRecord::ChownChmod { path, owner, mode } => {
                self.chown_chmod(&VPath::new(path)?, Uid(*owner), Mode::from_bits(*mode))?
            }
        }
        Ok(())
    }

    /// Replays a delta record: `new = old[..prefix] ++ mid ++
    /// old[len-suffix..]`, owner and mode untouched (an overwrite never
    /// changes them).
    fn apply_delta(&mut self, id: InodeId, prefix: u32, suffix: u32, mid: &[u8]) -> VfsResult<()> {
        let (prefix, suffix) = (prefix as usize, suffix as usize);
        let mtime = self.tick();
        let old = match self.get(id)? {
            Inode::File { data: d, .. } => {
                if prefix + suffix > d.len() as usize {
                    return Err(VfsError::InvalidArgument);
                }
                fd_load(&self.paged, d)
            }
            Inode::Dir { .. } => return Err(VfsError::IsADirectory),
        };
        let mut new = Vec::with_capacity(prefix + mid.len() + suffix);
        new.extend_from_slice(&old[..prefix]);
        new.extend_from_slice(mid);
        new.extend_from_slice(&old[old.len() - suffix..]);
        let new_fd = fd_store(&self.paged, self.spill_threshold, &new);
        let paged = &self.paged;
        match self.inodes.get_mut(id.0 as usize).and_then(|s| s.as_mut()) {
            Some(Inode::File { data: d, mtime: m, .. }) => {
                fd_free(paged, d);
                *d = new_fd;
                *m = mtime;
            }
            _ => unreachable!("checked to be a file above"),
        }
        self.touch(id);
        Ok(())
    }

    /// Serializes the exact store image — every inode slot (including
    /// free ones), the free list, root id, and clock — for a journal
    /// snapshot record. Exactness matters: replayed `WriteInode` records
    /// address inodes by id, so the image must preserve allocation state.
    pub fn snapshot_image(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.root.0);
        w.put_u64(self.clock);
        w.put_u32(self.inodes.len() as u32);
        for slot in &self.inodes {
            write_slot(&mut w, &self.paged, slot.as_ref());
        }
        self.write_free_list(&mut w);
        w.into_bytes()
    }

    fn write_free_list(&self, w: &mut ByteWriter) {
        w.put_u32(self.free.len() as u32);
        for id in &self.free {
            w.put_u64(id.0);
        }
    }

    /// Serializes an *incremental* image — root, clock, total slot count,
    /// only the slots dirtied since the last take (id-tagged, tombstones
    /// included), and the full free list (it is tiny and hard to diff) —
    /// then clears the dirty set. Applying the resulting deltas in take
    /// order on top of the base snapshot reproduces the exact store.
    pub fn take_dirty_image(&mut self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.root.0);
        w.put_u64(self.clock);
        w.put_u32(self.inodes.len() as u32);
        w.put_u32(self.dirty.len() as u32);
        for &id in &self.dirty {
            w.put_u64(id);
            let slot = self.inodes.get(id as usize).and_then(|s| s.as_ref());
            write_slot(&mut w, &self.paged, slot);
        }
        self.write_free_list(&mut w);
        self.dirty.clear();
        w.into_bytes()
    }

    /// Applies a [`Store::take_dirty_image`] payload on top of the current
    /// contents: listed slots are replaced (or tombstoned), the free list
    /// is overwritten, root and clock adopt the delta's values. The slot
    /// table grows as needed; it never shrinks, matching the live store.
    pub fn apply_dirty_image(&mut self, image: &[u8]) -> VfsResult<()> {
        let mut r = ByteReader::new(image);
        let bad = |_| VfsError::InvalidArgument;
        let root = InodeId(r.get_u64().map_err(bad)?);
        let clock = r.get_u64().map_err(bad)?;
        let total = r.get_u32().map_err(bad)? as usize;
        if self.inodes.len() < total {
            self.inodes.resize(total, None);
        }
        let n = r.get_u32().map_err(bad)? as usize;
        for _ in 0..n {
            let id = r.get_u64().map_err(bad)? as usize;
            let slot = read_slot(&mut r, &self.paged, self.spill_threshold)?;
            if id >= self.inodes.len() {
                self.inodes.resize(id + 1, None);
            }
            // Release any extents the replaced slot held.
            if let Some(Inode::File { data, .. }) = &self.inodes[id] {
                fd_free(&self.paged, data);
            }
            self.inodes[id] = slot;
            self.dirty.insert(id as u64);
        }
        let fcount = r.get_u32().map_err(bad)? as usize;
        let mut free = Vec::with_capacity(fcount);
        for _ in 0..fcount {
            free.push(InodeId(r.get_u64().map_err(bad)?));
        }
        self.free = free;
        self.root = root;
        self.clock = clock;
        self.bump_visibility();
        Ok(())
    }

    /// Restores the store from a [`Store::snapshot_image`] payload,
    /// replacing all current contents. The journal sink is preserved.
    pub fn restore_image(&mut self, image: &[u8]) -> VfsResult<()> {
        let mut r = ByteReader::new(image);
        let bad = |_| VfsError::InvalidArgument;
        let root = InodeId(r.get_u64().map_err(bad)?);
        let clock = r.get_u64().map_err(bad)?;
        let n = r.get_u32().map_err(bad)? as usize;
        let mut inodes = Vec::with_capacity(n);
        for _ in 0..n {
            inodes.push(read_slot(&mut r, &self.paged, self.spill_threshold)?);
        }
        let fcount = r.get_u32().map_err(bad)? as usize;
        let mut free = Vec::with_capacity(fcount);
        for _ in 0..fcount {
            free.push(InodeId(r.get_u64().map_err(bad)?));
        }
        // The old tree is being replaced wholesale: release its extents.
        for slot in self.inodes.iter().flatten() {
            if let Inode::File { data, .. } = slot {
                fd_free(&self.paged, data);
            }
        }
        self.inodes = inodes;
        self.free = free;
        self.root = root;
        self.clock = clock;
        // Wholesale replacement: every slot is "dirty" relative to any
        // delta taken earlier, and anything resolved before is suspect.
        self.dirty = (0..self.inodes.len() as u64).collect();
        self.bump_visibility();
        Ok(())
    }

    /// Dumps the whole tree as `path -> (is_dir, data, owner, mode bits)`
    /// for state-equivalence checks. Mtimes are deliberately excluded:
    /// failed operations advance the clock but are not journaled, so a
    /// replayed store matches on contents and metadata, not on clock.
    pub fn dump_tree(&self) -> BTreeMap<String, (bool, Vec<u8>, u32, u8)> {
        let mut out = BTreeMap::new();
        self.dump_into(self.root, &VPath::root(), &mut out);
        out
    }

    fn dump_into(
        &self,
        id: InodeId,
        path: &VPath,
        out: &mut BTreeMap<String, (bool, Vec<u8>, u32, u8)>,
    ) {
        match self.get(id) {
            Ok(Inode::File { data, owner, mode, .. }) => {
                out.insert(
                    path.as_str().to_string(),
                    (false, fd_load(&self.paged, data), owner.0, mode.to_bits()),
                );
            }
            Ok(Inode::Dir { entries, owner, mode, .. }) => {
                out.insert(path.as_str().to_string(), (true, Vec::new(), owner.0, mode.to_bits()));
                for (name, child) in entries {
                    if let Ok(p) = path.join(name) {
                        self.dump_into(*child, &p, out);
                    }
                }
            }
            Err(_) => {}
        }
    }
}

/// Serializes one inode slot: 0 = empty, 1 = file, 2 = directory. Shared
/// by full snapshots and incremental dirty images so the two formats can
/// never drift apart. File content is always materialized, so the image
/// bytes are identical whether payloads were resident or spilled — backend
/// equivalence at the serialization boundary.
fn write_slot(w: &mut ByteWriter, paged: &Option<Mutex<PagedBacking>>, slot: Option<&Inode>) {
    match slot {
        None => w.put_u8(0),
        Some(Inode::File { data, owner, mode, mtime }) => {
            w.put_u8(1);
            w.put_bytes(&fd_load(paged, data));
            w.put_u32(owner.0);
            w.put_u8(mode.to_bits());
            w.put_u64(*mtime);
        }
        Some(Inode::Dir { entries, owner, mode, mtime }) => {
            w.put_u8(2);
            w.put_u32(entries.len() as u32);
            for (name, id) in entries {
                w.put_str(name);
                w.put_u64(id.0);
            }
            w.put_u32(owner.0);
            w.put_u8(mode.to_bits());
            w.put_u64(*mtime);
        }
    }
}

fn read_slot(
    r: &mut ByteReader<'_>,
    paged: &Option<Mutex<PagedBacking>>,
    threshold: usize,
) -> VfsResult<Option<Inode>> {
    let bad = |_| VfsError::InvalidArgument;
    match r.get_u8().map_err(bad)? {
        0 => Ok(None),
        1 => {
            let data = r.get_bytes().map_err(bad)?;
            let owner = Uid(r.get_u32().map_err(bad)?);
            let mode = Mode::from_bits(r.get_u8().map_err(bad)?);
            let mtime = r.get_u64().map_err(bad)?;
            let data = fd_store(paged, threshold, &data);
            Ok(Some(Inode::File { data, owner, mode, mtime }))
        }
        2 => {
            let count = r.get_u32().map_err(bad)? as usize;
            let mut entries = BTreeMap::new();
            for _ in 0..count {
                let name = r.get_str().map_err(bad)?;
                let id = InodeId(r.get_u64().map_err(bad)?);
                entries.insert(name, id);
            }
            let owner = Uid(r.get_u32().map_err(bad)?);
            let mode = Mode::from_bits(r.get_u8().map_err(bad)?);
            let mtime = r.get_u64().map_err(bad)?;
            Ok(Some(Inode::Dir { entries, owner, mode, mtime }))
        }
        _ => Err(VfsError::InvalidArgument),
    }
}

/// Decides whether an overwrite should be delta-logged: returns the
/// (prefix, suffix) byte counts shared with the old contents when the
/// changed middle is at most half the new payload, `None` when a full
/// image is cheaper (or as cheap — the fallback keeps pathological
/// rewrites from paying delta overhead on top of full size).
fn delta_bounds(old: &[u8], new: &[u8]) -> Option<(usize, usize)> {
    let prefix = old.iter().zip(new.iter()).take_while(|(a, b)| a == b).count();
    let overlap = old.len().min(new.len()) - prefix;
    let suffix =
        old.iter().rev().zip(new.iter().rev()).take_while(|(a, b)| a == b).count().min(overlap);
    let mid = new.len() - prefix - suffix;
    if mid * 2 <= new.len() {
        Some((prefix, suffix))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::vpath;

    fn store_with(paths: &[(&str, &str)]) -> Store {
        let mut s = Store::new();
        for (p, content) in paths {
            let vp = vpath(p);
            s.mkdir_all(&vp.parent().unwrap(), Uid::ROOT, Mode::PUBLIC).unwrap();
            s.write(&vp, content.as_bytes(), Uid::ROOT, Mode::PUBLIC).unwrap();
        }
        s
    }

    #[test]
    fn write_read_roundtrip() {
        let s = store_with(&[("/a/b/c.txt", "hello")]);
        assert_eq!(s.read(&vpath("/a/b/c.txt")).unwrap(), b"hello");
        assert_eq!(s.read(&vpath("/a/b/missing")).err(), Some(VfsError::NotFound));
    }

    #[test]
    fn append_extends() {
        let mut s = store_with(&[("/f", "ab")]);
        s.append(&vpath("/f"), b"cd").unwrap();
        assert_eq!(s.read(&vpath("/f")).unwrap(), b"abcd");
        assert_eq!(s.append(&vpath("/g"), b"x").err(), Some(VfsError::NotFound));
    }

    #[test]
    fn mkdir_semantics() {
        let mut s = Store::new();
        s.mkdir(&vpath("/d"), Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(
            s.mkdir(&vpath("/d"), Uid::ROOT, Mode::PUBLIC).err(),
            Some(VfsError::AlreadyExists)
        );
        assert_eq!(
            s.mkdir(&vpath("/x/y"), Uid::ROOT, Mode::PUBLIC).err(),
            Some(VfsError::NotFound)
        );
        s.mkdir_all(&vpath("/x/y/z"), Uid::ROOT, Mode::PUBLIC).unwrap();
        assert!(s.stat(&vpath("/x/y/z")).unwrap().is_dir);
    }

    #[test]
    fn unlink_and_rmdir() {
        let mut s = store_with(&[("/d/f", "x")]);
        assert_eq!(s.rmdir(&vpath("/d")).err(), Some(VfsError::NotEmpty));
        assert_eq!(s.unlink(&vpath("/d")).err(), Some(VfsError::IsADirectory));
        s.unlink(&vpath("/d/f")).unwrap();
        s.rmdir(&vpath("/d")).unwrap();
        assert!(!s.exists(&vpath("/d")));
    }

    #[test]
    fn remove_all_recurses() {
        let mut s = store_with(&[("/t/a/f1", "1"), ("/t/a/b/f2", "2"), ("/t/f3", "3")]);
        let before = s.inode_count();
        s.remove_all(&vpath("/t")).unwrap();
        assert!(!s.exists(&vpath("/t")));
        assert!(s.inode_count() < before);
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut s = store_with(&[("/a/f", "new"), ("/b/g", "old")]);
        s.rename(&vpath("/a/f"), &vpath("/b/g")).unwrap();
        assert_eq!(s.read(&vpath("/b/g")).unwrap(), b"new");
        assert!(!s.exists(&vpath("/a/f")));
        // Renaming a directory into itself is rejected.
        assert_eq!(s.rename(&vpath("/b"), &vpath("/b/sub")).err(), Some(VfsError::InvalidArgument));
    }

    #[test]
    fn copy_all_preserves_tree() {
        let mut s = store_with(&[("/src/a/f", "1"), ("/src/g", "2")]);
        s.copy_all(&vpath("/src"), &vpath("/dst")).unwrap();
        assert_eq!(s.read(&vpath("/dst/a/f")).unwrap(), b"1");
        assert_eq!(s.read(&vpath("/dst/g")).unwrap(), b"2");
        // Source unchanged.
        assert_eq!(s.read(&vpath("/src/a/f")).unwrap(), b"1");
    }

    #[test]
    fn stat_reports_size_and_mtime_order() {
        let mut s = Store::new();
        s.write(&vpath("/f"), b"abc", Uid::ROOT, Mode::PUBLIC).unwrap();
        let m1 = s.stat(&vpath("/f")).unwrap();
        assert_eq!(m1.size, 3);
        s.append(&vpath("/f"), b"d").unwrap();
        let m2 = s.stat(&vpath("/f")).unwrap();
        assert_eq!(m2.size, 4);
        assert!(m2.mtime > m1.mtime);
    }

    #[test]
    fn journal_replay_rebuilds_identical_tree() {
        use maxoid_journal::{committed_records, read_records, JournalHandle, Record};
        let h = JournalHandle::with_batch(1);
        let mut s = Store::new();
        s.set_journal(h.sink());
        s.mkdir_all(&vpath("/data/app"), Uid(10_001), Mode::PRIVATE).unwrap();
        s.write(&vpath("/data/app/f"), b"v1", Uid(10_001), Mode::PRIVATE).unwrap();
        s.append(&vpath("/data/app/f"), b"+2").unwrap();
        let id = s.resolve(&vpath("/data/app/f")).unwrap();
        s.write_inode(id, b"handle-write").unwrap();
        s.write(&vpath("/data/app/g"), b"x", Uid(10_001), Mode::PRIVATE).unwrap();
        s.rename(&vpath("/data/app/g"), &vpath("/data/app/h")).unwrap();
        s.chown_chmod(&vpath("/data/app/h"), Uid::SYSTEM, Mode::WORLD_READABLE).unwrap();
        s.unlink(&vpath("/data/app/h")).unwrap();
        // Failed ops advance the clock but must not be journaled.
        assert!(s.mkdir(&vpath("/data/app"), Uid::ROOT, Mode::PUBLIC).is_err());

        let mut replayed = Store::new();
        for rec in committed_records(&read_records(&h.bytes())) {
            if let Record::Vfs(v) = rec {
                replayed.apply_journal_record(&v).unwrap();
            }
        }
        assert_eq!(replayed.dump_tree(), s.dump_tree());
        assert_eq!(replayed.inode_count(), s.inode_count());
    }

    #[test]
    fn snapshot_image_roundtrip_is_exact() {
        let mut s = store_with(&[("/a/f", "1"), ("/b/g", "2")]);
        s.unlink(&vpath("/a/f")).unwrap(); // leave a hole in the inode table
        let image = s.snapshot_image();
        let mut restored = Store::new();
        restored.restore_image(&image).unwrap();
        assert_eq!(restored.dump_tree(), s.dump_tree());
        // Allocation state is preserved: the next alloc reuses the hole in
        // both stores, keeping later WriteInode replay valid.
        let a = s.write(&vpath("/n"), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        let b = restored.write(&vpath("/n"), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(a, b);
        assert_eq!(restored.now(), s.now());
    }

    #[test]
    fn overwrites_are_delta_logged_and_replay_exactly() {
        use maxoid_journal::{committed_records, read_records, JournalHandle, Record};
        let h = JournalHandle::with_batch(1);
        let mut s = Store::new();
        s.set_journal(h.sink());
        let mut base = vec![0u8; 4096];
        s.write(&vpath("/f"), &base, Uid::ROOT, Mode::PUBLIC).unwrap();
        // Small in-place change: must log a delta, not the whole 4KB.
        base[100..108].copy_from_slice(b"CHANGED!");
        s.write(&vpath("/f"), &base, Uid::ROOT, Mode::PUBLIC).unwrap();
        // Majority rewrite: must fall back to a full image.
        let rewrite = vec![9u8; 4096];
        s.write(&vpath("/f"), &rewrite, Uid::ROOT, Mode::PUBLIC).unwrap();
        // Inode-handle path gets the same treatment.
        let id = s.resolve(&vpath("/f")).unwrap();
        let mut v = rewrite.clone();
        v[0] = 1;
        s.write_inode(id, &v).unwrap();

        let recs = committed_records(&read_records(&h.bytes()));
        let kinds: Vec<&'static str> = recs
            .iter()
            .filter_map(|r| match r {
                Record::Vfs(VfsRecord::Write { .. }) => Some("write"),
                Record::Vfs(VfsRecord::WriteDelta { data, .. }) => {
                    assert!(data.len() < 64, "delta logs only the changed middle");
                    Some("delta")
                }
                Record::Vfs(VfsRecord::WriteInodeDelta { data, .. }) => {
                    assert!(data.len() < 64);
                    Some("inode-delta")
                }
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec!["write", "delta", "write", "inode-delta"]);

        let mut replayed = Store::new();
        for rec in recs {
            if let Record::Vfs(v) = rec {
                replayed.apply_journal_record(&v).unwrap();
            }
        }
        assert_eq!(replayed.dump_tree(), s.dump_tree());
    }

    #[test]
    fn dirty_image_chain_matches_full_snapshot() {
        let mut s = store_with(&[("/a/f", "1"), ("/b/g", "2")]);
        let mut shadow = Store::new();
        shadow.apply_dirty_image(&s.take_dirty_image()).unwrap();
        assert_eq!(shadow.dump_tree(), s.dump_tree());
        // Mutations between takes produce a small delta that catches the
        // shadow up — including tombstones for freed slots.
        s.write(&vpath("/a/f"), b"updated", Uid::ROOT, Mode::PUBLIC).unwrap();
        s.unlink(&vpath("/b/g")).unwrap();
        s.rename(&vpath("/a/f"), &vpath("/b/h")).unwrap();
        let delta = s.take_dirty_image();
        assert!(delta.len() < s.snapshot_image().len());
        shadow.apply_dirty_image(&delta).unwrap();
        assert_eq!(shadow.dump_tree(), s.dump_tree());
        // Allocation state converged too: next writes allocate identically.
        let a = s.write(&vpath("/n"), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        let b = shadow.write(&vpath("/n"), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(a, b);
        assert_eq!(shadow.now(), s.now());
    }

    #[test]
    fn restore_image_rejects_garbage() {
        let mut s = Store::new();
        assert_eq!(s.restore_image(&[1, 2, 3]).err(), Some(VfsError::InvalidArgument));
    }

    fn paged_store(pages: usize, threshold: usize) -> Store {
        Store::with_block_device(Box::new(maxoid_block::MemDevice::new()), pages, threshold)
    }

    #[test]
    fn paged_store_spills_and_reads_back() {
        let mut s = paged_store(8, 64);
        let small = vec![1u8; 64];
        let big = vec![2u8; 10_000];
        s.write(&vpath("/small"), &small, Uid::ROOT, Mode::PUBLIC).unwrap();
        s.write(&vpath("/big"), &big, Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(s.read(&vpath("/small")).unwrap(), small);
        assert_eq!(s.read(&vpath("/big")).unwrap(), big);
        let st = s.stats();
        assert_eq!(st.resident_files, 1);
        assert_eq!(st.spilled_files, 1);
        assert_eq!(st.spilled_bytes, 10_000);
        assert!(st.cache.is_some());
    }

    #[test]
    fn paged_append_migrates_across_threshold() {
        let mut s = paged_store(8, 100);
        s.write(&vpath("/f"), &[7u8; 90], Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(s.stats().resident_files, 1);
        s.append(&vpath("/f"), &[8u8; 90]).unwrap();
        let st = s.stats();
        assert_eq!(st.resident_files, 0);
        assert_eq!(st.spilled_files, 1);
        let mut want = vec![7u8; 90];
        want.extend_from_slice(&[8u8; 90]);
        assert_eq!(s.read(&vpath("/f")).unwrap(), want);
    }

    #[test]
    fn unlink_releases_sectors_for_reuse() {
        let mut s = paged_store(4, 0);
        let payload = vec![3u8; 4096 * 3];
        s.write(&vpath("/a"), &payload, Uid::ROOT, Mode::PUBLIC).unwrap();
        s.unlink(&vpath("/a")).unwrap();
        s.write(&vpath("/b"), &payload, Uid::ROOT, Mode::PUBLIC).unwrap();
        // The second file reuses the first one's sectors: the device never
        // grew past one extent (3 data sectors).
        let p = s.paged.as_ref().unwrap().lock();
        assert_eq!(p.alloc.next_sector(), 3);
    }

    #[test]
    fn spill_after_churn_gets_contiguous_run() {
        let mut s = paged_store(4, 0);
        // Six one-page files take sectors 0..6; unlinking f1, f2, f4
        // fragments the free list into runs {1..3} and {4..5}.
        for i in 0..6u8 {
            s.write(&vpath(&format!("/f{i}")), &vec![i; 4096], Uid::ROOT, Mode::PUBLIC).unwrap();
        }
        for i in [1u8, 2, 4] {
            s.unlink(&vpath(&format!("/f{i}"))).unwrap();
        }
        {
            let p = s.paged.as_ref().unwrap().lock();
            assert_eq!(p.alloc.free_runs(), vec![(1, 2), (4, 1)]);
        }
        // A two-page spill must take the contiguous [1, 2] run — not
        // scatter LIFO across the fragments — and not grow the device.
        s.write(&vpath("/big"), &vec![9u8; 8192], Uid::ROOT, Mode::PUBLIC).unwrap();
        let p = s.paged.as_ref().unwrap().lock();
        assert_eq!(p.alloc.free_runs(), vec![(4, 1)]);
        assert_eq!(p.alloc.next_sector(), 6);
        drop(p);
        assert_eq!(s.read(&vpath("/big")).unwrap(), vec![9u8; 8192]);
    }

    #[test]
    fn working_set_beyond_cache_stays_exact_and_bounded() {
        // 4 pages of cache, 32 spilled files of a page each: 8x the
        // budget. Every file reads back exactly; memory for content is
        // the 4-page budget plus the tiny inode table.
        let mut s = paged_store(4, 0);
        for i in 0..32 {
            let body = vec![i as u8; 4096];
            s.write(&vpath(&format!("/f{i}")), &body, Uid::ROOT, Mode::PUBLIC).unwrap();
        }
        for i in 0..32 {
            assert_eq!(s.read(&vpath(&format!("/f{i}"))).unwrap(), vec![i as u8; 4096]);
        }
        let st = s.stats();
        assert_eq!(st.spilled_files, 32);
        assert_eq!(st.resident_bytes, 0);
        assert_eq!(st.cache_budget_bytes, 4 * 4096);
        let cache = st.cache.unwrap();
        assert!(cache.evictions > 0, "working set must have churned the cache");
    }

    #[test]
    fn snapshot_images_identical_across_backends() {
        let script: &[(&str, &[u8])] =
            &[("/a/f", &[1u8; 5000]), ("/a/g", b"tiny"), ("/b/h", &[9u8; 12_345])];
        let mut resident = Store::new();
        let mut paged = paged_store(8, 64);
        for s in [&mut resident, &mut paged] {
            for (p, body) in script {
                let vp = vpath(p);
                s.mkdir_all(&vp.parent().unwrap(), Uid::ROOT, Mode::PUBLIC).unwrap();
                s.write(&vp, body, Uid::ROOT, Mode::PUBLIC).unwrap();
            }
        }
        assert_eq!(resident.snapshot_image(), paged.snapshot_image());
        assert_eq!(resident.dump_tree(), paged.dump_tree());
        // Restoring a resident image into a paged store spills by
        // threshold and still reads back identically.
        let mut restored = paged_store(8, 64);
        restored.restore_image(&resident.snapshot_image()).unwrap();
        assert_eq!(restored.dump_tree(), resident.dump_tree());
        assert!(restored.stats().spilled_files >= 2);
    }

    #[test]
    fn inode_reuse_after_dealloc() {
        let mut s = Store::new();
        s.write(&vpath("/f"), b"x", Uid::ROOT, Mode::PUBLIC).unwrap();
        let count = s.inode_count();
        s.unlink(&vpath("/f")).unwrap();
        s.write(&vpath("/g"), b"y", Uid::ROOT, Mode::PUBLIC).unwrap();
        assert_eq!(s.inode_count(), count);
    }
}
