//! Mount namespaces: the per-process view-selection mechanism.
//!
//! Maxoid gives every app process a private Linux mount namespace (via
//! `unshare()` in Zygote) and mounts a different set of branches depending
//! on whether the process runs as an initiator or a delegate (§4.2,
//! Table 2). Here a [`MountNamespace`] is an ordered set of mount points;
//! path resolution picks the deepest mount whose point is a prefix of the
//! requested path, exactly like the kernel's mount table.
//!
//! Crucially, an app can only reach backing-store data through its
//! namespace: host paths that no mount exposes are unreachable, which is
//! how branch directories stay "accessible only to root".

use crate::cred::Mode;
use crate::error::{VfsError, VfsResult};
use crate::path::VPath;
use crate::union::Union;

/// What backs a mount point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MountKind {
    /// A plain bind of a backing-store directory (single branch, no COW).
    Bind {
        /// Host directory backing this mount.
        host: VPath,
        /// When set, all writes through the mount fail with `EROFS`.
        read_only: bool,
    },
    /// An Aufs-style union of branches.
    Union(Union),
}

/// A mounted filesystem visible at `point` inside a namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mount {
    /// The path inside the namespace where this mount appears.
    pub point: VPath,
    /// The backing filesystem.
    pub kind: MountKind,
    /// When set, files created through this mount get this mode regardless
    /// of what the caller asked for. Used to model external storage (FAT),
    /// where everything is world-accessible.
    pub forced_mode: Option<Mode>,
}

impl Mount {
    /// Creates a read-write bind mount.
    pub fn bind(point: VPath, host: VPath) -> Self {
        Mount { point, kind: MountKind::Bind { host, read_only: false }, forced_mode: None }
    }

    /// Creates a read-only bind mount.
    pub fn bind_ro(point: VPath, host: VPath) -> Self {
        Mount { point, kind: MountKind::Bind { host, read_only: true }, forced_mode: None }
    }

    /// Creates a union mount.
    pub fn union(point: VPath, union: Union) -> Self {
        Mount { point, kind: MountKind::Union(union), forced_mode: None }
    }

    /// Sets the forced creation mode (builder style).
    pub fn with_forced_mode(mut self, mode: Mode) -> Self {
        self.forced_mode = Some(mode);
        self
    }
}

/// A per-process mount table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MountNamespace {
    mounts: Vec<Mount>,
}

impl MountNamespace {
    /// Creates an empty namespace (nothing is reachable).
    pub fn new() -> Self {
        MountNamespace::default()
    }

    /// Adds a mount; deeper mounts shadow shallower ones for their subtree.
    ///
    /// Mounting twice at the same point replaces the previous mount, like
    /// remounting over it.
    pub fn add(&mut self, mount: Mount) {
        self.mounts.retain(|m| m.point != mount.point);
        self.mounts.push(mount);
        // Keep sorted by depth descending so resolution can take the first
        // prefix match.
        self.mounts.sort_by_key(|m| std::cmp::Reverse(m.point.depth()));
    }

    /// Removes the mount at `point`, if any.
    pub fn remove(&mut self, point: &VPath) -> bool {
        let before = self.mounts.len();
        self.mounts.retain(|m| &m.point != point);
        self.mounts.len() != before
    }

    /// Returns all mounts, deepest first.
    pub fn mounts(&self) -> &[Mount] {
        &self.mounts
    }

    /// Resolves a namespace path to its governing mount and the path
    /// relative to the mount point (empty string for the point itself).
    pub fn resolve<'a>(&'a self, path: &VPath) -> VfsResult<(&'a Mount, String)> {
        for m in &self.mounts {
            if path.starts_with(&m.point) {
                let rel = path
                    .strip_prefix(&m.point)
                    .expect("starts_with implies strip_prefix succeeds")
                    .to_string();
                return Ok((m, rel));
            }
        }
        Err(VfsError::NotFound)
    }

    /// Enables or disables the resolution cache of every union mount in
    /// this namespace (bench and diagnostics hook).
    pub fn set_resolve_caches(&self, on: bool) {
        for m in &self.mounts {
            if let MountKind::Union(u) = &m.kind {
                u.set_resolve_cache(on);
            }
        }
    }

    /// Aggregate `(hits, misses)` of the resolution caches across this
    /// namespace's union mounts.
    pub fn resolve_cache_stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for m in &self.mounts {
            if let MountKind::Union(u) = &m.kind {
                let (h, mi) = u.resolve_cache_stats();
                hits += h;
                misses += mi;
            }
        }
        (hits, misses)
    }

    /// Returns the mount points that are direct or indirect children of
    /// `path` (used so `read_dir` can surface nested mount points).
    pub fn child_mount_names(&self, path: &VPath) -> Vec<String> {
        let mut names: Vec<String> = self
            .mounts
            .iter()
            .filter(|m| m.point.starts_with(path) && &m.point != path)
            .filter_map(|m| {
                m.point
                    .strip_prefix(path)
                    .map(|rest| rest.split('/').next().unwrap_or("").to_string())
            })
            .filter(|n| !n.is_empty())
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::vpath;
    use crate::union::{Branch, Union};

    #[test]
    fn deepest_mount_wins() {
        let mut ns = MountNamespace::new();
        ns.add(Mount::bind(vpath("/sdcard"), vpath("/back/pub")));
        ns.add(Mount::bind(vpath("/sdcard/data/A"), vpath("/back/A")));
        let (m, rel) = ns.resolve(&vpath("/sdcard/data/A/f")).unwrap();
        assert_eq!(m.point, vpath("/sdcard/data/A"));
        assert_eq!(rel, "f");
        let (m, rel) = ns.resolve(&vpath("/sdcard/data/B/f")).unwrap();
        assert_eq!(m.point, vpath("/sdcard"));
        assert_eq!(rel, "data/B/f");
    }

    #[test]
    fn unmounted_paths_are_unreachable() {
        let ns = MountNamespace::new();
        assert_eq!(ns.resolve(&vpath("/anything")).err(), Some(VfsError::NotFound));
    }

    #[test]
    fn remount_replaces() {
        let mut ns = MountNamespace::new();
        ns.add(Mount::bind(vpath("/p"), vpath("/h1")));
        ns.add(Mount::bind_ro(vpath("/p"), vpath("/h2")));
        assert_eq!(ns.mounts().len(), 1);
        let (m, _) = ns.resolve(&vpath("/p/x")).unwrap();
        assert_eq!(m.kind, MountKind::Bind { host: vpath("/h2"), read_only: true });
        assert!(ns.remove(&vpath("/p")));
        assert!(!ns.remove(&vpath("/p")));
    }

    #[test]
    fn child_mounts_enumerated() {
        let mut ns = MountNamespace::new();
        ns.add(Mount::bind(vpath("/sdcard"), vpath("/pub")));
        ns.add(Mount::bind(vpath("/sdcard/data/A"), vpath("/a")));
        ns.add(Mount::bind(vpath("/sdcard/tmp"), vpath("/t")));
        assert_eq!(
            ns.child_mount_names(&vpath("/sdcard")),
            vec!["data".to_string(), "tmp".to_string()]
        );
        assert!(ns.child_mount_names(&vpath("/sdcard/data/A")).is_empty());
    }

    #[test]
    fn union_mount_resolves() {
        let mut ns = MountNamespace::new();
        let u = Union::new(vec![Branch::rw(vpath("/up")), Branch::ro(vpath("/low"))], false);
        ns.add(Mount::union(vpath("/m"), u));
        let (m, rel) = ns.resolve(&vpath("/m/a/b")).unwrap();
        assert!(matches!(m.kind, MountKind::Union(_)));
        assert_eq!(rel, "a/b");
    }
}
